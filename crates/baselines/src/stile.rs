//! STile baseline: a hybrid composition that assigns each *row group* one
//! of several formats ({bucketed-ELL, CSR}), chosen by a roofline cost
//! model whose bandwidth coefficients are refined by microbenchmarks run
//! on the device (§2.2). The microbenchmark sweep is the system's
//! construction-overhead signature (Figure 8).

use crate::tuning::{CompileCostModel, ConstructionCost};
use crate::{Prepared, System};
use lf_cell::{build_cell, CellConfig};
use lf_kernels::common::{b_row_tx, spmm_flops, BlockScratch};
use lf_kernels::{CellKernel, SpmmKernel};
use lf_sim::atomicf::AtomicScalar;
use lf_sim::coalesce::segment_transactions;
use lf_sim::parallel::{default_workers, parallel_for, DisjointSlice};
use lf_sim::{BlockCost, DeviceModel, LaunchSpec};
use lf_sparse::gen::uniform_random;
use lf_sparse::{CooMatrix, CsrMatrix, DenseMatrix, Pcg32, Result, SparseError};
use std::time::Instant;

// ---------------------------------------------------------------------
// Row-subset CSR kernel.
// ---------------------------------------------------------------------

/// A CSR SpMM kernel restricted to a subset of rows (the other rows are
/// owned by sibling kernels of the hybrid composition).
pub struct CsrRowSubsetKernel<T> {
    csr: CsrMatrix<T>,
    rows: Vec<usize>,
}

impl<T: AtomicScalar> CsrRowSubsetKernel<T> {
    /// Restrict `csr` to `rows` (sorted, deduplicated internally).
    pub fn new(csr: CsrMatrix<T>, mut rows: Vec<usize>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        CsrRowSubsetKernel { csr, rows }
    }
}

impl<T: AtomicScalar> SpmmKernel<T> for CsrRowSubsetKernel<T> {
    fn name(&self) -> &'static str {
        "csr-row-subset"
    }

    fn shape(&self) -> (usize, usize) {
        self.csr.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        if self.csr.cols() != b.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "spmm",
                lhs: self.csr.shape(),
                rhs: b.shape(),
            });
        }
        let j = b.cols();
        let mut c = DenseMatrix::zeros(self.csr.rows(), j);
        {
            // Subset rows are deduplicated, so every output row has one
            // writer: accumulate straight into it.
            let out = DisjointSlice::new(c.as_mut_slice());
            parallel_for(self.rows.len(), default_workers(), |idx| {
                let i = self.rows[idx];
                // SAFETY: `rows` is sorted + deduped and each index goes
                // to exactly one worker.
                let crow = unsafe { out.slice_mut(i * j, j) };
                for (&k, &a) in self.csr.row_cols(i).iter().zip(self.csr.row_values(i)) {
                    let brow = b.row(k as usize);
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += a * bv;
                    }
                }
            });
        }
        Ok(c)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let ws = self.csr.cols() * j * elem;
        let per_row = b_row_tx(j, elem, device);
        let mut launch =
            LaunchSpec::new(self.name(), 256).with_grid_multiplier(j.div_ceil(device.warp_size));
        let mut scratch = BlockScratch::new();
        let mut cols: Vec<u32> = Vec::new();
        for chunk in self.rows.chunks(8) {
            cols.clear();
            let mut colval = 0u64;
            let mut nnz = 0usize;
            for &r in chunk {
                let len = self.csr.row_len(r);
                nnz += len;
                colval += 2 * segment_transactions(len, 4, device.transaction_bytes);
                cols.extend_from_slice(self.csr.row_cols(r));
            }
            let unique = scratch.count_unique(&cols) as u64 * per_row;
            let total = nnz as u64 * per_row;
            let (b_dram, b_l2) =
                lf_kernels::common::split_b_traffic(unique, total - unique, ws, device);
            // Row-index indirection + C writes for subset rows only.
            let meta = segment_transactions(chunk.len(), 4, device.transaction_bytes) + 1;
            launch.push(BlockCost {
                dram_transactions: b_dram + colval + meta + chunk.len() as u64 * per_row,
                l2_transactions: b_l2,
                flops: spmm_flops(nnz, j),
                atomic_transactions: 0,
                lane_efficiency: 1.0,
            });
        }
        vec![launch]
    }

    fn format_bytes(&self) -> usize {
        self.csr.memory_bytes() + self.rows.len() * 4
    }
}

// ---------------------------------------------------------------------
// Hybrid composition kernel.
// ---------------------------------------------------------------------

/// A composition of row-disjoint sub-kernels launched back to back (no
/// horizontal fusion — STile emits one kernel per format group).
pub struct HybridKernel<T> {
    parts: Vec<Box<dyn SpmmKernel<T>>>,
    shape: (usize, usize),
}

impl<T: AtomicScalar> HybridKernel<T> {
    /// Compose row-disjoint parts.
    pub fn new(parts: Vec<Box<dyn SpmmKernel<T>>>, shape: (usize, usize)) -> Self {
        HybridKernel { parts, shape }
    }

    /// Number of sub-kernels.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }
}

impl<T: AtomicScalar> SpmmKernel<T> for HybridKernel<T> {
    fn name(&self) -> &'static str {
        "stile-hybrid"
    }

    fn shape(&self) -> (usize, usize) {
        self.shape
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        let mut c = DenseMatrix::zeros(self.shape.0, b.cols());
        for part in &self.parts {
            let partial = part.run(b)?;
            for (acc, &v) in c.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                *acc += v;
            }
        }
        Ok(c)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        self.parts
            .iter()
            .flat_map(|p| p.launches(j, device))
            .collect()
    }

    fn format_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.format_bytes()).sum()
    }
}

// ---------------------------------------------------------------------
// The STile system.
// ---------------------------------------------------------------------

/// Roofline coefficients fitted from microbenchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Roofline {
    /// Achieved bytes/second of the ELL-bucket kernel family.
    ell_bw: f64,
    /// Achieved bytes/second of the CSR kernel family.
    csr_bw: f64,
}

/// STile with microbenchmark-refined format search.
pub struct STile {
    /// Row-length class boundaries (upper bounds, powers of two).
    pub class_bounds: Vec<usize>,
    /// Microbenchmark sizes per (format, class).
    pub microbench_sizes: Vec<usize>,
    /// Densities swept by the microbenchmarks.
    pub microbench_densities: Vec<f64>,
    /// Host-side compile cost model.
    pub compile: CompileCostModel,
}

impl Default for STile {
    fn default() -> Self {
        STile {
            class_bounds: vec![4, 16, 64, 256, 4096],
            microbench_sizes: vec![256, 1024, 4096],
            microbench_densities: vec![1e-3, 1e-2, 5e-2],
            compile: CompileCostModel {
                compile_s_per_candidate: 0.8,
                ..Default::default()
            },
        }
    }
}

impl STile {
    /// Run the microbenchmark sweep on the device; returns the fitted
    /// roofline and the overhead it incurred.
    fn microbenchmark<T: AtomicScalar>(
        &self,
        j: usize,
        device: &DeviceModel,
    ) -> (Roofline, f64, f64, usize) {
        let mut simulated_gpu_s = 0.0;
        let mut modeled_host_s = 0.0;
        let mut candidates = 0usize;
        let mut ell_bw = Vec::new();
        let mut csr_bw = Vec::new();
        let mut rng = Pcg32::seed_from_u64(0x57113);
        for &n in &self.microbench_sizes {
            for &density in &self.microbench_densities {
                let nnz = ((n * n) as f64 * density).round().max(8.0) as usize;
                let coo: CooMatrix<T> = uniform_random(n, n, nnz, &mut rng);
                let csr = CsrMatrix::from_coo(&coo);
                // ELL-bucket candidate (CELL, natural widths).
                if let Ok(cell) = build_cell(&csr, &CellConfig::default()) {
                    let k = CellKernel::new(cell);
                    let p = k.profile(j, device);
                    ell_bw.push(p.achieved_bandwidth(device));
                    simulated_gpu_s += self.compile.reps_per_candidate as f64 * p.time_ms / 1e3;
                    modeled_host_s += self.compile.compile_s_per_candidate;
                    candidates += 1;
                }
                // CSR candidate.
                let rows: Vec<usize> = (0..csr.rows()).collect();
                let k = CsrRowSubsetKernel::new(csr, rows);
                let p = k.profile(j, device);
                csr_bw.push(p.achieved_bandwidth(device));
                simulated_gpu_s += self.compile.reps_per_candidate as f64 * p.time_ms / 1e3;
                modeled_host_s += self.compile.compile_s_per_candidate;
                candidates += 1;
            }
        }
        let avg = |v: &[f64]| {
            if v.is_empty() {
                1e9
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        (
            Roofline {
                ell_bw: avg(&ell_bw).max(1.0),
                csr_bw: avg(&csr_bw).max(1.0),
            },
            simulated_gpu_s,
            modeled_host_s,
            candidates,
        )
    }

    /// Assign each row to a length class; returns per-class row lists.
    fn classify<T: AtomicScalar>(&self, csr: &CsrMatrix<T>) -> Vec<Vec<usize>> {
        let mut classes: Vec<Vec<usize>> = vec![Vec::new(); self.class_bounds.len() + 1];
        for r in 0..csr.rows() {
            let len = csr.row_len(r);
            if len == 0 {
                continue;
            }
            let class = self
                .class_bounds
                .iter()
                .position(|&b| len <= b)
                .unwrap_or(self.class_bounds.len());
            classes[class].push(r);
        }
        classes
    }

    /// Roofline estimate (seconds) of running `rows` of `csr` in each
    /// format; returns `(ell_estimate, csr_estimate)`.
    fn estimate<T: AtomicScalar>(
        &self,
        csr: &CsrMatrix<T>,
        rows: &[usize],
        j: usize,
        roofline: &Roofline,
    ) -> (f64, f64) {
        let elem = std::mem::size_of::<T>() as f64;
        let nnz: usize = rows.iter().map(|&r| csr.row_len(r)).sum();
        // The ELL group is materialized as bucketed ELL (CELL buckets),
        // so each row pads to its own power-of-two bucket width.
        let padded: usize = rows
            .iter()
            .map(|&r| csr.row_len(r).next_power_of_two())
            .sum();
        // Both formats read one B row per non-zero: a shared term at the
        // better of the two measured bandwidths. The format payloads
        // differ: ELL streams the padded grids perfectly coalesced; CSR
        // streams exact nnz with ~1.5x metadata/coalescing overhead plus
        // per-row pointers.
        let shared_bw = roofline.ell_bw.max(roofline.csr_bw);
        let b_time = nnz as f64 * j as f64 * elem * 0.25 / shared_bw;
        let ell_payload = padded as f64 * (4.0 + elem);
        let csr_payload = nnz as f64 * (4.0 + elem) * 1.5 + rows.len() as f64 * 8.0;
        // Occupancy: the ELL-bucket mapping keeps one warp per row, so a
        // class with only a handful of (typically hub) rows cannot fill
        // the device; the 1-D-tiled CSR kernel splits long rows across
        // warps and has no such floor.
        const MIN_PARALLEL_ROWS: f64 = 64.0;
        let occupancy = (MIN_PARALLEL_ROWS / rows.len() as f64).max(1.0);
        (
            ell_payload / roofline.ell_bw * occupancy + b_time,
            csr_payload / roofline.csr_bw + b_time,
        )
    }
}

impl<T: AtomicScalar> System<T> for STile {
    fn name(&self) -> &'static str {
        "stile"
    }

    fn prepare(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<Prepared<T>> {
        let t0 = Instant::now();
        let (roofline, simulated_gpu_s, modeled_host_s, mut candidates) =
            self.microbenchmark::<T>(j, device);

        let mut parts: Vec<Box<dyn SpmmKernel<T>>> = Vec::new();
        let mut ell_rows: Vec<usize> = Vec::new();
        let mut csr_rows: Vec<usize> = Vec::new();
        for rows in self.classify(csr) {
            if rows.is_empty() {
                continue;
            }
            let (ell_est, csr_est) = self.estimate(csr, &rows, j, &roofline);
            candidates += 1;
            if ell_est <= csr_est {
                ell_rows.extend(rows);
            } else {
                csr_rows.extend(rows);
            }
        }
        if !ell_rows.is_empty() {
            // Row-filtered matrix: non-selected rows become empty and the
            // CELL builder skips them (row indices are kept per element).
            // STile's ELL tiles are small fixed shapes; cap the bucket
            // width and keep blocks at one-tile granularity so the grid
            // stays fine-grained.
            let filtered = filter_rows(csr, &ell_rows);
            let config = CellConfig {
                num_partitions: 1,
                max_widths: Some(vec![256]),
                block_nnz_multiple: 1,
                uniform_block_nnz: true,
            };
            let cell = build_cell(&filtered, &config).ok()?;
            parts.push(Box::new(CellKernel::new(cell)));
        }
        if !csr_rows.is_empty() {
            parts.push(Box::new(CsrRowSubsetKernel::new(csr.clone(), csr_rows)));
        }
        let kernel = HybridKernel::new(parts, csr.shape());
        if !kernel.fits_in_memory(j, device) {
            return None;
        }
        Some(Prepared {
            kernel: Box::new(kernel),
            construction: ConstructionCost {
                simulated_gpu_s,
                modeled_host_s,
                measured_cpu_s: t0.elapsed().as_secs_f64(),
                candidates_evaluated: candidates,
            },
        })
    }
}

/// Keep only `rows` of `csr` (others become empty rows).
fn filter_rows<T: AtomicScalar>(csr: &CsrMatrix<T>, rows: &[usize]) -> CsrMatrix<T> {
    let mut keep = vec![false; csr.rows()];
    for &r in rows {
        keep[r] = true;
    }
    let triplets: Vec<(usize, usize, T)> = csr.iter().filter(|&(r, _, _)| keep[r]).collect();
    let coo = CooMatrix::from_triplets(csr.rows(), csr.cols(), triplets)
        .expect("filtered rows are in bounds");
    CsrMatrix::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{power_law, PowerLawConfig};
    use lf_sparse::Scalar;

    fn skewed() -> CsrMatrix<f64> {
        let mut rng = Pcg32::seed_from_u64(9);
        CsrMatrix::from_coo(&power_law::<f64>(
            &PowerLawConfig {
                rows: 600,
                cols: 600,
                target_nnz: 12_000,
                exponent: 2.0,
                max_degree: None,
            },
            &mut rng,
        ))
    }

    #[test]
    fn subset_kernel_only_writes_its_rows() {
        let csr = skewed();
        let mut rng = Pcg32::seed_from_u64(10);
        let b = DenseMatrix::random(600, 16, &mut rng);
        let rows: Vec<usize> = (0..300).collect();
        let k = CsrRowSubsetKernel::new(csr.clone(), rows);
        let c = k.run(&b).unwrap();
        let want = csr.spmm_reference(&b).unwrap();
        for r in 0..300 {
            for j in 0..16 {
                assert!(Scalar::approx_eq(c.get(r, j), want.get(r, j), 1e-9));
            }
        }
        for r in 300..600 {
            for j in 0..16 {
                assert_eq!(c.get(r, j), 0.0);
            }
        }
    }

    #[test]
    fn hybrid_covers_all_rows() {
        let device = DeviceModel::v100();
        let csr = skewed();
        let stile = STile::default();
        let prepared = System::<f64>::prepare(&stile, &csr, 32, &device).unwrap();
        let mut rng = Pcg32::seed_from_u64(11);
        let b = DenseMatrix::random(600, 32, &mut rng);
        let got = prepared.kernel.run(&b).unwrap();
        let want = csr.spmm_reference(&b).unwrap();
        assert!(got.approx_eq(&want, 1e-9));
    }

    #[test]
    fn skewed_matrix_yields_a_true_hybrid() {
        // Power-law rows span length classes; STile should pick at least
        // two groups (ELL for the short mass, CSR for hub rows).
        let device = DeviceModel::v100();
        let csr = skewed();
        let stile = STile::default();
        let prepared = System::<f64>::prepare(&stile, &csr, 128, &device).unwrap();
        let launches = prepared.kernel.launches(128, &device);
        assert!(
            launches.len() >= 2,
            "expected a multi-format composition, got {} launch(es)",
            launches.len()
        );
    }

    #[test]
    fn microbench_overhead_is_substantial() {
        let device = DeviceModel::v100();
        let csr = skewed();
        let stile = STile::default();
        let prepared = System::<f64>::prepare(&stile, &csr, 64, &device).unwrap();
        // 3 sizes × 3 densities × 2 formats = 18 microbench candidates
        // minimum.
        assert!(prepared.construction.candidates_evaluated >= 18);
        assert!(prepared.construction.modeled_host_s > 5.0);
    }
}
