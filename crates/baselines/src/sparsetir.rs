//! SparseTIR baseline: the composable `hyb` format — bucketed ELL with a
//! **shared** set of bucket widths across all column partitions (§4
//! contrasts CELL against exactly this restriction) — tuned by exhaustive
//! search, every candidate compiled and run (§2.2: "SparseTIR depends on
//! an exhaustive search in the space").

use crate::tuning::{CompileCostModel, ConstructionCost};
use crate::{Prepared, System};
use lf_cell::{build_cell, CellConfig};
use lf_kernels::cell::FusionMode;
use lf_kernels::{CellKernel, SpmmKernel};
use lf_sim::atomicf::AtomicScalar;
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;
use std::time::Instant;

/// SparseTIR with exhaustive autotuning.
pub struct SparseTir {
    /// Candidate partition counts.
    pub partition_candidates: Vec<usize>,
    /// Candidate shared maximum bucket widths (powers of two); widths
    /// above the matrix's natural maximum are skipped.
    pub width_candidates: Vec<usize>,
    /// Host-side compile/measure cost model.
    pub compile: CompileCostModel,
}

impl Default for SparseTir {
    fn default() -> Self {
        // The real autotuner bounds its cost with a coarse grid (SparseTIR's
        // artifact sweeps a handful of column-part counts and a fixed
        // menu of shared bucket-width sets); the grid below mirrors that
        // coarseness — exhaustive over the grid, but the grid cannot
        // express per-partition widths or off-grid caps, which is exactly
        // the flexibility CELL adds (§4).
        SparseTir {
            partition_candidates: vec![1, 4, 16],
            width_candidates: vec![1, 8, 64, 512],
            compile: CompileCostModel::default(),
        }
    }
}

impl SparseTir {
    /// Run the exhaustive autotune; returns the winning config, its
    /// simulated time, and the accumulated overhead.
    pub fn autotune<T: AtomicScalar>(
        &self,
        csr: &CsrMatrix<T>,
        j: usize,
        device: &DeviceModel,
    ) -> Option<(CellConfig, f64, ConstructionCost)> {
        let t0 = Instant::now();
        let natural_max = (0..csr.rows())
            .map(|r| csr.row_len(r))
            .max()
            .unwrap_or(1)
            .max(1)
            .next_power_of_two();
        let mut best: Option<(f64, CellConfig)> = None;
        let mut simulated_gpu_s = 0.0;
        let mut modeled_host_s = 0.0;
        let mut candidates = 0usize;
        for &p in &self.partition_candidates {
            if p > csr.cols().max(1) {
                continue;
            }
            for &w in &self.width_candidates {
                if w > natural_max {
                    continue;
                }
                // hyb: ONE shared width cap for every partition, and
                // SparseTIR's two-level row-per-block mapping (no
                // equal-nnz third level — that is CELL's addition, §4).
                let config = CellConfig {
                    num_partitions: p,
                    max_widths: Some(vec![w]),
                    block_nnz_multiple: 4,
                    uniform_block_nnz: false,
                };
                let Ok(cell) = build_cell(csr, &config) else {
                    continue;
                };
                // SparseTIR fuses bucket kernels within a partition; cross-partition
                // fusion is the pass this paper adds (§6).
                let kernel = CellKernel::with_fusion(cell, FusionMode::PerPartition);
                if !kernel.fits_in_memory(j, device) {
                    continue;
                }
                let ms = kernel.profile(j, device).time_ms;
                candidates += 1;
                simulated_gpu_s += self.compile.reps_per_candidate as f64 * ms / 1e3;
                modeled_host_s += self.compile.compile_s_per_candidate;
                if best.as_ref().is_none_or(|(b, _)| ms < *b) {
                    best = Some((ms, config));
                }
            }
        }
        let (ms, config) = best?;
        Some((
            config,
            ms,
            ConstructionCost {
                simulated_gpu_s,
                modeled_host_s,
                measured_cpu_s: t0.elapsed().as_secs_f64(),
                candidates_evaluated: candidates,
            },
        ))
    }
}

impl<T: AtomicScalar> System<T> for SparseTir {
    fn name(&self) -> &'static str {
        "sparsetir"
    }

    fn prepare(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<Prepared<T>> {
        let (config, _, construction) = self.autotune(csr, j, device)?;
        let cell = build_cell(csr, &config).ok()?;
        Some(Prepared {
            kernel: Box::new(CellKernel::with_fusion(cell, FusionMode::PerPartition)),
            construction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{mixed_regions, uniform_with_long_rows};
    use lf_sparse::Pcg32;

    #[test]
    fn autotune_beats_naive_hyb() {
        let device = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(1);
        let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&uniform_with_long_rows(
            1500, 1500, 15_000, 4, 1200, &mut rng,
        ));
        let tir = SparseTir::default();
        let (config, best_ms, cost) = tir.autotune(&csr, 128, &device).unwrap();
        // Naive: 1 partition, natural widths.
        let naive = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap())
            .profile(128, &device)
            .time_ms;
        assert!(best_ms <= naive * 1.0001, "{best_ms} vs naive {naive}");
        assert!(cost.candidates_evaluated > 10);
        assert!(
            cost.total_s() > cost.measured_cpu_s,
            "overhead must include tuning"
        );
        // Shared width across partitions (the hyb restriction).
        assert_eq!(config.max_widths.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn shared_widths_can_lose_to_per_partition_widths() {
        // On a mixed-density matrix, CELL with per-partition Algorithm-3
        // widths should be at least as good as the best shared-width hyb.
        let device = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(2);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&mixed_regions(2048, 2048, 120_000, 4, &mut rng));
        let tir = SparseTir::default();
        let (_, tir_ms, _) = tir.autotune(&csr, 256, &device).unwrap();
        // LiteForm's pipeline choice: sweep partitions, Algorithm-3 widths.
        let sweep = lf_cost::partition::optimal_partitions(&csr, 256, &device);
        let widths = lf_cost::search::optimal_widths_for_matrix(&csr, sweep.best_p, 256);
        let cell_cfg = CellConfig {
            num_partitions: sweep.best_p,
            max_widths: Some(widths),
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let cell_ms = CellKernel::new(build_cell(&csr, &cell_cfg).unwrap())
            .profile(256, &device)
            .time_ms;
        // Figure 7's claim is parity in geomean (0.99x) with wide spread;
        // on this mixed matrix the flexible widths must stay in range.
        assert!(
            cell_ms <= tir_ms * 1.3,
            "per-partition widths should be competitive: cell {cell_ms} vs tir {tir_ms}"
        );
    }
}
