#![warn(missing_docs)]

//! # lf-baselines
//!
//! Re-implementations of the seven systems the paper evaluates against,
//! each as *(format + kernel mapping + tuning procedure)* on the shared
//! simulator:
//!
//! | system | format | tuning | construction overhead source |
//! |---|---|---|---|
//! | cuSPARSE | CSR | none | format conversion only |
//! | Triton | BSR 8×8 | none | conversion; reports OOM on padding blow-ups |
//! | Sputnik | CSR + swizzle | none | conversion + row sort |
//! | dgSPARSE | CSR | none | conversion |
//! | TACO | CSR | 36-schedule sweep, keep fastest | sweep kernel re-runs |
//! | SparseTIR | composable hyb | exhaustive autotune over (partitions × shared widths) | per-candidate compile + kernel re-runs |
//! | STile | hybrid {ELL-buckets, CSR rows} | microbenchmark-refined cost model + greedy | microbenchmarks + compiles |
//!
//! Tuning overheads combine **simulated GPU seconds** (the candidate
//! kernels the real systems execute on the device) with **calibrated
//! constants** for host-side work the simulator cannot time (TVM
//! compilation for SparseTIR/STile — see `tuning::CompileCostModel`,
//! documented in DESIGN.md).

pub mod sparsetir;
pub mod stile;
pub mod systems;
pub mod tuning;

pub use sparsetir::SparseTir;
pub use stile::STile;
pub use systems::{CuSparse, DgSparse, Sputnik, TacoSwept, Triton};
pub use tuning::{CompileCostModel, ConstructionCost};

use lf_kernels::SpmmKernel;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;

/// A baseline system prepared for a concrete matrix and dense width.
pub struct Prepared<T> {
    /// The kernel the system would launch.
    pub kernel: Box<dyn SpmmKernel<T>>,
    /// What preparing it cost.
    pub construction: ConstructionCost,
}

/// A baseline SpMM system.
pub trait System<T: AtomicScalar>: Send + Sync {
    /// System name as it appears in the paper's figures.
    fn name(&self) -> &'static str;

    /// Build the system's format and (if it tunes) run its tuning
    /// procedure. Returns `None` when the format does not fit in device
    /// memory (the paper's OOM entries).
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<Prepared<T>>;

    /// Simulated kernel time in ms, or `None` on OOM.
    fn kernel_time_ms(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<f64> {
        self.prepare(csr, j, device)
            .map(|p| p.kernel.profile(j, device).time_ms)
    }
}

/// The full comparison roster of Figure 6 (LiteForm itself lives in
/// `liteform-core`).
pub fn roster<T: AtomicScalar>() -> Vec<Box<dyn System<T>>> {
    vec![
        Box::new(CuSparse),
        Box::new(Triton::default()),
        Box::new(Sputnik),
        Box::new(DgSparse),
        Box::new(TacoSwept),
        Box::new(SparseTir::default()),
        Box::new(STile::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::mixed_regions;
    use lf_sparse::{DenseMatrix, Pcg32};

    #[test]
    fn every_system_produces_correct_numerics() {
        let device = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(1);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(200, 200, 4000, 4, &mut rng));
        let b = DenseMatrix::random(200, 24, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        for system in roster::<f64>() {
            let prepared = system
                .prepare(&csr, 24, &device)
                .unwrap_or_else(|| panic!("{} OOM on a tiny matrix", system.name()));
            let got = prepared.kernel.run(&b).unwrap();
            assert!(
                got.approx_eq(&want, 1e-9),
                "{} produced wrong numerics",
                system.name()
            );
        }
    }

    #[test]
    fn roster_has_seven_distinct_systems() {
        let systems = roster::<f32>();
        assert_eq!(systems.len(), 7);
        let names: std::collections::HashSet<_> = systems.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn tuned_systems_report_overhead() {
        let device = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(2);
        let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(300, 300, 6000, 4, &mut rng));
        for system in roster::<f32>() {
            let p = system.prepare(&csr, 64, &device).unwrap();
            let tuned = matches!(system.name(), "taco" | "sparsetir" | "stile");
            if tuned {
                assert!(
                    p.construction.total_s() > 0.0 && p.construction.candidates_evaluated > 0,
                    "{} should report tuning cost",
                    system.name()
                );
            } else {
                assert_eq!(
                    p.construction.candidates_evaluated,
                    0,
                    "{} should not tune",
                    system.name()
                );
            }
        }
    }
}
