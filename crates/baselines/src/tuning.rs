//! Construction/tuning cost accounting shared by the baseline systems.

use serde::{Deserialize, Serialize};

/// What preparing a system's format cost, split by origin.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ConstructionCost {
    /// Simulated GPU seconds spent re-running candidate kernels or
    /// microbenchmarks during tuning.
    pub simulated_gpu_s: f64,
    /// Calibrated host-side seconds (kernel compilation etc.) the
    /// simulator cannot time; see [`CompileCostModel`].
    pub modeled_host_s: f64,
    /// Real wall-clock seconds of search bookkeeping in this process.
    pub measured_cpu_s: f64,
    /// Number of tuning candidates the procedure evaluated.
    pub candidates_evaluated: usize,
}

impl ConstructionCost {
    /// Total construction overhead in seconds — the Figure 8/9 quantity.
    pub fn total_s(&self) -> f64 {
        self.simulated_gpu_s + self.modeled_host_s + self.measured_cpu_s
    }
}

/// Host-side cost constants for the TVM-based systems.
///
/// SparseTIR's autotuner and STile's search both *compile* every candidate
/// schedule with TVM before timing it; compilation dominates their
/// published construction overheads (10²–10⁴ s in Figure 8). The
/// simulator cannot execute TVM, so compilation is charged as a constant
/// per candidate. The defaults are calibrated from the SparseTIR
/// artifact's reported per-candidate build times (order of a second) and
/// recorded in DESIGN.md; they scale every system equally and do not
/// affect *kernel-time* comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompileCostModel {
    /// Seconds to compile one candidate kernel.
    pub compile_s_per_candidate: f64,
    /// Measurement repetitions per candidate (warm-up + timed runs).
    pub reps_per_candidate: usize,
}

impl Default for CompileCostModel {
    fn default() -> Self {
        CompileCostModel {
            compile_s_per_candidate: 1.5,
            reps_per_candidate: 10,
        }
    }
}

impl CompileCostModel {
    /// Overhead of evaluating one candidate whose simulated kernel time
    /// is `kernel_ms`.
    pub fn candidate_cost_s(&self, kernel_ms: f64) -> f64 {
        self.compile_s_per_candidate + self.reps_per_candidate as f64 * kernel_ms / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let c = ConstructionCost {
            simulated_gpu_s: 1.0,
            modeled_host_s: 2.0,
            measured_cpu_s: 0.5,
            candidates_evaluated: 3,
        };
        assert!((c.total_s() - 3.5).abs() < 1e-12);
        assert_eq!(ConstructionCost::default().total_s(), 0.0);
    }

    #[test]
    fn candidate_cost_scales_with_kernel_time() {
        let m = CompileCostModel::default();
        let cheap = m.candidate_cost_s(0.1);
        let pricey = m.candidate_cost_s(100.0);
        assert!(pricey > cheap);
        assert!(cheap >= m.compile_s_per_candidate);
    }
}
