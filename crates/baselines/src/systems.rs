//! The fixed-format systems (cuSPARSE, Triton, Sputnik, dgSPARSE) and the
//! schedule-swept TACO.

use crate::tuning::ConstructionCost;
use crate::{Prepared, System};
use lf_kernels::{
    BcsrKernel, CsrVectorKernel, DgSparseKernel, SpmmKernel, SputnikKernel, TacoKernel,
    TacoSchedule,
};
use lf_sim::atomicf::AtomicScalar;
use lf_sim::DeviceModel;
use lf_sparse::{BcsrMatrix, CsrMatrix};
use std::time::Instant;

/// NVIDIA cuSPARSE: CSR, warp-per-row vector kernel, no tuning.
pub struct CuSparse;

impl<T: AtomicScalar> System<T> for CuSparse {
    fn name(&self) -> &'static str {
        "cusparse"
    }

    fn prepare(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<Prepared<T>> {
        let kernel = CsrVectorKernel::new(csr.clone());
        if !kernel.fits_in_memory(j, device) {
            return None;
        }
        Some(Prepared {
            kernel: Box::new(kernel),
            construction: ConstructionCost::default(),
        })
    }
}

/// Triton's block-sparse path: BSR with a fixed block edge. Scattered
/// matrices inflate the padded footprint and OOM — reproducing the
/// paper's Figure 6 OOM entries and the §2.1 60×-footprint anecdote.
pub struct Triton {
    /// Block edge (paper experiments use 8×8).
    pub block: usize,
}

impl Default for Triton {
    fn default() -> Self {
        Triton { block: 8 }
    }
}

impl<T: AtomicScalar> System<T> for Triton {
    fn name(&self) -> &'static str {
        "triton"
    }

    fn prepare(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<Prepared<T>> {
        let bcsr = BcsrMatrix::from_csr(csr, self.block, self.block).ok()?;
        let kernel = BcsrKernel::new(bcsr);
        if !kernel.fits_in_memory(j, device) {
            return None; // the padded format blew past device memory
        }
        Some(Prepared {
            kernel: Box::new(kernel),
            construction: ConstructionCost::default(),
        })
    }
}

/// Sputnik: CSR with 1-D tiling and row-swizzle load balancing.
pub struct Sputnik;

impl<T: AtomicScalar> System<T> for Sputnik {
    fn name(&self) -> &'static str {
        "sputnik"
    }

    fn prepare(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<Prepared<T>> {
        let kernel = SputnikKernel::new(csr.clone());
        if !kernel.fits_in_memory(j, device) {
            return None;
        }
        Some(Prepared {
            kernel: Box::new(kernel),
            construction: ConstructionCost::default(),
        })
    }
}

/// dgSPARSE: the GE-SpMM shared-memory-staged CSR kernel.
pub struct DgSparse;

impl<T: AtomicScalar> System<T> for DgSparse {
    fn name(&self) -> &'static str {
        "dgsparse"
    }

    fn prepare(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<Prepared<T>> {
        let kernel = DgSparseKernel::new(csr.clone());
        if !kernel.fits_in_memory(j, device) {
            return None;
        }
        Some(Prepared {
            kernel: Box::new(kernel),
            construction: ConstructionCost::default(),
        })
    }
}

/// TACO with the paper's 36-schedule sweep (§7.1): every schedule is run
/// and the fastest kept; the sweep's kernel re-runs are the construction
/// overhead.
pub struct TacoSwept;

impl<T: AtomicScalar> System<T> for TacoSwept {
    fn name(&self) -> &'static str {
        "taco"
    }

    fn prepare(&self, csr: &CsrMatrix<T>, j: usize, device: &DeviceModel) -> Option<Prepared<T>> {
        let t0 = Instant::now();
        let mut best: Option<(f64, TacoSchedule)> = None;
        let mut simulated_gpu_s = 0.0;
        let sweep = TacoSchedule::sweep();
        let n = sweep.len();
        for sched in sweep {
            let kernel = TacoKernel::new(csr.clone(), sched);
            if !kernel.fits_in_memory(j, device) {
                return None;
            }
            let ms = kernel.profile(j, device).time_ms;
            simulated_gpu_s += ms / 1e3;
            if best.is_none_or(|(b, _)| ms < b) {
                best = Some((ms, sched));
            }
        }
        let (_, sched) = best?;
        Some(Prepared {
            kernel: Box::new(TacoKernel::new(csr.clone(), sched)),
            construction: ConstructionCost {
                simulated_gpu_s,
                modeled_host_s: 0.0,
                measured_cpu_s: t0.elapsed().as_secs_f64(),
                candidates_evaluated: n,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{block_sparse, uniform_random};
    use lf_sparse::Pcg32;

    #[test]
    fn triton_oom_on_scattered_but_not_blocky() {
        // Small device: scattered matrix OOMs under BSR padding, blocky
        // one of identical nnz does not.
        let device = DeviceModel {
            memory_capacity: 12 * 1024 * 1024,
            ..DeviceModel::tiny()
        };
        let mut rng = Pcg32::seed_from_u64(1);
        let scattered: CsrMatrix<f32> =
            CsrMatrix::from_coo(&uniform_random(4000, 4000, 60_000, &mut rng));
        let blocky: CsrMatrix<f32> =
            CsrMatrix::from_coo(&block_sparse(4000, 4000, 8, 60_000 / 64, 1.0, &mut rng));
        let triton = Triton::default();
        assert!(
            System::<f32>::prepare(&triton, &scattered, 128, &device).is_none(),
            "scattered matrix should OOM under 8x8 BSR"
        );
        assert!(
            System::<f32>::prepare(&triton, &blocky, 128, &device).is_some(),
            "aligned blocks should fit"
        );
        // cuSPARSE handles the scattered one fine.
        assert!(System::<f32>::prepare(&CuSparse, &scattered, 128, &device).is_some());
    }

    #[test]
    fn taco_sweep_picks_a_schedule_at_least_as_good_as_default() {
        let device = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(2);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&uniform_random(1000, 1000, 20_000, &mut rng));
        let swept = System::<f32>::kernel_time_ms(&TacoSwept, &csr, 128, &device).unwrap();
        let default_ms = TacoKernel::new(csr, TacoSchedule::default())
            .profile(128, &device)
            .time_ms;
        assert!(
            swept <= default_ms * 1.0001,
            "{swept} vs default {default_ms}"
        );
    }
}
