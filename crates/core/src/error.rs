//! The unified error taxonomy of the LiteForm runtime.
//!
//! Before this module existed, the stack mixed three failure styles:
//! `lf_sparse::SparseError` for structural problems, panics for anything
//! the kernels or the composer considered "impossible", and ad-hoc
//! `expect`s in the serving layer. [`LfError`] folds them into one typed
//! surface so every caller — and above all the serving engine, which
//! must keep a precise outcome ledger — can classify a failure without
//! string-matching panic payloads:
//!
//! * **Rejections** ([`LfError::InvalidInput`], [`LfError::Overloaded`])
//!   happen *before* any plan is touched: the payload is malformed or
//!   the admission gate is closed. Nothing was computed; nothing is
//!   cached.
//! * **Deadline failures** ([`LfError::DeadlineExceeded`]) mean the
//!   cooperative cancellation token fired: partial results are
//!   discarded, never served.
//! * **Contained panics** ([`LfError::ComposePanicked`],
//!   [`LfError::ExecutePanicked`]) are unwinds caught at the request
//!   boundary. The request fails (or degrades); the process, the worker
//!   pool, and every other in-flight request keep going.
//! * **Resource failures** ([`LfError::ResourceExhausted`]) are
//!   injectable allocation/capacity failures surfaced as typed errors
//!   instead of aborts.

use lf_sparse::SparseError;
use std::fmt;

/// Result alias for the LiteForm runtime surface.
pub type LfResult<T> = std::result::Result<T, LfError>;

/// Every way a LiteForm serving request can fail, as one typed surface.
#[derive(Debug)]
pub enum LfError {
    /// The payload failed strict CSR validation (or a dimension check):
    /// rejected at ingress, before fingerprinting, caching, or any
    /// kernel execution.
    InvalidInput(SparseError),
    /// The admission gate refused the request: too many requests already
    /// in flight.
    Overloaded {
        /// Requests in flight when the gate closed.
        inflight: usize,
        /// The configured admission limit.
        max_inflight: usize,
    },
    /// The request's deadline expired; any partial work was cancelled
    /// cooperatively and discarded.
    DeadlineExceeded {
        /// Which stage observed the expiry.
        stage: &'static str,
    },
    /// Plan composition panicked; the unwind was caught at the request
    /// boundary.
    ComposePanicked {
        /// Stringified panic payload.
        detail: String,
    },
    /// Plan execution panicked; the unwind was caught at the request
    /// boundary (and the offending cached plan quarantined).
    ExecutePanicked {
        /// Stringified panic payload.
        detail: String,
    },
    /// An allocation or capacity limit failed in a way that was surfaced
    /// as an error rather than an abort.
    ResourceExhausted {
        /// What ran out.
        what: String,
    },
    /// A persisted plan record failed decoding or validation (bad
    /// framing, checksum mismatch, version drift, hostile contents).
    /// The record is rejected — skipped, counted, never served — and
    /// the request path falls back to a fresh composition.
    PlanDecode(crate::codec::CodecError),
}

impl LfError {
    /// Stable short code for logs and counters.
    pub fn code(&self) -> &'static str {
        match self {
            LfError::InvalidInput(_) => "invalid_input",
            LfError::Overloaded { .. } => "overloaded",
            LfError::DeadlineExceeded { .. } => "deadline_exceeded",
            LfError::ComposePanicked { .. } => "compose_panicked",
            LfError::ExecutePanicked { .. } => "execute_panicked",
            LfError::ResourceExhausted { .. } => "resource_exhausted",
            LfError::PlanDecode(_) => "plan_decode",
        }
    }

    /// `true` for failures rejected at ingress (no plan work started).
    pub fn is_rejection(&self) -> bool {
        matches!(self, LfError::InvalidInput(_) | LfError::Overloaded { .. })
    }
}

impl fmt::Display for LfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfError::InvalidInput(e) => write!(f, "invalid input: {e}"),
            LfError::Overloaded {
                inflight,
                max_inflight,
            } => write!(
                f,
                "overloaded: {inflight} requests in flight (max {max_inflight})"
            ),
            LfError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded during {stage}")
            }
            LfError::ComposePanicked { detail } => {
                write!(f, "composition panicked: {detail}")
            }
            LfError::ExecutePanicked { detail } => {
                write!(f, "execution panicked: {detail}")
            }
            LfError::ResourceExhausted { what } => write!(f, "resource exhausted: {what}"),
            LfError::PlanDecode(e) => write!(f, "plan record rejected: {e}"),
        }
    }
}

impl std::error::Error for LfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LfError::InvalidInput(e) => Some(e),
            LfError::PlanDecode(e) => Some(e),
            LfError::Overloaded { .. }
            | LfError::DeadlineExceeded { .. }
            | LfError::ComposePanicked { .. }
            | LfError::ExecutePanicked { .. }
            | LfError::ResourceExhausted { .. } => None,
        }
    }
}

impl From<SparseError> for LfError {
    fn from(e: SparseError) -> Self {
        LfError::InvalidInput(e)
    }
}

impl From<crate::codec::CodecError> for LfError {
    fn from(e: crate::codec::CodecError) -> Self {
        LfError::PlanDecode(e)
    }
}

/// Render a caught panic payload (`Box<dyn Any>`) into the human-readable
/// string the [`LfError`] panic variants carry.
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_codes_are_informative() {
        let e = LfError::from(SparseError::InvalidFormat("row_ptr not monotone".into()));
        assert_eq!(e.code(), "invalid_input");
        assert!(e.is_rejection());
        assert!(e.to_string().contains("row_ptr"));
        assert!(std::error::Error::source(&e).is_some());

        let e = LfError::Overloaded {
            inflight: 64,
            max_inflight: 32,
        };
        assert!(e.is_rejection());
        assert!(e.to_string().contains("64"));

        let e = LfError::DeadlineExceeded { stage: "execute" };
        assert!(!e.is_rejection());
        assert_eq!(e.code(), "deadline_exceeded");

        for e in [
            LfError::ComposePanicked {
                detail: "boom".into(),
            },
            LfError::ExecutePanicked {
                detail: "boom".into(),
            },
        ] {
            assert!(e.to_string().contains("boom"));
            assert!(!e.is_rejection());
        }
    }

    #[test]
    fn panic_payloads_stringify() {
        let p = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_detail(p.as_ref()), "static str");
        let msg = String::from("owned");
        let p = std::panic::catch_unwind(move || panic!("{msg}")).unwrap_err();
        assert_eq!(panic_detail(p.as_ref()), "owned");
    }
}
