//! The format-selection model (§5.1): a Random Forest over the seven
//! Table 2 features predicting whether CELL will beat the fixed formats.

use crate::training::FormatSelectionSample;
use lf_ml::{Classifier, RandomForest};
use lf_sparse::FormatFeatures;
use serde::{Deserialize, Serialize};

/// Pre-trainable CELL-vs-fixed classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FormatSelector {
    forest: RandomForest,
    trained: bool,
}

impl FormatSelector {
    /// Untrained selector with the paper's chosen model family
    /// (Random Forest, Table 5).
    pub fn new(seed: u64) -> Self {
        FormatSelector {
            forest: RandomForest::new(60, 12, seed),
            trained: false,
        }
    }

    /// Fit from labelled samples.
    pub fn train(&mut self, samples: &[FormatSelectionSample]) {
        assert!(!samples.is_empty(), "no training samples");
        let x: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_vec()).collect();
        let y: Vec<usize> = samples.iter().map(|s| usize::from(s.use_cell)).collect();
        self.forest.fit(&x, &y, 2);
        self.trained = true;
    }

    /// Predict whether to compose CELL for a matrix with these features.
    pub fn predict(&self, features: &FormatFeatures) -> bool {
        assert!(self.trained, "selector must be trained or loaded");
        self.forest.predict_one(&features.to_vec()) == 1
    }

    /// Whether the model has been fitted.
    pub fn is_trained(&self) -> bool {
        self.trained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(rows: f64, std: f64) -> FormatFeatures {
        FormatFeatures {
            rows,
            cols: rows,
            nnz: rows * 8.0,
            avg_nnz_per_row: 8.0,
            min_nnz_per_row: 0.0,
            max_nnz_per_row: 8.0 + std * 10.0,
            std_nnz_per_row: std,
        }
    }

    fn synthetic_samples() -> Vec<FormatSelectionSample> {
        // Rule to learn: high row-length variance => CELL wins.
        (0..200)
            .map(|i| {
                let std = (i % 20) as f64;
                FormatSelectionSample {
                    features: feat(1000.0 + i as f64, std),
                    use_cell: std > 10.0,
                    times_ms: (1.0, 1.0, 1.0),
                }
            })
            .collect()
    }

    #[test]
    fn learns_variance_rule() {
        let mut sel = FormatSelector::new(1);
        sel.train(&synthetic_samples());
        assert!(sel.predict(&feat(1500.0, 18.0)));
        assert!(!sel.predict(&feat(1500.0, 2.0)));
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn untrained_predict_panics() {
        FormatSelector::new(1).predict(&feat(10.0, 1.0));
    }

    #[test]
    fn serde_round_trip() {
        let mut sel = FormatSelector::new(2);
        sel.train(&synthetic_samples());
        let json = serde_json::to_string(&sel).unwrap();
        let back: FormatSelector = serde_json::from_str(&json).unwrap();
        assert!(back.is_trained());
        assert_eq!(
            back.predict(&feat(1200.0, 15.0)),
            sel.predict(&feat(1200.0, 15.0))
        );
    }
}
