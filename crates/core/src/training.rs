//! Training-data generation for LiteForm's two predictors (§5.1–5.2).
//!
//! Both labelers run real (simulated) kernels — the expensive offline step
//! the trained models replace at runtime. The format-selection labeler
//! compares the best CELL composition against the fixed representatives
//! (CSR as elementwise, BCSR 8×8 as blockwise); a matrix is labelled
//! `TRUE` when CELL wins by more than the paper's 1.1× threshold.

use lf_cell::{build_cell, CellConfig};
use lf_cost::partition::optimal_partitions;
use lf_cost::search::optimal_widths_for_matrix;
use lf_kernels::{BcsrKernel, CellKernel, CsrVectorKernel, SpmmKernel};
use lf_sim::atomicf::AtomicScalar;
use lf_sim::DeviceModel;
use lf_sparse::{BcsrMatrix, CsrMatrix, FormatFeatures, PartitionFeatures};
use serde::{Deserialize, Serialize};

/// Knobs of the training-data generators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Dense widths swept when labelling partitions (§5.2 uses
    /// 32…512).
    pub dense_widths: Vec<usize>,
    /// Dense width used for the format-selection label (Table 2 features
    /// carry no `J`, so one representative width labels the matrix).
    pub selection_width: usize,
    /// CELL-vs-fixed speedup threshold for a `TRUE` label (paper: 1.1).
    pub speedup_threshold: f64,
    /// BCSR block edge for the blockwise representative.
    pub bcsr_block: usize,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            dense_widths: vec![32, 64, 128, 256, 512],
            selection_width: 128,
            speedup_threshold: 1.1,
            bcsr_block: 8,
        }
    }
}

/// One labelled sample for the format selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormatSelectionSample {
    /// Table 2 features.
    pub features: FormatFeatures,
    /// `true` when CELL beat both fixed formats by the threshold.
    pub use_cell: bool,
    /// Simulated times backing the label (`cell`, `csr`, `bcsr` in ms;
    /// `bcsr` is `INFINITY` when the padded format would not fit).
    pub times_ms: (f64, f64, f64),
}

/// One labelled sample for the partition predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSample {
    /// Table 3 features (includes the dense width).
    pub features: PartitionFeatures,
    /// Ground-truth optimal partition count.
    pub best_p: usize,
}

/// Label one matrix for format selection: tune CELL (partitions + widths)
/// and compare against CSR-vector and BCSR on the simulator.
pub fn label_format_selection<T: AtomicScalar>(
    csr: &CsrMatrix<T>,
    cfg: &TrainingConfig,
    device: &DeviceModel,
) -> FormatSelectionSample {
    let j = cfg.selection_width;
    let features = FormatFeatures::from_csr(csr);

    // Tuned CELL time.
    let sweep = optimal_partitions(csr, j, device);
    let cell_ms = sweep.best_time_ms;

    // Fixed representatives.
    let csr_ms = CsrVectorKernel::new(csr.clone()).profile(j, device).time_ms;
    let bcsr_ms = match BcsrMatrix::from_csr(csr, cfg.bcsr_block, cfg.bcsr_block) {
        Ok(b) => {
            let k = BcsrKernel::new(b);
            if k.fits_in_memory(j, device) {
                k.profile(j, device).time_ms
            } else {
                f64::INFINITY
            }
        }
        Err(_) => f64::INFINITY,
    };

    let best_fixed = csr_ms.min(bcsr_ms);
    FormatSelectionSample {
        features,
        use_cell: best_fixed / cell_ms > cfg.speedup_threshold,
        times_ms: (cell_ms, csr_ms, bcsr_ms),
    }
}

/// Label one matrix for the partition predictor across the configured
/// dense widths: one sample per width, ground truth from the simulator
/// sweep.
pub fn label_partitions<T: AtomicScalar>(
    csr: &CsrMatrix<T>,
    cfg: &TrainingConfig,
    device: &DeviceModel,
) -> Vec<PartitionSample> {
    cfg.dense_widths
        .iter()
        .map(|&j| {
            let sweep = optimal_partitions(csr, j, device);
            PartitionSample {
                features: PartitionFeatures::from_csr(csr, j),
                best_p: sweep.best_p,
            }
        })
        .collect()
}

/// Simulated time of the *tuned* CELL composition at width `j` (helper
/// shared by the labelers and the evaluation harness).
pub fn tuned_cell_time<T: AtomicScalar>(
    csr: &CsrMatrix<T>,
    j: usize,
    device: &DeviceModel,
) -> (f64, CellConfig) {
    let sweep = optimal_partitions(csr, j, device);
    let widths = optimal_widths_for_matrix(csr, sweep.best_p, j);
    let config = CellConfig {
        num_partitions: sweep.best_p,
        max_widths: Some(widths),
        block_nnz_multiple: 4,
        uniform_block_nnz: true,
    };
    let time = match build_cell(csr, &config) {
        Ok(cell) => CellKernel::new(cell).profile(j, device).time_ms,
        Err(_) => f64::INFINITY,
    };
    (time, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{banded, mixed_regions};
    use lf_sparse::Pcg32;

    fn device() -> DeviceModel {
        DeviceModel::v100()
    }

    #[test]
    fn selection_labels_have_backing_times() {
        let mut rng = Pcg32::seed_from_u64(1);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&mixed_regions(512, 512, 15_000, 4, &mut rng));
        let s = label_format_selection(&csr, &TrainingConfig::default(), &device());
        let (cell, csr_t, bcsr_t) = s.times_ms;
        assert!(cell.is_finite() && csr_t.is_finite());
        let expected = csr_t.min(bcsr_t) / cell > 1.1;
        assert_eq!(s.use_cell, expected);
        assert_eq!(s.features.rows, 512.0);
    }

    #[test]
    fn partition_labels_one_per_width() {
        let mut rng = Pcg32::seed_from_u64(2);
        let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(256, 256, 6_000, 4, &mut rng));
        let cfg = TrainingConfig {
            dense_widths: vec![32, 128],
            ..Default::default()
        };
        let samples = label_partitions(&csr, &cfg, &device());
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].features.j_product, 32.0);
        assert_eq!(samples[1].features.j_product, 128.0);
        assert!(samples.iter().all(|s| s.best_p >= 1));
    }

    #[test]
    fn regular_banded_matrix_prefers_fixed() {
        // A narrow banded matrix is the regular case where CELL's benefit
        // is marginal — the label should typically be FALSE.
        let mut rng = Pcg32::seed_from_u64(3);
        let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&banded(2048, 2048, 4, &mut rng));
        let s = label_format_selection(&csr, &TrainingConfig::default(), &device());
        let (cell, csr_t, _) = s.times_ms;
        // CELL should not be dramatically better on this regular input.
        assert!(
            csr_t / cell < 2.0,
            "banded matrix should not be a big CELL win: cell {cell} csr {csr_t}"
        );
    }

    #[test]
    fn tuned_cell_time_is_consistent() {
        let mut rng = Pcg32::seed_from_u64(4);
        let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(256, 256, 8_000, 4, &mut rng));
        let (t, config) = tuned_cell_time(&csr, 128, &device());
        assert!(t.is_finite());
        assert!(config.num_partitions >= 1);
        let widths = config.max_widths.as_ref().unwrap();
        assert_eq!(widths.len(), config.num_partitions);
    }
}
