//! Persistence for trained LiteForm pipelines: a JSON bundle of both
//! models plus provenance metadata, so the one-off training cost (§8) is
//! paid once and shipped.

use crate::composer::LiteForm;
use crate::predictor::PartitionPredictor;
use crate::selector::FormatSelector;
use lf_sim::DeviceModel;
use lf_sparse::{Result, SparseError};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serializable trained pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Bundle format version.
    pub version: u32,
    /// Free-form provenance (corpus spec, sample counts, date).
    pub provenance: String,
    /// Trained format selector.
    pub selector: FormatSelector,
    /// Trained partition predictor.
    pub predictor: PartitionPredictor,
    /// Device model the training targeted.
    pub device: DeviceModel,
}

impl ModelBundle {
    /// Current bundle version.
    pub const VERSION: u32 = 1;

    /// Wrap a trained pipeline.
    pub fn from_liteform(lf: &LiteForm, provenance: impl Into<String>) -> Self {
        ModelBundle {
            version: Self::VERSION,
            provenance: provenance.into(),
            selector: lf.selector.clone(),
            predictor: lf.predictor.clone(),
            device: lf.device.clone(),
        }
    }

    /// Rehydrate the pipeline.
    pub fn into_liteform(self) -> LiteForm {
        LiteForm::new(self.selector, self.predictor, self.device)
    }

    /// Save as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| SparseError::InvalidFormat(format!("serialize bundle: {e}")))?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Load from JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let bundle: ModelBundle = serde_json::from_str(&json)
            .map_err(|e| SparseError::InvalidFormat(format!("parse bundle: {e}")))?;
        if bundle.version != Self::VERSION {
            return Err(SparseError::InvalidFormat(format!(
                "bundle version {} != supported {}",
                bundle.version,
                Self::VERSION
            )));
        }
        Ok(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::FormatSelectionSample;
    use crate::training::PartitionSample;
    use lf_sparse::{FormatFeatures, PartitionFeatures};

    fn trained_pipeline() -> LiteForm {
        let sel_samples: Vec<FormatSelectionSample> = (0..40)
            .map(|i| FormatSelectionSample {
                features: FormatFeatures {
                    rows: 100.0 + i as f64,
                    cols: 100.0,
                    nnz: 500.0,
                    avg_nnz_per_row: 5.0,
                    min_nnz_per_row: 0.0,
                    max_nnz_per_row: 5.0 + (i % 10) as f64,
                    std_nnz_per_row: (i % 10) as f64,
                },
                use_cell: i % 10 > 4,
                times_ms: (1.0, 1.0, 1.0),
            })
            .collect();
        let part_samples: Vec<PartitionSample> = (0..60)
            .map(|i| PartitionSample {
                features: PartitionFeatures {
                    rows: 1000.0,
                    cols: 1000.0,
                    nnz: 100.0 * (1 + i % 4) as f64,
                    avg_density_per_row: 1e-4 * (1 + i % 4) as f64,
                    min_density_per_row: 0.0,
                    max_density_per_row: 1e-3,
                    std_density_per_row: 1e-4,
                    j_product: 64.0,
                },
                best_p: [1, 2, 4, 8][i % 4],
            })
            .collect();
        let mut selector = FormatSelector::new(1);
        selector.train(&sel_samples);
        let mut predictor = PartitionPredictor::new(2);
        predictor.train(&part_samples);
        LiteForm::new(selector, predictor, DeviceModel::v100())
    }

    #[test]
    fn save_load_round_trip() {
        let lf = trained_pipeline();
        let bundle = ModelBundle::from_liteform(&lf, "unit test");
        let path = std::env::temp_dir().join("lf_bundle_test.json");
        bundle.save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded.provenance, "unit test");
        let lf2 = loaded.into_liteform();
        // Same predictions after rehydration.
        let f = FormatFeatures {
            rows: 120.0,
            cols: 100.0,
            nnz: 500.0,
            avg_nnz_per_row: 5.0,
            min_nnz_per_row: 0.0,
            max_nnz_per_row: 12.0,
            std_nnz_per_row: 7.0,
        };
        assert_eq!(lf.selector.predict(&f), lf2.selector.predict(&f));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_rejected() {
        let lf = trained_pipeline();
        let mut bundle = ModelBundle::from_liteform(&lf, "test");
        bundle.version = 99;
        let path = std::env::temp_dir().join("lf_bundle_badver.json");
        std::fs::write(&path, serde_json::to_string(&bundle).unwrap()).unwrap();
        assert!(ModelBundle::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors() {
        assert!(ModelBundle::load("/nonexistent/bundle.json").is_err());
    }
}
