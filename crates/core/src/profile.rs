//! Preprocessing observability: per-stage wall clock and allocation
//! counters for the composition pipeline.
//!
//! [`PreprocessProfile`] is the instrumented sibling of
//! [`crate::OverheadBreakdown`]: the same five Figure-2 stages, but each
//! carries a [`StageStats`] with real allocation counts (from
//! `lf-sim`'s counting global allocator) alongside the wall time. The
//! `fig8_overhead` and `fig9_overhead_corpus` harnesses report it next
//! to the baseline comparisons.

use crate::composer::OverheadBreakdown;
use lf_sim::alloc as alloc_counters;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One measured pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageStats {
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Heap allocation calls during the stage (all threads).
    pub alloc_calls: u64,
    /// Bytes requested during the stage (reallocs count growth only).
    pub alloc_bytes: u64,
}

impl StageStats {
    /// Run `f`, measuring its wall time and allocation activity.
    ///
    /// The counters are process-wide: when other threads allocate
    /// concurrently their activity is attributed to this stage too, so
    /// drive measured stages from a single thread (worker threads
    /// *spawned by the stage* are exactly what should be counted).
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, StageStats) {
        let before = alloc_counters::snapshot();
        // lf-lint: allow(determinism): stage timing is observability-only — plan selection reads structural features, never wall time
        let t0 = Instant::now();
        let out = f();
        let wall_s = t0.elapsed().as_secs_f64();
        let delta = alloc_counters::since(before);
        (
            out,
            StageStats {
                wall_s,
                alloc_calls: delta.calls,
                alloc_bytes: delta.bytes,
            },
        )
    }

    /// Fold another measurement into this one (corpus aggregation).
    pub fn accumulate(&mut self, other: &StageStats) {
        self.wall_s += other.wall_s;
        self.alloc_calls += other.alloc_calls;
        self.alloc_bytes += other.alloc_bytes;
    }
}

/// Where preprocessing time *and memory traffic* went, stage by stage.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PreprocessProfile {
    /// Feature extraction (both feature tables).
    pub feature_extraction: StageStats,
    /// Format-selection inference.
    pub selection_inference: StageStats,
    /// Partition-count inference.
    pub partition_inference: StageStats,
    /// Algorithm-3 bucket-width search.
    pub width_search: StageStats,
    /// CELL materialization.
    pub build: StageStats,
}

impl PreprocessProfile {
    /// Sum of all five stages.
    pub fn total(&self) -> StageStats {
        let mut t = StageStats::default();
        for s in self.stages() {
            t.accumulate(s);
        }
        t
    }

    /// The five stages in pipeline order, with display names.
    pub fn named_stages(&self) -> [(&'static str, &StageStats); 5] {
        [
            ("feature_extraction", &self.feature_extraction),
            ("selection_inference", &self.selection_inference),
            ("partition_inference", &self.partition_inference),
            ("width_search", &self.width_search),
            ("build", &self.build),
        ]
    }

    fn stages(&self) -> [&StageStats; 5] {
        [
            &self.feature_extraction,
            &self.selection_inference,
            &self.partition_inference,
            &self.width_search,
            &self.build,
        ]
    }

    /// Fold another profile into this one (corpus aggregation).
    pub fn accumulate(&mut self, other: &PreprocessProfile) {
        self.feature_extraction
            .accumulate(&other.feature_extraction);
        self.selection_inference
            .accumulate(&other.selection_inference);
        self.partition_inference
            .accumulate(&other.partition_inference);
        self.width_search.accumulate(&other.width_search);
        self.build.accumulate(&other.build);
    }

    /// The wall-clock-only view (the quantity Figures 8–9 compare).
    pub fn overhead(&self) -> OverheadBreakdown {
        OverheadBreakdown {
            feature_extraction_s: self.feature_extraction.wall_s,
            selection_inference_s: self.selection_inference.wall_s,
            partition_inference_s: self.partition_inference.wall_s,
            width_search_s: self.width_search.wall_s,
            build_s: self.build.wall_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_time_and_allocations() {
        let (len, stats) = StageStats::measure(|| {
            // black_box keeps the optimizer from eliding the allocation
            // in release builds.
            let v: Vec<u64> = std::hint::black_box((0..50_000).collect());
            v.len()
        });
        assert_eq!(len, 50_000);
        assert!(stats.wall_s >= 0.0);
        assert!(stats.alloc_calls >= 1);
        assert!(stats.alloc_bytes >= 50_000 * 8);
    }

    #[test]
    fn totals_and_overhead_agree() {
        let p = PreprocessProfile {
            width_search: StageStats {
                wall_s: 0.25,
                alloc_calls: 10,
                alloc_bytes: 1000,
            },
            build: StageStats {
                wall_s: 0.75,
                alloc_calls: 30,
                alloc_bytes: 3000,
            },
            ..Default::default()
        };
        let t = p.total();
        assert!((t.wall_s - 1.0).abs() < 1e-12);
        assert_eq!(t.alloc_calls, 40);
        assert_eq!(t.alloc_bytes, 4000);
        assert!((p.overhead().total_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_stage_wise() {
        let one = PreprocessProfile {
            feature_extraction: StageStats {
                wall_s: 0.1,
                alloc_calls: 1,
                alloc_bytes: 10,
            },
            ..Default::default()
        };
        let mut agg = PreprocessProfile::default();
        agg.accumulate(&one);
        agg.accumulate(&one);
        assert_eq!(agg.feature_extraction.alloc_calls, 2);
        assert!((agg.feature_extraction.wall_s - 0.2).abs() < 1e-12);
    }

    #[test]
    fn profile_serializes_to_json() {
        let p = PreprocessProfile::default();
        let s = serde_json::to_string(&p).unwrap();
        let back: PreprocessProfile = serde_json::from_str(&s).unwrap();
        assert_eq!(back, p);
    }
}
