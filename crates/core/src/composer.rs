//! The LiteForm composer: the runtime pipeline of Figure 2.

use crate::predictor::PartitionPredictor;
use crate::profile::{PreprocessProfile, StageStats};
use crate::selector::FormatSelector;
use lf_cell::{build_cell, CellConfig, CellMatrix};
use lf_cost::search::optimal_widths_for_matrix;
use lf_cost::tile::{plan_tile, TileFeatures};
use lf_kernels::{CellKernel, CsrVectorKernel, SpmmKernel, TileParams};
use lf_sim::atomicf::AtomicScalar;
use lf_sim::{DeviceModel, KernelProfile};
use lf_sparse::{CsrMatrix, DenseMatrix, FormatFeatures, PartitionFeatures, Result};
use serde::{Deserialize, Serialize};

/// Where LiteForm's (real, wall-clock) construction time went — the
/// quantity Figures 8–9 compare against the autotuners' kernel re-runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// Feature extraction (both tables) in seconds.
    pub feature_extraction_s: f64,
    /// Format-selection inference in seconds.
    pub selection_inference_s: f64,
    /// Partition-count inference in seconds.
    pub partition_inference_s: f64,
    /// Algorithm-3 bucket-width search in seconds.
    pub width_search_s: f64,
    /// CELL materialization in seconds.
    pub build_s: f64,
}

impl OverheadBreakdown {
    /// Total construction overhead in seconds.
    pub fn total_s(&self) -> f64 {
        self.feature_extraction_s
            + self.selection_inference_s
            + self.partition_inference_s
            + self.width_search_s
            + self.build_s
    }
}

/// What the composer decided.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind<T> {
    /// Compose CELL with this configuration.
    Cell {
        /// The chosen configuration.
        config: CellConfig,
        /// The materialized matrix.
        cell: CellMatrix<T>,
    },
    /// Stay on the fixed CSR path.
    FixedCsr,
}

/// A composition decision plus its cost accounting.
#[derive(Debug, Clone)]
pub struct CompositionPlan<T> {
    /// The decision.
    pub kind: PlanKind<T>,
    /// Wall-clock overhead breakdown (the Figures 8–9 quantity).
    pub overhead: OverheadBreakdown,
    /// Per-stage wall clock *and* allocation counters.
    pub profile: PreprocessProfile,
}

impl<T> CompositionPlan<T> {
    /// `true` when the plan composes CELL.
    pub fn uses_cell(&self) -> bool {
        matches!(self.kind, PlanKind::Cell { .. })
    }
}

impl<T: AtomicScalar> CompositionPlan<T> {
    /// Finish the plan into its executable form: bind the chosen kernel
    /// to its operand so the plan can run against any number of dense
    /// operands without re-running selection, width search, or
    /// construction. `csr` is only cloned on the fixed-CSR path (the
    /// CELL path moves the already-built buckets into the kernel).
    pub fn into_prepared(self, csr: &CsrMatrix<T>, tuned_j: usize) -> PreparedPlan<T> {
        let features = TileFeatures::new(csr.rows(), csr.nnz(), std::mem::size_of::<T>());
        let tile = plan_tile(features, tuned_j.max(1));
        let kernel = match self.kind {
            PlanKind::Cell { config, cell } => PreparedKernel::Cell {
                config,
                kernel: CellKernel::new(cell).with_tile(tile),
            },
            PlanKind::FixedCsr => {
                PreparedKernel::FixedCsr(CsrVectorKernel::new(csr.clone()).with_tile(tile))
            }
        };
        PreparedPlan {
            kernel,
            tuned_j,
            features,
            tile,
            overhead: self.overhead,
            profile: self.profile,
            degraded: false,
            epoch: 0,
        }
    }
}

pub(crate) enum PreparedKernel<T: AtomicScalar> {
    Cell {
        config: CellConfig,
        kernel: CellKernel<T>,
    },
    FixedCsr(CsrVectorKernel<T>),
}

/// The executable half of a composition: the chosen kernel with its
/// operand already materialized in the chosen format.
///
/// This is the unit the serving layer (`lf-serve`) caches and reuses:
/// building one pays the full Figure-2 pipeline once (recorded in
/// [`PreparedPlan::overhead`] / [`PreparedPlan::profile`]); every
/// subsequent [`PreparedPlan::run`] is a pure kernel execution with no
/// re-validation, feature extraction, or construction cost.
pub struct PreparedPlan<T: AtomicScalar> {
    pub(crate) kernel: PreparedKernel<T>,
    /// Dense-operand width the plan was tuned for (Algorithm 3's `j`).
    /// The plan stays *correct* for any width, but bucket widths are only
    /// optimal near `tuned_j`.
    pub tuned_j: usize,
    /// Quantized matrix-family features the execution tile was planned
    /// against (kept so fused runs can re-plan at the fused width).
    pub(crate) features: TileFeatures,
    /// The cost-model-tuned execution tile bound into the kernel.
    pub(crate) tile: TileParams,
    /// Wall-clock overhead breakdown of the one-off construction.
    pub overhead: OverheadBreakdown,
    /// Per-stage wall clock and allocation counters of the construction.
    pub profile: PreprocessProfile,
    /// `true` when this plan is a **degraded fallback**: the intended
    /// composition (CELL) failed, timed out, or was circuit-broken, and
    /// the plan executes the baseline CSR kernel instead. The serving
    /// layer counts such requests separately and never caches the plan.
    pub degraded: bool,
    /// Mutation epoch of the operand the plan was composed from. A
    /// freshly registered matrix is epoch 0; every applied update batch
    /// bumps it. The serving layer folds the epoch into the plan's
    /// cache key and the disk codec persists it, so a plan composed
    /// before a mutation can never be served after it.
    pub epoch: u64,
}

impl<T: AtomicScalar> PreparedPlan<T> {
    /// Wrap an already-built CELL matrix (used by planners that bypass
    /// the trained pipeline, e.g. fixed-configuration serving).
    pub fn from_cell(config: CellConfig, cell: CellMatrix<T>, profile: PreprocessProfile) -> Self {
        let features = TileFeatures::new(cell.rows(), cell.nnz(), std::mem::size_of::<T>());
        let tile = plan_tile(features, 1);
        PreparedPlan {
            kernel: PreparedKernel::Cell {
                config,
                kernel: CellKernel::new(cell).with_tile(tile),
            },
            tuned_j: 0,
            features,
            tile,
            overhead: profile.overhead(),
            profile,
            degraded: false,
            epoch: 0,
        }
    }

    /// Wrap a fixed-CSR execution (no composition).
    pub fn from_csr(csr: CsrMatrix<T>, profile: PreprocessProfile) -> Self {
        let features = TileFeatures::new(csr.rows(), csr.nnz(), std::mem::size_of::<T>());
        let tile = plan_tile(features, 1);
        PreparedPlan {
            kernel: PreparedKernel::FixedCsr(CsrVectorKernel::new(csr).with_tile(tile)),
            tuned_j: 0,
            features,
            tile,
            overhead: profile.overhead(),
            profile,
            degraded: false,
            epoch: 0,
        }
    }

    /// Set the width the plan was tuned for (builder style). Re-plans the
    /// execution tile for the new width and rebinds it into the kernel.
    pub fn with_tuned_j(mut self, j: usize) -> Self {
        self.tuned_j = j;
        self.tile = plan_tile(self.features, j.max(1));
        self.kernel = match self.kernel {
            PreparedKernel::Cell { config, kernel } => PreparedKernel::Cell {
                config,
                kernel: kernel.with_tile(self.tile),
            },
            PreparedKernel::FixedCsr(k) => PreparedKernel::FixedCsr(k.with_tile(self.tile)),
        };
        self
    }

    /// The cost-model-tuned execution tile bound into the kernel.
    pub fn tile_params(&self) -> TileParams {
        self.tile
    }

    /// Mark the plan as a degraded fallback (builder style; see
    /// [`PreparedPlan::degraded`]).
    pub fn mark_degraded(mut self) -> Self {
        self.degraded = true;
        self
    }

    /// Stamp the operand's mutation epoch (builder style; see
    /// [`PreparedPlan::epoch`]).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The bound kernel as a trait object (name, shape, launches, ...).
    pub fn kernel(&self) -> &dyn SpmmKernel<T> {
        match &self.kernel {
            PreparedKernel::Cell { kernel, .. } => kernel,
            PreparedKernel::FixedCsr(kernel) => kernel,
        }
    }

    /// `true` when the plan composes CELL.
    pub fn uses_cell(&self) -> bool {
        matches!(self.kernel, PreparedKernel::Cell { .. })
    }

    /// The CELL configuration, when the plan composes CELL.
    pub fn cell_config(&self) -> Option<&CellConfig> {
        match &self.kernel {
            PreparedKernel::Cell { config, .. } => Some(config),
            PreparedKernel::FixedCsr(_) => None,
        }
    }

    /// The materialized CELL operand, when the plan composes CELL.
    /// Read-only: the serving layer's delta path clones it to migrate a
    /// cached plan incrementally (`lf_cell::update_cell`) instead of
    /// recomposing from scratch.
    pub fn cell(&self) -> Option<&CellMatrix<T>> {
        match &self.kernel {
            PreparedKernel::Cell { kernel, .. } => Some(kernel.cell()),
            PreparedKernel::FixedCsr(_) => None,
        }
    }

    /// Shape `(rows, cols)` of the sparse operand.
    pub fn shape(&self) -> (usize, usize) {
        self.kernel().shape()
    }

    /// Device bytes retained by the plan's sparse operand in its chosen
    /// format — the quantity the serving layer's byte budget charges.
    pub fn format_bytes(&self) -> usize {
        self.kernel().format_bytes()
    }

    /// Reconstruct the CSR operand the plan was composed from. Lossless
    /// on both paths (CELL ↔ CSR conversion is a tested property), so
    /// the serving layer's disk tier can re-derive a decoded record's
    /// fingerprint and prove it still describes the matrix it claims to.
    pub fn reconstruct_csr(&self) -> CsrMatrix<T> {
        match &self.kernel {
            PreparedKernel::Cell { kernel, .. } => kernel.cell().to_csr(),
            PreparedKernel::FixedCsr(kernel) => kernel.csr().clone(),
        }
    }

    /// Execute `C = A · B` with the prebuilt kernel.
    pub fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        self.kernel().run(b)
    }

    /// Execute one **fused** SpMM over several dense operands that share
    /// this plan's sparse matrix: the operands' columns are concatenated
    /// into a single wide `B` (amortizing the sparse index-stream
    /// traversal across all of them — the wide-operand observation the
    /// serving layer's request coalescing is built on), the kernel runs
    /// once at the fused width, and the wide result is scattered back
    /// into one output per operand, in order.
    ///
    /// Each output column sees exactly the accumulation it would see in
    /// a solo [`PreparedPlan::run`]: fusing changes which columns ride
    /// along in the same pass, never a column's own reduction, so on
    /// single-writer (non-atomic) paths the scattered outputs are
    /// bitwise identical to solo runs. Atomic multi-partition paths stay
    /// as order-nondeterministic as their solo runs already are.
    ///
    /// Note the plan's bucket widths are only optimal near
    /// [`PreparedPlan::tuned_j`]; callers fusing at a much larger total
    /// width should resolve a plan tuned for it (the serving layer keys
    /// its cache on the fused width for exactly this reason). The
    /// *execution tile* is re-planned here at the fused width regardless
    /// (a cached cost-model lookup, no allocation) — tile choice never
    /// changes a column's reduction order, so the bitwise guarantee
    /// above is unaffected.
    pub fn run_batched(&self, bs: &[&DenseMatrix<T>]) -> Result<Vec<DenseMatrix<T>>> {
        match bs {
            [] => Ok(Vec::new()),
            [only] => Ok(vec![self.run(only)?]),
            _ => {
                let wide = lf_kernels::concat_columns(bs)?;
                let tile = plan_tile(self.features, wide.cols().max(1));
                let c = self.run_with(&wide, tile)?;
                let widths: Vec<usize> = bs.iter().map(|b| b.cols()).collect();
                lf_kernels::scatter_columns(&c, &widths)
            }
        }
    }

    /// Execute with an explicit execution tile (fused runs re-plan at
    /// the fused width).
    fn run_with(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        match &self.kernel {
            PreparedKernel::Cell { kernel, .. } => kernel.run_tiled(b, tile),
            PreparedKernel::FixedCsr(kernel) => kernel.run_tiled(b, tile),
        }
    }

    /// Simulated kernel profile for a dense operand of `j` columns.
    pub fn kernel_profile(&self, j: usize, device: &DeviceModel) -> KernelProfile {
        self.kernel().profile(j, device)
    }
}

impl<T: AtomicScalar> std::fmt::Debug for PreparedPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedPlan")
            .field("kernel", &self.kernel().name())
            .field("shape", &self.shape())
            .field("tuned_j", &self.tuned_j)
            .field("tile", &self.tile)
            .field("format_bytes", &self.format_bytes())
            .field("degraded", &self.degraded)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// The assembled LiteForm pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiteForm {
    /// Format-selection model (§5.1).
    pub selector: FormatSelector,
    /// Partition predictor (§5.2).
    pub predictor: PartitionPredictor,
    /// Device the compositions target.
    pub device: DeviceModel,
}

impl LiteForm {
    /// Assemble from trained components.
    pub fn new(
        selector: FormatSelector,
        predictor: PartitionPredictor,
        device: DeviceModel,
    ) -> Self {
        assert!(selector.is_trained(), "selector must be trained");
        assert!(predictor.is_trained(), "predictor must be trained");
        LiteForm {
            selector,
            predictor,
            device,
        }
    }

    /// Run the Figure 2 pipeline for a matrix and dense width `j`.
    pub fn compose<T: AtomicScalar>(&self, csr: &CsrMatrix<T>, j: usize) -> CompositionPlan<T> {
        let mut profile = PreprocessProfile::default();

        // 1. Features (shared single pass over row lengths, done twice
        //    here for clarity; both are O(rows)).
        let ((format_features, partition_features), stats) = StageStats::measure(|| {
            (
                FormatFeatures::from_csr(csr),
                PartitionFeatures::from_csr(csr, j),
            )
        });
        profile.feature_extraction = stats;

        // 2. Should we compose CELL at all?
        let (use_cell, stats) = StageStats::measure(|| self.selector.predict(&format_features));
        profile.selection_inference = stats;
        if !use_cell {
            return CompositionPlan {
                kind: PlanKind::FixedCsr,
                overhead: profile.overhead(),
                profile,
            };
        }

        // 3. Partition count.
        let (p, stats) = StageStats::measure(|| {
            self.predictor
                .predict(&partition_features)
                .min(csr.cols().max(1))
        });
        profile.partition_inference = stats;

        // 4. Bucket widths per partition (Algorithm 3).
        let (widths, stats) = StageStats::measure(|| optimal_widths_for_matrix(csr, p, j));
        profile.width_search = stats;

        // 5. Materialize.
        let config = CellConfig {
            num_partitions: p,
            max_widths: Some(widths),
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let (cell, stats) =
            StageStats::measure(|| build_cell(csr, &config).expect("validated config"));
        profile.build = stats;

        CompositionPlan {
            kind: PlanKind::Cell { config, cell },
            overhead: profile.overhead(),
            profile,
        }
    }

    /// Run the Figure-2 pipeline and bind the result to its kernel: the
    /// plan-build half of the build/execute split. The returned
    /// [`PreparedPlan`] can run against any conforming `B` without
    /// re-paying composition (the serving layer caches exactly this).
    pub fn prepare<T: AtomicScalar>(&self, csr: &CsrMatrix<T>, j: usize) -> PreparedPlan<T> {
        self.compose(csr, j).into_prepared(csr, j)
    }

    /// Compose and execute `C = A · B`, returning the result, the
    /// simulated kernel profile, and the plan's overhead accounting.
    pub fn spmm<T: AtomicScalar>(
        &self,
        csr: &CsrMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> Result<(DenseMatrix<T>, KernelProfile, OverheadBreakdown)> {
        let plan = self.prepare(csr, b.cols());
        let c = plan.run(b)?;
        let profile = plan.kernel_profile(b.cols(), &self.device);
        Ok((c, profile, plan.overhead))
    }

    /// Simulated kernel time of whatever the pipeline picks (no numeric
    /// execution) — the quantity the evaluation harnesses sweep.
    pub fn simulated_time_ms<T: AtomicScalar>(&self, csr: &CsrMatrix<T>, j: usize) -> f64 {
        self.prepare(csr, j).kernel_profile(j, &self.device).time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{label_format_selection, label_partitions, TrainingConfig};
    use lf_data::{Corpus, CorpusSpec};
    use lf_sparse::Pcg32;

    /// Train a small but real pipeline on a tiny corpus.
    fn tiny_pipeline() -> LiteForm {
        let device = DeviceModel::v100();
        let spec = CorpusSpec {
            n_matrices: 18,
            min_rows: 200,
            max_rows: 1500,
            max_nnz: 40_000,
            ..Default::default()
        };
        let corpus: Corpus<f32> = Corpus::generate(spec);
        let cfg = TrainingConfig {
            dense_widths: vec![32, 128],
            ..Default::default()
        };
        let sel_samples: Vec<_> = corpus
            .matrices
            .iter()
            .map(|m| label_format_selection(&m.csr, &cfg, &device))
            .collect();
        let part_samples: Vec<_> = corpus
            .matrices
            .iter()
            .flat_map(|m| label_partitions(&m.csr, &cfg, &device))
            .collect();
        let mut selector = FormatSelector::new(1);
        selector.train(&sel_samples);
        let mut predictor = PartitionPredictor::new(2);
        predictor.train(&part_samples);
        LiteForm::new(selector, predictor, device)
    }

    #[test]
    fn end_to_end_compose_and_run() {
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(5);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::mixed_regions(300, 300, 8000, 4, &mut rng));
        let b = DenseMatrix::random(300, 32, &mut rng);
        let (c, profile, overhead) = lf.spmm(&csr, &b).unwrap();
        // Numerically correct regardless of which path was taken.
        let want = csr.spmm_reference(&b).unwrap();
        assert!(c.approx_eq(&want, 1e-3));
        assert!(profile.time_ms > 0.0);
        assert!(overhead.total_s() >= 0.0);
        assert!(overhead.total_s() < 5.0, "pipeline must stay lightweight");
    }

    #[test]
    fn plan_reports_decision() {
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(6);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::uniform_random(400, 400, 6000, &mut rng));
        let plan = lf.compose(&csr, 64);
        match &plan.kind {
            PlanKind::Cell { config, cell } => {
                assert_eq!(cell.to_csr(), csr);
                assert!(config.num_partitions >= 1);
            }
            PlanKind::FixedCsr => {}
        }
        // The five stages are all accounted (some may be ~0 but not
        // negative).
        let o = plan.overhead;
        for v in [
            o.feature_extraction_s,
            o.selection_inference_s,
            o.partition_inference_s,
            o.width_search_s,
            o.build_s,
        ] {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn profile_mirrors_overhead_and_counts_allocations() {
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(8);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::mixed_regions(400, 400, 9000, 4, &mut rng));
        let plan = lf.compose(&csr, 64);
        // The wall-clock view is derived from the profile, never drifts.
        assert_eq!(plan.overhead, plan.profile.overhead());
        let total = plan.profile.total();
        assert!(total.wall_s >= 0.0);
        // Feature extraction allocates the feature vectors at minimum.
        assert!(
            plan.profile.feature_extraction.alloc_calls >= 1,
            "feature stage must show allocation activity"
        );
        if plan.uses_cell() {
            // Materializing CELL allocates its grids.
            assert!(plan.profile.build.alloc_bytes > 0);
            assert!(plan.profile.width_search.alloc_calls >= 1);
        }
    }

    #[test]
    fn prepared_plan_reuses_across_operands() {
        // The build/execute split: one prepare, many runs, each matching
        // the reference — and the prepared kernel mirrors the plan the
        // composer would have made.
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(21);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::mixed_regions(350, 350, 7000, 4, &mut rng));
        let plan = lf.prepare(&csr, 64);
        assert_eq!(plan.tuned_j, 64);
        assert_eq!(plan.shape(), csr.shape());
        assert!(plan.format_bytes() > 0);
        assert_eq!(plan.uses_cell(), lf.compose(&csr, 64).uses_cell());
        for j in [3usize, 64, 100] {
            let b = DenseMatrix::random(350, j, &mut rng);
            let c = plan.run(&b).unwrap();
            let want = csr.spmm_reference(&b).unwrap();
            assert!(c.approx_eq(&want, 1e-3), "j={j}");
        }
        assert!(plan.kernel_profile(64, &lf.device).time_ms > 0.0);
    }

    #[test]
    fn simulated_time_is_positive() {
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(7);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::uniform_random(200, 200, 3000, &mut rng));
        assert!(lf.simulated_time_ms(&csr, 128) > 0.0);
    }
}
