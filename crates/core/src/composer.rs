//! The LiteForm composer: the runtime pipeline of Figure 2.

use crate::predictor::PartitionPredictor;
use crate::profile::{PreprocessProfile, StageStats};
use crate::selector::FormatSelector;
use lf_cell::{build_cell, CellConfig, CellMatrix};
use lf_cost::search::optimal_widths_for_matrix;
use lf_kernels::{CellKernel, CsrVectorKernel, SpmmKernel};
use lf_sim::atomicf::AtomicScalar;
use lf_sim::{DeviceModel, KernelProfile};
use lf_sparse::{CsrMatrix, DenseMatrix, FormatFeatures, PartitionFeatures, Result};
use serde::{Deserialize, Serialize};

/// Where LiteForm's (real, wall-clock) construction time went — the
/// quantity Figures 8–9 compare against the autotuners' kernel re-runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// Feature extraction (both tables) in seconds.
    pub feature_extraction_s: f64,
    /// Format-selection inference in seconds.
    pub selection_inference_s: f64,
    /// Partition-count inference in seconds.
    pub partition_inference_s: f64,
    /// Algorithm-3 bucket-width search in seconds.
    pub width_search_s: f64,
    /// CELL materialization in seconds.
    pub build_s: f64,
}

impl OverheadBreakdown {
    /// Total construction overhead in seconds.
    pub fn total_s(&self) -> f64 {
        self.feature_extraction_s
            + self.selection_inference_s
            + self.partition_inference_s
            + self.width_search_s
            + self.build_s
    }
}

/// What the composer decided.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind<T> {
    /// Compose CELL with this configuration.
    Cell {
        /// The chosen configuration.
        config: CellConfig,
        /// The materialized matrix.
        cell: CellMatrix<T>,
    },
    /// Stay on the fixed CSR path.
    FixedCsr,
}

/// A composition decision plus its cost accounting.
#[derive(Debug, Clone)]
pub struct CompositionPlan<T> {
    /// The decision.
    pub kind: PlanKind<T>,
    /// Wall-clock overhead breakdown (the Figures 8–9 quantity).
    pub overhead: OverheadBreakdown,
    /// Per-stage wall clock *and* allocation counters.
    pub profile: PreprocessProfile,
}

impl<T> CompositionPlan<T> {
    /// `true` when the plan composes CELL.
    pub fn uses_cell(&self) -> bool {
        matches!(self.kind, PlanKind::Cell { .. })
    }
}

/// The assembled LiteForm pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiteForm {
    /// Format-selection model (§5.1).
    pub selector: FormatSelector,
    /// Partition predictor (§5.2).
    pub predictor: PartitionPredictor,
    /// Device the compositions target.
    pub device: DeviceModel,
}

impl LiteForm {
    /// Assemble from trained components.
    pub fn new(
        selector: FormatSelector,
        predictor: PartitionPredictor,
        device: DeviceModel,
    ) -> Self {
        assert!(selector.is_trained(), "selector must be trained");
        assert!(predictor.is_trained(), "predictor must be trained");
        LiteForm {
            selector,
            predictor,
            device,
        }
    }

    /// Run the Figure 2 pipeline for a matrix and dense width `j`.
    pub fn compose<T: AtomicScalar>(&self, csr: &CsrMatrix<T>, j: usize) -> CompositionPlan<T> {
        let mut profile = PreprocessProfile::default();

        // 1. Features (shared single pass over row lengths, done twice
        //    here for clarity; both are O(rows)).
        let ((format_features, partition_features), stats) = StageStats::measure(|| {
            (
                FormatFeatures::from_csr(csr),
                PartitionFeatures::from_csr(csr, j),
            )
        });
        profile.feature_extraction = stats;

        // 2. Should we compose CELL at all?
        let (use_cell, stats) = StageStats::measure(|| self.selector.predict(&format_features));
        profile.selection_inference = stats;
        if !use_cell {
            return CompositionPlan {
                kind: PlanKind::FixedCsr,
                overhead: profile.overhead(),
                profile,
            };
        }

        // 3. Partition count.
        let (p, stats) = StageStats::measure(|| {
            self.predictor
                .predict(&partition_features)
                .min(csr.cols().max(1))
        });
        profile.partition_inference = stats;

        // 4. Bucket widths per partition (Algorithm 3).
        let (widths, stats) = StageStats::measure(|| optimal_widths_for_matrix(csr, p, j));
        profile.width_search = stats;

        // 5. Materialize.
        let config = CellConfig {
            num_partitions: p,
            max_widths: Some(widths),
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let (cell, stats) =
            StageStats::measure(|| build_cell(csr, &config).expect("validated config"));
        profile.build = stats;

        CompositionPlan {
            kind: PlanKind::Cell { config, cell },
            overhead: profile.overhead(),
            profile,
        }
    }

    /// Compose and execute `C = A · B`, returning the result, the
    /// simulated kernel profile, and the plan's overhead accounting.
    pub fn spmm<T: AtomicScalar>(
        &self,
        csr: &CsrMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> Result<(DenseMatrix<T>, KernelProfile, OverheadBreakdown)> {
        let plan = self.compose(csr, b.cols());
        match plan.kind {
            PlanKind::Cell { cell, .. } => {
                let kernel = CellKernel::new(cell);
                let c = kernel.run(b)?;
                let profile = kernel.profile(b.cols(), &self.device);
                Ok((c, profile, plan.overhead))
            }
            PlanKind::FixedCsr => {
                let kernel = CsrVectorKernel::new(csr.clone());
                let c = kernel.run(b)?;
                let profile = kernel.profile(b.cols(), &self.device);
                Ok((c, profile, plan.overhead))
            }
        }
    }

    /// Simulated kernel time of whatever the pipeline picks (no numeric
    /// execution) — the quantity the evaluation harnesses sweep.
    pub fn simulated_time_ms<T: AtomicScalar>(&self, csr: &CsrMatrix<T>, j: usize) -> f64 {
        let plan = self.compose(csr, j);
        match plan.kind {
            PlanKind::Cell { cell, .. } => CellKernel::new(cell).profile(j, &self.device).time_ms,
            PlanKind::FixedCsr => {
                CsrVectorKernel::new(csr.clone())
                    .profile(j, &self.device)
                    .time_ms
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{label_format_selection, label_partitions, TrainingConfig};
    use lf_data::{Corpus, CorpusSpec};
    use lf_sparse::Pcg32;

    /// Train a small but real pipeline on a tiny corpus.
    fn tiny_pipeline() -> LiteForm {
        let device = DeviceModel::v100();
        let spec = CorpusSpec {
            n_matrices: 18,
            min_rows: 200,
            max_rows: 1500,
            max_nnz: 40_000,
            ..Default::default()
        };
        let corpus: Corpus<f32> = Corpus::generate(spec);
        let cfg = TrainingConfig {
            dense_widths: vec![32, 128],
            ..Default::default()
        };
        let sel_samples: Vec<_> = corpus
            .matrices
            .iter()
            .map(|m| label_format_selection(&m.csr, &cfg, &device))
            .collect();
        let part_samples: Vec<_> = corpus
            .matrices
            .iter()
            .flat_map(|m| label_partitions(&m.csr, &cfg, &device))
            .collect();
        let mut selector = FormatSelector::new(1);
        selector.train(&sel_samples);
        let mut predictor = PartitionPredictor::new(2);
        predictor.train(&part_samples);
        LiteForm::new(selector, predictor, device)
    }

    #[test]
    fn end_to_end_compose_and_run() {
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(5);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::mixed_regions(300, 300, 8000, 4, &mut rng));
        let b = DenseMatrix::random(300, 32, &mut rng);
        let (c, profile, overhead) = lf.spmm(&csr, &b).unwrap();
        // Numerically correct regardless of which path was taken.
        let want = csr.spmm_reference(&b).unwrap();
        assert!(c.approx_eq(&want, 1e-3));
        assert!(profile.time_ms > 0.0);
        assert!(overhead.total_s() >= 0.0);
        assert!(overhead.total_s() < 5.0, "pipeline must stay lightweight");
    }

    #[test]
    fn plan_reports_decision() {
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(6);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::uniform_random(400, 400, 6000, &mut rng));
        let plan = lf.compose(&csr, 64);
        match &plan.kind {
            PlanKind::Cell { config, cell } => {
                assert_eq!(cell.to_csr(), csr);
                assert!(config.num_partitions >= 1);
            }
            PlanKind::FixedCsr => {}
        }
        // The five stages are all accounted (some may be ~0 but not
        // negative).
        let o = plan.overhead;
        for v in [
            o.feature_extraction_s,
            o.selection_inference_s,
            o.partition_inference_s,
            o.width_search_s,
            o.build_s,
        ] {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn profile_mirrors_overhead_and_counts_allocations() {
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(8);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::mixed_regions(400, 400, 9000, 4, &mut rng));
        let plan = lf.compose(&csr, 64);
        // The wall-clock view is derived from the profile, never drifts.
        assert_eq!(plan.overhead, plan.profile.overhead());
        let total = plan.profile.total();
        assert!(total.wall_s >= 0.0);
        // Feature extraction allocates the feature vectors at minimum.
        assert!(
            plan.profile.feature_extraction.alloc_calls >= 1,
            "feature stage must show allocation activity"
        );
        if plan.uses_cell() {
            // Materializing CELL allocates its grids.
            assert!(plan.profile.build.alloc_bytes > 0);
            assert!(plan.profile.width_search.alloc_calls >= 1);
        }
    }

    #[test]
    fn simulated_time_is_positive() {
        let lf = tiny_pipeline();
        let mut rng = Pcg32::seed_from_u64(7);
        let csr: CsrMatrix<f32> =
            CsrMatrix::from_coo(&lf_sparse::gen::uniform_random(200, 200, 3000, &mut rng));
        assert!(lf.simulated_time_ms(&csr, 128) > 0.0);
    }
}
