#![warn(missing_docs)]

//! # liteform-core
//!
//! The LiteForm pipeline (Figure 2 of the paper): given a sparse matrix
//! and a dense-operand width `J`,
//!
//! 1. a pre-trained **format selector** ([`FormatSelector`], §5.1)
//!    predicts from seven cheap features whether composing the CELL
//!    format will beat the fixed formats (CSR / BCSR) by the paper's
//!    1.1× margin;
//! 2. a pre-trained **partition predictor** ([`PartitionPredictor`],
//!    §5.2) picks the number of column partitions from density features;
//! 3. the **cost-model width search** (Algorithm 3, re-exported from
//!    `lf-cost`) chooses each partition's maximum bucket width;
//! 4. [`LiteForm::compose`] assembles the CELL matrix and reports the
//!    construction overhead; [`LiteForm::spmm`] runs the chosen kernel.
//!
//! Training of the two models ([`training`]) runs kernels on a corpus —
//! the one-off cost §5.1 argues is amortized; the result can be saved and
//! shipped as a [`ModelBundle`].

pub mod codec;
pub mod composer;
pub mod error;
pub mod predictor;
pub mod pretrained;
pub mod profile;
pub mod selector;
pub mod training;

pub use codec::{decode_plan, encode_plan, CodecError};
pub use composer::{CompositionPlan, LiteForm, OverheadBreakdown, PlanKind, PreparedPlan};
pub use error::{panic_detail, LfError, LfResult};
pub use predictor::PartitionPredictor;
pub use pretrained::ModelBundle;
pub use profile::{PreprocessProfile, StageStats};
pub use selector::FormatSelector;
pub use training::{
    label_format_selection, label_partitions, FormatSelectionSample, PartitionSample,
    TrainingConfig,
};
