//! Binary plan codec: a versioned, checksummed, little-endian encoding
//! of [`PreparedPlan`] so composed plans can outlive the process.
//!
//! Everything a plan carries is plain old data — CELL bucket arrays (or
//! the CSR fallback's three arrays), the [`CellConfig`] it was built
//! with, the tuned dense width, and the execution [`TileParams`] — so a
//! record is a flat byte stream with no pointer fixup on either side.
//! The framing is deliberately hand-rolled (no serde, no external
//! format): the serving layer's disk tier trusts these records with
//! production traffic, so the decoder must be auditable end to end and
//! must *reject* rather than reinterpret anything it does not
//! recognize.
//!
//! ## Record layout
//!
//! ```text
//! magic "LFPL" (4) | version u16 | payload_len u64 | payload | crc32 u32
//! ```
//!
//! The CRC-32 (IEEE) covers every byte before it — magic, version,
//! length, and payload — so a torn tail, a truncated copy, or any
//! single-byte flip fails the checksum before the payload parser runs.
//! The payload parser itself still checks every length and every index
//! bound: a record with a *valid* checksum but hostile contents (say, a
//! column index past `cols`, which would send a kernel out of bounds) is
//! rejected with a typed [`CodecError`], never trusted.
//!
//! ## Guarantees
//!
//! * **Round-trip exactness.** `decode(encode(plan))` rebuilds a plan
//!   whose kernel output is bitwise identical to the original's on
//!   single-writer paths: the bucket arrays, value bits, tuned width,
//!   and execution tile are reproduced verbatim, and none of those
//!   change a column's reduction order (`crates/core/tests/plan_codec.rs`
//!   proves this across the fuzzer's structure classes).
//! * **No panics, no lies.** [`decode_plan`] on arbitrary bytes returns
//!   `Err`, never panics, and never returns `Ok` for bytes that are not
//!   a faithful encoding (the corruption suite fuzzes this with seeded
//!   mutations).
//! * **Version honesty.** Records from a future (or corrupted) version
//!   are rejected with [`CodecError::UnsupportedVersion`]; the format
//!   never silently reinterprets old bytes.
//!
//! Construction-time instrumentation ([`PreparedPlan::overhead`] /
//! `profile`) is *not* encoded: a decoded plan reports zero construction
//! cost, which is the truth — restoring it from bytes paid none.

use crate::composer::{PreparedKernel, PreparedPlan};
use crate::profile::PreprocessProfile;
use lf_cell::{Bucket, CellConfig, CellMatrix, Partition};
use lf_cost::tile::TileFeatures;
use lf_kernels::{CellKernel, CsrVectorKernel, Lanes, TileParams};
use lf_sim::atomicf::AtomicScalar;
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{CsrMatrix, Index, Scalar};

/// Record magic: "LFPL" (LiteForm PLan).
pub const MAGIC: [u8; 4] = *b"LFPL";
/// Current record version. Bump on any layout change.
///
/// Version history:
/// * **1** — initial layout.
/// * **2** — adds the operand's mutation epoch (`u64`) to the common
///   section, so the disk tier can refuse plans composed before an
///   update batch. Version-1 records predate mutable matrices and are
///   rejected ([`CodecError::UnsupportedVersion`]) rather than assumed
///   to be epoch 0 — the store treats that as a stale record and
///   deletes it.
pub const VERSION: u16 = 2;

/// Why an encode or decode was refused. Every variant is a *rejection*:
/// the bytes (or the plan) are returned to the caller untouched and
/// nothing partial escapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The record does not start with [`MAGIC`].
    BadMagic,
    /// The record's version is not one this decoder understands.
    UnsupportedVersion(u16),
    /// The byte stream ended before a field it promised.
    Truncated {
        /// Bytes the parser needed next.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// The CRC-32 over the record did not match its trailer.
    ChecksumMismatch,
    /// The record encodes a different scalar type than requested.
    WrongElemSize {
        /// `size_of::<T>()` of the requested plan type.
        expected: u8,
        /// The element size stamped in the record.
        found: u8,
    },
    /// A field failed semantic validation (named for diagnostics).
    BadField(&'static str),
    /// Degraded fallback plans are never persisted: they exist only to
    /// answer one request while the real composition is unavailable.
    DegradedPlan,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "plan record has wrong magic"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "plan record version {v} is not supported (have {VERSION})"
                )
            }
            CodecError::Truncated { need, have } => {
                write!(f, "plan record truncated: needed {need} bytes, had {have}")
            }
            CodecError::ChecksumMismatch => write!(f, "plan record failed its CRC-32 check"),
            CodecError::WrongElemSize { expected, found } => write!(
                f,
                "plan record stores {found}-byte elements, caller expects {expected}-byte"
            ),
            CodecError::BadField(what) => write!(f, "plan record field rejected: {what}"),
            CodecError::DegradedPlan => {
                write!(f, "degraded fallback plans are never encoded")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Wire primitives: little-endian scalars plus CRC-32, shared with the
// serving layer's record and manifest framing.
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Append-only little-endian byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// A writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a raw byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append the CRC-32 of everything written so far (the record
    /// trailer convention).
    pub fn crc_trailer(&mut self) {
        let c = crc32(&self.buf);
        self.u32(c);
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every read
/// returns [`CodecError::Truncated`] instead of slicing past the end,
/// so the decoder can never panic on short input.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("len 2"),
        ))
    }

    /// Read a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("len 4"),
        ))
    }

    /// Read a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("len 8"),
        ))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting values that do
    /// not fit (or that exceed `cap`, a cheap pre-allocation sanity
    /// bound derived from the bytes actually present).
    pub fn len(&mut self, cap: usize, what: &'static str) -> Result<usize, CodecError> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| CodecError::BadField(what))?;
        if v > cap {
            return Err(CodecError::BadField(what));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Scalar payloads: values are stored at their native width, bit-exact.
// ---------------------------------------------------------------------

fn write_values<T: Scalar>(w: &mut ByteWriter, values: &[T]) {
    if std::mem::size_of::<T>() == 4 {
        for v in values {
            w.u32((v.to_f64() as f32).to_bits());
        }
    } else {
        for v in values {
            w.u64(v.to_f64().to_bits());
        }
    }
}

fn read_values<T: Scalar>(r: &mut ByteReader<'_>, n: usize) -> Result<Vec<T>, CodecError> {
    let elem = std::mem::size_of::<T>();
    // Length sanity before allocation: `n` elements must actually be
    // present in the stream.
    if r.remaining() < n.checked_mul(elem).ok_or(CodecError::BadField("values"))? {
        return Err(CodecError::Truncated {
            need: n * elem,
            have: r.remaining(),
        });
    }
    let mut out = Vec::with_capacity(n);
    if elem == 4 {
        for _ in 0..n {
            out.push(T::from_f64(f32::from_bits(r.u32()?) as f64));
        }
    } else {
        for _ in 0..n {
            out.push(T::from_f64(f64::from_bits(r.u64()?)));
        }
    }
    Ok(out)
}

fn write_indices(w: &mut ByteWriter, ind: &[Index]) {
    for &i in ind {
        w.u32(i);
    }
}

fn read_indices(r: &mut ByteReader<'_>, n: usize) -> Result<Vec<Index>, CodecError> {
    if r.remaining() < n.checked_mul(4).ok_or(CodecError::BadField("indices"))? {
        return Err(CodecError::Truncated {
            need: n * 4,
            have: r.remaining(),
        });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn lanes_tag(l: Lanes) -> u8 {
    match l {
        Lanes::Auto => 0,
        Lanes::Scalar => 1,
        Lanes::X4 => 2,
        Lanes::X8 => 3,
    }
}

fn lanes_from_tag(t: u8) -> Result<Lanes, CodecError> {
    Ok(match t {
        0 => Lanes::Auto,
        1 => Lanes::Scalar,
        2 => Lanes::X4,
        3 => Lanes::X8,
        _ => return Err(CodecError::BadField("lanes")),
    })
}

const KIND_CELL: u8 = 0;
const KIND_CSR: u8 = 1;

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

/// Encode a plan into a self-contained, checksummed record.
///
/// Degraded fallback plans are refused ([`CodecError::DegradedPlan`]):
/// they are one-request stand-ins the cache itself never admits.
pub fn encode_plan<T: AtomicScalar>(plan: &PreparedPlan<T>) -> Result<Vec<u8>, CodecError> {
    if plan.degraded {
        return Err(CodecError::DegradedPlan);
    }
    let mut payload = ByteWriter::with_capacity(plan.format_bytes() + 256);
    payload.u8(std::mem::size_of::<T>() as u8);
    let tile = plan.tile_params();
    match &plan.kernel {
        PreparedKernel::Cell { config, kernel } => {
            payload.u8(KIND_CELL);
            encode_common(&mut payload, plan.tuned_j, tile, plan.epoch);
            let cell = kernel.cell();
            payload.u64(cell.rows() as u64);
            payload.u64(cell.cols() as u64);
            payload.u64(cell.nnz() as u64);
            encode_config(&mut payload, config);
            payload.u64(cell.partitions().len() as u64);
            for p in cell.partitions() {
                payload.u64(p.col_range.0 as u64);
                payload.u64(p.col_range.1 as u64);
                payload.u64(p.buckets.len() as u64);
                for b in &p.buckets {
                    payload.u64(b.width as u64);
                    payload.u64(b.rows_per_block as u64);
                    payload.u8(u8::from(b.needs_atomic) | (u8::from(b.has_folded) << 1));
                    payload.u64(b.num_rows() as u64);
                    write_indices(&mut payload, &b.row_ind);
                    write_indices(&mut payload, &b.col_ind);
                    write_values(&mut payload, &b.values);
                }
            }
        }
        PreparedKernel::FixedCsr(kernel) => {
            payload.u8(KIND_CSR);
            encode_common(&mut payload, plan.tuned_j, tile, plan.epoch);
            let csr = kernel.csr();
            payload.u64(csr.rows() as u64);
            payload.u64(csr.cols() as u64);
            payload.u64(csr.nnz() as u64);
            for &p in csr.row_ptr() {
                payload.u64(p as u64);
            }
            write_indices(&mut payload, csr.col_ind());
            write_values(&mut payload, csr.values());
        }
    }
    let payload = payload.into_bytes();
    let mut w = ByteWriter::with_capacity(payload.len() + 24);
    w.bytes(&MAGIC);
    w.u16(VERSION);
    w.u64(payload.len() as u64);
    w.bytes(&payload);
    w.crc_trailer();
    Ok(w.into_bytes())
}

fn encode_common(w: &mut ByteWriter, tuned_j: usize, tile: TileParams, epoch: u64) {
    w.u64(tuned_j as u64);
    w.u32(tile.j_tile as u32);
    w.u32(tile.k_block as u32);
    w.u8(lanes_tag(tile.lanes));
    w.u32(tile.chunk_slots as u32);
    w.u64(epoch);
}

fn encode_config(w: &mut ByteWriter, config: &CellConfig) {
    w.u64(config.num_partitions as u64);
    w.u64(config.block_nnz_multiple as u64);
    w.u8(u8::from(config.uniform_block_nnz));
    match &config.max_widths {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u64(v.len() as u64);
            for &x in v {
                w.u64(x as u64);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------

/// Decode a record produced by [`encode_plan`], re-validating every
/// framing, structural, and index invariant. The returned plan reports
/// zero construction overhead (truthfully — decoding paid none) and
/// carries the encoded tuned width and execution tile verbatim.
pub fn decode_plan<T: AtomicScalar>(bytes: &[u8]) -> Result<PreparedPlan<T>, CodecError> {
    // Framing first: magic, version, length, checksum — in that order,
    // so error variants identify *why* a record is unreadable.
    let mut r = ByteReader::new(bytes);
    if r.bytes(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let payload_len = r.len(r.remaining().saturating_sub(4), "payload_len")?;
    let payload_end = bytes.len() - r.remaining() + payload_len;
    let payload = r.bytes(payload_len)?;
    let stored_crc = r.u32()?;
    if r.remaining() != 0 {
        // Trailing garbage is not a faithful record.
        return Err(CodecError::BadField("trailing bytes"));
    }
    if crc32(&bytes[..payload_end]) != stored_crc {
        return Err(CodecError::ChecksumMismatch);
    }

    let mut r = ByteReader::new(payload);
    let elem = r.u8()?;
    if elem as usize != std::mem::size_of::<T>() {
        return Err(CodecError::WrongElemSize {
            expected: std::mem::size_of::<T>() as u8,
            found: elem,
        });
    }
    let kind = r.u8()?;
    let tuned_j = r.len(usize::MAX, "tuned_j")?;
    let tile = TileParams {
        j_tile: r.u32()? as usize,
        k_block: r.u32()? as usize,
        lanes: lanes_from_tag(r.u8()?)?,
        chunk_slots: r.u32()? as usize,
    };
    if tile.j_tile == 0 || tile.k_block == 0 || tile.chunk_slots == 0 {
        return Err(CodecError::BadField("tile"));
    }
    let epoch = r.u64()?;
    let rows = r.len(usize::MAX >> 8, "rows")?;
    let cols = r.len(usize::MAX >> 8, "cols")?;
    let nnz = r.len(usize::MAX >> 8, "nnz")?;
    let features = TileFeatures::new(rows, nnz, std::mem::size_of::<T>());
    let kernel = match kind {
        KIND_CELL => {
            let config = decode_config(&mut r)?;
            let cell = decode_cell::<T>(&mut r, rows, cols, nnz, config.clone())?;
            PreparedKernel::Cell {
                config,
                kernel: CellKernel::new(cell).with_tile(tile),
            }
        }
        KIND_CSR => {
            let csr = decode_csr::<T>(&mut r, rows, cols, nnz)?;
            PreparedKernel::FixedCsr(CsrVectorKernel::new(csr).with_tile(tile))
        }
        _ => return Err(CodecError::BadField("kind")),
    };
    if r.remaining() != 0 {
        return Err(CodecError::BadField("payload slack"));
    }
    Ok(PreparedPlan {
        kernel,
        tuned_j,
        features,
        tile,
        overhead: Default::default(),
        profile: PreprocessProfile::default(),
        degraded: false,
        epoch,
    })
}

fn decode_config(r: &mut ByteReader<'_>) -> Result<CellConfig, CodecError> {
    let num_partitions = r.len(usize::MAX >> 8, "num_partitions")?;
    let block_nnz_multiple = r.len(usize::MAX >> 8, "block_nnz_multiple")?;
    if num_partitions == 0 || !block_nnz_multiple.is_power_of_two() {
        return Err(CodecError::BadField("config"));
    }
    let uniform_block_nnz = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::BadField("uniform_block_nnz")),
    };
    let max_widths = match r.u8()? {
        0 => None,
        1 => {
            let n = r.len(r.remaining() / 8, "max_widths len")?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let w = r.len(usize::MAX >> 8, "max_width")?;
                if !w.is_power_of_two() {
                    return Err(CodecError::BadField("max_width"));
                }
                v.push(w);
            }
            Some(v)
        }
        _ => return Err(CodecError::BadField("max_widths tag")),
    };
    Ok(CellConfig {
        num_partitions,
        max_widths,
        block_nnz_multiple,
        uniform_block_nnz,
    })
}

fn decode_cell<T: AtomicScalar>(
    r: &mut ByteReader<'_>,
    rows: usize,
    cols: usize,
    nnz: usize,
    config: CellConfig,
) -> Result<CellMatrix<T>, CodecError> {
    let n_parts = r.len(r.remaining() / 24, "partitions")?;
    let mut partitions = Vec::with_capacity(n_parts);
    let mut stored_nnz = 0usize;
    for _ in 0..n_parts {
        let col_lo = r.len(usize::MAX >> 8, "col_lo")?;
        let col_hi = r.len(usize::MAX >> 8, "col_hi")?;
        if col_lo > col_hi || col_hi > cols {
            return Err(CodecError::BadField("col_range"));
        }
        let n_buckets = r.len(r.remaining() / 25, "buckets")?;
        let mut buckets = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            let width = r.len(usize::MAX >> 8, "width")?;
            let rows_per_block = r.len(usize::MAX >> 8, "rows_per_block")?;
            if !width.is_power_of_two() || rows_per_block == 0 {
                return Err(CodecError::BadField("bucket shape"));
            }
            let flags = r.u8()?;
            if flags > 3 {
                return Err(CodecError::BadField("bucket flags"));
            }
            let num_rows = r.len(r.remaining() / 4, "bucket rows")?;
            let slots = num_rows
                .checked_mul(width)
                .ok_or(CodecError::BadField("bucket slots"))?;
            let row_ind = read_indices(r, num_rows)?;
            let col_ind = read_indices(r, slots)?;
            let values = read_values::<T>(r, slots)?;
            // Index bounds are a *kernel safety* invariant: the engine's
            // gather loops trust them unchecked, so a crafted record must
            // be rejected here, not crash there.
            for &ri in &row_ind {
                if ri as usize >= rows {
                    return Err(CodecError::BadField("row index out of bounds"));
                }
            }
            for &ci in &col_ind {
                if ci != ELL_PAD {
                    if (ci as usize) >= cols || (ci as usize) < col_lo || (ci as usize) >= col_hi {
                        return Err(CodecError::BadField("col index out of bounds"));
                    }
                    stored_nnz += 1;
                }
            }
            buckets.push(Bucket {
                width,
                row_ind,
                col_ind,
                values,
                rows_per_block,
                needs_atomic: flags & 1 != 0,
                has_folded: flags & 2 != 0,
            });
        }
        partitions.push(Partition {
            col_range: (col_lo, col_hi),
            buckets,
        });
    }
    if stored_nnz != nnz {
        return Err(CodecError::BadField("nnz mismatch"));
    }
    Ok(CellMatrix::from_parts(rows, cols, nnz, partitions, config))
}

fn decode_csr<T: AtomicScalar>(
    r: &mut ByteReader<'_>,
    rows: usize,
    cols: usize,
    nnz: usize,
) -> Result<CsrMatrix<T>, CodecError> {
    let ptr_len = rows
        .checked_add(1)
        .ok_or(CodecError::BadField("row_ptr len"))?;
    if r.remaining()
        < ptr_len
            .checked_mul(8)
            .ok_or(CodecError::BadField("row_ptr"))?
    {
        return Err(CodecError::Truncated {
            need: ptr_len * 8,
            have: r.remaining(),
        });
    }
    let mut row_ptr = Vec::with_capacity(ptr_len);
    for _ in 0..ptr_len {
        row_ptr.push(r.len(usize::MAX >> 8, "row_ptr entry")?);
    }
    let col_ind = read_indices(r, nnz)?;
    let values = read_values::<T>(r, nnz)?;
    let csr = CsrMatrix::from_raw_unchecked(rows, cols, row_ptr, col_ind, values);
    // The structural contract (monotone row_ptr, in-range columns,
    // lengths) is re-proven by the same validator the ingress path uses.
    csr.validate()
        .map_err(|_| CodecError::BadField("csr invariants"))?;
    Ok(csr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn reader_rejects_short_reads_without_panicking() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert!(matches!(
            r.u64(),
            Err(CodecError::Truncated { need: 8, have: 1 })
        ));
        // The failed read consumed nothing.
        assert_eq!(r.u8().unwrap(), 3);
    }

    #[test]
    fn length_guard_rejects_oversized_claims() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        let mut r = ByteReader::new(w.as_bytes());
        assert!(matches!(r.len(1024, "n"), Err(CodecError::BadField("n"))));
    }
}
