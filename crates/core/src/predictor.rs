//! The partition-count model (§5.2): a Random Forest over the Table 3
//! density features, classifying into the candidate partition counts.

use crate::training::PartitionSample;
use lf_cost::partition::PARTITION_CANDIDATES;
use lf_ml::{Classifier, RandomForest};
use lf_sparse::PartitionFeatures;
use serde::{Deserialize, Serialize};

/// Pre-trainable optimal-partition classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionPredictor {
    forest: RandomForest,
    trained: bool,
}

impl PartitionPredictor {
    /// Untrained predictor (Random Forest, the paper's pick in Table 6).
    pub fn new(seed: u64) -> Self {
        PartitionPredictor {
            forest: RandomForest::new(60, 12, seed),
            trained: false,
        }
    }

    /// Class index of a partition count within [`PARTITION_CANDIDATES`]
    /// (nearest candidate for off-grid truth values).
    pub fn class_of(p: usize) -> usize {
        PARTITION_CANDIDATES
            .iter()
            .enumerate()
            .min_by_key(|&(_, &c)| (c as i64 - p as i64).unsigned_abs())
            .map_or(0, |(i, _)| i)
    }

    /// Fit from labelled samples.
    pub fn train(&mut self, samples: &[PartitionSample]) {
        assert!(!samples.is_empty(), "no training samples");
        let x: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_vec()).collect();
        let y: Vec<usize> = samples.iter().map(|s| Self::class_of(s.best_p)).collect();
        self.forest.fit(&x, &y, PARTITION_CANDIDATES.len());
        self.trained = true;
    }

    /// Predict the number of partitions for a matrix/J pair.
    pub fn predict(&self, features: &PartitionFeatures) -> usize {
        assert!(self.trained, "predictor must be trained or loaded");
        PARTITION_CANDIDATES[self.forest.predict_one(&features.to_vec())]
    }

    /// Whether the model has been fitted.
    pub fn is_trained(&self) -> bool {
        self.trained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(density: f64, j: usize) -> PartitionFeatures {
        PartitionFeatures {
            rows: 10_000.0,
            cols: 10_000.0,
            nnz: density * 1e8,
            avg_density_per_row: density,
            min_density_per_row: 0.0,
            max_density_per_row: density * 4.0,
            std_density_per_row: density / 2.0,
            j_product: j as f64,
        }
    }

    fn synthetic_samples() -> Vec<PartitionSample> {
        // Rule: denser matrices want more partitions.
        let mut out = Vec::new();
        for i in 0..240 {
            let density = 1e-5 * 10f64.powf((i % 4) as f64);
            let best_p = [1, 2, 8, 32][i % 4];
            for &j in &[32usize, 128, 512] {
                out.push(PartitionSample {
                    features: feat(density, j),
                    best_p,
                });
            }
        }
        out
    }

    #[test]
    fn class_mapping_is_nearest() {
        assert_eq!(PartitionPredictor::class_of(1), 0);
        assert_eq!(PartitionPredictor::class_of(2), 1);
        assert_eq!(PartitionPredictor::class_of(3), 1); // nearest of {2,4}
        assert_eq!(PartitionPredictor::class_of(32), 5);
        assert_eq!(PartitionPredictor::class_of(100), 5);
    }

    #[test]
    fn learns_density_rule() {
        let mut p = PartitionPredictor::new(1);
        p.train(&synthetic_samples());
        assert_eq!(p.predict(&feat(1e-5, 128)), 1);
        assert_eq!(p.predict(&feat(1e-2, 128)), 32);
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn untrained_predict_panics() {
        PartitionPredictor::new(1).predict(&feat(1e-3, 64));
    }

    #[test]
    fn serde_round_trip() {
        let mut p = PartitionPredictor::new(2);
        p.train(&synthetic_samples());
        let json = serde_json::to_string(&p).unwrap();
        let back: PartitionPredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(&feat(1e-3, 64)), p.predict(&feat(1e-3, 64)));
    }
}
