//! Serialization tier for the plan codec (DESIGN.md §13).
//!
//! Two properties carry the whole disk-tier argument:
//!
//! 1. **Round-trip fidelity** — `decode(encode(plan))` must execute
//!    **bitwise identically** to the original plan, across every fuzzer
//!    structure class, both kernel flavors (CELL and fixed CSR), and
//!    both tuned and default execution tiles. Anything less and a
//!    warmed restart could serve different bits than a cold one.
//! 2. **Decoder hostility** — the decoder takes bytes from disk, i.e.
//!    from *anyone*. Truncations, bit flips, version drift, and
//!    thousands of seeded random mutations must all produce a typed
//!    [`CodecError`] — never a panic, never an `Ok` on tampered bytes.

use lf_cell::{build_cell, CellConfig};
use lf_sparse::gen::{fuzz_case, FUZZ_CLASSES};
use lf_sparse::{DenseMatrix, Pcg32};
use liteform_core::codec::CodecError;
use liteform_core::{decode_plan, encode_plan, PreparedPlan, PreprocessProfile};

fn bits(m: &DenseMatrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A reference plan to corrupt: small but structurally non-trivial
/// (multiple buckets, folded rows possible).
fn sample_record() -> Vec<u8> {
    let case = fuzz_case::<f64>(0);
    assert!(!case.malformed);
    let config = CellConfig::default();
    let cell = build_cell(&case.csr, &config).unwrap();
    let plan = PreparedPlan::from_cell(config, cell, PreprocessProfile::default())
        .with_tuned_j(case.j.max(1));
    encode_plan(&plan).unwrap()
}

#[test]
fn epoch_round_trips_and_version_one_records_are_refused() {
    let case = fuzz_case::<f64>(0);
    let config = CellConfig::default();
    let cell = build_cell(&case.csr, &config).unwrap();
    let plan = PreparedPlan::from_cell(config, cell, PreprocessProfile::default())
        .with_tuned_j(case.j.max(1))
        .with_epoch(41);
    let bytes = encode_plan(&plan).unwrap();
    let back = decode_plan::<f64>(&bytes).unwrap();
    assert_eq!(back.epoch, 41, "epoch must survive the round trip");

    // A record stamped with the pre-epoch version must be refused, not
    // parsed as if its payload had today's layout.
    let mut v1 = bytes;
    v1[4..6].copy_from_slice(&1u16.to_le_bytes());
    assert!(
        matches!(
            decode_plan::<f64>(&v1),
            Err(CodecError::UnsupportedVersion(1))
        ),
        "version-1 records must be rejected as unsupported"
    );
}

#[test]
fn round_trip_is_bitwise_identical_across_all_classes_kernels_and_tiles() {
    let mut classes_seen = std::collections::HashSet::new();
    let mut checked = 0usize;
    // 3 seeds per class covers every class with distinct draws.
    for seed in 0..(3 * FUZZ_CLASSES) {
        let case = fuzz_case::<f64>(seed);
        if case.malformed {
            // The hostile class is rejected at ingress validation —
            // a malformed matrix never becomes a plan, so it never
            // reaches the codec (asserted separately below).
            continue;
        }
        classes_seen.insert(case.label);
        let config = CellConfig::default();
        let cell = build_cell(&case.csr, &config).unwrap();
        // {CELL, CSR} × {default tile, tuned tile}.
        let plans: Vec<(&str, PreparedPlan<f64>)> = vec![
            (
                "cell/default",
                PreparedPlan::from_cell(config.clone(), cell.clone(), PreprocessProfile::default()),
            ),
            (
                "cell/tuned",
                PreparedPlan::from_cell(config, cell, PreprocessProfile::default())
                    .with_tuned_j(case.j.max(1)),
            ),
            (
                "csr/default",
                PreparedPlan::from_csr(case.csr.clone(), PreprocessProfile::default()),
            ),
            (
                "csr/tuned",
                PreparedPlan::from_csr(case.csr.clone(), PreprocessProfile::default())
                    .with_tuned_j(case.j.max(1)),
            ),
        ];
        let mut rng = Pcg32::seed_from_u64(0xC0DE ^ seed);
        let b = DenseMatrix::random(case.csr.cols(), case.j, &mut rng);
        for (name, plan) in plans {
            let encoded = encode_plan(&plan).unwrap_or_else(|e| {
                panic!("seed {seed} ({}) {name}: encode failed: {e}", case.label)
            });
            let decoded: PreparedPlan<f64> = decode_plan(&encoded).unwrap_or_else(|e| {
                panic!("seed {seed} ({}) {name}: decode failed: {e}", case.label)
            });
            // The tuned execution tile must survive verbatim — a decoded
            // plan re-planned against per-process calibration would not
            // be the plan that was persisted.
            assert_eq!(
                decoded.tile_params(),
                plan.tile_params(),
                "seed {seed} ({}) {name}: tile drifted",
                case.label
            );
            assert_eq!(
                decoded.format_bytes(),
                plan.format_bytes(),
                "seed {seed} ({}) {name}: byte charge drifted",
                case.label
            );
            let want = plan.run(&b).unwrap();
            let got = decoded.run(&b).unwrap();
            assert_eq!(
                bits(&got),
                bits(&want),
                "seed {seed} ({}) {name}: decoded plan diverged bitwise",
                case.label
            );
        }
        checked += 1;
    }
    assert!(
        classes_seen.len() >= (FUZZ_CLASSES as usize) - 2,
        "structure coverage too thin: {classes_seen:?}"
    );
    assert!(checked >= 24, "only {checked} well-formed cases");
}

#[test]
fn f32_plans_round_trip_and_reject_elem_size_confusion() {
    let case = fuzz_case::<f32>(1);
    assert!(!case.malformed);
    let plan = PreparedPlan::from_csr(case.csr.clone(), PreprocessProfile::default())
        .with_tuned_j(case.j.max(1));
    let encoded = encode_plan(&plan).unwrap();
    let decoded: PreparedPlan<f32> = decode_plan(&encoded).unwrap();
    let mut rng = Pcg32::seed_from_u64(7);
    let b = DenseMatrix::<f32>::random(case.csr.cols(), case.j, &mut rng);
    let want = plan.run(&b).unwrap();
    let got = decoded.run(&b).unwrap();
    let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
    let gb: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
    assert_eq!(wb, gb, "f32 round trip must be bit-exact");
    // An f32 record must not decode as f64 (and vice versa): the value
    // encoding is element-size dependent.
    let confused = decode_plan::<f64>(&encoded);
    assert!(
        matches!(confused, Err(CodecError::WrongElemSize { .. })),
        "{confused:?}"
    );
}

#[test]
fn malformed_class_is_stopped_before_the_codec_exists() {
    // The codec never sees the hostile class: strict CSR validation —
    // the ingestion gate every plan source runs behind — rejects it
    // first. This pins the layering: codec trust starts at "was a
    // valid plan once".
    let mut seen = 0;
    for seed in 0..(6 * FUZZ_CLASSES) {
        let case = fuzz_case::<f64>(seed);
        if !case.malformed {
            continue;
        }
        seen += 1;
        assert!(
            case.csr.validate_finite().is_err(),
            "seed {seed} ({}): malformed case passed validation",
            case.label
        );
    }
    assert!(seen >= 4, "fuzzer yielded only {seen} malformed cases");
}

#[test]
fn degraded_plans_are_refused_by_the_encoder() {
    let case = fuzz_case::<f64>(2);
    assert!(!case.malformed);
    let plan = PreparedPlan::from_csr(case.csr, PreprocessProfile::default()).mark_degraded();
    assert!(matches!(encode_plan(&plan), Err(CodecError::DegradedPlan)));
}

#[test]
fn every_truncation_is_a_typed_error() {
    let record = sample_record();
    // Every prefix, including the empty one, must fail typed — the
    // trailing CRC cannot survive any truncation.
    for cut in 0..record.len() {
        let r = decode_plan::<f64>(&record[..cut]);
        assert!(r.is_err(), "truncation to {cut} bytes decoded Ok");
    }
}

#[test]
fn single_byte_flips_are_rejected_everywhere() {
    let record = sample_record();
    // Header flips get the specific diagnosis; everything else is at
    // minimum a checksum mismatch (the CRC covers every byte before it,
    // and flipping the stored CRC breaks the comparison itself).
    for pos in 0..record.len() {
        let mut bad = record.clone();
        bad[pos] ^= 0x40;
        let r = decode_plan::<f64>(&bad);
        assert!(r.is_err(), "flip at byte {pos} decoded Ok");
    }
    // Specific diagnoses for the header fields.
    let mut bad_magic = record.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        decode_plan::<f64>(&bad_magic),
        Err(CodecError::BadMagic)
    ));
    let mut future = record.clone();
    future[4] = 0xEE; // version low byte
                      // Recompute the trailer so only the version is wrong.
    let crc_at = future.len() - 4;
    let crc = liteform_core::codec::crc32(&future[..crc_at]);
    future[crc_at..].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        decode_plan::<f64>(&future),
        Err(CodecError::UnsupportedVersion(_))
    ));
    // Trailing garbage after a perfect record is also not a record.
    let mut padded = record.clone();
    padded.push(0);
    assert!(decode_plan::<f64>(&padded).is_err());
}

#[test]
fn two_thousand_seeded_mutations_never_panic_never_decode() {
    let record = sample_record();
    let mut rng = Pcg32::seed_from_u64(0xFA112);
    let mut rejected = 0u32;
    for _ in 0..2000 {
        let mut bad = record.clone();
        match rng.next_u32() % 4 {
            0 => {
                // Flip 1-4 random bytes.
                for _ in 0..(1 + rng.next_u32() % 4) {
                    let pos = rng.next_u32() as usize % bad.len();
                    let mask = (1 + rng.next_u32() % 255) as u8;
                    bad[pos] ^= mask;
                }
            }
            1 => {
                // Truncate to a random prefix.
                bad.truncate(rng.next_u32() as usize % bad.len());
            }
            2 => {
                // Splice a random chunk out of the middle.
                let start = rng.next_u32() as usize % bad.len();
                let len = 1 + rng.next_u32() as usize % (bad.len() - start);
                bad.drain(start..start + len);
            }
            _ => {
                // Append random garbage.
                for _ in 0..(1 + rng.next_u32() % 16) {
                    bad.push(rng.next_u32() as u8);
                }
            }
        }
        if bad == record {
            continue;
        }
        // The call must return (no panic) and must refuse (no Ok).
        let r = std::panic::catch_unwind(|| decode_plan::<f64>(&bad));
        let r = r.expect("decoder panicked on mutated bytes");
        assert!(r.is_err(), "mutated record decoded Ok");
        rejected += 1;
    }
    assert!(rejected >= 1990, "only {rejected} mutations exercised");
}
