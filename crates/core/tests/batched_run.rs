//! Property suite for [`PreparedPlan::run_batched`]: a fused execute
//! over concatenated operands must scatter back outputs **bitwise
//! identical** to running each operand through a solo
//! [`PreparedPlan::run`], across the fuzzer's structure classes and
//! degenerate member widths (J=0, J=1), on both kernel paths
//! (single-partition CELL and fixed CSR — the single-writer regimes the
//! serving layer's determinism contract covers).

use lf_cell::{build_cell, CellConfig};
use lf_sparse::gen::fuzz_case;
use lf_sparse::{CsrMatrix, DenseMatrix, Pcg32};
use liteform_core::{PreparedPlan, PreprocessProfile};

fn bits(m: &DenseMatrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// The two single-writer plan flavors under test.
fn plans(csr: &CsrMatrix<f64>, j: usize) -> Vec<(&'static str, PreparedPlan<f64>)> {
    let config = CellConfig::default(); // one partition: plain stores
    let cell = build_cell(csr, &config).expect("valid csr");
    vec![
        (
            "cell",
            PreparedPlan::from_cell(config, cell, PreprocessProfile::default()).with_tuned_j(j),
        ),
        (
            "csr",
            PreparedPlan::from_csr(csr.clone(), PreprocessProfile::default()).with_tuned_j(j),
        ),
    ]
}

#[test]
fn batched_results_are_bitwise_identical_to_solo_runs() {
    let mut checked = 0usize;
    for seed in 0..24u64 {
        let case = fuzz_case::<f64>(seed);
        if case.malformed {
            continue;
        }
        let cols = case.csr.cols();
        let mut rng = Pcg32::seed_from_u64(0xBA7C + seed);
        // Member widths mix the degenerate joiners (0, 1) with the
        // case's own width; five members of width j also push the fused
        // width well past narrow-J tuning.
        let widths = [case.j, 0, 1, case.j, 3];
        let bs: Vec<DenseMatrix<f64>> = widths
            .iter()
            .map(|&w| DenseMatrix::random(cols, w, &mut rng))
            .collect();
        let refs: Vec<&DenseMatrix<f64>> = bs.iter().collect();
        for (name, plan) in plans(&case.csr, case.j) {
            let batched = plan.run_batched(&refs).unwrap();
            assert_eq!(batched.len(), bs.len(), "{name}/{}", case.label);
            for (k, (b, got)) in bs.iter().zip(&batched).enumerate() {
                let solo = plan.run(b).unwrap();
                assert_eq!(got.shape(), solo.shape());
                assert_eq!(
                    bits(got),
                    bits(&solo),
                    "seed {seed} ({}) {name} member {k} (j={}) diverged from solo",
                    case.label,
                    b.cols()
                );
            }
            // And both agree with the sequential reference.
            for (b, got) in bs.iter().zip(&batched) {
                let want = case.csr.spmm_reference(b).unwrap();
                assert!(got.approx_eq(&want, 1e-9), "{name}/{}", case.label);
            }
        }
        checked += 1;
    }
    assert!(checked >= 15, "fuzzer must yield enough well-formed cases");
}

#[test]
fn fused_width_crosses_the_j_tile_boundary() {
    // 40+50+45+33 = 168 columns: the fused run spans two J_TILE=128
    // accumulator tiles while every solo run fits in one — the tiling
    // seam must not perturb a single bit.
    let case = fuzz_case::<f64>(1);
    assert!(!case.malformed);
    let cols = case.csr.cols();
    let mut rng = Pcg32::seed_from_u64(0x711e);
    let bs: Vec<DenseMatrix<f64>> = [40usize, 50, 45, 33]
        .iter()
        .map(|&w| DenseMatrix::random(cols, w, &mut rng))
        .collect();
    let refs: Vec<&DenseMatrix<f64>> = bs.iter().collect();
    for (name, plan) in plans(&case.csr, 168) {
        let batched = plan.run_batched(&refs).unwrap();
        for (b, got) in bs.iter().zip(&batched) {
            let solo = plan.run(b).unwrap();
            assert_eq!(bits(got), bits(&solo), "{name}: tile seam changed bits");
        }
    }
}

#[test]
fn batched_degenerate_shapes() {
    let case = fuzz_case::<f64>(2);
    assert!(!case.malformed);
    let cols = case.csr.cols();
    let mut rng = Pcg32::seed_from_u64(42);
    for (_, plan) in plans(&case.csr, 8) {
        // Empty member list and single-member fast path.
        assert!(plan.run_batched(&[]).unwrap().is_empty());
        let b = DenseMatrix::random(cols, 5, &mut rng);
        let one = plan.run_batched(&[&b]).unwrap();
        assert_eq!(bits(&one[0]), bits(&plan.run(&b).unwrap()));
        // All-zero-width members.
        let z = DenseMatrix::<f64>::zeros(cols, 0);
        let outs = plan.run_batched(&[&z, &z]).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].shape(), (case.csr.rows(), 0));
        // Mismatched member rows must be a typed error, not a panic.
        let bad = DenseMatrix::<f64>::zeros(cols + 1, 3);
        assert!(plan.run_batched(&[&b, &bad]).is_err());
    }
}
