//! Degenerate-input regression suite for the composer pipeline.
//!
//! `LiteForm::compose` / `prepare` / `spmm` must accept zero-row,
//! zero-column, fully empty, and zero-width-`B` inputs without panicking:
//! each either returns a valid degenerate plan (empty output of the right
//! shape) or a documented dimension error — never an abort inside feature
//! extraction, model inference, width search, or CELL construction.

use lf_sparse::{CsrMatrix, DenseMatrix};
use liteform_core::{LiteForm, ModelBundle};

/// The checked-in pretrained bundle — the same models the benchmarks use,
/// loaded instead of retrained so this suite stays fast.
fn pipeline() -> LiteForm {
    ModelBundle::load(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/liteform-models.json"
    ))
    .expect("checked-in model bundle must load")
    .into_liteform()
}

#[test]
fn compose_handles_zero_dimension_matrices() {
    let lf = pipeline();
    for (rows, cols) in [(0usize, 0usize), (0, 7), (7, 0), (25, 25)] {
        let csr = CsrMatrix::<f32>::empty(rows, cols);
        for j in [0usize, 1, 32] {
            let plan = lf.compose(&csr, j);
            let prepared = plan.into_prepared(&csr, j);
            assert_eq!(prepared.shape(), (rows, cols), "{rows}x{cols} J={j}");
            let b = DenseMatrix::zeros(cols, j);
            let c = prepared.run(&b).unwrap();
            assert_eq!(c.shape(), (rows, j), "{rows}x{cols} J={j}");
            assert!(c.as_slice().iter().all(|&v| v == 0.0));
        }
    }
}

#[test]
fn spmm_on_degenerate_inputs_returns_empty_results() {
    let lf = pipeline();
    for (rows, cols) in [(0usize, 0usize), (0, 7), (7, 0)] {
        let csr = CsrMatrix::<f32>::empty(rows, cols);
        let b = DenseMatrix::zeros(cols, 4);
        let (c, _profile, overhead) = lf.spmm(&csr, &b).unwrap();
        assert_eq!(c.shape(), (rows, 4), "{rows}x{cols}");
        assert!(overhead.total_s() >= 0.0);
    }
}

#[test]
fn mismatched_b_is_an_error_not_a_panic() {
    let lf = pipeline();
    let csr = CsrMatrix::<f32>::empty(8, 6);
    let b = DenseMatrix::zeros(5, 4); // b.rows() != csr.cols()
    let prepared = lf.prepare(&csr, 4);
    assert!(prepared.run(&b).is_err());
}

#[test]
fn zero_width_b_round_trips_through_every_plan_kind() {
    let lf = pipeline();
    let csr = CsrMatrix::<f32>::empty(12, 12);
    let b = DenseMatrix::zeros(12, 0);
    let (c, _profile, _overhead) = lf.spmm(&csr, &b).unwrap();
    assert_eq!(c.shape(), (12, 0));
}
