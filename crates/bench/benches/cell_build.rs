//! Criterion: CELL construction cost — the thing LiteForm keeps cheap.
//!
//! Compares the single-pass parallel builder (`build_cell`) against the
//! seed per-partition-rescan builder (`build_cell_reference`) on a
//! 4096×4096 mixed-regions matrix across partition counts, plus the
//! original partition/fold-cap sweeps on a larger skewed matrix. The
//! criterion harness emits one BENCH JSON line per case under
//! `target/criterion-lite/cell_build.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lf_cell::{build_cell, build_cell_reference, CellConfig};
use lf_sparse::gen::{mixed_regions, uniform_with_long_rows};
use lf_sparse::{CsrMatrix, Pcg32};

/// Old vs new builder on the acceptance matrix: 4096×4096 mixed regions.
fn bench_old_vs_new(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(22);
    let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(4096, 4096, 600_000, 4, &mut rng));

    let mut group = c.benchmark_group("cell_build");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.sample_size(10);
    for p in [1usize, 4, 16, 32] {
        let cfg = CellConfig::with_partitions(p);
        group.bench_with_input(BenchmarkId::new("single_pass", p), &cfg, |bch, cfg| {
            bch.iter(|| build_cell(&csr, cfg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("reference", p), &cfg, |bch, cfg| {
            bch.iter(|| build_cell_reference(&csr, cfg).unwrap());
        });
    }
    group.finish();
}

/// The original sweep: partition counts and folding caps on a larger
/// skewed matrix, now on the single-pass builder.
fn bench_build(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(21);
    let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&uniform_with_long_rows(
        20_000, 20_000, 400_000, 20, 8_000, &mut rng,
    ));

    let mut group = c.benchmark_group("cell_build_sweep");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.sample_size(10);
    for p in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("partitions", p), &p, |bch, &p| {
            let cfg = CellConfig::with_partitions(p);
            bch.iter(|| build_cell(&csr, &cfg).unwrap());
        });
    }
    for cap in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("fold_cap", cap), &cap, |bch, &cap| {
            let cfg = CellConfig::with_partitions(4).with_max_widths(vec![cap]);
            bch.iter(|| build_cell(&csr, &cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_old_vs_new, bench_build);
criterion_main!(benches);
