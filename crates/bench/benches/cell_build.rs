//! Criterion: CELL construction cost — the thing LiteForm keeps cheap.
//! Sweeps partition counts and folding caps on a mid-size matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lf_cell::{build_cell, CellConfig};
use lf_sparse::gen::uniform_with_long_rows;
use lf_sparse::{CsrMatrix, Pcg32};

fn bench_build(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(21);
    let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&uniform_with_long_rows(
        20_000, 20_000, 400_000, 20, 8_000, &mut rng,
    ));

    let mut group = c.benchmark_group("cell_build");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.sample_size(10);
    for p in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("partitions", p), &p, |bch, &p| {
            let cfg = CellConfig::with_partitions(p);
            bch.iter(|| build_cell(&csr, &cfg).unwrap());
        });
    }
    for cap in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("fold_cap", cap), &cap, |bch, &cap| {
            let cfg = CellConfig::with_partitions(4).with_max_widths(vec![cap]);
            bch.iter(|| build_cell(&csr, &cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
