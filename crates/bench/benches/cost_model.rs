//! Criterion: the Algorithm 3 width search and the ground-truth partition
//! sweep it replaces — quantifying the "lightweight" in LiteForm.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lf_cost::model::PartitionSketch;
use lf_cost::partition::optimal_partitions;
use lf_cost::search::{build_buckets, exhaustive_best_width, tune_width};
use lf_sim::DeviceModel;
use lf_sparse::gen::power_law;
use lf_sparse::gen::PowerLawConfig;
use lf_sparse::{CsrMatrix, Pcg32};

fn bench_cost(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(31);
    let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&power_law(
        &PowerLawConfig {
            rows: 30_000,
            cols: 30_000,
            target_nnz: 500_000,
            exponent: 1.9,
            max_degree: Some(5_000),
        },
        &mut rng,
    ));
    let sketch = PartitionSketch::from_csr(&csr, 0, csr.cols());
    let device = DeviceModel::v100();

    let mut group = c.benchmark_group("cost_model");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.sample_size(10);
    group.bench_function("tune_width_once", |b| {
        b.iter(|| tune_width(&sketch, 64));
    });
    group.bench_function("algorithm3_search", |b| {
        b.iter(|| build_buckets(&sketch, 128));
    });
    group.bench_function("exhaustive_width_reference", |b| {
        b.iter(|| exhaustive_best_width(&sketch, 128));
    });
    group.bench_function("partition_sweep_ground_truth", |b| {
        b.iter(|| optimal_partitions(&csr, 128, &device));
    });
    group.finish();
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
