//! Criterion: train/inference cost of the classifier zoo on a synthetic
//! tabular problem shaped like the Table 5 task (7 features, 2 classes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lf_ml::model_zoo;
use lf_sparse::Pcg32;

fn dataset(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let c = if label == 0 { -1.0 } else { 1.0 };
        x.push(
            (0..7)
                .map(|k| c * (k as f64 + 1.0) / 7.0 + rng.normal())
                .collect(),
        );
        y.push(label);
    }
    (x, y)
}

fn bench_models(c: &mut Criterion) {
    let (xtr, ytr) = dataset(400, 1);
    let (xte, _) = dataset(100, 2);

    let mut train_group = c.benchmark_group("ml_train");
    train_group.sample_size(10);
    for model in model_zoo(7) {
        let name = model.name();
        train_group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter_batched(
                || {
                    model_zoo(7)
                        .into_iter()
                        .find(|m| m.name() == name)
                        .expect("model exists")
                },
                |mut m| m.fit(&xtr, &ytr, 2),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    train_group.finish();

    let mut infer_group = c.benchmark_group("ml_infer");
    infer_group.sample_size(10);
    for mut model in model_zoo(7) {
        model.fit(&xtr, &ytr, 2);
        infer_group.bench_with_input(BenchmarkId::from_parameter(model.name()), &model, |b, m| {
            b.iter(|| m.predict(&xte));
        });
    }
    infer_group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
