//! Criterion micro-benchmarks: numeric SpMM throughput of each format's
//! kernel on this host (the CPU execution path; simulated-GPU numbers are
//! produced by the figure binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lf_cell::{build_cell, CellConfig};
use lf_kernels::{
    BcsrKernel, CellKernel, CsrVectorKernel, DgSparseKernel, EllKernel, SpmmKernel, SputnikKernel,
    TacoKernel, TacoSchedule,
};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{BcsrMatrix, CsrMatrix, DenseMatrix, EllMatrix, Pcg32};

fn bench_formats(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(11);
    let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(4096, 4096, 200_000, 4, &mut rng));
    let j = 64;
    let b = DenseMatrix::random(csr.cols(), j, &mut rng);

    let mut group = c.benchmark_group("spmm_numeric");
    group.throughput(Throughput::Elements((csr.nnz() * j) as u64));
    group.sample_size(10);

    let kernels: Vec<(&str, Box<dyn SpmmKernel<f32>>)> = vec![
        ("csr_vector", Box::new(CsrVectorKernel::new(csr.clone()))),
        ("dgsparse", Box::new(DgSparseKernel::new(csr.clone()))),
        ("sputnik", Box::new(SputnikKernel::new(csr.clone()))),
        (
            "taco",
            Box::new(TacoKernel::new(csr.clone(), TacoSchedule::default())),
        ),
        ("ell", Box::new(EllKernel::new(EllMatrix::from_csr(&csr)))),
        (
            "bcsr",
            Box::new(BcsrKernel::new(BcsrMatrix::from_csr(&csr, 8, 8).unwrap())),
        ),
    ];
    for (name, kernel) in &kernels {
        group.bench_with_input(BenchmarkId::from_parameter(*name), kernel, |bch, k| {
            bch.iter(|| k.run(&b).unwrap());
        });
    }
    // CELL across the partition sweep, engine path vs the pre-engine
    // (scoped-spawn, always-atomic) path — the speedup the execution
    // engine claims lives in this comparison.
    for p in [4usize, 16, 32] {
        let k = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(p)).unwrap());
        group.bench_with_input(BenchmarkId::new("cell", p), &k, |bch, k| {
            bch.iter(|| k.run(&b).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cell_legacy", p), &k, |bch, k| {
            bch.iter(|| k.run_legacy(&b).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
