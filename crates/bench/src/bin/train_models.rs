//! Train the LiteForm pipeline on the training corpus and save the
//! pretrained `ModelBundle` the other binaries load — the paper's
//! one-off offline step (§5.1, amortized over future uses).

use lf_bench::{pipeline, write_json, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    let path = pipeline::default_bundle_path(&env);
    // Force retraining by ignoring any existing cache.
    let _ = std::fs::remove_file(&path);
    let (_, stats) = pipeline::train_pipeline(&env, Some(&path));
    let stats = stats.expect("cache was removed, training must run");
    println!(
        "trained on {} matrices: {} selection samples ({:.0}% TRUE), {} partition samples",
        stats.matrices,
        stats.selection_samples,
        stats.selection_positive_rate * 100.0,
        stats.partition_samples
    );
    println!(
        "labeling {:.1} s, model fitting {:.3} s -> bundle at {}",
        stats.labeling_s,
        stats.fit_s,
        path.display()
    );
    write_json(&env.results_dir, "train_models_stats", &stats);
}
