//! SpMM execution-engine benchmark: per-kernel numeric throughput on this
//! host, with the CELL kernel measured on both the pre-engine path
//! (`run_legacy`: one scoped spawn/join per bucket, per-row heap
//! accumulator, atomics everywhere) and the pooled engine path (`run`).
//!
//! Writes a machine-readable artifact:
//!
//! * full mode (default) — the ISSUE's reference configuration
//!   (4096×4096 `mixed_regions`, 200k nnz, J=64, p ∈ {4, 16, 32}) into
//!   `results/bench_spmm.json` (`LF_RESULTS_DIR` overrides);
//! * `--quick` — a seconds-scale smoke at reduced sizes into
//!   `target/bench-spmm/bench_spmm.json`, exiting non-zero if the engine
//!   path regresses catastrophically vs the legacy path. Wired into
//!   `scripts/verify.sh --bench`.

use lf_bench::{fmt, geomean, write_json, Table};
use lf_cell::{build_cell, CellConfig};
use lf_kernels::{
    BcsrKernel, CellKernel, CsrScalarKernel, CsrVectorKernel, DgSparseKernel, EllKernel,
    SellKernel, SpmmKernel, SputnikKernel, TacoKernel, TacoSchedule,
};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{BcsrMatrix, CsrMatrix, DenseMatrix, EllMatrix, Pcg32, SellMatrix};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct MatrixInfo {
    kind: &'static str,
    rows: usize,
    cols: usize,
    nnz: usize,
    j: usize,
}

#[derive(Serialize)]
struct KernelTime {
    name: String,
    time_ms: f64,
}

#[derive(Serialize)]
struct CellComparison {
    partitions: usize,
    legacy_ms: f64,
    engine_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Artifact {
    mode: &'static str,
    matrix: MatrixInfo,
    reps: usize,
    kernels: Vec<KernelTime>,
    cell: Vec<CellComparison>,
    geomean_speedup: f64,
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, nnz, j, reps) = if quick {
        (512, 12_000, 16, 3)
    } else {
        (4096, 200_000, 64, 5)
    };

    let mut rng = Pcg32::seed_from_u64(11);
    let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(n, n, nnz, 4, &mut rng));
    let b = DenseMatrix::random(csr.cols(), j, &mut rng);
    let matrix = MatrixInfo {
        kind: "mixed_regions",
        rows: csr.rows(),
        cols: csr.cols(),
        nnz: csr.nnz(),
        j,
    };
    eprintln!(
        "bench_spmm: {}x{} nnz={} J={j} reps={reps} ({})",
        csr.rows(),
        csr.cols(),
        csr.nnz(),
        if quick { "quick" } else { "full" }
    );

    // --- All kernels on the shared engine -----------------------------
    let kernels: Vec<(&str, Box<dyn SpmmKernel<f32>>)> = vec![
        ("csr_scalar", Box::new(CsrScalarKernel::new(csr.clone()))),
        ("csr_vector", Box::new(CsrVectorKernel::new(csr.clone()))),
        ("dgsparse", Box::new(DgSparseKernel::new(csr.clone()))),
        ("sputnik", Box::new(SputnikKernel::new(csr.clone()))),
        (
            "taco",
            Box::new(TacoKernel::new(csr.clone(), TacoSchedule::default())),
        ),
        ("ell", Box::new(EllKernel::new(EllMatrix::from_csr(&csr)))),
        (
            "sell",
            Box::new(SellKernel::new(SellMatrix::from_csr(&csr, 32).unwrap())),
        ),
        (
            "bcsr",
            Box::new(BcsrKernel::new(BcsrMatrix::from_csr(&csr, 8, 8).unwrap())),
        ),
    ];
    let mut kernel_times = Vec::new();
    let mut t = Table::new(&["kernel", "time_ms"]);
    for (name, k) in &kernels {
        let ms = time_ms(reps, || {
            k.run(&b).unwrap();
        });
        t.row(&[name.to_string(), fmt(ms)]);
        kernel_times.push(KernelTime {
            name: name.to_string(),
            time_ms: ms,
        });
    }

    // --- CELL: legacy engine vs pooled engine, p in {4, 16, 32} -------
    let mut cell_rows = Vec::new();
    let mut speedups = Vec::new();
    let mut ct = Table::new(&["cell", "legacy_ms", "engine_ms", "speedup"]);
    for p in [4usize, 16, 32] {
        let k = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(p)).unwrap());
        let legacy_ms = time_ms(reps, || {
            k.run_legacy(&b).unwrap();
        });
        let engine_ms = time_ms(reps, || {
            k.run(&b).unwrap();
        });
        let speedup = legacy_ms / engine_ms;
        ct.row(&[
            format!("p={p}"),
            fmt(legacy_ms),
            fmt(engine_ms),
            fmt(speedup),
        ]);
        kernel_times.push(KernelTime {
            name: format!("cell_p{p}"),
            time_ms: engine_ms,
        });
        cell_rows.push(CellComparison {
            partitions: p,
            legacy_ms,
            engine_ms,
            speedup,
        });
        speedups.push(speedup);
    }
    let gm = geomean(&speedups).unwrap_or(0.0);

    t.print();
    println!();
    ct.print();
    println!(
        "\ncell engine speedup geomean over p in {{4,16,32}}: {}x",
        fmt(gm)
    );

    let artifact = Artifact {
        mode: if quick { "quick" } else { "full" },
        matrix,
        reps,
        kernels: kernel_times,
        cell: cell_rows,
        geomean_speedup: gm,
    };
    let dir = if quick {
        PathBuf::from("target/bench-spmm")
    } else {
        std::env::var("LF_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"))
    };
    write_json(&dir, "bench_spmm", &artifact);

    if quick && gm < 0.8 {
        eprintln!("bench_spmm: FAIL — engine path catastrophically slower than legacy ({gm}x)");
        std::process::exit(1);
    }
}
