//! SpMM execution-engine benchmark: per-kernel numeric throughput on this
//! host, with the CELL kernel measured on both the pre-engine path
//! (`run_legacy`: one scoped spawn/join per bucket, per-row heap
//! accumulator, atomics everywhere) and the pooled engine path (`run`),
//! plus a three-way engine comparison per kernel: forced-scalar lanes
//! (the pre-SIMD loop shapes) vs the SIMD gather microkernels at the
//! default tile vs SIMD at the cost-model-tuned tile (`plan_tile`).
//!
//! All three engines are measured **in-process on the same operand**, so
//! the ratios are free of the cross-run variance this host shows on
//! absolute times.
//!
//! Writes a machine-readable artifact:
//!
//! * full mode (default) — the ISSUE's reference configuration
//!   (4096×4096 `mixed_regions`, 200k nnz, J=64, p ∈ {4, 16, 32}) into
//!   `results/bench_spmm.json` (`LF_RESULTS_DIR` overrides);
//! * `--quick` — a seconds-scale smoke at reduced sizes into
//!   `target/bench-spmm/bench_spmm.json`, exiting non-zero if the engine
//!   path regresses catastrophically vs the legacy path **or** the SIMD
//!   engine fails its speedup floor over the scalar engine. Wired into
//!   `scripts/verify.sh --bench`.

use lf_bench::{fmt, geomean, write_json, Table};
use lf_cell::{build_cell, CellConfig};
use lf_cost::tile::{plan_tile, TileFeatures};
use lf_kernels::{
    simd_enabled, BcsrKernel, CellKernel, CsrScalarKernel, CsrVectorKernel, DgSparseKernel,
    EllKernel, Lanes, SellKernel, SpmmKernel, SputnikKernel, TacoKernel, TacoSchedule, TileParams,
};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{BcsrMatrix, CsrMatrix, DenseMatrix, EllMatrix, Pcg32, SellMatrix};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct MatrixInfo {
    kind: &'static str,
    rows: usize,
    cols: usize,
    nnz: usize,
    j: usize,
}

#[derive(Serialize)]
struct KernelTime {
    name: String,
    time_ms: f64,
}

#[derive(Serialize)]
struct CellComparison {
    partitions: usize,
    legacy_ms: f64,
    engine_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SimdComparison {
    name: String,
    scalar_ms: f64,
    simd_ms: f64,
    tuned_ms: f64,
    /// scalar vs the better of {default SIMD tile, tuned tile}.
    speedup: f64,
}

#[derive(Serialize)]
struct Artifact {
    mode: &'static str,
    matrix: MatrixInfo,
    reps: usize,
    simd_enabled: bool,
    kernels: Vec<KernelTime>,
    cell: Vec<CellComparison>,
    geomean_speedup: f64,
    simd: Vec<SimdComparison>,
    simd_geomean_speedup: f64,
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick keeps the reference J=64: the gather microkernels amortize
    // their per-nnz gather cost over the dense width, so a J=16 smoke
    // would measure gather overhead, not the engine.
    let (n, nnz, j, reps) = if quick {
        (1024, 60_000, 64, 3)
    } else {
        (4096, 200_000, 64, 5)
    };

    let mut rng = Pcg32::seed_from_u64(11);
    let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(n, n, nnz, 4, &mut rng));
    let b = DenseMatrix::random(csr.cols(), j, &mut rng);
    let matrix = MatrixInfo {
        kind: "mixed_regions",
        rows: csr.rows(),
        cols: csr.cols(),
        nnz: csr.nnz(),
        j,
    };
    eprintln!(
        "bench_spmm: {}x{} nnz={} J={j} reps={reps} ({})",
        csr.rows(),
        csr.cols(),
        csr.nnz(),
        if quick { "quick" } else { "full" }
    );

    // --- All kernels on the shared engine -----------------------------
    let kernels: Vec<(&str, Box<dyn SpmmKernel<f32>>)> = vec![
        ("csr_scalar", Box::new(CsrScalarKernel::new(csr.clone()))),
        ("csr_vector", Box::new(CsrVectorKernel::new(csr.clone()))),
        ("dgsparse", Box::new(DgSparseKernel::new(csr.clone()))),
        ("sputnik", Box::new(SputnikKernel::new(csr.clone()))),
        (
            "taco",
            Box::new(TacoKernel::new(csr.clone(), TacoSchedule::default())),
        ),
        ("ell", Box::new(EllKernel::new(EllMatrix::from_csr(&csr)))),
        (
            "sell",
            Box::new(SellKernel::new(SellMatrix::from_csr(&csr, 32).unwrap())),
        ),
        (
            "bcsr",
            Box::new(BcsrKernel::new(BcsrMatrix::from_csr(&csr, 8, 8).unwrap())),
        ),
    ];
    let mut kernel_times = Vec::new();
    let mut t = Table::new(&["kernel", "time_ms"]);
    for (name, k) in &kernels {
        let ms = time_ms(reps, || {
            k.run(&b).unwrap();
        });
        t.row(&[name.to_string(), fmt(ms)]);
        kernel_times.push(KernelTime {
            name: name.to_string(),
            time_ms: ms,
        });
    }

    // --- CELL: legacy engine vs pooled engine, p in {4, 16, 32} -------
    let cell_kernels: Vec<(usize, CellKernel<f32>)> = [4usize, 16, 32]
        .into_iter()
        .map(|p| {
            (
                p,
                CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(p)).unwrap()),
            )
        })
        .collect();
    let mut cell_rows = Vec::new();
    let mut speedups = Vec::new();
    let mut ct = Table::new(&["cell", "legacy_ms", "engine_ms", "speedup"]);
    for (p, k) in &cell_kernels {
        let legacy_ms = time_ms(reps, || {
            k.run_legacy(&b).unwrap();
        });
        let engine_ms = time_ms(reps, || {
            k.run(&b).unwrap();
        });
        let speedup = legacy_ms / engine_ms;
        ct.row(&[
            format!("p={p}"),
            fmt(legacy_ms),
            fmt(engine_ms),
            fmt(speedup),
        ]);
        kernel_times.push(KernelTime {
            name: format!("cell_p{p}"),
            time_ms: engine_ms,
        });
        cell_rows.push(CellComparison {
            partitions: *p,
            legacy_ms,
            engine_ms,
            speedup,
        });
        speedups.push(speedup);
    }
    let gm = geomean(&speedups).unwrap_or(0.0);

    // --- Scalar lanes vs SIMD gather vs cost-model-tuned tile ---------
    // One row per distinct numeric path (the four CSR-family kernels
    // share `parallel_csr_spmm_tiled`; `csr` stands in for all of them).
    let scalar_tile = TileParams::default().with_lanes(Lanes::Scalar);
    let default_tile = TileParams::default();
    let tuned_tile = plan_tile(
        TileFeatures::new(csr.rows(), csr.nnz(), std::mem::size_of::<f32>()),
        j,
    );
    let k_csr = CsrScalarKernel::new(csr.clone());
    let k_taco = TacoKernel::new(csr.clone(), TacoSchedule::default());
    let k_ell = EllKernel::new(EllMatrix::from_csr(&csr));
    let k_sell = SellKernel::new(SellMatrix::from_csr(&csr, 32).unwrap());
    let k_bcsr = BcsrKernel::new(BcsrMatrix::from_csr(&csr, 8, 8).unwrap());
    type RunTiled<'a> = Box<dyn Fn(TileParams) + 'a>;
    let mut simd_cases: Vec<(String, RunTiled)> = vec![
        (
            "csr".into(),
            Box::new(|t| {
                k_csr.run_tiled(&b, t).unwrap();
            }),
        ),
        (
            "taco".into(),
            Box::new(|t| {
                k_taco.run_tiled(&b, t).unwrap();
            }),
        ),
        (
            "ell".into(),
            Box::new(|t| {
                k_ell.run_tiled(&b, t).unwrap();
            }),
        ),
        (
            "sell".into(),
            Box::new(|t| {
                k_sell.run_tiled(&b, t).unwrap();
            }),
        ),
        (
            "bcsr".into(),
            Box::new(|t| {
                k_bcsr.run_tiled(&b, t).unwrap();
            }),
        ),
    ];
    for (p, k) in &cell_kernels {
        let b = &b;
        simd_cases.push((
            format!("cell_p{p}"),
            Box::new(move |t| {
                k.run_tiled(b, t).unwrap();
            }),
        ));
    }
    let mut simd_rows = Vec::new();
    let mut simd_speedups = Vec::new();
    let mut st = Table::new(&["engine", "scalar_ms", "simd_ms", "tuned_ms", "speedup"]);
    for (name, run) in &simd_cases {
        let scalar_ms = time_ms(reps, || run(scalar_tile));
        let simd_ms = time_ms(reps, || run(default_tile));
        let tuned_ms = time_ms(reps, || run(tuned_tile));
        let speedup = scalar_ms / simd_ms.min(tuned_ms);
        st.row(&[
            name.clone(),
            fmt(scalar_ms),
            fmt(simd_ms),
            fmt(tuned_ms),
            fmt(speedup),
        ]);
        simd_rows.push(SimdComparison {
            name: name.clone(),
            scalar_ms,
            simd_ms,
            tuned_ms,
            speedup,
        });
        simd_speedups.push(speedup);
    }
    let simd_gm = geomean(&simd_speedups).unwrap_or(0.0);

    t.print();
    println!();
    ct.print();
    println!(
        "\ncell engine speedup geomean over p in {{4,16,32}}: {}x",
        fmt(gm)
    );
    println!();
    st.print();
    println!(
        "\nSIMD-vs-scalar speedup geomean ({}): {}x",
        if simd_enabled() {
            "SIMD on"
        } else {
            "LF_SIMD=off — SIMD lanes resolve to scalar"
        },
        fmt(simd_gm)
    );

    let artifact = Artifact {
        mode: if quick { "quick" } else { "full" },
        matrix,
        reps,
        simd_enabled: simd_enabled(),
        kernels: kernel_times,
        cell: cell_rows,
        geomean_speedup: gm,
        simd: simd_rows,
        simd_geomean_speedup: simd_gm,
    };
    let dir = if quick {
        PathBuf::from("target/bench-spmm")
    } else {
        std::env::var("LF_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"))
    };
    write_json(&dir, "bench_spmm", &artifact);

    if quick && gm < 0.8 {
        eprintln!("bench_spmm: FAIL — engine path catastrophically slower than legacy ({gm}x)");
        std::process::exit(1);
    }
    // SIMD smoke floor: the gather microkernels must beat the forced
    // scalar engine by a clear margin (geomean across the distinct
    // numeric paths). Skipped when the escape hatch disables SIMD —
    // both engines are then the same code.
    if quick && simd_enabled() && simd_gm < 1.2 {
        eprintln!(
            "bench_spmm: FAIL — SIMD engine below its 1.2x geomean floor over scalar ({simd_gm}x)"
        );
        std::process::exit(1);
    }
}
