//! Figure 8: format-construction overhead on the GNN graphs — SparseTIR's
//! autotuning, STile's microbenchmark-driven search, and LiteForm's
//! inference + cost-model search.
//!
//! Paper reference: SparseTIR and STile carry geomean overheads of 65.5×
//! and 42.3× LiteForm's, respectively (LiteForm is orders of magnitude
//! cheaper in absolute seconds).

use lf_baselines::{STile, SparseTir, System};
use lf_bench::{fmt, geomean, pipeline, write_json, BenchEnv, Table};
use lf_data::GNN_GRAPHS;
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;
use liteform_core::PreprocessProfile;
use serde::Serialize;

const J: usize = 128;

#[derive(Serialize)]
struct Row {
    graph: String,
    sparsetir_s: f64,
    stile_s: f64,
    liteform_s: f64,
    /// Where LiteForm's seconds (and allocations) went, stage by stage.
    liteform_profile: PreprocessProfile,
}

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let (liteform, _) = pipeline::train_pipeline(&env, Some(&pipeline::default_bundle_path(&env)));
    let tir = SparseTir::default();
    let stile = STile::default();

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "graph",
        "sparsetir(s)",
        "stile(s)",
        "liteform(s)",
        "tir/lf",
        "stile/lf",
    ]);
    for spec in &GNN_GRAPHS {
        eprintln!("[fig8] {} ...", spec.name);
        let csr: CsrMatrix<f32> = spec.build(env.scale);
        let tir_s = tir
            .autotune(&csr, J, &device)
            .map(|(_, _, c)| c.total_s())
            .unwrap_or(f64::NAN);
        let stile_s = stile
            .prepare(&csr, J, &device)
            .map(|p| p.construction.total_s())
            .unwrap_or(f64::NAN);
        let plan = liteform.compose(&csr, J);
        let lf_profile = plan.profile;
        let lf_s = plan.overhead.total_s();
        table.row(&[
            spec.name.to_string(),
            fmt(tir_s),
            fmt(stile_s),
            fmt(lf_s),
            fmt(tir_s / lf_s),
            fmt(stile_s / lf_s),
        ]);
        rows.push(Row {
            graph: spec.name.to_string(),
            sparsetir_s: tir_s,
            stile_s,
            liteform_s: lf_s,
            liteform_profile: lf_profile,
        });
    }

    let tir_ratio = geomean(
        &rows
            .iter()
            .map(|r| r.sparsetir_s / r.liteform_s)
            .collect::<Vec<_>>(),
    );
    let stile_ratio = geomean(
        &rows
            .iter()
            .map(|r| r.stile_s / r.liteform_s)
            .collect::<Vec<_>>(),
    );

    println!("\nFigure 8 — format construction overhead (seconds) at J={J}\n");
    table.print();
    println!(
        "\ngeomean overhead vs LiteForm: sparsetir {}x (paper 65.5x), stile {}x (paper 42.3x)",
        tir_ratio.map_or("n/a".into(), fmt),
        stile_ratio.map_or("n/a".into(), fmt)
    );

    // Where LiteForm's preprocessing time and allocations went.
    let mut agg = PreprocessProfile::default();
    for r in &rows {
        agg.accumulate(&r.liteform_profile);
    }
    let mut stage_table = Table::new(&["liteform stage", "wall(s)", "allocs", "alloc MiB"]);
    for (name, s) in agg.named_stages() {
        stage_table.row(&[
            name.to_string(),
            fmt(s.wall_s),
            s.alloc_calls.to_string(),
            fmt(s.alloc_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    println!("\nLiteForm preprocessing profile (summed over graphs):\n");
    stage_table.print();

    write_json(&env.results_dir, "fig8_overhead", &rows);
}
