//! Extension experiment (§8, Limitations): LiteForm "requires model
//! retraining for new architectures". We quantify that: train the
//! partition predictor against the V100 model, then evaluate it against
//! ground truth computed on an A100 model (bigger L2, faster DRAM,
//! cheaper atomics — the optimal partition counts shift), and finally
//! retrain on A100 labels to show accuracy recovering.

use lf_bench::{mlbench, write_json, BenchEnv, Table};
use lf_data::Corpus;
use lf_ml::{accuracy, Classifier, RandomForest};
use lf_sim::DeviceModel;
use serde::Serialize;

#[derive(Serialize)]
struct TransferResult {
    v100_on_v100: f64,
    v100_on_a100: f64,
    a100_on_a100: f64,
    label_shift_fraction: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    let v100 = DeviceModel::v100();
    let a100 = DeviceModel::a100();
    let corpus: Corpus<f32> = Corpus::generate(env.corpus_spec());

    eprintln!("[transfer] labelling on V100 model ...");
    let (v_data, _) = mlbench::partition_dataset(&corpus, &v100);
    eprintln!("[transfer] labelling on A100 model ...");
    let (a_data, _) = mlbench::partition_dataset(&corpus, &a100);

    // How much does the ground truth itself move across devices?
    let shifted = v_data
        .y
        .iter()
        .zip(&a_data.y)
        .filter(|(a, b)| a != b)
        .count();
    let shift = shifted as f64 / v_data.len().max(1) as f64;

    // One split, applied to both label sets, so every sample's V100 and
    // A100 labels stay aligned (the two datasets share features and
    // ordering; only the ground-truth labels differ).
    let (v_split, train_idx, test_idx) = v_data.split_with_indices(0.8, env.seed);
    let a_train_x: Vec<Vec<f64>> = v_split.train.x.clone();
    let a_train_y: Vec<usize> = train_idx.iter().map(|&i| a_data.y[i]).collect();
    let a_test_y: Vec<usize> = test_idx.iter().map(|&i| a_data.y[i]).collect();

    let mut rf = RandomForest::new(60, 12, env.seed);
    rf.fit(&v_split.train.x, &v_split.train.y, v_data.n_classes);
    let v100_on_v100 = accuracy(&v_split.test.y, &rf.predict(&v_split.test.x));
    // The same trained model judged against A100 ground truth.
    let v100_on_a100 = accuracy(&a_test_y, &rf.predict(&v_split.test.x));

    let mut rf2 = RandomForest::new(60, 12, env.seed ^ 5);
    rf2.fit(&a_train_x, &a_train_y, a_data.n_classes);
    let a100_on_a100 = accuracy(&a_test_y, &rf2.predict(&v_split.test.x));

    let result = TransferResult {
        v100_on_v100,
        v100_on_a100,
        a100_on_a100,
        label_shift_fraction: shift,
    };

    let mut table = Table::new(&["trained on", "evaluated against", "accuracy"]);
    table.row(&[
        "V100".into(),
        "V100 ground truth".into(),
        format!("{:.1}%", v100_on_v100 * 100.0),
    ]);
    table.row(&[
        "V100".into(),
        "A100 ground truth".into(),
        format!("{:.1}%", v100_on_a100 * 100.0),
    ]);
    table.row(&[
        "A100".into(),
        "A100 ground truth".into(),
        format!("{:.1}%", a100_on_a100 * 100.0),
    ]);

    println!("\nExtension — cross-architecture transfer of the partition predictor\n");
    table.print();
    println!(
        "\noptimal partition labels differ between the devices on {:.1}% of \
         samples;\nretraining recovers the gap — the §8 retraining requirement, quantified.",
        shift * 100.0
    );
    write_json(&env.results_dir, "transfer_learning", &result);
}
