//! Ablation study of the CELL design choices (called out in DESIGN.md).
//!
//! On each GNN graph (plus a mixed-density synthetic where per-partition
//! widths matter), start from the full tuned CELL composition and remove
//! one design element at a time:
//!
//! * `-partitions`   — force a single column partition;
//! * `-per-part W`   — one shared width cap instead of per-partition caps;
//! * `-folding`      — natural bucket widths (long rows pad, never fold);
//! * `-eqnnz blocks` — hyb-style fixed rows-per-block mapping;
//! * `-fusion`       — one launch per partition instead of one fused.
//!
//! Each column reports the slowdown factor versus the full composition.

use lf_bench::{fmt, geomean, write_json, BenchEnv, Table};
use lf_cell::{build_cell, CellConfig};
use lf_cost::partition::optimal_partitions;
use lf_cost::search::optimal_widths_for_matrix;
use lf_kernels::cell::FusionMode;
use lf_kernels::{CellKernel, SpmmKernel};
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;
use serde::Serialize;
use std::collections::BTreeMap;

const J: usize = 128;

#[derive(Serialize)]
struct Row {
    graph: String,
    full_ms: f64,
    slowdowns: BTreeMap<String, f64>,
}

fn time_of(csr: &CsrMatrix<f32>, cfg: &CellConfig, fusion: FusionMode, d: &DeviceModel) -> f64 {
    let cell = build_cell(csr, cfg).expect("valid config");
    CellKernel::with_fusion(cell, fusion).profile(J, d).time_ms
}

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let variants = [
        "-partitions",
        "-per-part W",
        "-folding",
        "-eqnnz blocks",
        "-fusion",
    ];
    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&{
        let mut h = vec!["graph", "full(ms)"];
        h.extend(variants);
        h
    });

    // GNN graphs plus a mixed-density synthetic — the workload where
    // per-partition widths (vs one shared cap) actually differ.
    let mut workloads: Vec<(String, CsrMatrix<f32>)> = lf_data::GNN_GRAPHS
        .iter()
        .map(|spec| (spec.name.to_string(), spec.build(env.scale)))
        .collect();
    {
        let mut rng = lf_sparse::Pcg32::seed_from_u64(env.seed ^ 0xab1a);
        let coo = lf_sparse::gen::mixed_regions::<f32>(16_384, 16_384, 900_000, 4, &mut rng);
        workloads.push(("mixed-16k".to_string(), CsrMatrix::from_coo(&coo)));
    }

    for (name, csr) in &workloads {
        eprintln!("[ablations] {name} ...");
        let csr: &CsrMatrix<f32> = csr;
        // Full composition: tuned partitions + per-partition widths.
        let sweep = optimal_partitions(csr, J, &device);
        let widths = optimal_widths_for_matrix(csr, sweep.best_p, J);
        let full_cfg = CellConfig {
            num_partitions: sweep.best_p,
            max_widths: Some(widths.clone()),
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let full_ms = time_of(csr, &full_cfg, FusionMode::Full, &device);

        let mut slow = BTreeMap::new();
        // 1. No partitioning.
        let cfg = CellConfig {
            num_partitions: 1,
            max_widths: Some(optimal_widths_for_matrix(csr, 1, J)),
            ..full_cfg.clone()
        };
        slow.insert(
            variants[0].to_string(),
            time_of(csr, &cfg, FusionMode::Full, &device) / full_ms,
        );
        // 2. Shared width cap (max of the per-partition choices).
        let shared = widths.iter().copied().max().unwrap_or(1);
        let cfg = CellConfig {
            max_widths: Some(vec![shared]),
            ..full_cfg.clone()
        };
        slow.insert(
            variants[1].to_string(),
            time_of(csr, &cfg, FusionMode::Full, &device) / full_ms,
        );
        // 3. No folding: natural widths.
        let cfg = CellConfig {
            max_widths: None,
            ..full_cfg.clone()
        };
        slow.insert(
            variants[2].to_string(),
            time_of(csr, &cfg, FusionMode::Full, &device) / full_ms,
        );
        // 4. hyb block mapping.
        let cfg = CellConfig {
            uniform_block_nnz: false,
            ..full_cfg.clone()
        };
        slow.insert(
            variants[3].to_string(),
            time_of(csr, &cfg, FusionMode::Full, &device) / full_ms,
        );
        // 5. Per-partition launches.
        slow.insert(
            variants[4].to_string(),
            time_of(csr, &full_cfg, FusionMode::PerPartition, &device) / full_ms,
        );

        let mut line = vec![name.clone(), fmt(full_ms)];
        for v in variants {
            line.push(format!("{}x", fmt(slow[v])));
        }
        table.row(&line);
        rows.push(Row {
            graph: name.clone(),
            full_ms,
            slowdowns: slow,
        });
    }

    // Geomean row.
    let mut line = vec!["GEOMEAN".to_string(), String::new()];
    for v in variants {
        let s: Vec<f64> = rows.iter().map(|r| r.slowdowns[v]).collect();
        line.push(format!("{}x", fmt(geomean(&s).unwrap_or(f64::NAN))));
    }
    table.row(&line);

    println!(
        "\nAblation — slowdown vs the full CELL composition (J={J}; >1 means \
         the removed element was helping)\n"
    );
    table.print();
    write_json(&env.results_dir, "ablations", &rows);
}
