//! Figure 6: normalized speedup relative to cuSPARSE for SpMM on the
//! seven GNN graphs, geometric mean over dense widths J ∈ {32..512},
//! for Triton, Sputnik, dgSPARSE, TACO, SparseTIR, STile and LiteForm.
//!
//! Paper reference values (geomean over the graph set): LiteForm 2.06×,
//! SparseTIR 1.63×, STile 1.36×, dgSPARSE 1.16×, Sputnik 1.14×,
//! TACO 0.49×, Triton 0.11× (with OOM on the largest graphs).

use lf_baselines::roster;
use lf_bench::{fmt, geomean, pipeline, write_json, BenchEnv, Table};
use lf_data::GNN_GRAPHS;
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;
use serde::Serialize;
use std::collections::BTreeMap;

const DENSE_WIDTHS: [usize; 5] = [32, 64, 128, 256, 512];

#[derive(Serialize)]
struct Fig6Result {
    /// speedups\[system\]\[graph\] = geomean over J of cusparse/system.
    speedups: BTreeMap<String, BTreeMap<String, Option<f64>>>,
    /// Overall geomean per system across graphs.
    overall: BTreeMap<String, Option<f64>>,
}

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let (liteform, _) = pipeline::train_pipeline(&env, Some(&pipeline::default_bundle_path(&env)));

    let systems = roster::<f32>();
    let mut speedups: BTreeMap<String, BTreeMap<String, Option<f64>>> = BTreeMap::new();

    let mut table = Table::new(&{
        let mut h = vec!["graph"];
        h.extend(systems.iter().map(|s| s.name()));
        h.push("liteform");
        h
    });

    for spec in &GNN_GRAPHS {
        eprintln!("[fig6] building {} ...", spec.name);
        let csr: CsrMatrix<f32> = spec.build(env.scale);
        // cuSPARSE reference per J.
        let cusparse: Vec<f64> = DENSE_WIDTHS
            .iter()
            .map(|&j| {
                systems[0]
                    .kernel_time_ms(&csr, j, &device)
                    .expect("cuSPARSE always fits at Small scale")
            })
            .collect();

        let mut row = vec![spec.name.to_string()];
        for system in &systems {
            let ratios: Vec<f64> = DENSE_WIDTHS
                .iter()
                .enumerate()
                .filter_map(|(k, &j)| {
                    system
                        .kernel_time_ms(&csr, j, &device)
                        .map(|t| cusparse[k] / t)
                })
                .collect();
            // OOM on any width ⇒ report OOM like the paper's bars.
            let s = if ratios.len() == DENSE_WIDTHS.len() {
                geomean(&ratios)
            } else {
                None
            };
            speedups
                .entry(system.name().to_string())
                .or_default()
                .insert(spec.name.to_string(), s);
            row.push(s.map_or("OOM".to_string(), fmt));
        }
        // LiteForm.
        let ratios: Vec<f64> = DENSE_WIDTHS
            .iter()
            .enumerate()
            .map(|(k, &j)| cusparse[k] / liteform.simulated_time_ms(&csr, j))
            .collect();
        let s = geomean(&ratios);
        speedups
            .entry("liteform".to_string())
            .or_default()
            .insert(spec.name.to_string(), s);
        row.push(s.map_or("OOM".to_string(), fmt));
        table.row(&row);
    }

    // Overall geomeans (matching the paper's headline numbers).
    let mut overall = BTreeMap::new();
    let mut last = vec!["GEOMEAN".to_string()];
    let mut names: Vec<String> = systems.iter().map(|s| s.name().to_string()).collect();
    names.push("liteform".to_string());
    for name in &names {
        let per_graph: Vec<f64> = speedups[name].values().filter_map(|v| *v).collect();
        let g = geomean(&per_graph);
        overall.insert(name.clone(), g);
        last.push(g.map_or("OOM".to_string(), fmt));
    }
    table.row(&last);

    println!("\nFigure 6 — speedup over cuSPARSE (geomean across J = 32..512)\n");
    table.print();
    println!(
        "\npaper reference geomeans: liteform 2.06  sparsetir 1.63  stile 1.36  \
         dgsparse 1.16  sputnik 1.14  taco 0.49  triton 0.11 (OOM on big graphs)"
    );

    write_json(
        &env.results_dir,
        "fig6_speedup",
        &Fig6Result { speedups, overall },
    );
}
