//! Extension: which of the paper's hand-picked features (Tables 2–3) do
//! the trained predictors actually lean on? Permutation importance over
//! the corpus-labelled datasets — supporting evidence for §5.2's
//! observation that density statistics beat raw counts for the partition
//! predictor.

use lf_bench::{fmt, mlbench, write_json, BenchEnv, Table};
use lf_data::Corpus;
use lf_ml::{permutation_importance, Classifier, RandomForest};
use lf_sim::DeviceModel;
use lf_sparse::{FormatFeatures, PartitionFeatures};
use serde::Serialize;

#[derive(Serialize)]
struct Importances {
    format_selection: Vec<(String, f64)>,
    partition_count: Vec<(String, f64)>,
}

fn ranked(names: &[&str], imp: &[f64]) -> Vec<(String, f64)> {
    let mut v: Vec<(String, f64)> = names
        .iter()
        .zip(imp)
        .map(|(n, &i)| (n.to_string(), i))
        .collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    v
}

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let corpus: Corpus<f32> = Corpus::generate(env.corpus_spec());

    eprintln!("[importance] labelling format-selection task ...");
    let sel = mlbench::format_selection_dataset(&corpus, &device);
    let mut rf = RandomForest::new(60, 12, env.seed);
    rf.fit(&sel.x, &sel.y, sel.n_classes);
    let sel_imp = permutation_importance(&rf, &sel.x, &sel.y, 5, env.seed ^ 2);

    eprintln!("[importance] labelling partition task ...");
    let (part, _) = mlbench::partition_dataset(&corpus, &device);
    let mut rf2 = RandomForest::new(60, 12, env.seed ^ 3);
    rf2.fit(&part.x, &part.y, part.n_classes);
    let part_imp = permutation_importance(&rf2, &part.x, &part.y, 5, env.seed ^ 4);

    let result = Importances {
        format_selection: ranked(FormatFeatures::names(), &sel_imp),
        partition_count: ranked(PartitionFeatures::names(), &part_imp),
    };

    println!("\nPermutation feature importance (accuracy drop when shuffled)\n");
    let mut t = Table::new(&["format-selection feature", "importance"]);
    for (n, i) in &result.format_selection {
        t.row(&[n.clone(), fmt(*i)]);
    }
    t.print();
    println!();
    let mut t = Table::new(&["partition-count feature", "importance"]);
    for (n, i) in &result.partition_count {
        t.row(&[n.clone(), fmt(*i)]);
    }
    t.print();
    println!(
        "\n§5.2's claim to check: the density statistics (and J) should rank \
         above raw counts for the partition predictor."
    );
    write_json(&env.results_dir, "feature_importance", &result);
}
