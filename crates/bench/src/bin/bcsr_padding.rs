//! §2.1 anecdote: "in one of our experiments using BCSR with a block size
//! 8x8, we ended up with an increase in the memory footprint of more than
//! 60x. The padding ratio reached as high as 99%."
//!
//! This binary reproduces the blow-up on a scattered power-law matrix and
//! contrasts it with a block-structured one.

use lf_bench::{write_json, BenchEnv, Table};
use lf_sparse::gen::{block_sparse, power_law, PowerLawConfig};
use lf_sparse::{BcsrMatrix, CsrMatrix, Pcg32};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    matrix: String,
    nnz: usize,
    csr_bytes: usize,
    bcsr_bytes: usize,
    footprint_ratio: f64,
    padding_ratio: f64,
}

fn report<T: lf_sparse::Scalar>(name: &str, csr: &CsrMatrix<T>) -> Row {
    let bcsr = BcsrMatrix::from_csr(csr, 8, 8).expect("valid blocks");
    Row {
        matrix: name.to_string(),
        nnz: csr.nnz(),
        csr_bytes: csr.memory_bytes(),
        bcsr_bytes: bcsr.memory_bytes(),
        footprint_ratio: bcsr.memory_bytes() as f64 / csr.memory_bytes() as f64,
        padding_ratio: bcsr.padding_ratio(),
    }
}

fn main() {
    let env = BenchEnv::from_env();
    let mut rng = Pcg32::seed_from_u64(env.seed);

    // Scattered: a sparse power-law graph — almost every 8x8 block that is
    // touched holds a single non-zero.
    let scattered: CsrMatrix<f32> = CsrMatrix::from_coo(&power_law(
        &PowerLawConfig {
            rows: 60_000,
            cols: 60_000,
            target_nnz: 300_000,
            exponent: 1.8,
            max_degree: Some(600),
        },
        &mut rng,
    ));
    // Structured: aligned dense 8x8 tiles — BCSR's best case.
    let blocky: CsrMatrix<f32> = CsrMatrix::from_coo(&block_sparse(
        60_000,
        60_000,
        8,
        300_000 / 64,
        1.0,
        &mut rng,
    ));

    let rows = vec![
        report("power-law (scattered)", &scattered),
        report("aligned 8x8 blocks", &blocky),
    ];

    let mut table = Table::new(&[
        "matrix",
        "nnz",
        "CSR bytes",
        "BCSR-8x8 bytes",
        "footprint x",
        "padding %",
    ]);
    for r in &rows {
        table.row(&[
            r.matrix.clone(),
            r.nnz.to_string(),
            r.csr_bytes.to_string(),
            r.bcsr_bytes.to_string(),
            format!("{:.1}x", r.footprint_ratio),
            format!("{:.1}%", r.padding_ratio * 100.0),
        ]);
    }
    println!("\n§2.1 anecdote — BCSR 8x8 padding blow-up\n");
    table.print();
    println!(
        "\npaper: scattered matrices reached >60x footprint and 99% padding; \
         the structured case stays near 1x."
    );
    write_json(&env.results_dir, "bcsr_padding", &rows);
}
