//! Figure 7: normalized speedup of LiteForm relative to *optimal-tuned*
//! SparseTIR over the SuiteSparse-like corpus.
//!
//! Paper reference: geomean 0.99× (parity with exhaustive tuning at a
//! fraction of the cost), range 0.19×–5.21×.

use lf_baselines::SparseTir;
use lf_bench::{fmt, pipeline, write_json, BenchEnv, Summary, Table};
use lf_data::Corpus;
use lf_sim::DeviceModel;
use serde::Serialize;

const J: usize = 128;

#[derive(Serialize)]
struct Point {
    id: String,
    rows: usize,
    nnz: f64,
    liteform_ms: f64,
    sparsetir_ms: f64,
    speedup: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let (liteform, _) = pipeline::train_pipeline(&env, Some(&pipeline::default_bundle_path(&env)));
    let corpus: Corpus<f32> = Corpus::generate(env.corpus_spec());
    let tir = SparseTir::default();

    let mut points = Vec::new();
    for (i, m) in corpus.matrices.iter().enumerate() {
        let Some((_, tir_ms, _)) = tir.autotune(&m.csr, J, &device) else {
            continue;
        };
        let lf_ms = liteform.simulated_time_ms(&m.csr, J);
        points.push(Point {
            id: m.id.clone(),
            rows: m.csr.rows(),
            nnz: m.csr.nnz() as f64,
            liteform_ms: lf_ms,
            sparsetir_ms: tir_ms,
            speedup: tir_ms / lf_ms,
        });
        if (i + 1) % 20 == 0 {
            eprintln!("[fig7] {}/{} matrices", i + 1, corpus.len());
        }
    }

    let speedups: Vec<f64> = points.iter().map(|p| p.speedup).collect();
    let summary = Summary::of(&speedups).expect("non-empty corpus");

    // Scatter digest: bucket by decade of rows like the figure's x-axis.
    let mut table = Table::new(&["rows-decade", "n", "min", "geomean", "max"]);
    for decade in 3..7u32 {
        let lo = 10usize.pow(decade);
        let hi = 10usize.pow(decade + 1);
        let in_decade: Vec<f64> = points
            .iter()
            .filter(|p| p.rows >= lo && p.rows < hi)
            .map(|p| p.speedup)
            .collect();
        if let Some(s) = Summary::of(&in_decade) {
            table.row(&[
                format!("1e{decade}..1e{}", decade + 1),
                s.n.to_string(),
                fmt(s.min),
                fmt(s.geomean),
                fmt(s.max),
            ]);
        }
    }

    println!(
        "\nFigure 7 — LiteForm speedup over optimal-tuned SparseTIR, {} corpus matrices at J={J}\n",
        points.len()
    );
    table.print();
    println!(
        "\noverall: geomean {} (paper 0.99), range {}..{} (paper 0.19..5.21)",
        fmt(summary.geomean),
        fmt(summary.min),
        fmt(summary.max)
    );
    write_json(&env.results_dir, "fig7_suitesparse", &points);
}
