//! Diagnostic: per-system simulated cost components on one graph.
//! Not a paper artifact — used to sanity-check the performance model.

use lf_baselines::roster;
use lf_bench::{fmt, BenchEnv, Table};
use lf_cell::build_cell;
use lf_data::GraphSpec;
use lf_kernels::{CellKernel, SpmmKernel};
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;

fn main() {
    let env = BenchEnv::from_env();
    let name = std::env::args().nth(1).unwrap_or_else(|| "cora".into());
    let j: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let device = DeviceModel::v100();
    let spec = GraphSpec::by_name(&name).expect("known graph");
    let csr: CsrMatrix<f32> = spec.build(env.scale);
    let lens = csr.row_lengths();
    let max_len = lens.iter().max().copied().unwrap_or(0);
    let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
    println!(
        "{name}: {}x{} nnz {} maxdeg {max_len} meandeg {:.1} J={j}",
        csr.rows(),
        csr.cols(),
        csr.nnz(),
        mean
    );
    let mut table = Table::new(&[
        "system", "ms", "dram", "l2", "atomic", "Mflop", "util", "imbal", "blocks", "launches",
    ]);
    for system in roster::<f32>() {
        match system.prepare(&csr, j, &device) {
            Some(p) => {
                let prof = p.kernel.profile(j, &device);
                table.row(&[
                    system.name().to_string(),
                    fmt(prof.time_ms),
                    prof.dram_transactions.to_string(),
                    prof.l2_transactions.to_string(),
                    prof.atomic_transactions.to_string(),
                    (prof.flops / 1_000_000).to_string(),
                    fmt(prof.utilization),
                    fmt(prof.imbalance),
                    prof.num_blocks.to_string(),
                    prof.num_launches.to_string(),
                ]);
            }
            None => {
                table.row(&[system.name().to_string(), "OOM".into()]);
            }
        }
    }
    // LiteForm with oracle tuning (what the predictors approximate).
    let (t, config) = liteform_core::training::tuned_cell_time(&csr, j, &device);
    let cell = build_cell(&csr, &config).unwrap();
    let prof = CellKernel::new(cell).profile(j, &device);
    table.row(&[
        format!("cell(p={})", config.num_partitions),
        fmt(t),
        prof.dram_transactions.to_string(),
        prof.l2_transactions.to_string(),
        prof.atomic_transactions.to_string(),
        (prof.flops / 1_000_000).to_string(),
        fmt(prof.utilization),
        fmt(prof.imbalance),
        prof.num_blocks.to_string(),
        prof.num_launches.to_string(),
    ]);
    table.print();
}
