//! Serving-engine benchmark: cache-hit serve vs. cold compose+run.
//!
//! The amortization claim behind `lf-serve` (and §6.4 of the paper): a
//! repeated multiplication on the same matrix should pay only kernel
//! execution, not composition. This bench measures, per partition count
//! `p ∈ {4, 16, 32}` on the reference 4096×4096 `mixed_regions` matrix:
//!
//! * **cold** — `engine.clear()` then serve (fingerprint + compose +
//!   admit + run);
//! * **hit** — serve again (fingerprint + lookup + run);
//! * the resulting speedup (the PR's acceptance bar is ≥ 5× on every
//!   `p`), plus the engine's own counter snapshot;
//!
//! and a concurrent-throughput section: 8 threads hammering 4 warmed
//! handles through one engine.
//!
//! Writes `results/bench_serve.json` (`LF_RESULTS_DIR` overrides); with
//! `--quick`, a seconds-scale smoke into `target/bench-serve/` that
//! exits non-zero if a cache hit fails to beat a cold serve at all.

use lf_bench::{fmt, write_json, Table};
use lf_serve::{MatrixHandle, PinnedLiteForm, ServeConfig, ServeEngine, ServeStats};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{CsrMatrix, DenseMatrix, Pcg32};
use liteform_core::{LiteForm, ModelBundle};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct MatrixInfo {
    kind: &'static str,
    rows: usize,
    cols: usize,
    nnz: usize,
    j: usize,
}

#[derive(Serialize)]
struct ServeRow {
    partitions: usize,
    cold_ms: f64,
    hit_ms: f64,
    hit_payload_ms: f64,
    speedup: f64,
    stats: ServeStats,
}

#[derive(Serialize)]
struct Throughput {
    threads: usize,
    hot_matrices: usize,
    requests: u64,
    wall_s: f64,
    requests_per_s: f64,
    hit_rate: f64,
}

#[derive(Serialize)]
struct BatchBench {
    threads: usize,
    sharers_per_matrix: usize,
    j_per_request: usize,
    fused_j: usize,
    rounds: usize,
    solo_requests_per_s: f64,
    batched_requests_per_s: f64,
    aggregate_speedup: f64,
    batches: u64,
    batched_requests: u64,
}

#[derive(Serialize)]
struct WarmRestart {
    matrices: usize,
    warm_loaded: u64,
    cold_start_ms: f64,
    warmed_ms: f64,
    first_request_speedup: f64,
}

#[derive(Serialize)]
struct Artifact {
    mode: &'static str,
    matrix: MatrixInfo,
    reps: usize,
    serve: Vec<ServeRow>,
    min_speedup: f64,
    throughput: Throughput,
    coalescing: BatchBench,
    warm_restart: WarmRestart,
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // J defaults to the serving sweet spot (GNN feature widths of 8–16
    // are §2.1's motivating workload; at very large J kernel execution
    // dwarfs composition and caching has nothing left to save).
    // `LF_SERVE_J` overrides for sensitivity runs.
    let (n, nnz, j, reps) = if quick {
        (512, 12_000, 16, 3)
    } else {
        let j = std::env::var("LF_SERVE_J")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8);
        // 50k nnz on 4096² is ~0.3% density (≈12 nnz/row) — the regime
        // of the paper's SuiteSparse graphs, and the regime where
        // composition cost dwarfs a single execution. `LF_SERVE_NNZ`
        // overrides for sensitivity runs.
        let nnz = std::env::var("LF_SERVE_NNZ")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50_000);
        (4096, nnz, j, 5)
    };

    let mut rng = Pcg32::seed_from_u64(11);
    let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(n, n, nnz, 4, &mut rng));
    let b = DenseMatrix::random(csr.cols(), j, &mut rng);
    let matrix = MatrixInfo {
        kind: "mixed_regions",
        rows: csr.rows(),
        cols: csr.cols(),
        nnz: csr.nnz(),
        j,
    };
    eprintln!(
        "bench_serve: {}x{} nnz={} J={j} reps={reps} ({})",
        csr.rows(),
        csr.cols(),
        csr.nnz(),
        if quick { "quick" } else { "full" }
    );

    // The planner is the trained pipeline (the checked-in bundle the
    // other benches use) with the partition count pinned per row: a cold
    // compose pays feature extraction, selector inference, the
    // Algorithm-3 width search, and CELL construction.
    let pipeline: LiteForm = ModelBundle::load(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/liteform-models.json"
    ))
    .expect("checked-in model bundle must load")
    .into_liteform();

    // --- Cold compose+run vs cache-hit serve, p in {4, 16, 32} --------
    // Cold is a first-contact request: the matrix arrives as a raw CSR
    // payload, so the engine fingerprints it (one O(nnz) pass), composes,
    // admits, and runs. Steady-state requests reference the registered
    // handle — fingerprint paid once at registration — so a hit is
    // lookup + kernel execution only. `hit_payload_ms` is also reported
    // for clients that keep resubmitting payloads.
    let handle = MatrixHandle::new(csr.clone()).expect("benchmark matrix is valid");
    let mut rows = Vec::new();
    let mut t = Table::new(&["serve", "cold_ms", "hit_ms", "hit_payload_ms", "speedup"]);
    let mut min_speedup = f64::INFINITY;
    for p in [4usize, 16, 32] {
        let planner = PinnedLiteForm {
            pipeline: pipeline.clone(),
            partitions: p,
        };
        let engine = ServeEngine::new(planner, ServeConfig::default());
        let cold_ms = time_ms(reps, || {
            engine.clear(); // every rep composes from scratch
            engine.serve(&csr, &b).unwrap();
        });
        engine.serve_handle(&handle, &b).unwrap(); // warm

        // Hits are an order of magnitude cheaper than cold serves, so
        // best-of needs more reps to shake scheduler noise out of the
        // sub-millisecond timings.
        let hit_ms = time_ms(reps * 4, || {
            engine.serve_handle(&handle, &b).unwrap();
        });
        let hit_payload_ms = time_ms(reps * 4, || {
            engine.serve(&csr, &b).unwrap();
        });
        let speedup = cold_ms / hit_ms;
        min_speedup = min_speedup.min(speedup);
        t.row(&[
            format!("p={p}"),
            fmt(cold_ms),
            fmt(hit_ms),
            fmt(hit_payload_ms),
            fmt(speedup),
        ]);
        rows.push(ServeRow {
            partitions: p,
            cold_ms,
            hit_ms,
            hit_payload_ms,
            speedup,
            stats: engine.stats(),
        });
    }
    t.print();
    println!(
        "\nmin hit-vs-cold speedup over p in {{4,16,32}}: {}x",
        fmt(min_speedup)
    );

    // --- Concurrent throughput: 8 threads, 4 warmed handles ----------
    let threads = 8usize;
    let iters = if quick { 8 } else { 20 };
    let engine = ServeEngine::new(
        PinnedLiteForm {
            pipeline: pipeline.clone(),
            partitions: 16,
        },
        ServeConfig::default(),
    );
    let hot: Vec<MatrixHandle<f32>> = (0..4u64)
        .map(|s| {
            let mut r = Pcg32::seed_from_u64(100 + s);
            MatrixHandle::new(CsrMatrix::from_coo(&mixed_regions(n, n, nnz, 4, &mut r)))
                .expect("benchmark matrix is valid")
        })
        .collect();
    for h in &hot {
        engine.warm(h, j).unwrap();
    }
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for ti in 0..threads {
            let (engine, hot, b) = (&engine, &hot, &b);
            scope.spawn(move || {
                let mut r = Pcg32::seed_from_u64(0xD00D + ti as u64);
                for _ in 0..iters {
                    let h = &hot[r.usize_in(0, hot.len())];
                    engine.serve_handle(h, b).unwrap();
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    let requests = stats.requests();
    let throughput = Throughput {
        threads,
        hot_matrices: hot.len(),
        requests,
        wall_s,
        requests_per_s: requests as f64 / wall_s,
        hit_rate: stats.hit_rate(),
    };
    println!(
        "\nthroughput: {} requests on {} threads in {}s = {} req/s (hit rate {})",
        requests,
        threads,
        fmt(wall_s),
        fmt(throughput.requests_per_s),
        fmt(throughput.hit_rate),
    );

    // --- Coalescing: 16 threads, 8 sharers per matrix, fused vs solo --
    // The tentpole claim for request coalescing: when many concurrent
    // requests multiply the SAME matrix, fusing their B columns into one
    // wide execute amortizes the sparse index-stream traffic (and the
    // per-request fixed costs) across the whole group — one pass over A
    // instead of eight. Identical barrier-paced workload on two engines
    // differing only in `batch_window_us`.
    let bt_threads = 16usize;
    let sharers = 8usize;
    // Narrow per-request operands (GNN inference at J=2) are exactly the
    // regime coalescing targets: each solo pass re-streams all of A's
    // indices and values for 2 columns of useful work, so fusing 8
    // sharers amortizes the A-traffic 8-fold.
    let jb = 2usize;
    let fused_j = sharers * jb;
    let (bt_n, bt_nnz) = (2048usize, 150_000usize);
    let rounds = if quick { 8 } else { 16 };
    let bt_hot: Vec<MatrixHandle<f32>> = (0..(bt_threads / sharers) as u64)
        .map(|s| {
            let mut r = Pcg32::seed_from_u64(300 + s);
            MatrixHandle::new(CsrMatrix::from_coo(&mixed_regions(
                bt_n, bt_n, bt_nnz, 4, &mut r,
            )))
            .expect("benchmark matrix is valid")
        })
        .collect();
    let bt_bs: Vec<DenseMatrix<f32>> = (0..bt_threads)
        .map(|t| {
            let mut r = Pcg32::seed_from_u64(0xB00 + t as u64);
            DenseMatrix::random(bt_n, jb, &mut r)
        })
        .collect();
    let run_workload = |window_us: u64| -> (f64, ServeStats) {
        let engine = ServeEngine::new(
            PinnedLiteForm {
                pipeline: pipeline.clone(),
                partitions: 16,
            },
            ServeConfig {
                batch_window_us: window_us,
                // The cap equals the fused width, so a full group closes
                // the instant its last sharer joins — the window is only
                // a straggler bound.
                max_batch_j: fused_j,
                ..ServeConfig::default()
            },
        );
        for h in &bt_hot {
            engine.warm(h, jb).unwrap();
            engine.warm(h, fused_j).unwrap();
        }
        let barrier = std::sync::Barrier::new(bt_threads);
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..bt_threads {
                let (engine, bt_hot, bt_bs, barrier) = (&engine, &bt_hot, &bt_bs, &barrier);
                scope.spawn(move || {
                    let h = &bt_hot[t / sharers];
                    for _ in 0..rounds {
                        barrier.wait();
                        engine.serve_handle(h, &bt_bs[t]).unwrap();
                    }
                });
            }
        });
        (t0.elapsed().as_secs_f64(), engine.stats())
    };
    let (solo_wall_s, solo_stats) = run_workload(0);
    let (batched_wall_s, batched_stats) = run_workload(50_000);
    let total_requests = (bt_threads * rounds) as f64;
    let coalescing = BatchBench {
        threads: bt_threads,
        sharers_per_matrix: sharers,
        j_per_request: jb,
        fused_j,
        rounds,
        solo_requests_per_s: total_requests / solo_wall_s,
        batched_requests_per_s: total_requests / batched_wall_s,
        aggregate_speedup: solo_wall_s / batched_wall_s,
        batches: batched_stats.batches,
        batched_requests: batched_stats.batched_requests,
    };
    assert_eq!(solo_stats.requests(), total_requests as u64);
    assert_eq!(batched_stats.requests(), total_requests as u64);
    println!(
        "\ncoalescing: {} threads x {} rounds, {} sharers/matrix at J={} (fused J={}):\n  \
         solo    {} req/s\n  batched {} req/s ({} batches) -> {}x aggregate",
        bt_threads,
        rounds,
        sharers,
        jb,
        fused_j,
        fmt(coalescing.solo_requests_per_s),
        fmt(coalescing.batched_requests_per_s),
        batched_stats.batches,
        fmt(coalescing.aggregate_speedup),
    );

    // --- Warm restart: cold-start storm vs snapshot-warmed boot -------
    // The tiered-store claim (DESIGN.md §13): a restart should not be a
    // compose storm. A "previous process life" composes a working set
    // and snapshots it to the disk tier; then the same first-request
    // burst is timed against (a) a cold engine that composes everything
    // and (b) an engine whose constructor warmed from the snapshot, so
    // its first requests are RAM hits.
    let wr_matrices: Vec<CsrMatrix<f32>> = (0..4u64)
        .map(|s| {
            let mut r = Pcg32::seed_from_u64(500 + s);
            CsrMatrix::from_coo(&mixed_regions(n, n, nnz, 4, &mut r))
        })
        .collect();
    let store_dir = std::env::temp_dir().join(format!("lf-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_config = ServeConfig {
        store_dir: Some(store_dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    };
    {
        // Previous life: compose the working set, snapshot, "die".
        let engine = ServeEngine::new(
            PinnedLiteForm {
                pipeline: pipeline.clone(),
                partitions: 16,
            },
            store_config.clone(),
        );
        for m in &wr_matrices {
            engine.serve(m, &b).unwrap();
        }
        engine.snapshot().expect("snapshot must persist the cache");
    }
    let cold_engine = ServeEngine::new(
        PinnedLiteForm {
            pipeline: pipeline.clone(),
            partitions: 16,
        },
        ServeConfig::default(),
    );
    let cold_start_ms = time_ms(reps, || {
        cold_engine.clear(); // every rep is a fresh cold-start storm
        for m in &wr_matrices {
            cold_engine.serve(m, &b).unwrap();
        }
    });
    let warmed_engine = ServeEngine::new(
        PinnedLiteForm {
            pipeline: pipeline.clone(),
            partitions: 16,
        },
        store_config,
    );
    let warm_loaded = warmed_engine.stats().warm_loaded;
    // Like the hit timings above: warmed first requests are an order of
    // magnitude cheaper than the cold storm, so best-of needs more reps
    // to shake scheduler noise out of sub-millisecond measurements.
    let warmed_ms = time_ms(reps * 4, || {
        for m in &wr_matrices {
            warmed_engine.serve(m, &b).unwrap();
        }
    });
    let _ = std::fs::remove_dir_all(&store_dir);
    let warm_restart = WarmRestart {
        matrices: wr_matrices.len(),
        warm_loaded,
        cold_start_ms,
        warmed_ms,
        first_request_speedup: cold_start_ms / warmed_ms,
    };
    println!(
        "\nwarm restart ({} matrices): cold-start storm {}ms vs snapshot-warmed {}ms -> {}x \
         first-request latency ({} records warmed)",
        warm_restart.matrices,
        fmt(cold_start_ms),
        fmt(warmed_ms),
        fmt(warm_restart.first_request_speedup),
        warm_loaded,
    );

    let artifact = Artifact {
        mode: if quick { "quick" } else { "full" },
        matrix,
        reps,
        serve: rows,
        min_speedup,
        throughput,
        coalescing,
        warm_restart,
    };
    let dir = if quick {
        PathBuf::from("target/bench-serve")
    } else {
        std::env::var("LF_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"))
    };
    write_json(&dir, "bench_serve", &artifact);

    if quick && min_speedup < 1.0 {
        eprintln!("bench_serve: FAIL — cache hit slower than cold compose+run ({min_speedup}x)");
        std::process::exit(1);
    }
    if quick && artifact.coalescing.aggregate_speedup < 3.0 {
        eprintln!(
            "bench_serve: FAIL — coalescing must reach 3x aggregate throughput at {sharers} \
             sharers, got {}x",
            artifact.coalescing.aggregate_speedup
        );
        std::process::exit(1);
    }
    if quick && artifact.warm_restart.warm_loaded as usize != artifact.warm_restart.matrices {
        eprintln!(
            "bench_serve: FAIL — snapshot restart warmed {} of {} records",
            artifact.warm_restart.warm_loaded, artifact.warm_restart.matrices
        );
        std::process::exit(1);
    }
    if quick && artifact.warm_restart.first_request_speedup < 3.0 {
        eprintln!(
            "bench_serve: FAIL — snapshot-warmed restart must beat the cold-start storm 3x on \
             first-request latency, got {}x",
            artifact.warm_restart.first_request_speedup
        );
        std::process::exit(1);
    }
}
