//! Diagnostic: predicted vs oracle composition on the GNN graphs.
//! Not a paper artifact.

use lf_bench::{fmt, pipeline, BenchEnv, Table};
use lf_cost::partition::optimal_partitions;
use lf_data::GNN_GRAPHS;
use lf_kernels::SpmmKernel;
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;
use liteform_core::PlanKind;

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let (lf, _) = pipeline::train_pipeline(&env, None);
    let j: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let mut table = Table::new(&[
        "graph",
        "decision",
        "pred p",
        "oracle p",
        "pred ms",
        "oracle ms",
        "csr ms",
    ]);
    for spec in &GNN_GRAPHS {
        let csr: CsrMatrix<f32> = spec.build(env.scale);
        let plan = lf.compose(&csr, j);
        let (decision, pred_p) = match &plan.kind {
            PlanKind::Cell { config, .. } => ("CELL", config.num_partitions),
            PlanKind::FixedCsr => ("CSR", 0),
        };
        let sweep = optimal_partitions(&csr, j, &device);
        let pred_ms = lf.simulated_time_ms(&csr, j);
        let csr_ms = lf_kernels::CsrVectorKernel::new(csr.clone())
            .profile(j, &device)
            .time_ms;
        table.row(&[
            spec.name.to_string(),
            decision.to_string(),
            pred_p.to_string(),
            sweep.best_p.to_string(),
            fmt(pred_ms),
            fmt(sweep.best_time_ms),
            fmt(csr_ms),
        ]);
    }
    table.print();
}
