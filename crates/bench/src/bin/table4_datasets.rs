//! Table 4: dataset statistics — the seven GNN graph analogues (published
//! spec vs what the generator materializes at the current scale) plus the
//! SuiteSparse-like corpus summary line.

use lf_bench::{fmt, write_json, BenchEnv, Table};
use lf_data::{Corpus, GNN_GRAPHS};
use lf_sparse::CsrMatrix;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    spec_nodes: usize,
    spec_edges: usize,
    spec_density: f64,
    built_nodes: usize,
    built_edges: usize,
    built_density: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    let mut table = Table::new(&[
        "graph",
        "#nodes(paper)",
        "#edges(paper)",
        "density(paper)",
        "#nodes(built)",
        "#edges(built)",
        "density(built)",
    ]);
    let mut rows = Vec::new();
    for spec in &GNN_GRAPHS {
        let m: CsrMatrix<f32> = spec.build(env.scale);
        let built_density = m.density();
        table.row(&[
            spec.name.to_string(),
            spec.nodes.to_string(),
            spec.edges.to_string(),
            format!("{:.2e}", spec.density()),
            m.rows().to_string(),
            m.nnz().to_string(),
            format!("{built_density:.2e}"),
        ]);
        rows.push(Row {
            name: spec.name.to_string(),
            spec_nodes: spec.nodes,
            spec_edges: spec.edges,
            spec_density: spec.density(),
            built_nodes: m.rows(),
            built_edges: m.nnz(),
            built_density,
        });
    }

    println!(
        "\nTable 4 — sparse matrices information ({:?} scale)\n",
        env.scale
    );
    table.print();

    // Corpus summary (the paper's last Table 4 row: SuiteSparse
    // 2.0K-3.8M nodes, 3.1K-300.9M edges, density 8.7E-7 - 0.1).
    let corpus: Corpus<f32> = Corpus::generate(env.corpus_spec());
    let rows_range = (
        corpus
            .matrices
            .iter()
            .map(|m| m.csr.rows())
            .min()
            .unwrap_or(0),
        corpus
            .matrices
            .iter()
            .map(|m| m.csr.rows())
            .max()
            .unwrap_or(0),
    );
    let nnz_range = (
        corpus
            .matrices
            .iter()
            .map(|m| m.csr.nnz())
            .min()
            .unwrap_or(0),
        corpus
            .matrices
            .iter()
            .map(|m| m.csr.nnz())
            .max()
            .unwrap_or(0),
    );
    let den_range = corpus
        .matrices
        .iter()
        .map(|m| m.csr.density())
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), d| {
            (lo.min(d), hi.max(d))
        });
    println!(
        "\ncorpus ({} matrices): rows {}..{}, nnz {}..{}, density {}..{}",
        corpus.len(),
        rows_range.0,
        rows_range.1,
        nnz_range.0,
        nnz_range.1,
        fmt(den_range.0),
        fmt(den_range.1),
    );
    write_json(&env.results_dir, "table4_datasets", &rows);
}
