//! Figure 11: does the Eq. 7 cost model track real performance? Sweep the
//! maximum bucket width on the reddit analogue and report, per width, the
//! cost value, the simulated execution time, and the simulator's device
//! utilization (the stand-in for nsight's "GPU compute throughput").
//!
//! Paper reference: cost minimum, throughput maximum and time minimum all
//! align (at width 2^8 on their testbed).

use lf_bench::{write_json, BenchEnv, Table};
use lf_cell::{build_cell, CellConfig};
use lf_cost::search::total_cost_for_caps;
use lf_kernels::{CellKernel, SpmmKernel};
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;
use serde::Serialize;

const J: usize = 128;

#[derive(Serialize)]
struct Point {
    width: usize,
    cost: f64,
    time_ms: f64,
    utilization: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let spec = lf_data::GraphSpec::by_name("reddit").expect("known graph");
    eprintln!("[fig11] building reddit analogue ...");
    let csr: CsrMatrix<f32> = spec.build(env.scale);
    let natural = (0..csr.rows())
        .map(|r| csr.row_len(r))
        .max()
        .unwrap_or(1)
        .next_power_of_two();

    let mut points = Vec::new();
    let mut w = 4usize;
    while w <= natural {
        let cost = total_cost_for_caps(&csr, &[w], J);
        let config = CellConfig {
            num_partitions: 1,
            max_widths: Some(vec![w]),
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let kernel = CellKernel::new(build_cell(&csr, &config).expect("valid config"));
        let profile = kernel.profile(J, &device);
        points.push(Point {
            width: w,
            cost,
            time_ms: profile.time_ms,
            utilization: profile.utilization,
        });
        w *= 2;
    }

    // Normalize like the figure (shared y-axis).
    let max_cost = points.iter().map(|p| p.cost).fold(0.0, f64::max);
    let max_time = points.iter().map(|p| p.time_ms).fold(0.0, f64::max);
    let mut table = Table::new(&["max width", "cost (norm)", "time (norm)", "utilization"]);
    for p in &points {
        table.row(&[
            format!("2^{}", p.width.trailing_zeros()),
            format!("{:.3}", p.cost / max_cost),
            format!("{:.3}", p.time_ms / max_time),
            format!("{:.3}", p.utilization),
        ]);
    }

    println!(
        "\nFigure 11 — cost model vs simulated performance, reddit analogue \
         ({} nodes, {} edges), J={J}\n",
        csr.rows(),
        csr.nnz()
    );
    table.print();

    let best_cost = points
        .iter()
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap())
        .expect("points");
    let best_time = points
        .iter()
        .min_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).unwrap())
        .expect("points");
    let octaves =
        (best_cost.width.trailing_zeros() as i32 - best_time.width.trailing_zeros() as i32).abs();
    println!(
        "\ncost argmin: width {}   time argmin: width {}   ({octaves} power(s) \
         of two apart; the paper reports them coinciding at 2^8)",
        best_cost.width, best_time.width
    );
    write_json(&env.results_dir, "fig11_cost_model", &points);
}
