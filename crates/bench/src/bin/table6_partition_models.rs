//! Table 6: overhead and accuracy of the ten classifiers for predicting
//! the optimal number of CELL partitions (§5.2), with the paper's cosine
//! similarity of the per-matrix prediction vector across dense widths
//! 32…512 (Eq. 2).
//!
//! Paper reference: Random Forest 87.30% / cos 0.77; Decision Tree
//! 85.40% / 0.77; most others cluster at ~82% / 0.23–0.25 (majority-class
//! behaviour); QDA collapses (0.21%).

use lf_bench::{fmt, mlbench, write_json, BenchEnv, Table};
use lf_data::Corpus;
use lf_sim::DeviceModel;

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let corpus: Corpus<f32> = Corpus::generate(env.corpus_spec());
    eprintln!(
        "[table6] labelling {} matrices x 5 dense widths (partition sweeps) ...",
        corpus.len()
    );
    let (dataset, groups) = mlbench::partition_dataset(&corpus, &device);
    let (split, _, test_idx) = dataset.split_with_indices(0.8, env.seed);
    let test_groups: Vec<String> = test_idx.iter().map(|&i| groups[i].clone()).collect();
    let rows = mlbench::sweep_models(&split.train, &split.test, Some(&test_groups), env.seed);

    let mut table = Table::new(&[
        "name",
        "training(s)",
        "inference(s)",
        "accuracy",
        "macro_f1",
        "cos_sim",
    ]);
    for r in &rows {
        table.row(&[
            r.name.clone(),
            format!("{:.4}", r.training_s),
            format!("{:.4}", r.inference_s),
            format!("{:.2}%", r.accuracy * 100.0),
            fmt(r.macro_f1),
            fmt(r.cos_sim.unwrap_or(f64::NAN)),
        ]);
    }
    println!(
        "\nTable 6 — ML models for predicting the optimal partition count \
         ({} train / {} test samples)\n",
        split.train.len(),
        split.test.len()
    );
    table.print();
    let best = rows
        .iter()
        .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
        .expect("ten rows");
    println!(
        "\nbest model: {} at {:.2}% / cos {} (paper: Random Forest, 87.30% / 0.77)",
        best.name,
        best.accuracy * 100.0,
        fmt(best.cos_sim.unwrap_or(f64::NAN))
    );
    write_json(&env.results_dir, "table6_partition_models", &rows);
}
