//! Table 5: overhead and accuracy of the ten classifiers for predicting
//! whether the CELL format improves performance (the format-selection
//! task, §5.1). 80/20 split over the corpus.
//!
//! Paper reference: Random Forest best at 88.92% accuracy (0.29 s train);
//! Decision Tree 85.96%, AdaBoost 86.45%; Naive Bayes worst at 63.30%;
//! Gaussian Process slowest to train by orders of magnitude.

use lf_bench::{fmt, mlbench, write_json, BenchEnv, Table};
use lf_data::Corpus;
use lf_sim::DeviceModel;

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let corpus: Corpus<f32> = Corpus::generate(env.corpus_spec());
    eprintln!(
        "[table5] labelling {} matrices (CELL vs fixed, simulated) ...",
        corpus.len()
    );
    let dataset = mlbench::format_selection_dataset(&corpus, &device);
    let positive = dataset.y.iter().filter(|&&y| y == 1).count();
    eprintln!(
        "[table5] {} samples, {positive} labelled TRUE ({:.0}%)",
        dataset.len(),
        100.0 * positive as f64 / dataset.len() as f64
    );
    let split = dataset.split(0.8, env.seed);
    let rows = mlbench::sweep_models(&split.train, &split.test, None, env.seed);

    let mut table = Table::new(&[
        "name",
        "training(s)",
        "inference(s)",
        "accuracy",
        "macro_f1",
    ]);
    for r in &rows {
        table.row(&[
            r.name.clone(),
            format!("{:.4}", r.training_s),
            format!("{:.4}", r.inference_s),
            format!("{:.2}%", r.accuracy * 100.0),
            fmt(r.macro_f1),
        ]);
    }
    println!(
        "\nTable 5 — ML models for predicting CELL performance benefit \
         ({} train / {} test)\n",
        split.train.len(),
        split.test.len()
    );
    table.print();
    let best = rows
        .iter()
        .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
        .expect("ten rows");
    println!(
        "\nbest model: {} at {:.2}% (paper: Random Forest, 88.92%)",
        best.name,
        best.accuracy * 100.0
    );
    write_json(&env.results_dir, "table5_format_models", &rows);
}
