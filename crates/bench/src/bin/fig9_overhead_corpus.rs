//! Figure 9: construction-overhead comparison between SparseTIR's
//! autotuning and LiteForm's inference + search over the SuiteSparse-like
//! corpus.
//!
//! Paper reference: geomean ratio SparseTIR/LiteForm ≈ 1150.2×.

use lf_baselines::SparseTir;
use lf_bench::{fmt, geomean, pipeline, write_json, BenchEnv, Summary, Table};
use lf_data::Corpus;
use lf_sim::DeviceModel;
use liteform_core::PreprocessProfile;
use serde::Serialize;

const J: usize = 128;

#[derive(Serialize)]
struct Point {
    id: String,
    rows: usize,
    sparsetir_s: f64,
    liteform_s: f64,
    ratio: f64,
}

/// The corpus-level roll-up of LiteForm's per-stage preprocessing work,
/// written alongside the per-matrix points.
#[derive(Serialize)]
struct ProfileSummary {
    matrices: usize,
    total: PreprocessProfile,
}

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let (liteform, _) = pipeline::train_pipeline(&env, Some(&pipeline::default_bundle_path(&env)));
    let corpus: Corpus<f32> = Corpus::generate(env.corpus_spec());
    let tir = SparseTir::default();

    let mut points = Vec::new();
    let mut agg_profile = PreprocessProfile::default();
    for (i, m) in corpus.matrices.iter().enumerate() {
        let Some((_, _, cost)) = tir.autotune(&m.csr, J, &device) else {
            continue;
        };
        let tir_s = cost.total_s();
        let plan = liteform.compose(&m.csr, J);
        agg_profile.accumulate(&plan.profile);
        let lf_s = plan.overhead.total_s();
        points.push(Point {
            id: m.id.clone(),
            rows: m.csr.rows(),
            sparsetir_s: tir_s,
            liteform_s: lf_s,
            ratio: tir_s / lf_s,
        });
        if (i + 1) % 20 == 0 {
            eprintln!("[fig9] {}/{} matrices", i + 1, corpus.len());
        }
    }

    let ratios: Vec<f64> = points.iter().map(|p| p.ratio).collect();
    let summary = Summary::of(&ratios).expect("non-empty corpus");
    let tir_abs = geomean(&points.iter().map(|p| p.sparsetir_s).collect::<Vec<_>>());
    let lf_abs = geomean(&points.iter().map(|p| p.liteform_s).collect::<Vec<_>>());

    let mut table = Table::new(&["rows-decade", "n", "geomean ratio"]);
    for decade in 3..7u32 {
        let lo = 10usize.pow(decade);
        let hi = 10usize.pow(decade + 1);
        let in_decade: Vec<f64> = points
            .iter()
            .filter(|p| p.rows >= lo && p.rows < hi)
            .map(|p| p.ratio)
            .collect();
        if let Some(s) = Summary::of(&in_decade) {
            table.row(&[
                format!("1e{decade}..1e{}", decade + 1),
                s.n.to_string(),
                fmt(s.geomean),
            ]);
        }
    }

    println!(
        "\nFigure 9 — construction overhead over the corpus ({} matrices, J={J})\n",
        points.len()
    );
    table.print();
    println!(
        "\nabsolute geomeans: sparsetir {} s, liteform {} s",
        tir_abs.map_or("n/a".into(), fmt),
        lf_abs.map_or("n/a".into(), fmt)
    );
    println!(
        "overall geomean ratio sparsetir/liteform: {}x (paper 1150.2x)",
        fmt(summary.geomean)
    );

    // Per-stage roll-up of LiteForm's preprocessing across the corpus.
    let mut stage_table = Table::new(&["liteform stage", "wall(s)", "allocs", "alloc MiB"]);
    for (name, s) in agg_profile.named_stages() {
        stage_table.row(&[
            name.to_string(),
            fmt(s.wall_s),
            s.alloc_calls.to_string(),
            fmt(s.alloc_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    println!("\nLiteForm preprocessing profile (summed over corpus):\n");
    stage_table.print();

    write_json(&env.results_dir, "fig9_overhead_corpus", &points);
    write_json(
        &env.results_dir,
        "fig9_liteform_profile",
        &ProfileSummary {
            matrices: points.len(),
            total: agg_profile,
        },
    );
}
