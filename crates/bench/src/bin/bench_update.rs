//! Mutation benchmark: incremental CELL maintenance vs. full rebuild.
//!
//! The delta path's whole justification (DESIGN.md §15): when an edge
//! batch touches few rows, re-bucketing only those rows
//! ([`lf_cell::update_cell`]) must beat recomposing the CELL from
//! scratch ([`lf_cell::build_cell`]) — otherwise the engine's
//! churn-threshold fallback would always pick the rebuild and plan
//! migration would be dead weight. This bench measures, per churn level
//! (touched-row fraction ∈ {0.1%, 1%, 10%}) on the reference
//! `mixed_regions` matrix:
//!
//! * **incremental** — clone the cached CELL and `update_cell` it (the
//!   exact work [`ServeEngine::apply_updates`] does per migrated plan);
//! * **rebuild** — `build_cell` of the updated matrix from scratch;
//! * the resulting speedup, plus an engine-level section timing a full
//!   mutate-migrate-sweep cycle against a cold recompose-and-serve.
//!
//! Writes `results/bench_update.json` (`LF_RESULTS_DIR` overrides);
//! with `--quick`, a seconds-scale smoke into `target/bench-update/`
//! that exits non-zero if incremental maintenance fails to beat the
//! rebuild 3x at ≤ 1% churn — the crossover claim the churn threshold
//! is calibrated around.
//!
//! [`ServeEngine::apply_updates`]: lf_serve::ServeEngine::apply_updates

use lf_bench::{fmt, write_json, Table};
use lf_cell::{build_cell, update_cell, CellConfig};
use lf_serve::{FixedCellPlanner, MatrixHandle, ServeConfig, ServeEngine};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{CsrMatrix, DenseMatrix, EdgeUpdate, Pcg32};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct MatrixInfo {
    kind: &'static str,
    rows: usize,
    cols: usize,
    nnz: usize,
    partitions: usize,
}

#[derive(Serialize)]
struct ChurnRow {
    churn_permille: usize,
    touched_rows: usize,
    incremental_ms: f64,
    rebuild_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EngineCycle {
    touched_rows: usize,
    update_ms: f64,
    recompose_ms: f64,
    speedup: f64,
    migrated_per_update: u64,
}

#[derive(Serialize)]
struct Artifact {
    mode: &'static str,
    matrix: MatrixInfo,
    reps: usize,
    churn: Vec<ChurnRow>,
    low_churn_min_speedup: f64,
    engine: EngineCycle,
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// A pattern-preserving batch touching `k` evenly spaced populated
/// rows: each gets its first stored value bumped. Value-only updates
/// keep the touched-row count exact (no bucket fold/unfold noise in
/// the timing) while still forcing every affected bucket rewrite.
fn churn_batch(csr: &CsrMatrix<f64>, k: usize) -> Vec<EdgeUpdate<f64>> {
    let rp = csr.row_ptr();
    let populated: Vec<usize> = (0..csr.rows()).filter(|&r| rp[r + 1] > rp[r]).collect();
    let k = k.clamp(1, populated.len());
    let stride = populated.len() / k;
    (0..k)
        .map(|i| {
            let r = populated[i * stride];
            let at = rp[r];
            EdgeUpdate::SetValue {
                row: r,
                col: csr.col_ind()[at] as usize,
                value: csr.values()[at] + 1.0,
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, nnz, reps) = if quick {
        (512, 12_000, 3)
    } else {
        (4096usize, 200_000usize, 5)
    };
    let partitions = 4usize;

    let mut rng = Pcg32::seed_from_u64(17);
    let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(n, n, nnz, partitions, &mut rng));
    let config = CellConfig::with_partitions(partitions);
    let cell = build_cell(&csr, &config).expect("valid config");
    let matrix = MatrixInfo {
        kind: "mixed_regions",
        rows: csr.rows(),
        cols: csr.cols(),
        nnz: csr.nnz(),
        partitions,
    };
    eprintln!(
        "bench_update: {}x{} nnz={} p={partitions} reps={reps} ({})",
        csr.rows(),
        csr.cols(),
        csr.nnz(),
        if quick { "quick" } else { "full" }
    );

    // --- Incremental vs rebuild across churn levels ------------------
    let mut churn = Vec::new();
    let mut t = Table::new(&[
        "churn",
        "touched",
        "incremental_ms",
        "rebuild_ms",
        "speedup",
    ]);
    let mut low_churn_min_speedup = f64::INFINITY;
    for permille in [1usize, 10, 100] {
        let k = (csr.rows() * permille / 1000).max(1);
        let batch = churn_batch(&csr, k);
        let touched: Vec<(usize, usize)> = batch.iter().map(EdgeUpdate::coord).collect();
        let touched_rows = touched.len();
        let new_csr = csr.apply_updates(&batch).expect("valid batch");

        // The incremental side is exactly what plan migration pays per
        // cached plan: clone the CELL, re-bucket the touched rows.
        let incremental_ms = time_ms(reps, || {
            let mut c = cell.clone();
            update_cell(&mut c, &new_csr, &touched).expect("pattern-preserving batch");
        });
        let rebuild_ms = time_ms(reps, || {
            build_cell(&new_csr, &config).expect("valid config");
        });
        let speedup = rebuild_ms / incremental_ms;
        if permille <= 10 {
            low_churn_min_speedup = low_churn_min_speedup.min(speedup);
        }
        t.row(&[
            format!("{}%", permille as f64 / 10.0),
            touched_rows.to_string(),
            fmt(incremental_ms),
            fmt(rebuild_ms),
            fmt(speedup),
        ]);
        churn.push(ChurnRow {
            churn_permille: permille,
            touched_rows,
            incremental_ms,
            rebuild_ms,
            speedup,
        });
    }
    t.print();
    println!(
        "\nmin incremental-vs-rebuild speedup at <=1% churn: {}x",
        fmt(low_churn_min_speedup)
    );

    // --- Engine cycle: mutate + migrate + sweep vs cold recompose ----
    // The serving-side cost of staying warm through an update: one
    // `apply_updates` call (commit, plan migration, both-tier sweep)
    // against tearing the cache down and recomposing on the next serve.
    let mut brng = Pcg32::seed_from_u64(23);
    let b = DenseMatrix::random(csr.cols(), 8, &mut brng);
    let engine = ServeEngine::new(FixedCellPlanner::tuned(partitions), ServeConfig::default());
    let h = MatrixHandle::new(csr.clone()).expect("benchmark matrix is valid");
    engine.serve_handle(&h, &b).expect("warm serve");
    let k = (csr.rows() / 100).max(1);
    let batch = churn_batch(&csr, k);
    let updates_before = engine.stats().stale_evicted;
    // Re-applying the same value batch stays valid forever: the pattern
    // never changes, so each rep measures one full epoch turn.
    let update_ms = time_ms(reps * 4, || {
        engine.apply_updates(&h, &batch).expect("valid batch");
    });
    let turns = engine.stats().stale_evicted - updates_before;
    let recompose = ServeEngine::new(FixedCellPlanner::tuned(partitions), ServeConfig::default());
    let recompose_ms = time_ms(reps, || {
        recompose.clear();
        recompose.serve_handle(&h, &b).expect("cold serve");
    });
    let engine_cycle = EngineCycle {
        touched_rows: batch.len(),
        update_ms,
        recompose_ms,
        speedup: recompose_ms / update_ms,
        migrated_per_update: u64::from(turns > 0),
    };
    println!(
        "\nengine cycle at 1% churn: update+migrate+sweep {}ms vs recompose-and-serve {}ms \
         -> {}x",
        fmt(update_ms),
        fmt(recompose_ms),
        fmt(engine_cycle.speedup),
    );

    let artifact = Artifact {
        mode: if quick { "quick" } else { "full" },
        matrix,
        reps,
        churn,
        low_churn_min_speedup,
        engine: engine_cycle,
    };
    let dir = if quick {
        PathBuf::from("target/bench-update")
    } else {
        std::env::var("LF_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"))
    };
    write_json(&dir, "bench_update", &artifact);

    if quick && low_churn_min_speedup < 3.0 {
        eprintln!(
            "bench_update: FAIL — incremental maintenance must beat a rebuild 3x at <=1% churn, \
             got {low_churn_min_speedup}x"
        );
        std::process::exit(1);
    }
}
