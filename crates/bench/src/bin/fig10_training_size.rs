//! Figure 10: prediction accuracy of the two selected (Random Forest)
//! models as the training set grows.
//!
//! Paper reference: >80% with a few hundred samples, approaching ~90% as
//! the set grows.

use lf_bench::{mlbench, write_json, BenchEnv, Table};
use lf_data::Corpus;
use lf_ml::{Classifier, RandomForest};
use lf_sim::DeviceModel;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    train_size: usize,
    format_selection_acc: f64,
    partition_acc: f64,
}

fn accuracy_at(train: &lf_ml::Dataset, test: &lf_ml::Dataset, n: usize, seed: u64) -> f64 {
    let sub = train.head(n);
    if sub.is_empty() {
        return 0.0;
    }
    let mut rf = RandomForest::new(60, 12, seed);
    rf.fit(&sub.x, &sub.y, sub.n_classes);
    lf_ml::accuracy(&test.y, &rf.predict(&test.x))
}

fn main() {
    let env = BenchEnv::from_env();
    let device = DeviceModel::v100();
    let corpus: Corpus<f32> = Corpus::generate(env.corpus_spec());
    eprintln!("[fig10] labelling {} matrices ...", corpus.len());
    let sel = mlbench::format_selection_dataset(&corpus, &device);
    let (part, _) = mlbench::partition_dataset(&corpus, &device);
    let sel_split = sel.split(0.8, env.seed);
    let part_split = part.split(0.8, env.seed);

    let max_sel = sel_split.train.len();
    let max_part = part_split.train.len();
    let steps = 8usize;
    let mut points = Vec::new();
    let mut table = Table::new(&[
        "train size (sel/part)",
        "format-selection acc",
        "partition acc",
    ]);
    for k in 1..=steps {
        let n_sel = (max_sel * k / steps).max(4);
        let n_part = (max_part * k / steps).max(4);
        let a_sel = accuracy_at(&sel_split.train, &sel_split.test, n_sel, env.seed);
        let a_part = accuracy_at(&part_split.train, &part_split.test, n_part, env.seed ^ 1);
        table.row(&[
            format!("{n_sel}/{n_part}"),
            format!("{:.1}%", a_sel * 100.0),
            format!("{:.1}%", a_part * 100.0),
        ]);
        points.push(Point {
            train_size: n_part,
            format_selection_acc: a_sel,
            partition_acc: a_part,
        });
    }

    println!("\nFigure 10 — accuracy vs training-set size (Random Forest)\n");
    table.print();
    println!("\npaper shape: >0.8 with a few hundred rows, rising toward ~0.9");
    write_json(&env.results_dir, "fig10_training_size", &points);
}
