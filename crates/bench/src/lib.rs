#![warn(missing_docs)]

//! # lf-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7). Each binary prints the same rows/series the paper
//! reports and appends machine-readable JSON under `results/`:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table4_datasets` | Table 4 (dataset statistics) |
//! | `fig6_speedup` | Figure 6 (speedup vs cuSPARSE, 8 systems × 7 graphs) |
//! | `fig7_suitesparse` | Figure 7 (LiteForm vs optimal-tuned SparseTIR, corpus) |
//! | `fig8_overhead` | Figure 8 (construction overhead, GNN graphs) |
//! | `fig9_overhead_corpus` | Figure 9 (construction overhead, corpus) |
//! | `table5_format_models` | Table 5 (10 classifiers, format selection) |
//! | `table6_partition_models` | Table 6 (10 classifiers, partition count) |
//! | `fig10_training_size` | Figure 10 (accuracy vs training-set size) |
//! | `fig11_cost_model` | Figure 11 (cost value vs throughput vs time) |
//! | `bcsr_padding` | §2.1 BCSR footprint anecdote |
//! | `train_models` | produces the pretrained [`liteform_core::ModelBundle`] |
//!
//! Environment knobs (all optional): `LF_SCALE=small|paper` (graph sizes),
//! `LF_CORPUS_N` (corpus size), `LF_SEED`, `LF_RESULTS_DIR`.

pub mod env;
pub mod mlbench;
pub mod pipeline;
pub mod report;
pub mod stats;

pub use env::BenchEnv;
pub use pipeline::{train_pipeline, TrainStats};
pub use report::{fmt, write_json, Table};
pub use stats::{geomean, Summary};
