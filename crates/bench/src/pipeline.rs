//! Shared model-training plumbing: the experiment binaries need a trained
//! LiteForm pipeline; this trains one from the training corpus (or loads
//! a cached bundle) so figures are reproducible without a separate step.

use crate::env::BenchEnv;
use lf_data::Corpus;
use lf_sim::DeviceModel;
use lf_sparse::CsrMatrix;
use liteform_core::{
    label_format_selection, label_partitions, FormatSelector, LiteForm, ModelBundle,
    PartitionPredictor, TrainingConfig,
};
use serde::Serialize;
use std::path::Path;

/// What training produced (for reports).
#[derive(Debug, Clone, Serialize)]
pub struct TrainStats {
    /// Matrices labelled.
    pub matrices: usize,
    /// Format-selection samples (one per matrix).
    pub selection_samples: usize,
    /// Fraction labelled TRUE (CELL wins by >1.1×).
    pub selection_positive_rate: f64,
    /// Partition samples (matrix × dense width).
    pub partition_samples: usize,
    /// Wall-clock training-data generation seconds.
    pub labeling_s: f64,
    /// Wall-clock model-fit seconds.
    pub fit_s: f64,
}

/// Train (or load from `cache`) the LiteForm pipeline used by the
/// figure binaries. Returns the pipeline and the training statistics
/// (`None` when loaded from cache).
pub fn train_pipeline(env: &BenchEnv, cache: Option<&Path>) -> (LiteForm, Option<TrainStats>) {
    if let Some(path) = cache {
        if let Ok(bundle) = ModelBundle::load(path) {
            eprintln!("[loaded pretrained bundle from {}]", path.display());
            return (bundle.into_liteform(), None);
        }
    }
    let device = DeviceModel::v100();
    let mut corpus: Corpus<f32> = Corpus::generate(env.training_corpus_spec());
    // The paper trains on matrices from diverse application domains
    // (§5.1); graph-shaped inputs are the domain Figure 6 evaluates.
    corpus.extend_citation_like(corpus.len() / 3, env.seed ^ 0xc17a);
    let cfg = TrainingConfig::default();

    let t0 = std::time::Instant::now();
    let matrices: Vec<&CsrMatrix<f32>> = corpus.matrices.iter().map(|m| &m.csr).collect();
    let sel_samples: Vec<_> = matrices
        .iter()
        .map(|csr| label_format_selection(csr, &cfg, &device))
        .collect();
    let part_samples: Vec<_> = matrices
        .iter()
        .flat_map(|csr| label_partitions(csr, &cfg, &device))
        .collect();
    let labeling_s = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let mut selector = FormatSelector::new(env.seed);
    selector.train(&sel_samples);
    let mut predictor = PartitionPredictor::new(env.seed ^ 1);
    predictor.train(&part_samples);
    let fit_s = t0.elapsed().as_secs_f64();

    let positive = sel_samples.iter().filter(|s| s.use_cell).count();
    let stats = TrainStats {
        matrices: corpus.len(),
        selection_samples: sel_samples.len(),
        selection_positive_rate: positive as f64 / sel_samples.len().max(1) as f64,
        partition_samples: part_samples.len(),
        labeling_s,
        fit_s,
    };
    let lf = LiteForm::new(selector, predictor, device);
    if let Some(path) = cache {
        let bundle = ModelBundle::from_liteform(
            &lf,
            format!(
                "trained on {} corpus matrices (seed {:#x})",
                corpus.len(),
                env.seed
            ),
        );
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if bundle.save(path).is_ok() {
            eprintln!("[saved pretrained bundle to {}]", path.display());
        }
    }
    (lf, Some(stats))
}

/// Default cache location for the shared bundle.
pub fn default_bundle_path(env: &BenchEnv) -> std::path::PathBuf {
    env.results_dir.join("liteform-models.json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_data::Scale;

    fn tiny_env() -> BenchEnv {
        BenchEnv {
            scale: Scale::Small,
            corpus_n: 8,
            seed: 0xfeed,
            results_dir: std::env::temp_dir().join("lf_pipeline_test_results"),
        }
    }

    #[test]
    fn trains_and_caches_bundle() {
        let mut env = tiny_env();
        // Shrink the training corpus far below the production default.
        env.corpus_n = 8;
        let dir = env.results_dir.clone();
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("bundle.json");

        // First call trains (corpus_n.max(144) would be huge; call the
        // internals with a small corpus instead via the public API but a
        // tiny spec): use training_corpus_spec override by constructing
        // the corpus path manually is private — so just verify the cache
        // round-trip branch with a pre-saved bundle.
        let device = DeviceModel::v100();
        let corpus: Corpus<f32> = Corpus::generate(lf_data::CorpusSpec {
            n_matrices: 8,
            min_rows: 200,
            max_rows: 900,
            max_nnz: 15_000,
            ..Default::default()
        });
        let cfg = liteform_core::TrainingConfig {
            dense_widths: vec![32],
            ..Default::default()
        };
        let sel: Vec<_> = corpus
            .matrices
            .iter()
            .map(|m| liteform_core::label_format_selection(&m.csr, &cfg, &device))
            .collect();
        let part: Vec<_> = corpus
            .matrices
            .iter()
            .flat_map(|m| liteform_core::label_partitions(&m.csr, &cfg, &device))
            .collect();
        let mut s = liteform_core::FormatSelector::new(1);
        s.train(&sel);
        let mut p = liteform_core::PartitionPredictor::new(2);
        p.train(&part);
        let lf = LiteForm::new(s, p, device);
        std::fs::create_dir_all(&dir).unwrap();
        ModelBundle::from_liteform(&lf, "pipeline test")
            .save(&path)
            .unwrap();

        // train_pipeline must take the cache branch and return no stats.
        let (_loaded, stats) = train_pipeline(&env, Some(&path));
        assert!(stats.is_none(), "cache hit must skip training");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_bundle_path_is_under_results() {
        let env = tiny_env();
        let p = default_bundle_path(&env);
        assert!(p.starts_with(&env.results_dir));
        assert_eq!(p.extension().and_then(|e| e.to_str()), Some("json"));
    }
}
