//! Text tables and JSON result dumps.

use serde::Serialize;
use std::path::Path;

/// A fixed-width text table renderer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (shorter rows are padded).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.header).chain(&self.rows);
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Serialize `value` as pretty JSON into `dir/name.json` (directory
/// created if needed). Errors are printed, not fatal — results files are
/// a convenience, the stdout tables are the deliverable.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[results -> {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Format a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return "OOM".to_string();
    }
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else if a >= 0.001 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1.0".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1') || lines[2].contains("1.0"));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(f64::INFINITY), "OOM");
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234"); // ".0" rounding
        assert_eq!(fmt(3.14215), "3.14");
        assert_eq!(fmt(0.01), "0.0100");
        assert_eq!(fmt(1e-6), "1.00e-6");
    }

    #[test]
    fn write_json_smoke() {
        let dir = std::env::temp_dir().join("lf_bench_report_test");
        write_json(&dir, "x", &vec![1, 2, 3]);
        let data = std::fs::read_to_string(dir.join("x.json")).unwrap();
        assert!(data.contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
