//! Statistics helpers for the experiment harness.

/// Geometric mean of strictly positive values; `None` when empty or any
/// value is non-positive/non-finite.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut acc = 0.0;
    for &v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        acc += v.ln();
    }
    Some((acc / values.len() as f64).exp())
}

/// Min / geomean / max summary of a positive series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// Geometric mean.
    pub geomean: f64,
    /// Largest value.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarize a series, skipping non-finite entries.
    pub fn of(values: &[f64]) -> Option<Summary> {
        let clean: Vec<f64> = values
            .iter()
            .copied()
            .filter(|v| v.is_finite() && *v > 0.0)
            .collect();
        Some(Summary {
            min: clean.iter().copied().fold(f64::INFINITY, f64::min),
            geomean: geomean(&clean)?,
            max: clean.iter().copied().fold(0.0, f64::max),
            n: clean.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]).unwrap() - 5.0).abs() < 1e-12);
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert!(geomean(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn summary_filters_bad_values() {
        let s = Summary::of(&[1.0, 4.0, f64::NAN, f64::INFINITY]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.geomean - 2.0).abs() < 1e-12);
    }
}
