//! Environment-variable configuration shared by the experiment binaries.

use lf_data::{CorpusSpec, Scale};
use std::path::PathBuf;

/// Parsed environment knobs.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    /// Graph scale (`LF_SCALE=small|paper`, default small).
    pub scale: Scale,
    /// Corpus size (`LF_CORPUS_N`, default 120).
    pub corpus_n: usize,
    /// Master seed (`LF_SEED`, default the corpus default).
    pub seed: u64,
    /// Where JSON results land (`LF_RESULTS_DIR`, default `results/`).
    pub results_dir: PathBuf,
}

impl BenchEnv {
    /// Read the environment.
    pub fn from_env() -> Self {
        let scale = match std::env::var("LF_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        };
        let corpus_n = std::env::var("LF_CORPUS_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120);
        let seed = std::env::var("LF_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5eed_c0de);
        let results_dir = std::env::var("LF_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        BenchEnv {
            scale,
            corpus_n,
            seed,
            results_dir,
        }
    }

    /// Corpus spec for the wide experiments (Figures 7/9, Tables 5/6).
    pub fn corpus_spec(&self) -> CorpusSpec {
        CorpusSpec {
            n_matrices: self.corpus_n,
            max_rows: 40_000,
            max_nnz: 600_000,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Corpus used to train the shipped models. Must span the feature
    /// ranges the pipeline will see at inference time (up to the larger
    /// GNN analogues), otherwise the partition predictor extrapolates.
    pub fn training_corpus_spec(&self) -> CorpusSpec {
        CorpusSpec {
            n_matrices: self.corpus_n.max(144),
            max_rows: 120_000,
            max_nnz: 1_200_000,
            seed: self.seed ^ 0x7ea1,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        // Note: reads the real environment; defaults hold under `cargo
        // test` (no LF_* vars set by the suite).
        let e = BenchEnv::from_env();
        assert!(e.corpus_n > 0);
        assert!(e.corpus_spec().n_matrices == e.corpus_n);
        assert!(e.training_corpus_spec().n_matrices >= 40);
    }
}
