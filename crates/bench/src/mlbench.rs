//! Shared machinery for the model-comparison experiments (Tables 5–6,
//! Figure 10): label a corpus, split, and sweep the ten-classifier zoo
//! with timing.

use lf_data::Corpus;
use lf_ml::{cosine_similarity, ClassificationReport, Dataset};
use lf_sim::DeviceModel;
use liteform_core::{label_format_selection, label_partitions, TrainingConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// One Table 5/6 row.
#[derive(Debug, Clone, Serialize)]
pub struct ModelRow {
    /// Model family name.
    pub name: String,
    /// Fit wall time in seconds.
    pub training_s: f64,
    /// Batch inference wall time in seconds.
    pub inference_s: f64,
    /// Micro accuracy (= micro precision/recall/F1, as the paper prints).
    pub accuracy: f64,
    /// Macro F1 for reference.
    pub macro_f1: f64,
    /// Cosine similarity of predicted-vs-true partition vectors
    /// (Table 6 only; `None` for the format-selection task).
    pub cos_sim: Option<f64>,
}

/// Build the format-selection dataset (features → TRUE/FALSE label) from
/// a corpus.
pub fn format_selection_dataset(corpus: &Corpus<f32>, device: &DeviceModel) -> Dataset {
    let cfg = TrainingConfig::default();
    let mut x = Vec::new();
    let mut y = Vec::new();
    for m in &corpus.matrices {
        let s = label_format_selection(&m.csr, &cfg, device);
        x.push(s.features.to_vec());
        y.push(usize::from(s.use_cell));
    }
    let mut d = Dataset::new(x, y);
    d.n_classes = 2;
    d
}

/// Build the partition dataset; also returns, per sample, the matrix id
/// it came from (for the cosine-similarity grouping across dense widths).
pub fn partition_dataset(corpus: &Corpus<f32>, device: &DeviceModel) -> (Dataset, Vec<String>) {
    let cfg = TrainingConfig::default();
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut group = Vec::new();
    for m in &corpus.matrices {
        for s in label_partitions(&m.csr, &cfg, device) {
            x.push(s.features.to_vec());
            y.push(liteform_core::PartitionPredictor::class_of(s.best_p));
            group.push(m.id.clone());
        }
    }
    let mut d = Dataset::new(x, y);
    d.n_classes = lf_cost::partition::PARTITION_CANDIDATES.len();
    (d, group)
}

/// Fit + evaluate every model of the zoo on a train/test split.
///
/// `groups`, when given, maps each *test* sample to a matrix id; the
/// cosine similarity of Eq. 2 is then computed per matrix over its dense
/// widths (paper's Table 6 `cos_sim` column) and averaged.
pub fn sweep_models(
    train: &Dataset,
    test: &Dataset,
    test_groups: Option<&[String]>,
    seed: u64,
) -> Vec<ModelRow> {
    let mut rows = Vec::new();
    for mut model in lf_ml::model_zoo(seed) {
        let t0 = Instant::now();
        model.fit(&train.x, &train.y, train.n_classes);
        let training_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let pred = model.predict(&test.x);
        let inference_s = t0.elapsed().as_secs_f64();

        let report = ClassificationReport::compute(&test.y, &pred, test.n_classes);
        let cos_sim = test_groups.map(|groups| {
            let cands = lf_cost::partition::PARTITION_CANDIDATES;
            let mut by_matrix: BTreeMap<&String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
            for ((p, t), g) in pred.iter().zip(&test.y).zip(groups) {
                let e = by_matrix.entry(g).or_default();
                e.0.push(cands[*p] as f64);
                e.1.push(cands[*t] as f64);
            }
            let sims: Vec<f64> = by_matrix
                .values()
                .map(|(p, t)| cosine_similarity(p, t))
                .collect();
            sims.iter().sum::<f64>() / sims.len().max(1) as f64
        });
        rows.push(ModelRow {
            name: model.name().to_string(),
            training_s,
            inference_s,
            accuracy: report.accuracy,
            macro_f1: report.macro_f1,
            cos_sim,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_data::CorpusSpec;

    fn tiny_corpus() -> Corpus<f32> {
        Corpus::generate(CorpusSpec {
            n_matrices: 10,
            min_rows: 200,
            max_rows: 800,
            max_nnz: 20_000,
            ..Default::default()
        })
    }

    #[test]
    fn datasets_have_expected_shapes() {
        let device = DeviceModel::v100();
        let corpus = tiny_corpus();
        let sel = format_selection_dataset(&corpus, &device);
        assert_eq!(sel.len(), 10);
        assert_eq!(sel.n_features(), 7);
        let (part, groups) = partition_dataset(&corpus, &device);
        assert_eq!(part.len(), 50); // 10 matrices × 5 widths
        assert_eq!(part.n_features(), 8);
        assert_eq!(groups.len(), 50);
    }

    #[test]
    fn sweep_returns_all_ten_models() {
        let device = DeviceModel::v100();
        let corpus = tiny_corpus();
        let (part, _groups) = partition_dataset(&corpus, &device);
        let split = part.split(0.8, 1);
        // Recompute groups for the test split is impossible here (split
        // shuffles); pass a fake grouping to exercise the path.
        let fake_groups: Vec<String> = (0..split.test.len())
            .map(|i| format!("g{}", i % 3))
            .collect();
        let rows = sweep_models(&split.train, &split.test, Some(&fake_groups), 3);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.training_s >= 0.0 && r.inference_s >= 0.0);
            assert!((0.0..=1.0).contains(&r.accuracy));
            let c = r.cos_sim.unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
    }
}
