//! Degenerate-input regression suite for column spans and `build_cell`.
//!
//! The contract under test: a requested partition count of `0` is a
//! *documented error* (`CellConfig::validate`), while every other
//! degenerate input — partitions exceeding the column count, zero-row /
//! zero-column / empty matrices — produces a **valid clamped plan**, not
//! a panic. The span module is the single source of truth for clamping,
//! so its edge behavior is pinned here explicitly.

use lf_cell::{
    build_cell, build_cell_reference, effective_partitions, partition_spans, CellConfig, SpanMap,
};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{CsrMatrix, Pcg32, SparseError};

#[test]
fn effective_partitions_clamps_both_ends() {
    // p=0 floors at 1; p>cols caps at cols; cols=0 still yields 1.
    assert_eq!(effective_partitions(10, 0), 1);
    assert_eq!(effective_partitions(10, 3), 3);
    assert_eq!(effective_partitions(10, 10), 10);
    assert_eq!(effective_partitions(10, 11), 10);
    assert_eq!(effective_partitions(10, usize::MAX), 10);
    assert_eq!(effective_partitions(0, 0), 1);
    assert_eq!(effective_partitions(0, 5), 1);
    assert_eq!(effective_partitions(1, 64), 1);
}

#[test]
fn partition_spans_cover_columns_exactly() {
    for cols in [0usize, 1, 2, 7, 10, 64] {
        for p in [0usize, 1, 2, 5, 10, 100] {
            let spans = partition_spans(cols, p);
            assert_eq!(spans.len(), effective_partitions(cols, p));
            // Spans tile [0, cols) contiguously with no gaps.
            assert_eq!(spans[0].0, 0, "cols={cols} p={p}");
            assert_eq!(spans.last().unwrap().1, cols, "cols={cols} p={p}");
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0, "cols={cols} p={p}");
            }
        }
    }
}

#[test]
fn span_map_agrees_with_spans_on_degenerate_counts() {
    for cols in [1usize, 3, 17] {
        for p in [0usize, 1, cols, cols + 1, 10 * cols] {
            let map = SpanMap::new(cols, p);
            let spans = partition_spans(cols, p);
            assert_eq!(map.num_partitions(), spans.len());
            for col in 0..cols {
                let pi = map.of_col(col);
                let (lo, hi) = spans[pi];
                assert!(
                    (lo..hi).contains(&col),
                    "cols={cols} p={p} col={col} mapped to [{lo},{hi})"
                );
            }
        }
    }
}

#[test]
fn zero_partitions_is_a_documented_error_not_a_panic() {
    let mut rng = Pcg32::seed_from_u64(1);
    let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(40, 40, 300, 4, &mut rng));
    let err = build_cell(&csr, &CellConfig::with_partitions(0)).unwrap_err();
    assert!(
        matches!(err, SparseError::InvalidConfig(_)),
        "expected InvalidConfig, got {err:?}"
    );
    let err = build_cell_reference(&csr, &CellConfig::with_partitions(0)).unwrap_err();
    assert!(matches!(err, SparseError::InvalidConfig(_)));
}

#[test]
fn partitions_beyond_columns_clamp_to_a_valid_plan() {
    let mut rng = Pcg32::seed_from_u64(2);
    let cols = 12;
    let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(50, cols, 250, 3, &mut rng));
    for p in [cols, cols + 1, 64, 10_000] {
        let cell = build_cell(&csr, &CellConfig::with_partitions(p)).unwrap();
        assert_eq!(cell.partitions().len(), cols, "p={p} must clamp to cols");
        assert_eq!(cell.nnz(), csr.nnz(), "p={p}");
        // The clamped layout still stores exactly the original matrix.
        let back = cell.to_csr();
        assert_eq!(back.row_ptr(), csr.row_ptr(), "p={p}");
        assert_eq!(back.col_ind(), csr.col_ind(), "p={p}");
        assert_eq!(back.values(), csr.values(), "p={p}");
    }
}

#[test]
fn empty_and_zero_dimension_matrices_build_degenerate_plans() {
    for (rows, cols) in [(0usize, 0usize), (0, 9), (9, 0), (16, 16)] {
        let csr = CsrMatrix::<f64>::empty(rows, cols);
        for p in [1usize, 3, 8] {
            let cell = build_cell(&csr, &CellConfig::with_partitions(p)).unwrap();
            assert_eq!(cell.shape(), (rows, cols), "{rows}x{cols} p={p}");
            assert_eq!(cell.nnz(), 0);
            assert_eq!(cell.partitions().len(), effective_partitions(cols, p));
            assert!(
                cell.partitions().iter().all(|part| part.buckets.is_empty()),
                "{rows}x{cols} p={p}: empty matrix must have no buckets"
            );
            assert_eq!(cell.to_csr().nnz(), 0);
        }
    }
}
