//! Corpus property: incrementally maintained CELL is bitwise identical
//! to a from-scratch rebuild, across every pattern family × partition
//! count × width-cap configuration × seeded update stream.
//!
//! Streams are engineered to hit the hard transitions: rows folding
//! across a cap as inserts push them over, folded rows unfolding as
//! deletes pull them under, rows migrating between power-of-two
//! buckets, and rows deleted down to empty (all fragments dropped).

use lf_cell::{build_cell, update_cell, CellConfig};
use lf_sparse::gen::PatternFamily;
use lf_sparse::update::EdgeUpdate;
use lf_sparse::{CsrMatrix, Index, Pcg32};

/// One update batch: random single-coordinate edits plus, on alternate
/// steps, a row drain (delete-to-empty) or a row bloat (fold crossing).
fn batch(csr: &CsrMatrix<f64>, step: usize, rng: &mut Pcg32) -> Vec<EdgeUpdate<f64>> {
    let (rows, cols) = csr.shape();
    let mut updates: Vec<EdgeUpdate<f64>> = Vec::new();
    let taken = |updates: &[EdgeUpdate<f64>], r: usize, c: usize| {
        updates.iter().any(|u| u.coord() == (r, c))
    };

    match step % 3 {
        // Drain a non-empty row to zero entries.
        1 => {
            for _ in 0..8 {
                let r = rng.usize_in(0, rows);
                if csr.row_len(r) > 0 {
                    updates.extend(csr.row_cols(r).iter().map(|&c| EdgeUpdate::Delete {
                        row: r,
                        col: c as usize,
                    }));
                    break;
                }
            }
        }
        // Bloat one row well past the small caps so it folds (and
        // crosses several power-of-two boundaries when uncapped).
        2 => {
            let r = rng.usize_in(0, rows);
            let have = csr.row_cols(r);
            for c in 0..cols.min(48) {
                if have.binary_search(&(c as Index)).is_err() {
                    updates.push(EdgeUpdate::Insert {
                        row: r,
                        col: c,
                        value: rng.f64_in(0.5, 1.5),
                    });
                }
            }
        }
        _ => {}
    }

    for _ in 0..12 {
        let r = rng.usize_in(0, rows);
        let c = rng.usize_in(0, cols);
        if taken(&updates, r, c) {
            continue;
        }
        let present = csr.row_cols(r).binary_search(&(c as Index)).is_ok();
        updates.push(match (present, rng.bernoulli(0.4)) {
            (true, true) => EdgeUpdate::Delete { row: r, col: c },
            (true, false) => EdgeUpdate::SetValue {
                row: r,
                col: c,
                value: rng.f64_in(-2.0, 2.0),
            },
            (false, _) => EdgeUpdate::Insert {
                row: r,
                col: c,
                value: rng.f64_in(0.5, 1.5),
            },
        });
    }
    updates
}

#[test]
fn incremental_matches_rebuild_across_corpus() {
    let mut seed = 0x11FE_u64;
    for family in PatternFamily::ALL {
        for partitions in [1usize, 2, 3, 5, 8] {
            for caps in [None, Some(vec![4usize]), Some(vec![32usize])] {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let mut rng = Pcg32::seed_from_u64(seed);
                let coo = family.generate::<f64>(257, 193, 4000, &mut rng);
                let mut csr = CsrMatrix::from_coo(&coo);
                let cfg = CellConfig {
                    num_partitions: partitions,
                    max_widths: caps.clone(),
                    ..CellConfig::default()
                };
                let mut cell = build_cell(&csr, &cfg).unwrap();
                for step in 0..4 {
                    let updates = batch(&csr, step, &mut rng);
                    if updates.is_empty() {
                        continue;
                    }
                    let new_csr = csr.apply_updates(&updates).unwrap();
                    let touched: Vec<(usize, usize)> =
                        updates.iter().map(EdgeUpdate::coord).collect();
                    update_cell(&mut cell, &new_csr, &touched).unwrap();
                    let rebuilt = build_cell(&new_csr, &cfg).unwrap();
                    assert_eq!(
                        cell,
                        rebuilt,
                        "family {} partitions {} caps {:?} step {}: \
                         maintained CELL diverged from rebuild",
                        family.name(),
                        partitions,
                        caps,
                        step
                    );
                    csr = new_csr;
                }
            }
        }
    }
}
