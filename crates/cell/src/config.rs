//! Configuration of a CELL composition.

use lf_sparse::SparseError;
use serde::{Deserialize, Serialize};

/// Parameters chosen by LiteForm's composer (or by hand) that determine
/// how a matrix is laid out in CELL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Number of equal column partitions (≥ 1).
    pub num_partitions: usize,
    /// Per-partition cap on the bucket width, each a power of two.
    ///
    /// * `None` — every partition uses its natural maximum (the smallest
    ///   power of two ≥ its longest row); no folding occurs.
    /// * `Some(v)` with `v.len() == num_partitions` — partition `p` folds
    ///   rows longer than `v[p]` into multiple bucket rows.
    /// * `Some(v)` with `v.len() == 1` — one shared cap for all partitions
    ///   (SparseTIR-hyb style).
    pub max_widths: Option<Vec<usize>>,
    /// Block size multiplier: a block holds
    /// `block_nnz_multiple × max bucket width of the partition` non-zero
    /// slots (the paper's `2^k`, "one or multiple times of the maximum
    /// bucket width"). Must be a power of two ≥ 1.
    pub block_nnz_multiple: usize,
    /// CELL's third level (default `true`): group every `2^k / width`
    /// bucket rows into a block so all blocks carry the same `2^k`
    /// non-zero slots. `false` reproduces SparseTIR-hyb's two-level
    /// mapping — a fixed number of rows per block in every bucket — whose
    /// wide-bucket blocks become load-balance hot spots (§4's contrast).
    pub uniform_block_nnz: bool,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            num_partitions: 1,
            max_widths: None,
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        }
    }
}

impl CellConfig {
    /// Configuration with `p` partitions and natural bucket widths.
    pub fn with_partitions(p: usize) -> Self {
        CellConfig {
            num_partitions: p,
            ..Default::default()
        }
    }

    /// Set per-partition maximum widths.
    pub fn with_max_widths(mut self, widths: Vec<usize>) -> Self {
        self.max_widths = Some(widths);
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.num_partitions == 0 {
            return Err(SparseError::InvalidConfig(
                "num_partitions must be ≥ 1".into(),
            ));
        }
        if !self.block_nnz_multiple.is_power_of_two() {
            return Err(SparseError::InvalidConfig(format!(
                "block_nnz_multiple {} must be a power of two",
                self.block_nnz_multiple
            )));
        }
        if let Some(widths) = &self.max_widths {
            if widths.len() != 1 && widths.len() != self.num_partitions {
                return Err(SparseError::InvalidConfig(format!(
                    "max_widths length {} must be 1 or num_partitions {}",
                    widths.len(),
                    self.num_partitions
                )));
            }
            for &w in widths {
                if w == 0 || !w.is_power_of_two() {
                    return Err(SparseError::InvalidConfig(format!(
                        "bucket width {w} must be a positive power of two"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The width cap for partition `p`, if any.
    pub fn max_width_for(&self, p: usize) -> Option<usize> {
        self.max_widths
            .as_ref()
            .map(|v| if v.len() == 1 { v[0] } else { v[p] })
    }
}

/// Round `l ≥ 1` up to the bucket width holding rows of that length:
/// the smallest power of two ≥ `l` (bucket `i` holds `2^(i-1) < l ≤ 2^i`).
pub fn bucket_width_for_len(l: usize) -> usize {
    debug_assert!(l >= 1);
    l.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CellConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_partitions_invalid() {
        let c = CellConfig {
            num_partitions: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn non_power_of_two_rejected() {
        let c = CellConfig::with_partitions(2).with_max_widths(vec![8, 12]);
        assert!(c.validate().is_err());
        let c = CellConfig {
            block_nnz_multiple: 3,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn width_vector_length_checked() {
        let c = CellConfig::with_partitions(3).with_max_widths(vec![8, 8]);
        assert!(c.validate().is_err());
        let c = CellConfig::with_partitions(3).with_max_widths(vec![8]);
        assert!(c.validate().is_ok());
        let c = CellConfig::with_partitions(3).with_max_widths(vec![8, 4, 16]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn shared_width_broadcasts() {
        let c = CellConfig::with_partitions(3).with_max_widths(vec![8]);
        assert_eq!(c.max_width_for(0), Some(8));
        assert_eq!(c.max_width_for(2), Some(8));
        let c = CellConfig::with_partitions(2).with_max_widths(vec![4, 16]);
        assert_eq!(c.max_width_for(1), Some(16));
        assert_eq!(CellConfig::default().max_width_for(0), None);
    }

    #[test]
    fn bucket_width_bounds() {
        assert_eq!(bucket_width_for_len(1), 1);
        assert_eq!(bucket_width_for_len(2), 2);
        assert_eq!(bucket_width_for_len(3), 4);
        assert_eq!(bucket_width_for_len(4), 4);
        assert_eq!(bucket_width_for_len(5), 8);
        assert_eq!(bucket_width_for_len(1023), 1024);
        // Paper rule: 2^(i-1) < l ≤ 2^i.
        for l in 1..200usize {
            let w = bucket_width_for_len(l);
            assert!(w.is_power_of_two());
            assert!(l <= w && (w == 1 || l > w / 2));
        }
    }
}
