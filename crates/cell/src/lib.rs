#![warn(missing_docs)]

//! # lf-cell
//!
//! The **Composable Ellpack (CELL)** format — the paper's primary data
//! structure (§4, Figures 3–5).
//!
//! CELL is a three-level blockwise layout:
//!
//! 1. **Column partitions** — the column space is divided into `P` equal
//!    partitions; every partition stores its own sub-matrix, so a long row
//!    is broken into per-partition pieces and padding is decided locally.
//! 2. **Row buckets** — within a partition, rows are grouped by length:
//!    bucket `i` has width `2^i` and holds rows with `2^(i-1) < l ≤ 2^i`.
//!    Rows longer than the partition's maximum bucket width are *folded*:
//!    split across several bucket rows that share the original row index
//!    in `row_ind` (their partial sums are combined with atomics).
//! 3. **Blocks** — inside bucket `i`, every `2^(k-i)` rows form a block of
//!    `2^k` non-zero slots, the unit mapped to one GPU thread block. `2^k`
//!    is one or more times the partition's maximum bucket width.
//!
//! Unlike SparseTIR's `hyb`, each partition chooses its own set of bucket
//! widths ([`CellConfig::max_widths`]); forcing a single shared cap across
//! partitions reproduces `hyb` exactly, which is how `lf-baselines` models
//! SparseTIR.

pub mod build;
pub mod config;
pub mod matrix;
pub mod span;
pub mod update;

pub use build::{build_cell, build_cell_reference};
pub use config::CellConfig;
pub use matrix::{Bucket, CellMatrix, Partition};
pub use span::{effective_partitions, partition_of_col, partition_spans, SpanMap};
pub use update::update_cell;
