//! CELL construction: partition → bucket → fold → block (§4 and §5.3).
//!
//! Two builders live here:
//!
//! * [`build_cell`] — the production path: one O(nnz) sweep over the CSR
//!   scatters every row into *all* partitions' segments at once (no
//!   per-partition binary searches), then partition planning and bucket
//!   materialization run in parallel on [`lf_sim::parallel`] workers.
//! * [`build_cell_reference`] — the original per-partition scan kept as
//!   the correctness oracle and the "before" side of the
//!   `cell_build` benchmark. Both share the [`crate::span`] helpers, so
//!   their partitioning can never drift apart; tests assert their
//!   outputs are bit-identical.

use crate::config::{bucket_width_for_len, CellConfig};
use crate::matrix::{Bucket, CellMatrix, Partition};
use crate::span::SpanMap;
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{CsrMatrix, Index, Result, Scalar, SparseError};

/// A row fragment assigned to a bucket: `(original row, CSR index range)`.
/// Offsets are `u32` to halve the fragment tables' footprint; matrices
/// beyond `u32::MAX` non-zeros are far outside single-GPU SpMM scale and
/// are rejected up front by [`build_cell`].
type Fragment = (Index, u32, u32);

/// Build a [`CellMatrix`] from CSR under the given configuration.
///
/// The column space is divided into equal spans (the requested partition
/// count is clamped to the column count — see
/// [`crate::span::effective_partitions`]). Within each span, every row's
/// entries are gathered; rows are grouped into buckets of width `2^i` by
/// length; rows longer than the partition's width cap are folded into
/// multiple bucket rows of the *maximum* bucket (sharing their original
/// row index, later combined with atomics); every `2^k / width` bucket
/// rows form one GPU block, with `2^k = block_nnz_multiple × max bucket
/// width of the partition`.
pub fn build_cell<T: Scalar>(csr: &CsrMatrix<T>, config: &CellConfig) -> Result<CellMatrix<T>> {
    config.validate()?;
    if csr.nnz() >= u32::MAX as usize {
        return Err(SparseError::InvalidConfig(format!(
            "matrix nnz {} exceeds the u32 fragment-offset range",
            csr.nnz()
        )));
    }
    let (rows, cols) = csr.shape();
    let map = SpanMap::new(cols, config.num_partitions);
    let p = map.num_partitions();
    let workers = workers_for(csr.nnz());

    // Phases A+B fused — one sweep over the rows (parallel over row
    // chunks): every row's columns are split into all `p` partition
    // segments at once (see [`row_boundaries`]) and each segment is
    // binned straight into its partition's width bucket, with no
    // intermediate per-row bounds matrix.
    let plans = sweep_and_plan(csr, &map, config, workers);

    // Phase C — bucket materialization (parallel over all buckets of all
    // partitions, so even a single-partition matrix uses every worker).
    // Fragment lists are moved out of the plans, not cloned.
    let mut jobs: Vec<(usize, usize, Vec<Fragment>, bool, usize)> = Vec::new();
    let mut plans = plans;
    for (pi, plan) in plans.iter_mut().enumerate() {
        let max_width = plan.max_width;
        let block_nnz = plan.block_nnz;
        for (width, frags) in std::mem::take(&mut plan.by_width) {
            jobs.push((pi, width, frags, width == max_width, block_nnz));
        }
    }
    let multi_partition = p > 1;
    let buckets = lf_sim::parallel::parallel_map(jobs.len(), workers, |ji| {
        let (pi, width, ref frags, is_max, block_nnz) = jobs[ji];
        let plan = &plans[pi];
        Some(materialize_bucket(
            csr,
            width,
            frags,
            BucketCtx {
                is_max,
                block_nnz,
                multi_partition,
                any_folded: plan.any_folded,
                uniform_block_nnz: config.uniform_block_nnz,
            },
        ))
    });

    // Phase D — reassemble in (partition, width) order. `jobs` was built
    // partition-major with widths ascending, so a single scan regroups.
    let mut partitions: Vec<Partition<T>> = (0..p)
        .map(|pi| Partition {
            col_range: map.span_of(pi),
            buckets: Vec::new(),
        })
        .collect();
    for (ji, bucket) in buckets.into_iter().enumerate() {
        let pi = jobs[ji].0;
        partitions[pi]
            .buckets
            .push(bucket.expect("bucket materialized"));
    }

    Ok(CellMatrix {
        rows,
        cols,
        nnz: csr.nnz(),
        partitions,
        config: config.clone(),
    })
}

/// Worker count heuristic: parallelism only pays past a few thousand
/// non-zeros (thread spawn ≈ tens of microseconds).
pub fn workers_for(nnz: usize) -> usize {
    if nnz < 8192 {
        1
    } else {
        lf_sim::parallel::default_workers()
    }
}

/// The single partition sweep: a flat `rows × (p+1)` matrix of absolute
/// CSR offsets such that partition `pi`'s segment of row `r` is
/// `bounds[r*(p+1)+pi] .. bounds[r*(p+1)+pi+1]`. One pass over the rows
/// finds every partition's segment at once, instead of the seed's p
/// full-matrix rescans. Shared with the cost model's `PartitionSketch`
/// extraction so the builder and the model can never disagree about
/// partition contents.
pub fn row_segment_bounds<T: Scalar>(
    csr: &CsrMatrix<T>,
    map: &SpanMap,
    workers: usize,
) -> Vec<usize> {
    let rows = csr.rows();
    let p = map.num_partitions();
    let stride = p + 1;
    if p == 1 {
        // Single partition: each row's only segment is the whole row.
        let mut bounds = Vec::with_capacity(rows * 2);
        for r in 0..rows {
            bounds.push(csr.row_ptr()[r]);
            bounds.push(csr.row_ptr()[r + 1]);
        }
        return bounds;
    }
    // Chunk rows so each task fills a contiguous slab, amortizing
    // allocation and scheduling.
    let chunks = if workers == 1 { 1 } else { workers * 8 }.min(rows.max(1));
    let chunk_len = rows.div_ceil(chunks.max(1)).max(1);
    let mut slabs = lf_sim::parallel::parallel_map(chunks, workers, |ci| {
        let r_lo = ci * chunk_len;
        let r_hi = ((ci + 1) * chunk_len).min(rows);
        let finder = BoundaryFinder::new(map);
        let mut slab = vec![0usize; (r_hi.saturating_sub(r_lo)) * stride];
        for r in r_lo..r_hi {
            let b = &mut slab[(r - r_lo) * stride..(r - r_lo + 1) * stride];
            finder.split(csr.row_cols(r), csr.row_ptr()[r], b);
        }
        slab
    });
    if slabs.len() == 1 {
        return slabs.pop().expect("one slab");
    }
    let mut bounds = Vec::with_capacity(rows * stride);
    for slab in slabs {
        bounds.extend_from_slice(&slab);
    }
    bounds
}

/// Per-row partition-boundary finder, precomputed once per span layout.
/// This is the one splitter shared by the builder's fused sweep and
/// [`row_segment_bounds`] (and through it the cost model's sketch
/// extraction), so the two can never drift.
struct BoundaryFinder {
    /// First column of each partition after the zeroth: the `p - 1`
    /// boundaries a row's sorted columns are split at.
    starts: Vec<usize>,
    /// `ceil(2^32 / span_width)`: a multiply-shift inverse of the
    /// uniform span width, so `(col * magic) >> 32` is `col / span`.
    /// `None` when `cols * span >= 2^32`, where the shortcut stops
    /// being exact (see [`Self::new`] for the error bound).
    magic: Option<u64>,
}

impl BoundaryFinder {
    fn new(map: &SpanMap) -> Self {
        let p = map.num_partitions();
        let starts: Vec<usize> = (1..p).map(|pi| map.span_of(pi).0).collect();
        // With magic = (2^32 + s) / span for some 0 <= s < span, the
        // product floor(col * magic / 2^32) equals floor(col / span)
        // plus an error below col * s / (span * 2^32), which stays
        // under the 1/span needed for exact floors whenever
        // col * s < 2^32 — guaranteed by cols * span < 2^32.
        let magic = starts.first().and_then(|&span| {
            let cols = map.span_of(p - 1).1;
            ((cols as u64).saturating_mul(span as u64) < 1 << 32)
                .then(|| (1u64 << 32).div_ceil(span as u64))
        });
        BoundaryFinder { starts, magic }
    }

    /// Split one row's sorted columns at every partition boundary:
    /// `out[pi]..out[pi+1]` becomes partition `pi`'s segment of the
    /// row, as absolute CSR offsets (`base` is the row's start in the
    /// CSR arrays). `out` holds `starts.len() + 2` entries.
    #[inline]
    fn split(&self, rcols: &[Index], base: usize, out: &mut [usize]) {
        let starts = &self.starts;
        let p = starts.len() + 1;
        out[0] = base;
        out[p] = base + rcols.len();
        // Three ways to locate the boundaries, picked by how dense they
        // are. Sparse (long segments): a binary search per boundary —
        // its serial dependency chain beats touching every element.
        // Dense (segments under ~48 columns): divide every column by
        // the span width via `magic` and store its position into the
        // owning boundary slot; sortedness makes the last store win, and
        // the unconditional store has no load dependency and never
        // mispredicts. In between: a skip-scan whose probes clear eight
        // (then four) columns per comparison. Crossovers are empirical.
        if rcols.len() >= 192 * starts.len() {
            let mut off = 0usize;
            for (pi, &lo) in starts.iter().enumerate() {
                off += lower_bound(&rcols[off..], lo as Index);
                out[pi + 1] = base + off;
            }
            return;
        }
        if let Some(magic) = self.magic {
            if rcols.len() <= 48 * starts.len() {
                for slot in &mut out[1..p] {
                    *slot = 0;
                }
                for (k, &c) in rcols.iter().enumerate() {
                    let pi = (((c as u64 * magic) >> 32) as usize).min(p - 1);
                    out[pi + 1] = base + k + 1;
                }
                // Empty partitions kept their zero: boundaries are
                // non-decreasing, so propagate the running maximum.
                for i in 1..p {
                    out[i] = out[i].max(out[i - 1]);
                }
                return;
            }
        }
        let mut cur = 0usize;
        let mut next = starts.first().copied().unwrap_or(usize::MAX);
        let mut k = 0usize;
        while k < rcols.len() {
            // Sortedness lets a whole run be skipped by probing only its
            // last element: one comparison clears eight (then four)
            // columns, so the element-by-element tail is at most four.
            while k + 8 < rcols.len() && (rcols[k + 7] as usize) < next {
                k += 8;
            }
            if k + 4 < rcols.len() && (rcols[k + 3] as usize) < next {
                k += 4;
            }
            let c = rcols[k] as usize;
            if c >= next {
                loop {
                    out[cur + 1] = base + k;
                    cur += 1;
                    next = starts.get(cur).copied().unwrap_or(usize::MAX);
                    if c < next {
                        break;
                    }
                }
            }
            k += 1;
        }
        for slot in &mut out[cur + 1..p] {
            *slot = base + rcols.len();
        }
    }
}

/// Branchless lower bound: index of the first element `>= bound` in a
/// sorted slice. The data-dependent step is a conditional move, not a
/// branch, which keeps the pipeline fed on the random-ish probes the
/// partition sweep makes.
#[inline]
fn lower_bound(sorted: &[Index], bound: Index) -> usize {
    let mut lo = 0usize;
    let mut size = sorted.len();
    while size > 1 {
        let half = size / 2;
        let mid = lo + half;
        if sorted[mid - 1] < bound {
            lo = mid;
        }
        size -= half;
    }
    if lo < sorted.len() && sorted[lo] < bound {
        lo += 1;
    }
    lo
}

/// One partition's bucket layout before materialization.
#[derive(Debug, Clone, Default)]
struct PartitionPlan {
    /// `(width, fragments)`, widths ascending, no empty buckets.
    by_width: Vec<(usize, Vec<Fragment>)>,
    /// Whether any row was folded (determines max-bucket atomics).
    any_folded: bool,
    /// Largest used bucket width (0 when the partition is empty).
    max_width: usize,
    /// The paper's `2^k`: non-zero slots per block.
    block_nnz: usize,
}

/// Phases A+B fused: one sweep over the rows (parallel over row chunks)
/// that both splits every row at all partition boundaries (via
/// [`row_boundaries`]) and bins each segment straight into its
/// partition's width bucket — no intermediate bounds matrix.
///
/// The natural (unconfigured) cap of a partition is the width of its
/// longest segment's bucket, so a natural cap can never fold a row:
/// binning every segment by its own width is already final, and the cap
/// only needs to be known up front when it is configured. Bucket widths
/// are powers of two, so fragments land in flat per-exponent tables.
fn sweep_and_plan<T: Scalar>(
    csr: &CsrMatrix<T>,
    map: &SpanMap,
    config: &CellConfig,
    workers: usize,
) -> Vec<PartitionPlan> {
    let rows = csr.rows();
    let p = map.num_partitions();
    // Configured folding caps (`None` = natural, never folds).
    let caps: Vec<Option<usize>> = (0..p).map(|pi| config.max_width_for(pi)).collect();
    // Exponent-table extent per partition: a segment is never longer
    // than its span, and a configured partition never bins above its
    // cap. Tables are flattened into one vector; partition `pi`'s
    // exponent `e` bucket lives at `offsets[pi] + e`.
    let mut offsets: Vec<usize> = Vec::with_capacity(p + 1);
    offsets.push(0);
    for pi in 0..p {
        let (lo, hi) = map.span_of(pi);
        let natural = bucket_width_for_len((hi - lo).max(1));
        let bound = caps[pi].map_or(natural, |c| c.min(natural));
        offsets.push(offsets[pi] + bound.trailing_zeros() as usize + 1);
    }
    let table_total = offsets[p];

    let chunks = if workers == 1 { 1 } else { workers * 4 }.min(rows.max(1));
    let chunk_len = rows.div_ceil(chunks.max(1)).max(1);
    let mut parts = lf_sim::parallel::parallel_map(chunks, workers, |ci| {
        let r_lo = ci * chunk_len;
        let r_hi = ((ci + 1) * chunk_len).min(rows);
        let finder = BoundaryFinder::new(map);
        let mut b = vec![0usize; p + 1];
        let mut table: Vec<Vec<Fragment>> = vec![Vec::new(); table_total];
        let mut any_folded = vec![false; p];
        for r in r_lo..r_hi {
            let base = csr.row_ptr()[r];
            let rcols = csr.row_cols(r);
            if rcols.is_empty() {
                continue;
            }
            let row = r as Index;
            finder.split(rcols, base, &mut b);
            for pi in 0..p {
                let start = b[pi];
                let end = b[pi + 1];
                let len = end - start;
                if len == 0 {
                    continue;
                }
                match caps[pi] {
                    Some(cap) if len > cap => {
                        let ce = cap.trailing_zeros() as usize;
                        let mut s = start;
                        while s < end {
                            let e = (s + cap).min(end);
                            table[offsets[pi] + ce].push((row, s as u32, e as u32));
                            s = e;
                        }
                        any_folded[pi] = true;
                    }
                    _ => {
                        // ⌈log₂ len⌉, i.e. `bucket_width_for_len(len)`'s
                        // exponent, without materializing the width.
                        let e = (usize::BITS - (len - 1).leading_zeros()) as usize;
                        table[offsets[pi] + e].push((row, start as u32, end as u32));
                    }
                }
            }
        }
        (table, any_folded)
    });

    // Merge chunk partials in chunk order, preserving row order within
    // every bucket; fragment lists are moved, not copied element-wise,
    // except when two chunks touched the same bucket.
    let mut iter = parts.drain(..);
    let (mut table, mut any_folded) = iter.next().expect("at least one chunk");
    for (chunk_table, chunk_folded) in iter {
        for (slot, mut frags) in chunk_table.into_iter().enumerate() {
            if table[slot].is_empty() {
                table[slot] = frags;
            } else {
                table[slot].append(&mut frags);
            }
        }
        for (pi, f) in chunk_folded.into_iter().enumerate() {
            any_folded[pi] |= f;
        }
    }

    let mut table = table.into_iter();
    (0..p)
        .zip(any_folded)
        .map(|(pi, folded)| {
            let by_width: Vec<(usize, Vec<Fragment>)> = (&mut table)
                .take(offsets[pi + 1] - offsets[pi])
                .enumerate()
                .filter(|(_, frags)| !frags.is_empty())
                .map(|(e, frags)| (1usize << e, frags))
                .collect();
            let max_width = by_width.last().map(|(w, _)| *w).unwrap_or(0);
            let block_nnz = (max_width.max(1) * config.block_nnz_multiple).next_power_of_two();
            PartitionPlan {
                by_width,
                any_folded: folded,
                max_width,
                block_nnz,
            }
        })
        .collect()
}

/// The effective folding cap for a partition: the configured cap, or the
/// natural maximum bucket width when unconfigured. Shared by both
/// builders and mirrored by the cost model's `tune_width`.
pub fn width_cap(natural_max_len: usize, config: &CellConfig, pi: usize) -> usize {
    match config.max_width_for(pi) {
        Some(w) => w,
        None => {
            if natural_max_len == 0 {
                1
            } else {
                bucket_width_for_len(natural_max_len)
            }
        }
    }
}

struct BucketCtx {
    is_max: bool,
    block_nnz: usize,
    multi_partition: bool,
    any_folded: bool,
    uniform_block_nnz: bool,
}

/// Phase C: fill one bucket's Ellpack grids from its fragment list.
///
/// Folded fragments exist only in the cap-width bucket (the planner puts
/// them nowhere else, and their presence makes it the max bucket), so
/// `has_folded` is `is_max && any_folded` — no per-fragment segment
/// comparison needed.
fn materialize_bucket<T: Scalar>(
    csr: &CsrMatrix<T>,
    width: usize,
    frags: &[Fragment],
    ctx: BucketCtx,
) -> Bucket<T> {
    let n = frags.len();
    let total = n * width;
    let mut row_ind = Vec::with_capacity(n);
    let mut col_ind: Vec<Index> = Vec::with_capacity(total);
    let mut values: Vec<T> = Vec::with_capacity(total);
    let col_dst = col_ind.as_mut_ptr();
    let val_dst = values.as_mut_ptr();
    let col_src = csr.col_ind();
    let val_src = csr.values();
    // Copy each fragment's slice then pad the tail — raw-pointer writes
    // skip the per-call capacity checks `extend`/`resize` would repeat
    // for every fragment, which dominates when buckets hold many short
    // fragments.
    //
    // SAFETY: the planner guarantees `s..e` lies within the CSR arrays,
    // `e - s <= width` (fragments never exceed the bucket width), and
    // each fragment writes exactly `width` slots at a distinct offset,
    // so all `total` reserved slots are initialized before `set_len`.
    let mut out = 0usize;
    for &(r, s, e) in frags {
        row_ind.push(r);
        let (s, e) = (s as usize, e as usize);
        let len = e - s;
        // SAFETY: `s..e` is in-bounds of the CSR arrays and `out + len`
        // never exceeds the reserved `total` (the planner contract
        // stated above the loop), so every pointer offset below stays
        // inside its allocation.
        unsafe {
            if len < 32 {
                // Short fragments: an element loop beats two memcpy
                // calls whose dispatch overhead would dominate.
                for k in 0..len {
                    *col_dst.add(out + k) = *col_src.as_ptr().add(s + k);
                    *val_dst.add(out + k) = *val_src.as_ptr().add(s + k);
                }
            } else {
                std::ptr::copy_nonoverlapping(col_src.as_ptr().add(s), col_dst.add(out), len);
                std::ptr::copy_nonoverlapping(val_src.as_ptr().add(s), val_dst.add(out), len);
            }
            for k in len..width {
                *col_dst.add(out + k) = ELL_PAD;
                *val_dst.add(out + k) = T::ZERO;
            }
        }
        out += width;
    }
    // SAFETY: the fragment loop above wrote all `total` slots — each of
    // the `frags.len()` fragments initialized exactly `width` slots
    // (payload plus padding) at its own distinct offset, and `total`
    // was reserved as `frags.len() * width`.
    unsafe {
        col_ind.set_len(total);
        values.set_len(total);
    }
    let has_folded = ctx.is_max && ctx.any_folded;
    let rows_per_block = if ctx.uniform_block_nnz {
        (ctx.block_nnz / width).max(1)
    } else {
        32
    };
    Bucket {
        width,
        row_ind,
        col_ind,
        values,
        rows_per_block,
        // Algorithm 2 line 9 / §5.3: atomics when the matrix has more
        // than one partition, or for the partition's maximum bucket
        // (which is where folded rows live).
        needs_atomic: ctx.multi_partition || (ctx.is_max && ctx.any_folded),
        has_folded,
    }
}

/// The seed builder: rescans the whole CSR once per partition with two
/// binary searches per row. Kept as the correctness oracle for
/// [`build_cell`] and as the baseline in the `cell_build` benchmark.
pub fn build_cell_reference<T: Scalar>(
    csr: &CsrMatrix<T>,
    config: &CellConfig,
) -> Result<CellMatrix<T>> {
    config.validate()?;
    let (rows, cols) = csr.shape();
    let map = SpanMap::new(cols, config.num_partitions);
    let p = map.num_partitions();
    let mut partitions = Vec::with_capacity(p);
    for pi in 0..p {
        let (col_lo, col_hi) = map.span_of(pi);
        partitions.push(reference_partition(csr, col_lo, col_hi, config, pi, p > 1));
    }
    Ok(CellMatrix {
        rows,
        cols,
        nnz: csr.nnz(),
        partitions,
        config: config.clone(),
    })
}

/// Build the partition covering columns `[col_lo, col_hi)` the slow way.
fn reference_partition<T: Scalar>(
    csr: &CsrMatrix<T>,
    col_lo: usize,
    col_hi: usize,
    config: &CellConfig,
    pi: usize,
    multi_partition: bool,
) -> Partition<T> {
    use std::collections::BTreeMap;

    /// The seed's fragment tuple: `(row, CSR index range)` in full-width
    /// offsets, as the original builder stored them.
    type RefFragment = (Index, usize, usize);

    // Gather each row's slice within the column span.
    // seg[r] = (start, end) into the row's CSR arrays.
    let rows = csr.rows();
    let mut segments: Vec<(usize, usize)> = Vec::with_capacity(rows);
    let mut natural_max_len = 0usize;
    for r in 0..rows {
        let rcols = csr.row_cols(r);
        let base = csr.row_ptr()[r];
        // Absolute offsets into the CSR col_ind/values arrays.
        let start = base + rcols.partition_point(|&c| (c as usize) < col_lo);
        let end = base + rcols.partition_point(|&c| (c as usize) < col_hi);
        segments.push((start, end));
        natural_max_len = natural_max_len.max(end - start);
    }

    let cap = width_cap(natural_max_len, config, pi);

    // Assign (row, fragment) pairs to bucket widths.
    let mut by_width: BTreeMap<usize, Vec<RefFragment>> = BTreeMap::new();
    let mut any_folded = false;
    for r in 0..rows {
        let (start, end) = segments[r];
        let len = end - start;
        if len == 0 {
            continue;
        }
        if len <= cap {
            let w = bucket_width_for_len(len);
            by_width
                .entry(w)
                .or_default()
                .push((r as Index, start, end));
        } else {
            // Fold: split into cap-sized fragments, all in the max bucket.
            let mut s = start;
            while s < end {
                let e = (s + cap).min(end);
                by_width.entry(cap).or_default().push((r as Index, s, e));
                s = e;
            }
            any_folded = true;
        }
    }

    let max_width = by_width.keys().next_back().copied().unwrap_or(0);
    let block_nnz = (max_width.max(1) * config.block_nnz_multiple).next_power_of_two();

    let mut buckets = Vec::with_capacity(by_width.len());
    for (&width, frags) in &by_width {
        let n = frags.len();
        let mut row_ind = Vec::with_capacity(n);
        let mut col_ind = vec![ELL_PAD; n * width];
        let mut values = vec![T::ZERO; n * width];
        let mut has_folded = false;
        for (bi, &(r, s, e)) in frags.iter().enumerate() {
            row_ind.push(r);
            let (seg_s, seg_e) = segments[r as usize];
            if s != seg_s || e != seg_e {
                has_folded = true;
            }
            for (k, idx) in (s..e).enumerate() {
                col_ind[bi * width + k] = csr.col_ind()[idx];
                values[bi * width + k] = csr.values()[idx];
            }
        }
        let is_max = width == max_width;
        let rows_per_block = if config.uniform_block_nnz {
            (block_nnz / width).max(1)
        } else {
            32
        };
        buckets.push(Bucket {
            width,
            row_ind,
            col_ind,
            values,
            rows_per_block,
            needs_atomic: multi_partition || (is_max && any_folded),
            has_folded,
        });
    }

    Partition {
        col_range: (col_lo, col_hi),
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{uniform_with_long_rows, PatternFamily};
    use lf_sparse::{CooMatrix, Pcg32};

    fn skewed() -> CsrMatrix<f64> {
        // Row 2 long (9 nnz), others short.
        let mut trips = vec![(0, 0, 1.0), (1, 3, 2.0), (3, 7, 3.0), (4, 2, 4.0)];
        for j in 0..9 {
            trips.push((2, j, 10.0 + j as f64));
        }
        CsrMatrix::from_coo(&CooMatrix::from_triplets(5, 10, trips).unwrap())
    }

    #[test]
    fn single_partition_round_trip() {
        let csr = skewed();
        let cell = build_cell(&csr, &CellConfig::default()).unwrap();
        assert_eq!(cell.to_csr(), csr);
        assert_eq!(cell.partitions().len(), 1);
    }

    #[test]
    fn multi_partition_round_trip() {
        let csr = skewed();
        for p in [2, 3, 4, 10] {
            let cell = build_cell(&csr, &CellConfig::with_partitions(p)).unwrap();
            assert_eq!(cell.to_csr(), csr, "p={p}");
            assert_eq!(cell.partitions().len(), p);
        }
    }

    #[test]
    fn bucket_widths_match_row_lengths() {
        let csr = skewed();
        let cell = build_cell(&csr, &CellConfig::default()).unwrap();
        let p = &cell.partitions()[0];
        // Lengths 1 and 9 -> buckets of width 1 and 16.
        let widths: Vec<usize> = p.buckets.iter().map(|b| b.width).collect();
        assert_eq!(widths, vec![1, 16]);
    }

    #[test]
    fn folding_splits_long_rows() {
        let csr = skewed();
        let cfg = CellConfig::default().with_max_widths(vec![4]);
        let cell = build_cell(&csr, &cfg).unwrap();
        let p = &cell.partitions()[0];
        // Max bucket is width 4 and contains row 2 three times (9 = 4+4+1).
        let max_bucket = p.buckets.last().unwrap();
        assert_eq!(max_bucket.width, 4);
        let copies = max_bucket.row_ind.iter().filter(|&&r| r == 2).count();
        assert_eq!(copies, 3);
        assert!(max_bucket.has_folded);
        assert!(max_bucket.needs_atomic);
        // Still lossless.
        assert_eq!(cell.to_csr(), csr);
    }

    #[test]
    fn atomics_flags_follow_paper_rule() {
        let csr = skewed();
        // Single partition, no folding: no bucket needs atomics.
        let cell = build_cell(&csr, &CellConfig::default()).unwrap();
        assert!(cell.partitions()[0].buckets.iter().all(|b| !b.needs_atomic));
        // Multi-partition: every bucket needs atomics.
        let cell = build_cell(&csr, &CellConfig::with_partitions(2)).unwrap();
        assert!(cell
            .partitions()
            .iter()
            .flat_map(|p| &p.buckets)
            .all(|b| b.needs_atomic));
    }

    #[test]
    fn empty_rows_are_skipped() {
        let coo = CooMatrix::from_triplets(100, 10, vec![(50, 5, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let cell = build_cell(&csr, &CellConfig::default()).unwrap();
        let total_rows: usize = cell
            .partitions()
            .iter()
            .flat_map(|p| p.buckets.iter().map(|b| b.num_rows()))
            .sum();
        assert_eq!(total_rows, 1);
        assert_eq!(cell.to_csr(), csr);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::<f64>::empty(4, 4);
        let cell = build_cell(&csr, &CellConfig::with_partitions(2)).unwrap();
        assert_eq!(cell.nnz(), 0);
        assert_eq!(cell.num_buckets(), 0);
        assert_eq!(cell.to_csr(), csr);
    }

    #[test]
    fn partition_spans_cover_columns() {
        let csr = skewed();
        let cell = build_cell(&csr, &CellConfig::with_partitions(3)).unwrap();
        let spans: Vec<(usize, usize)> = cell.partitions().iter().map(|p| p.col_range).collect();
        assert_eq!(spans, vec![(0, 3), (3, 6), (6, 10)]);
    }

    #[test]
    fn rows_per_block_formula() {
        let csr = skewed();
        let cfg = CellConfig {
            num_partitions: 1,
            max_widths: None,
            block_nnz_multiple: 2,
            uniform_block_nnz: true,
        };
        let cell = build_cell(&csr, &cfg).unwrap();
        let p = &cell.partitions()[0];
        // Max width 16, multiple 2 => 2^k = 32. Width-1 bucket: 32 rows per
        // block; width-16 bucket: 2 rows per block.
        for b in &p.buckets {
            assert_eq!(b.rows_per_block, 32 / b.width);
        }
    }

    #[test]
    fn long_row_fold_with_partitions_round_trip() {
        let mut rng = Pcg32::seed_from_u64(42);
        let coo = uniform_with_long_rows::<f64>(300, 500, 3000, 5, 400, &mut rng);
        let csr = CsrMatrix::from_coo(&coo);
        for p in [1, 2, 4, 8] {
            for cap in [None, Some(vec![16]), Some(vec![64])] {
                let cfg = CellConfig {
                    num_partitions: p,
                    max_widths: cap.clone(),
                    block_nnz_multiple: 4,
                    uniform_block_nnz: true,
                };
                let cell = build_cell(&csr, &cfg).unwrap();
                assert_eq!(cell.to_csr(), csr, "p={p} cap={cap:?}");
            }
        }
    }

    #[test]
    fn generated_families_round_trip() {
        let mut rng = Pcg32::seed_from_u64(7);
        for fam in PatternFamily::ALL {
            let coo = fam.generate::<f64>(128, 96, 900, &mut rng);
            let csr = CsrMatrix::from_coo(&coo);
            let cfg = CellConfig::with_partitions(3).with_max_widths(vec![8]);
            let cell = build_cell(&csr, &cfg).unwrap();
            assert_eq!(cell.to_csr(), csr, "family {}", fam.name());
        }
    }

    #[test]
    fn single_pass_matches_reference_bit_for_bit() {
        let mut rng = Pcg32::seed_from_u64(2024);
        for fam in PatternFamily::ALL {
            let coo = fam.generate::<f64>(257, 193, 4000, &mut rng);
            let csr = CsrMatrix::from_coo(&coo);
            for p in [1, 2, 3, 5, 8] {
                for cap in [None, Some(vec![4]), Some(vec![32])] {
                    let cfg = CellConfig {
                        num_partitions: p,
                        max_widths: cap.clone(),
                        block_nnz_multiple: 4,
                        uniform_block_nnz: true,
                    };
                    let fast = build_cell(&csr, &cfg).unwrap();
                    let slow = build_cell_reference(&csr, &cfg).unwrap();
                    assert_eq!(
                        fast,
                        slow,
                        "builders diverge: family {} p={p} cap={cap:?}",
                        fam.name()
                    );
                }
            }
        }
    }

    #[test]
    fn reference_builder_round_trips() {
        let csr = skewed();
        for p in [1, 3, 10] {
            let cell = build_cell_reference(&csr, &CellConfig::with_partitions(p)).unwrap();
            assert_eq!(cell.to_csr(), csr, "p={p}");
        }
    }

    #[test]
    fn degenerate_partition_count_is_clamped() {
        // More partitions than columns: the effective count is the column
        // count, spans stay non-empty, and the matrix still round-trips.
        let coo =
            CooMatrix::from_triplets(4, 3, vec![(0, 0, 1.0), (1, 2, 2.0), (3, 1, 3.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let cell = build_cell(&csr, &CellConfig::with_partitions(64)).unwrap();
        assert_eq!(cell.partitions().len(), 3);
        for part in cell.partitions() {
            let (lo, hi) = part.col_range;
            assert!(lo < hi, "no empty spans after clamping");
        }
        assert_eq!(cell.to_csr(), csr);
        let slow = build_cell_reference(&csr, &CellConfig::with_partitions(64)).unwrap();
        assert_eq!(cell, slow);
    }
}
