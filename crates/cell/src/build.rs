//! CELL construction: partition → bucket → fold → block (§4 and §5.3).

use crate::config::{bucket_width_for_len, CellConfig};
use crate::matrix::{Bucket, CellMatrix, Partition};
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{CsrMatrix, Index, Result, Scalar};
use std::collections::BTreeMap;

/// Build a [`CellMatrix`] from CSR under the given configuration.
///
/// The column space is divided into `num_partitions` equal spans. Within
/// each span, every row's entries are gathered; rows are grouped into
/// buckets of width `2^i` by length; rows longer than the partition's
/// width cap are folded into multiple bucket rows of the *maximum* bucket
/// (sharing their original row index, later combined with atomics); every
/// `2^k / width` bucket rows form one GPU block, with
/// `2^k = block_nnz_multiple × max bucket width of the partition`.
pub fn build_cell<T: Scalar>(csr: &CsrMatrix<T>, config: &CellConfig) -> Result<CellMatrix<T>> {
    config.validate()?;
    let (rows, cols) = csr.shape();
    let p = config.num_partitions;
    let mut partitions = Vec::with_capacity(p);

    for pi in 0..p {
        // Equal column spans; the last one absorbs the remainder.
        let span = cols / p;
        let col_lo = pi * span;
        let col_hi = if pi + 1 == p { cols } else { (pi + 1) * span };
        partitions.push(build_partition(csr, col_lo, col_hi, config, pi));
    }

    Ok(CellMatrix {
        rows,
        cols,
        nnz: csr.nnz(),
        partitions,
        config: config.clone(),
    })
}

/// Build the partition covering columns `[col_lo, col_hi)`.
fn build_partition<T: Scalar>(
    csr: &CsrMatrix<T>,
    col_lo: usize,
    col_hi: usize,
    config: &CellConfig,
    pi: usize,
) -> Partition<T> {
    // Gather each row's slice within the column span.
    // seg[r] = (start, end) into the row's CSR arrays.
    let rows = csr.rows();
    let mut segments: Vec<(usize, usize)> = Vec::with_capacity(rows);
    let mut natural_max_len = 0usize;
    for r in 0..rows {
        let rcols = csr.row_cols(r);
        let base = csr.row_ptr()[r];
        // Absolute offsets into the CSR col_ind/values arrays.
        let start = base + rcols.partition_point(|&c| (c as usize) < col_lo);
        let end = base + rcols.partition_point(|&c| (c as usize) < col_hi);
        segments.push((start, end));
        natural_max_len = natural_max_len.max(end - start);
    }

    // Effective width cap.
    let cap = match config.max_width_for(pi) {
        Some(w) => w,
        None => {
            if natural_max_len == 0 {
                1
            } else {
                bucket_width_for_len(natural_max_len)
            }
        }
    };

    // Assign (row, fragment) pairs to bucket widths.
    // map: width -> list of (original row, csr index range of the fragment)
    let mut by_width: BTreeMap<usize, Vec<(Index, usize, usize)>> = BTreeMap::new();
    let mut any_folded_width = None;
    for r in 0..rows {
        let (start, end) = segments[r];
        let len = end - start;
        if len == 0 {
            continue;
        }
        if len <= cap {
            let w = bucket_width_for_len(len);
            by_width
                .entry(w)
                .or_default()
                .push((r as Index, start, end));
        } else {
            // Fold: split into cap-sized fragments, all in the max bucket.
            let mut s = start;
            while s < end {
                let e = (s + cap).min(end);
                by_width.entry(cap).or_default().push((r as Index, s, e));
                s = e;
            }
            any_folded_width = Some(cap);
        }
    }

    let max_width = by_width.keys().next_back().copied().unwrap_or(0);
    // 2^k: block non-zero count.
    let block_nnz = (max_width.max(1) * config.block_nnz_multiple).next_power_of_two();
    let multi_partition = config.num_partitions > 1;

    let mut buckets = Vec::with_capacity(by_width.len());
    for (&width, rows_in_bucket) in &by_width {
        let n = rows_in_bucket.len();
        let mut row_ind = Vec::with_capacity(n);
        let mut col_ind = vec![ELL_PAD; n * width];
        let mut values = vec![T::ZERO; n * width];
        let mut has_folded = false;
        for (bi, &(r, s, e)) in rows_in_bucket.iter().enumerate() {
            row_ind.push(r);
            // A fragment that is not the whole in-partition row segment is
            // a fold.
            let (seg_s, seg_e) = segments[r as usize];
            if s != seg_s || e != seg_e {
                has_folded = true;
            }
            for (k, idx) in (s..e).enumerate() {
                col_ind[bi * width + k] = csr.col_ind()[idx];
                values[bi * width + k] = csr.values()[idx];
            }
        }
        let is_max = width == max_width;
        // CELL: equal-nnz blocks (2^k slots each). hyb mapping: a fixed
        // 32 rows per block regardless of width.
        let rows_per_block = if config.uniform_block_nnz {
            (block_nnz / width).max(1)
        } else {
            32
        };
        buckets.push(Bucket {
            width,
            row_ind,
            col_ind,
            values,
            rows_per_block,
            // Algorithm 2 line 9 / §5.3: atomics when the matrix has more
            // than one partition, or for the partition's maximum bucket
            // (which is where folded rows live).
            needs_atomic: multi_partition || (is_max && any_folded_width.is_some()),
            has_folded,
        });
    }

    Partition {
        col_range: (col_lo, col_hi),
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{uniform_with_long_rows, PatternFamily};
    use lf_sparse::{CooMatrix, Pcg32};

    fn skewed() -> CsrMatrix<f64> {
        // Row 2 long (9 nnz), others short.
        let mut trips = vec![(0, 0, 1.0), (1, 3, 2.0), (3, 7, 3.0), (4, 2, 4.0)];
        for j in 0..9 {
            trips.push((2, j, 10.0 + j as f64));
        }
        CsrMatrix::from_coo(&CooMatrix::from_triplets(5, 10, trips).unwrap())
    }

    #[test]
    fn single_partition_round_trip() {
        let csr = skewed();
        let cell = build_cell(&csr, &CellConfig::default()).unwrap();
        assert_eq!(cell.to_csr(), csr);
        assert_eq!(cell.partitions().len(), 1);
    }

    #[test]
    fn multi_partition_round_trip() {
        let csr = skewed();
        for p in [2, 3, 4, 10] {
            let cell = build_cell(&csr, &CellConfig::with_partitions(p)).unwrap();
            assert_eq!(cell.to_csr(), csr, "p={p}");
            assert_eq!(cell.partitions().len(), p);
        }
    }

    #[test]
    fn bucket_widths_match_row_lengths() {
        let csr = skewed();
        let cell = build_cell(&csr, &CellConfig::default()).unwrap();
        let p = &cell.partitions()[0];
        // Lengths 1 and 9 -> buckets of width 1 and 16.
        let widths: Vec<usize> = p.buckets.iter().map(|b| b.width).collect();
        assert_eq!(widths, vec![1, 16]);
    }

    #[test]
    fn folding_splits_long_rows() {
        let csr = skewed();
        let cfg = CellConfig::default().with_max_widths(vec![4]);
        let cell = build_cell(&csr, &cfg).unwrap();
        let p = &cell.partitions()[0];
        // Max bucket is width 4 and contains row 2 three times (9 = 4+4+1).
        let max_bucket = p.buckets.last().unwrap();
        assert_eq!(max_bucket.width, 4);
        let copies = max_bucket.row_ind.iter().filter(|&&r| r == 2).count();
        assert_eq!(copies, 3);
        assert!(max_bucket.has_folded);
        assert!(max_bucket.needs_atomic);
        // Still lossless.
        assert_eq!(cell.to_csr(), csr);
    }

    #[test]
    fn atomics_flags_follow_paper_rule() {
        let csr = skewed();
        // Single partition, no folding: no bucket needs atomics.
        let cell = build_cell(&csr, &CellConfig::default()).unwrap();
        assert!(cell.partitions()[0].buckets.iter().all(|b| !b.needs_atomic));
        // Multi-partition: every bucket needs atomics.
        let cell = build_cell(&csr, &CellConfig::with_partitions(2)).unwrap();
        assert!(cell
            .partitions()
            .iter()
            .flat_map(|p| &p.buckets)
            .all(|b| b.needs_atomic));
    }

    #[test]
    fn empty_rows_are_skipped() {
        let coo = CooMatrix::from_triplets(100, 10, vec![(50, 5, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let cell = build_cell(&csr, &CellConfig::default()).unwrap();
        let total_rows: usize = cell
            .partitions()
            .iter()
            .flat_map(|p| p.buckets.iter().map(|b| b.num_rows()))
            .sum();
        assert_eq!(total_rows, 1);
        assert_eq!(cell.to_csr(), csr);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::<f64>::empty(4, 4);
        let cell = build_cell(&csr, &CellConfig::with_partitions(2)).unwrap();
        assert_eq!(cell.nnz(), 0);
        assert_eq!(cell.num_buckets(), 0);
        assert_eq!(cell.to_csr(), csr);
    }

    #[test]
    fn partition_spans_cover_columns() {
        let csr = skewed();
        let cell = build_cell(&csr, &CellConfig::with_partitions(3)).unwrap();
        let spans: Vec<(usize, usize)> =
            cell.partitions().iter().map(|p| p.col_range).collect();
        assert_eq!(spans, vec![(0, 3), (3, 6), (6, 10)]);
    }

    #[test]
    fn rows_per_block_formula() {
        let csr = skewed();
        let cfg = CellConfig {
            num_partitions: 1,
            max_widths: None,
            block_nnz_multiple: 2,
            uniform_block_nnz: true,
        };
        let cell = build_cell(&csr, &cfg).unwrap();
        let p = &cell.partitions()[0];
        // Max width 16, multiple 2 => 2^k = 32. Width-1 bucket: 32 rows per
        // block; width-16 bucket: 2 rows per block.
        for b in &p.buckets {
            assert_eq!(b.rows_per_block, 32 / b.width);
        }
    }

    #[test]
    fn long_row_fold_with_partitions_round_trip() {
        let mut rng = Pcg32::seed_from_u64(42);
        let coo = uniform_with_long_rows::<f64>(300, 500, 3000, 5, 400, &mut rng);
        let csr = CsrMatrix::from_coo(&coo);
        for p in [1, 2, 4, 8] {
            for cap in [None, Some(vec![16]), Some(vec![64])] {
                let cfg = CellConfig {
                    num_partitions: p,
                    max_widths: cap.clone(),
                    block_nnz_multiple: 4,
                    uniform_block_nnz: true,
                };
                let cell = build_cell(&csr, &cfg).unwrap();
                assert_eq!(cell.to_csr(), csr, "p={p} cap={cap:?}");
            }
        }
    }

    #[test]
    fn generated_families_round_trip() {
        let mut rng = Pcg32::seed_from_u64(7);
        for fam in PatternFamily::ALL {
            let coo = fam.generate::<f64>(128, 96, 900, &mut rng);
            let csr = CsrMatrix::from_coo(&coo);
            let cfg = CellConfig::with_partitions(3).with_max_widths(vec![8]);
            let cell = build_cell(&csr, &cfg).unwrap();
            assert_eq!(cell.to_csr(), csr, "family {}", fam.name());
        }
    }
}
