//! Incremental CELL maintenance under edge updates.
//!
//! The Adaptive Row-grouped CSR insight carried over to CELL: an edge
//! update only perturbs the buckets holding the *touched rows* of the
//! *touched partitions*. [`update_cell`] re-buckets exactly those rows
//! against the post-update CSR — folding rows that crossed above a
//! configured width cap, unfolding rows that dropped back under it, and
//! migrating rows whose segment length crossed a power-of-two bucket
//! boundary — while every other bucket's storage is left byte-for-byte
//! alone. The result is **bitwise identical** to
//! [`build_cell`](crate::build::build_cell) on the updated matrix
//! (property-tested across the corpus), so a consumer can never tell
//! whether a CELL was maintained or rebuilt.
//!
//! Cost: O(size of the affected buckets), not O(nnz). The serving layer
//! falls back to a full rebuild past a measured churn crossover (see
//! `lf_cost::update`); this module implements only the incremental arm.

use crate::config::{bucket_width_for_len, CellConfig};
use crate::matrix::{Bucket, CellMatrix, Partition};
use crate::span::SpanMap;
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{CsrMatrix, Index, Result, Scalar, SparseError};
use std::collections::BTreeMap;

/// A re-bucketed fragment: `(row, absolute CSR range)` in `new_csr`.
type Fragment = (Index, usize, usize);

/// Re-bucket the touched rows of `cell` against `new_csr`, in place.
///
/// `touched` lists the `(row, col)` coordinates of the applied edge
/// updates (inserts, deletes and value changes alike — a value change
/// re-materializes its row's fragments so stored values stay exact).
/// `new_csr` must be the post-update matrix with the same shape the
/// CELL was built from; `cell.config()` keeps governing the layout.
///
/// On success `cell` equals `build_cell(new_csr, cell.config())`
/// bitwise. On error (shape mismatch, out-of-range coordinate) `cell`
/// is untouched.
pub fn update_cell<T: Scalar>(
    cell: &mut CellMatrix<T>,
    new_csr: &CsrMatrix<T>,
    touched: &[(usize, usize)],
) -> Result<()> {
    let (rows, cols) = cell.shape();
    if new_csr.shape() != (rows, cols) {
        return Err(SparseError::DimensionMismatch {
            op: "update_cell",
            lhs: (rows, cols),
            rhs: new_csr.shape(),
        });
    }
    if new_csr.nnz() >= u32::MAX as usize {
        return Err(SparseError::InvalidConfig(format!(
            "matrix nnz {} exceeds the u32 fragment-offset range",
            new_csr.nnz()
        )));
    }
    let map = SpanMap::new(cols, cell.config.num_partitions);
    let p = map.num_partitions();
    debug_assert_eq!(p, cell.partitions.len());

    // Touched rows per partition, sorted and deduplicated.
    let mut touched_rows: Vec<Vec<usize>> = vec![Vec::new(); p];
    for &(r, c) in touched {
        if r >= rows || c >= cols {
            return Err(SparseError::IndexOutOfBounds {
                index: (r, c),
                shape: (rows, cols),
            });
        }
        touched_rows[map.of_col(c)].push(r);
    }
    for rows in &mut touched_rows {
        rows.sort_unstable();
        rows.dedup();
    }

    let config = cell.config.clone();
    let multi_partition = p > 1;
    for (pi, rows) in touched_rows.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        update_partition(
            &mut cell.partitions[pi],
            new_csr,
            rows,
            &config,
            pi,
            multi_partition,
        );
    }
    cell.nnz = new_csr.nnz();
    Ok(())
}

/// Re-bucket `touched` rows of one partition and restore the builder's
/// metadata invariants (ascending non-empty buckets, max-bucket flags,
/// uniform block geometry).
fn update_partition<T: Scalar>(
    part: &mut Partition<T>,
    new_csr: &CsrMatrix<T>,
    touched: &[usize],
    config: &CellConfig,
    pi: usize,
    multi_partition: bool,
) {
    let (col_lo, col_hi) = part.col_range;
    let cap = config.max_width_for(pi);

    // The touched rows' new fragments, binned by bucket width. Rows are
    // visited in ascending order, so each width's list is ascending too
    // (folded fragments of one row consecutive, ascending by offset) —
    // the same order the full builder's row sweep produces.
    let mut incoming: BTreeMap<usize, Vec<Fragment>> = BTreeMap::new();
    for &r in touched {
        let rcols = new_csr.row_cols(r);
        let base = new_csr.row_ptr()[r];
        let start = base + rcols.partition_point(|&c| (c as usize) < col_lo);
        let end = base + rcols.partition_point(|&c| (c as usize) < col_hi);
        let len = end - start;
        if len == 0 {
            continue;
        }
        match cap {
            Some(cap) if len > cap => {
                let frags = incoming.entry(cap).or_default();
                let mut s = start;
                while s < end {
                    let e = (s + cap).min(end);
                    frags.push((r as Index, s, e));
                    s = e;
                }
            }
            _ => {
                incoming
                    .entry(bucket_width_for_len(len))
                    .or_default()
                    .push((r as Index, start, end));
            }
        }
    }

    // Splice every affected bucket: drop the touched rows' old
    // fragments, weave the incoming ones in at their row-sorted slots.
    // Untouched buckets keep their storage untouched.
    let mut buckets = std::mem::take(&mut part.buckets);
    for b in &mut buckets {
        let incoming = incoming.remove(&b.width).unwrap_or_default();
        let holds_touched = {
            let mut t = 0;
            b.row_ind.iter().any(|&r| {
                while t < touched.len() && touched[t] < r as usize {
                    t += 1;
                }
                t < touched.len() && touched[t] == r as usize
            })
        };
        if holds_touched || !incoming.is_empty() {
            splice_bucket(b, new_csr, touched, &incoming);
        }
    }
    buckets.retain(|b| !b.row_ind.is_empty());
    // Widths that had no bucket yet: materialize fresh ones and keep
    // the ascending-width order.
    for (width, frags) in incoming {
        if frags.is_empty() {
            continue;
        }
        let bucket = fresh_bucket(new_csr, width, &frags);
        let at = buckets.partition_point(|b| b.width < width);
        buckets.insert(at, bucket);
    }

    // Re-derive the builder's partition-level metadata. Folding only
    // ever happens under a configured cap and always yields at least
    // two fragments, so "any folded row" is exactly "the cap bucket
    // stores some row more than once".
    let max_width = buckets.last().map(|b| b.width).unwrap_or(0);
    let block_nnz = (max_width.max(1) * config.block_nnz_multiple).next_power_of_two();
    let any_folded = cap.is_some_and(|cap| {
        buckets
            .iter()
            .find(|b| b.width == cap)
            .is_some_and(|b| b.row_ind.windows(2).any(|w| w[0] == w[1]))
    });
    for b in &mut buckets {
        let is_max = b.width == max_width;
        b.rows_per_block = if config.uniform_block_nnz {
            (block_nnz / b.width).max(1)
        } else {
            32
        };
        b.needs_atomic = multi_partition || (is_max && any_folded);
        b.has_folded = is_max && any_folded;
    }
    part.buckets = buckets;
}

/// Rebuild one bucket's grids in a single merge pass: old fragments of
/// touched rows are dropped, `incoming` fragments (row-ascending) are
/// inserted at their sorted positions, everything else is block-copied.
fn splice_bucket<T: Scalar>(
    b: &mut Bucket<T>,
    new_csr: &CsrMatrix<T>,
    touched: &[usize],
    incoming: &[Fragment],
) {
    let width = b.width;
    let old_n = b.row_ind.len();
    let kept = {
        let mut t = 0;
        b.row_ind
            .iter()
            .filter(|&&r| {
                while t < touched.len() && touched[t] < r as usize {
                    t += 1;
                }
                !(t < touched.len() && touched[t] == r as usize)
            })
            .count()
    };
    let new_n = kept + incoming.len();
    let mut row_ind = Vec::with_capacity(new_n);
    let mut col_ind: Vec<Index> = Vec::with_capacity(new_n * width);
    let mut values: Vec<T> = Vec::with_capacity(new_n * width);

    let mut inc = incoming.iter().peekable();
    let mut t = 0usize;
    let mut i = 0usize;
    while i < old_n {
        let r = b.row_ind[i] as usize;
        // Incoming rows strictly below the next kept/old row go first.
        while let Some(&&(ir, s, e)) = inc.peek() {
            if (ir as usize) < r {
                push_fragment(
                    &mut row_ind,
                    &mut col_ind,
                    &mut values,
                    new_csr,
                    width,
                    ir,
                    s,
                    e,
                );
                inc.next();
            } else {
                break;
            }
        }
        while t < touched.len() && touched[t] < r {
            t += 1;
        }
        if t < touched.len() && touched[t] == r {
            // A touched row's old fragments are dropped (its new
            // fragments, if any land in this bucket, arrive via
            // `incoming`).
            i += 1;
            continue;
        }
        row_ind.push(b.row_ind[i]);
        col_ind.extend_from_slice(&b.col_ind[i * width..(i + 1) * width]);
        values.extend_from_slice(&b.values[i * width..(i + 1) * width]);
        i += 1;
    }
    for &(ir, s, e) in inc {
        push_fragment(
            &mut row_ind,
            &mut col_ind,
            &mut values,
            new_csr,
            width,
            ir,
            s,
            e,
        );
    }
    b.row_ind = row_ind;
    b.col_ind = col_ind;
    b.values = values;
}

/// Materialize one fragment into a bucket row: payload then padding,
/// exactly like the builder's bucket fill.
#[allow(clippy::too_many_arguments)]
fn push_fragment<T: Scalar>(
    row_ind: &mut Vec<Index>,
    col_ind: &mut Vec<Index>,
    values: &mut Vec<T>,
    new_csr: &CsrMatrix<T>,
    width: usize,
    row: Index,
    s: usize,
    e: usize,
) {
    row_ind.push(row);
    col_ind.extend_from_slice(&new_csr.col_ind()[s..e]);
    values.extend_from_slice(&new_csr.values()[s..e]);
    let pad = width - (e - s);
    col_ind.extend(std::iter::repeat_n(ELL_PAD, pad));
    values.extend(std::iter::repeat_n(T::ZERO, pad));
}

/// A brand-new bucket for a width the partition did not have yet. Flags
/// and block geometry are filled by the caller's metadata pass.
fn fresh_bucket<T: Scalar>(new_csr: &CsrMatrix<T>, width: usize, frags: &[Fragment]) -> Bucket<T> {
    let mut row_ind = Vec::with_capacity(frags.len());
    let mut col_ind = Vec::with_capacity(frags.len() * width);
    let mut values = Vec::with_capacity(frags.len() * width);
    for &(r, s, e) in frags {
        push_fragment(
            &mut row_ind,
            &mut col_ind,
            &mut values,
            new_csr,
            width,
            r,
            s,
            e,
        );
    }
    Bucket {
        width,
        row_ind,
        col_ind,
        values,
        rows_per_block: 1,
        needs_atomic: false,
        has_folded: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cell;
    use lf_sparse::update::EdgeUpdate;
    use lf_sparse::{CooMatrix, Pcg32};

    fn skewed() -> CsrMatrix<f64> {
        let mut trips = vec![(0, 0, 1.0), (1, 3, 2.0), (3, 7, 3.0), (4, 2, 4.0)];
        for j in 0..9 {
            trips.push((2, j, 10.0 + j as f64));
        }
        CsrMatrix::from_coo(&CooMatrix::from_triplets(5, 10, trips).unwrap())
    }

    fn assert_matches_rebuild(
        cell: &CellMatrix<f64>,
        csr: &CsrMatrix<f64>,
        cfg: &CellConfig,
        what: &str,
    ) {
        let rebuilt = build_cell(csr, cfg).unwrap();
        assert_eq!(cell, &rebuilt, "{what}: incremental != rebuild");
    }

    fn apply(
        cell: &mut CellMatrix<f64>,
        csr: &CsrMatrix<f64>,
        updates: &[EdgeUpdate<f64>],
    ) -> CsrMatrix<f64> {
        let new_csr = csr.apply_updates(updates).unwrap();
        let touched: Vec<(usize, usize)> = updates.iter().map(EdgeUpdate::coord).collect();
        update_cell(cell, &new_csr, &touched).unwrap();
        new_csr
    }

    #[test]
    fn value_change_updates_stored_values() {
        let csr = skewed();
        let cfg = CellConfig::with_partitions(2);
        let mut cell = build_cell(&csr, &cfg).unwrap();
        let new_csr = apply(
            &mut cell,
            &csr,
            &[EdgeUpdate::SetValue {
                row: 2,
                col: 4,
                value: -7.5,
            }],
        );
        assert_matches_rebuild(&cell, &new_csr, &cfg, "value change");
    }

    #[test]
    fn insert_migrates_row_across_bucket_boundary() {
        // Row 0 has 1 entry (width-1 bucket); inserting a second pushes
        // it into the width-2 bucket.
        let csr = skewed();
        let cfg = CellConfig::default();
        let mut cell = build_cell(&csr, &cfg).unwrap();
        let new_csr = apply(
            &mut cell,
            &csr,
            &[EdgeUpdate::Insert {
                row: 0,
                col: 9,
                value: 5.0,
            }],
        );
        assert_matches_rebuild(&cell, &new_csr, &cfg, "bucket migration");
    }

    #[test]
    fn delete_to_empty_row_drops_all_fragments() {
        let csr = skewed();
        let cfg = CellConfig::with_partitions(2);
        let mut cell = build_cell(&csr, &cfg).unwrap();
        let new_csr = apply(&mut cell, &csr, &[EdgeUpdate::Delete { row: 1, col: 3 }]);
        assert_matches_rebuild(&cell, &new_csr, &cfg, "delete to empty");
    }

    #[test]
    fn fold_and_unfold_across_the_cap() {
        // cap 4: row 2 (9 entries) is folded 3-ways. Deleting below the
        // cap unfolds it; re-inserting refolds.
        let csr = skewed();
        let cfg = CellConfig::default().with_max_widths(vec![4]);
        let mut cell = build_cell(&csr, &cfg).unwrap();

        // Unfold: drop row 2 to 4 entries.
        let dels: Vec<EdgeUpdate<f64>> = (4..9)
            .map(|c| EdgeUpdate::Delete { row: 2, col: c })
            .collect();
        let csr2 = apply(&mut cell, &csr, &dels);
        assert_matches_rebuild(&cell, &csr2, &cfg, "unfold");
        let max = cell.partitions()[0].buckets.last().unwrap();
        assert!(!max.has_folded, "row 2 must no longer fold");

        // Refold: push row 2 back above the cap.
        let ins: Vec<EdgeUpdate<f64>> = (4..9)
            .map(|c| EdgeUpdate::Insert {
                row: 2,
                col: c,
                value: c as f64,
            })
            .collect();
        let csr3 = apply(&mut cell, &csr2, &ins);
        assert_matches_rebuild(&cell, &csr3, &cfg, "refold");
        let max = cell.partitions()[0].buckets.last().unwrap();
        assert!(max.has_folded && max.needs_atomic);
    }

    #[test]
    fn max_width_shrink_and_grow_resets_block_geometry() {
        // Deleting the longest row shrinks max_width, which changes
        // every bucket's rows_per_block under uniform block nnz.
        let csr = skewed();
        let cfg = CellConfig::default();
        let mut cell = build_cell(&csr, &cfg).unwrap();
        let dels: Vec<EdgeUpdate<f64>> = (1..9)
            .map(|c| EdgeUpdate::Delete { row: 2, col: c })
            .collect();
        let csr2 = apply(&mut cell, &csr, &dels);
        assert_matches_rebuild(&cell, &csr2, &cfg, "max shrink");

        let ins: Vec<EdgeUpdate<f64>> = (1..9)
            .map(|c| EdgeUpdate::Insert {
                row: 0,
                col: c,
                value: 1.0,
            })
            .collect();
        let csr3 = apply(&mut cell, &csr2, &ins);
        assert_matches_rebuild(&cell, &csr3, &cfg, "max grow");
    }

    #[test]
    fn out_of_range_touch_is_rejected_and_cell_untouched() {
        let csr = skewed();
        let cfg = CellConfig::with_partitions(2);
        let mut cell = build_cell(&csr, &cfg).unwrap();
        let before = cell.clone();
        let err = update_cell(&mut cell, &csr, &[(99, 0)]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }), "{err}");
        assert_eq!(cell, before);
        let err = update_cell(&mut cell, &CsrMatrix::<f64>::empty(3, 3), &[(0, 0)]).unwrap_err();
        assert!(
            matches!(err, SparseError::DimensionMismatch { .. }),
            "{err}"
        );
        assert_eq!(cell, before);
    }

    #[test]
    fn randomized_streams_match_rebuild_bitwise() {
        // The crate-level property in miniature (the full corpus sweep
        // lives in tests/incremental.rs): random update streams over
        // random matrices, every step compared to a from-scratch build.
        let mut rng = Pcg32::seed_from_u64(0x5EED);
        for trial in 0..20 {
            let rows = rng.usize_in(6, 40);
            let cols = rng.usize_in(6, 40);
            let nnz = rng.usize_in(rows, rows * 6);
            let mut trips = Vec::new();
            for _ in 0..nnz {
                let v = rng.f64_in(-1.0, 1.0);
                if v != 0.0 {
                    trips.push((rng.usize_in(0, rows), rng.usize_in(0, cols), v));
                }
            }
            let mut csr =
                CsrMatrix::from_coo(&CooMatrix::from_triplets(rows, cols, trips).unwrap());
            let cfg = CellConfig {
                num_partitions: rng.usize_in(1, 5),
                max_widths: if rng.bernoulli(0.5) {
                    Some(vec![1 << rng.usize_in(0, 4)])
                } else {
                    None
                },
                block_nnz_multiple: 4,
                uniform_block_nnz: rng.bernoulli(0.8),
            };
            let mut cell = build_cell(&csr, &cfg).unwrap();
            for step in 0..6 {
                let mut updates = Vec::new();
                for _ in 0..rng.usize_in(1, 5) {
                    let r = rng.usize_in(0, rows);
                    let c = rng.usize_in(0, cols);
                    if updates
                        .iter()
                        .any(|u: &EdgeUpdate<f64>| u.coord() == (r, c))
                    {
                        continue;
                    }
                    let present = csr.row_cols(r).binary_search(&(c as Index)).is_ok();
                    updates.push(match (present, rng.bernoulli(0.5)) {
                        (true, true) => EdgeUpdate::Delete { row: r, col: c },
                        (true, false) => EdgeUpdate::SetValue {
                            row: r,
                            col: c,
                            value: 0.5,
                        },
                        (false, _) => EdgeUpdate::Insert {
                            row: r,
                            col: c,
                            value: -0.5,
                        },
                    });
                }
                csr = apply(&mut cell, &csr, &updates);
                assert_matches_rebuild(&cell, &csr, &cfg, &format!("trial {trial} step {step}"));
            }
        }
    }
}
