//! The single source of truth for CELL's equal column partitioning.
//!
//! Both the CELL builder (`build_cell`) and the cost model's
//! `PartitionSketch` must agree exactly on which columns belong to which
//! partition — any drift silently decouples the cost model from the
//! format it prices. Every span computation in the workspace goes through
//! this module.

/// Clamp a requested partition count to what the column space supports.
///
/// `cols / p` spans of width zero (requested partitions exceeding the
/// column count) would make every leading partition empty and the last
/// one absorb the whole matrix; instead the effective count is capped at
/// `cols` (and floored at 1).
pub fn effective_partitions(cols: usize, requested: usize) -> usize {
    requested.max(1).min(cols.max(1))
}

/// Equal column spans `[lo, hi)` for `p` partitions of `cols` columns;
/// the last span absorbs the remainder. The partition count is clamped
/// via [`effective_partitions`], so the result may have fewer than `p`
/// entries.
pub fn partition_spans(cols: usize, p: usize) -> Vec<(usize, usize)> {
    let p = effective_partitions(cols, p);
    let span = cols / p;
    (0..p)
        .map(|pi| {
            let lo = pi * span;
            let hi = if pi + 1 == p { cols } else { (pi + 1) * span };
            (lo, hi)
        })
        .collect()
}

/// The partition owning column `col`, in O(1) — the arithmetic inverse
/// of [`partition_spans`]. `p` must already be effective (clamped).
#[inline]
pub fn partition_of_col(cols: usize, p: usize, col: usize) -> usize {
    debug_assert!(p >= 1 && p <= cols.max(1), "p must be pre-clamped");
    debug_assert!(col < cols);
    let span = cols / p;
    (col / span).min(p - 1)
}

/// A precomputed span layout: clamp once, divide once, then map columns
/// to partitions in O(1) per element without re-deriving the span width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanMap {
    cols: usize,
    p: usize,
    span: usize,
}

impl SpanMap {
    /// Layout for `cols` columns under a *requested* partition count
    /// (clamped via [`effective_partitions`]).
    pub fn new(cols: usize, requested_partitions: usize) -> Self {
        let p = effective_partitions(cols, requested_partitions);
        SpanMap {
            cols,
            p,
            span: cols / p,
        }
    }

    /// Effective (clamped) partition count.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.p
    }

    /// The partition owning column `col`.
    #[inline]
    pub fn of_col(&self, col: usize) -> usize {
        debug_assert!(col < self.cols);
        (col / self.span).min(self.p - 1)
    }

    /// The column span `[lo, hi)` of partition `pi`.
    #[inline]
    pub fn span_of(&self, pi: usize) -> (usize, usize) {
        debug_assert!(pi < self.p);
        let lo = pi * self.span;
        let hi = if pi + 1 == self.p {
            self.cols
        } else {
            (pi + 1) * self.span
        };
        (lo, hi)
    }

    /// All spans in order (same result as [`partition_spans`]).
    pub fn spans(&self) -> Vec<(usize, usize)> {
        (0..self.p).map(|pi| self.span_of(pi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_and_tile() {
        for cols in [1usize, 2, 7, 10, 64, 1000] {
            for p in [1usize, 2, 3, 4, 10, 64, 2000] {
                let spans = partition_spans(cols, p);
                assert_eq!(spans.len(), effective_partitions(cols, p));
                assert_eq!(spans[0].0, 0);
                assert_eq!(spans.last().unwrap().1, cols);
                for w in spans.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "spans must tile");
                    assert!(w[0].0 < w[0].1, "no empty span after clamping");
                }
            }
        }
    }

    #[test]
    fn clamp_degenerate_partition_counts() {
        assert_eq!(effective_partitions(4, 10), 4);
        assert_eq!(effective_partitions(4, 4), 4);
        assert_eq!(effective_partitions(4, 0), 1);
        assert_eq!(effective_partitions(0, 5), 1);
        assert_eq!(partition_spans(2, 5), vec![(0, 1), (1, 2)]);
        assert_eq!(partition_spans(0, 3), vec![(0, 0)]);
    }

    #[test]
    fn partition_of_col_inverts_spans() {
        for cols in [1usize, 5, 10, 33, 257] {
            for p in [1usize, 2, 3, 7, 16] {
                let p_eff = effective_partitions(cols, p);
                let spans = partition_spans(cols, p);
                for col in 0..cols {
                    let pi = partition_of_col(cols, p_eff, col);
                    let (lo, hi) = spans[pi];
                    assert!(
                        lo <= col && col < hi,
                        "col {col} must fall in its partition's span (cols={cols} p={p})"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_seed_layout() {
        // The exact spans the seed builder produced for its test matrix.
        assert_eq!(partition_spans(10, 3), vec![(0, 3), (3, 6), (6, 10)]);
        assert_eq!(partition_spans(8, 1), vec![(0, 8)]);
    }

    #[test]
    fn span_map_agrees_with_functions() {
        for cols in [1usize, 9, 40, 100] {
            for p in [1usize, 2, 5, 200] {
                let map = SpanMap::new(cols, p);
                assert_eq!(map.num_partitions(), effective_partitions(cols, p));
                assert_eq!(map.spans(), partition_spans(cols, p));
                for col in 0..cols {
                    assert_eq!(
                        map.of_col(col),
                        partition_of_col(cols, map.num_partitions(), col)
                    );
                }
            }
        }
    }
}
