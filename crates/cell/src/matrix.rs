//! The CELL matrix type: partitions → buckets → blocks, plus accessors,
//! statistics and the CSR reconstruction used to verify losslessness.

use crate::config::CellConfig;
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{CooMatrix, CsrMatrix, Index, Scalar};

/// One bucket: an Ellpack sub-matrix whose rows all have length ≤ `width`,
/// with per-element row indices (Figure 4 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket<T> {
    /// Bucket width `2^i` (slots per bucket row).
    pub width: usize,
    /// Original row index of each bucket row (`I^(1)` entries). A folded
    /// original row appears multiple times.
    pub row_ind: Vec<Index>,
    /// `num_rows × width` column indices, `ELL_PAD` marking padding.
    pub col_ind: Vec<Index>,
    /// `num_rows × width` values (zero in padded slots).
    pub values: Vec<T>,
    /// Rows per GPU block: `2^k / width` (the paper's `2^(k-i)`).
    pub rows_per_block: usize,
    /// Whether this bucket's updates to `C` must use atomics
    /// (multi-partition matrix, or the partition's maximum bucket, which
    /// may contain folded rows — Algorithm 2, line 9).
    pub needs_atomic: bool,
    /// Whether any row in this bucket is a folded fragment.
    pub has_folded: bool,
}

impl<T: Scalar> Bucket<T> {
    /// Number of bucket rows (`I^(1)` in the cost model).
    pub fn num_rows(&self) -> usize {
        self.row_ind.len()
    }

    /// Number of distinct output rows (`I^(2)` in the cost model).
    pub fn num_output_rows(&self) -> usize {
        let mut ids: Vec<Index> = self.row_ind.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// True non-zero count (excluding padding).
    pub fn nnz(&self) -> usize {
        self.col_ind.iter().filter(|&&c| c != ELL_PAD).count()
    }

    /// Stored slots including padding.
    pub fn stored_slots(&self) -> usize {
        self.col_ind.len()
    }

    /// Number of GPU blocks this bucket maps to.
    pub fn num_blocks(&self) -> usize {
        if self.rows_per_block == 0 {
            return 0;
        }
        self.num_rows().div_ceil(self.rows_per_block)
    }

    /// Unique column indices touched by this bucket
    /// (`|set(Ind[i,w])|` in the cost model).
    pub fn unique_cols(&self) -> usize {
        let mut cols: Vec<Index> = self
            .col_ind
            .iter()
            .copied()
            .filter(|&c| c != ELL_PAD)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols.len()
    }
}

/// One column partition: a span of the column space plus its buckets,
/// ordered by increasing width.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition<T> {
    /// Column range `[col_lo, col_hi)` in the original matrix.
    pub col_range: (usize, usize),
    /// Buckets sorted by increasing width; the last is the maximum bucket.
    pub buckets: Vec<Bucket<T>>,
}

impl<T: Scalar> Partition<T> {
    /// Non-zeros stored in this partition.
    pub fn nnz(&self) -> usize {
        self.buckets.iter().map(Bucket::nnz).sum()
    }

    /// Maximum bucket width in this partition (0 if empty).
    pub fn max_width(&self) -> usize {
        self.buckets.iter().map(|b| b.width).max().unwrap_or(0)
    }
}

/// A sparse matrix in the CELL format.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMatrix<T> {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) nnz: usize,
    pub(crate) partitions: Vec<Partition<T>>,
    pub(crate) config: CellConfig,
}

impl<T: Scalar> CellMatrix<T> {
    /// Assemble a CELL matrix from explicit partitions, bypassing
    /// [`build_cell`](crate::build::build_cell).
    ///
    /// For tests and advanced composition experiments that need precise
    /// control over bucket layout (e.g. deliberately mislabeled
    /// `needs_atomic` flags to exercise the shadow race detector).
    ///
    /// The caller is responsible for the format invariants the builder
    /// normally guarantees: in-bounds indices, `nnz` matching the stored
    /// non-padding slots, buckets sorted by increasing width within each
    /// partition, and truthful `needs_atomic` / `has_folded` flags —
    /// kernels trust these flags to pick plain-store fast paths.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        nnz: usize,
        partitions: Vec<Partition<T>>,
        config: CellConfig,
    ) -> Self {
        CellMatrix {
            rows,
            cols,
            nnz,
            partitions,
            config,
        }
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True non-zero count.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The column partitions.
    pub fn partitions(&self) -> &[Partition<T>] {
        &self.partitions
    }

    /// The configuration this matrix was built with.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// Total bucket count across partitions.
    pub fn num_buckets(&self) -> usize {
        self.partitions.iter().map(|p| p.buckets.len()).sum()
    }

    /// Total GPU blocks across all buckets.
    pub fn num_blocks(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.buckets.iter().map(Bucket::num_blocks))
            .sum()
    }

    /// Stored slots including padding.
    pub fn stored_slots(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.buckets.iter().map(Bucket::stored_slots))
            .sum()
    }

    /// Fraction of stored slots that are padding.
    pub fn padding_ratio(&self) -> f64 {
        let slots = self.stored_slots();
        if slots == 0 {
            return 0.0;
        }
        1.0 - self.nnz as f64 / slots as f64
    }

    /// Memory footprint: per bucket, `row_ind` + padded `col_ind`/`values`.
    pub fn memory_bytes(&self) -> usize {
        let idx = std::mem::size_of::<Index>();
        let val = std::mem::size_of::<T>();
        self.partitions
            .iter()
            .flat_map(|p| p.buckets.iter())
            .map(|b| b.row_ind.len() * idx + b.col_ind.len() * idx + b.values.len() * val)
            .sum()
    }

    /// Iterate every stored `(row, col, value)` (padding skipped). A folded
    /// row's fragments appear as separate items with the same row id.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.partitions.iter().flat_map(|p| {
            p.buckets.iter().flat_map(|b| {
                (0..b.num_rows()).flat_map(move |r| {
                    (0..b.width).filter_map(move |w| {
                        let c = b.col_ind[r * b.width + w];
                        (c != ELL_PAD)
                            .then(|| (b.row_ind[r] as usize, c as usize, b.values[r * b.width + w]))
                    })
                })
            })
        })
    }

    /// Reconstruct the CSR matrix. Lossless: building a CELL from a CSR
    /// and converting back yields the original (tested property).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let triplets: Vec<(usize, usize, T)> = self.iter().collect();
        let coo = CooMatrix::from_triplets(self.rows, self.cols, triplets)
            .expect("CELL indices are in bounds");
        CsrMatrix::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cell;
    use lf_sparse::CooMatrix;

    fn sample_cell() -> CellMatrix<f64> {
        let coo = CooMatrix::from_triplets(
            6,
            8,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (0, 5, 3.0),
                (1, 2, 4.0),
                (2, 0, 5.0),
                (2, 1, 6.0),
                (2, 2, 7.0),
                (2, 3, 8.0),
                (2, 6, 9.0),
                (5, 7, 10.0),
            ],
        )
        .unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        build_cell(&csr, &CellConfig::with_partitions(2)).unwrap()
    }

    #[test]
    fn nnz_preserved() {
        let c = sample_cell();
        assert_eq!(c.nnz(), 10);
        assert_eq!(c.iter().count(), 10);
    }

    #[test]
    fn padding_and_memory_consistent() {
        let c = sample_cell();
        assert!(c.stored_slots() >= c.nnz());
        let expected = 1.0 - c.nnz() as f64 / c.stored_slots() as f64;
        assert!((c.padding_ratio() - expected).abs() < 1e-12);
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn bucket_unique_cols_and_output_rows() {
        let c = sample_cell();
        for p in c.partitions() {
            for b in &p.buckets {
                assert!(b.unique_cols() <= b.nnz());
                assert!(b.num_output_rows() <= b.num_rows());
                assert!(b.width.is_power_of_two());
            }
        }
    }

    #[test]
    fn blocks_cover_rows() {
        let c = sample_cell();
        for p in c.partitions() {
            for b in &p.buckets {
                assert!(b.rows_per_block >= 1);
                assert_eq!(b.num_blocks(), b.num_rows().div_ceil(b.rows_per_block));
            }
        }
    }
}
