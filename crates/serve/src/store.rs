//! The disk tier of the plan cache: a crash-safe, byte-budgeted record
//! store behind the sharded RAM LRU (DESIGN.md §13).
//!
//! A [`PlanStore`] keeps one file per `(fingerprint, j)` plan record in
//! a flat directory, plus a manifest carrying the placement metadata
//! (use counts, recompose cost) that should survive a restart. The
//! serving engine demotes RAM-evicted plans here instead of dropping
//! them, promotes records back on a RAM miss, and warms the cache from
//! the directory at startup — so a process restart is no longer a
//! cold-compose storm.
//!
//! ## Crash safety
//!
//! Every write is **atomic at the file level**: the record (or
//! manifest) is written to a `*.tmp` sibling, `fsync`ed, `rename`d into
//! place, and the directory `fsync`ed. A crash mid-write therefore
//! leaves either the old state or a stray `*.tmp` — never a readable
//! half-record under a final name. Stray temp files are swept on open.
//! On top of that, every record carries its own CRC-32 and the plan
//! blob inside carries another (`liteform_core::codec`), so even bytes
//! torn by layers below the rename (bit rot, lying disks) are rejected,
//! counted, and recomposed — never served.
//!
//! The manifest is advisory: it persists placement *metadata*, not
//! existence. Ground truth is the record files themselves, so a crash
//! between a record rename and the manifest rewrite merely resets that
//! record's use count — the plan itself survives and is still warmed.
//!
//! ## Placement
//!
//! What to keep on a full disk tier is a policy question with real
//! tension: pure LRU-by-bytes is scan-resistant and simple, but a plan
//! that is cheap to recompose is a poor use of budget compared to one
//! whose composition cost dwarfs its footprint. [`PlacementPolicy`]
//! abstracts the ranking; [`LruBytes`] and [`CostAware`] (frequency ×
//! recompose-cost per byte) are provided, selected by
//! [`Placement`] in the serve config.

use crate::fingerprint::Fingerprint;
use lf_sim::atomicf::AtomicScalar;
use liteform_core::codec::{self, ByteReader, ByteWriter, CodecError};
use liteform_core::{LfError, LfResult, PreparedPlan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Record-file magic: "LFPR" (LiteForm Plan Record).
const RECORD_MAGIC: [u8; 4] = *b"LFPR";
/// Manifest magic: "LFPM" (LiteForm Plan Manifest).
const MANIFEST_MAGIC: [u8; 4] = *b"LFPM";
/// Store format version (records and manifest move together).
///
/// History: v1 keyed records by the six-field fingerprint; v2 adds the
/// mutation epoch as a seventh key word (and the plan blob inside moved
/// to codec v2 for the same reason). v1 records predate epoch
/// versioning, so they cannot prove which mutation generation they
/// describe — they are refused at open (header sweep) and on read, and
/// deleted rather than migrated.
const STORE_VERSION: u16 = 2;
/// The manifest's file name inside the store directory.
const MANIFEST_NAME: &str = "manifest.lfm";
/// Rejection label for records from a retired mutation epoch; the
/// engine matches on it (via [`is_stale_epoch`]) to split these out of
/// the generic corruption count.
const STALE_EPOCH: &str = "stale epoch";

/// Whether an error is the disk tier refusing a retired-epoch record
/// (as opposed to corruption or a key mismatch).
pub fn is_stale_epoch(err: &LfError) -> bool {
    matches!(err, LfError::PlanDecode(CodecError::BadField(s)) if *s == STALE_EPOCH)
}

/// Which placement/eviction policy the disk tier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Evict the least-recently-used record first, ignoring size and
    /// recompose cost.
    LruBytes,
    /// Evict the record with the lowest `(uses + 1) × recompose-cost /
    /// bytes` first: a frequently hit plan that is expensive to rebuild
    /// and small on disk is the last to go.
    CostAware,
}

/// Per-record accounting the placement policies rank on, persisted in
/// the manifest so a restart does not forget which plans earn their
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecordMeta {
    /// Record size on disk, bytes.
    pub bytes: u64,
    /// Times this record was promoted or warm-loaded (a proxy for
    /// request frequency at this tier).
    pub uses: u64,
    /// Measured wall-clock cost of composing this plan, nanoseconds —
    /// what a miss would re-pay.
    pub cost_ns: u64,
    /// Logical recency tick of the last touch.
    pub last_used: u64,
}

/// Ranks records for retention on a full disk tier. Higher scores are
/// kept; the lowest-scoring record is evicted first.
pub trait PlacementPolicy: Send + Sync {
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Retention score for a record.
    fn retention_score(&self, meta: &RecordMeta) -> f64;
}

/// Least-recently-used: score is the recency tick.
pub struct LruBytes;

impl PlacementPolicy for LruBytes {
    fn name(&self) -> &'static str {
        "lru_bytes"
    }

    fn retention_score(&self, meta: &RecordMeta) -> f64 {
        meta.last_used as f64
    }
}

/// Frequency-weighted recompose-cost-per-byte: keeping a record is
/// worth `(uses + 1) × cost_ns / bytes` — the compose work a byte of
/// budget is expected to save.
pub struct CostAware;

impl PlacementPolicy for CostAware {
    fn name(&self) -> &'static str {
        "cost_aware"
    }

    fn retention_score(&self, meta: &RecordMeta) -> f64 {
        let bytes = meta.bytes.max(1) as f64;
        (meta.uses + 1) as f64 * meta.cost_ns.max(1) as f64 / bytes
    }
}

impl Placement {
    fn policy(self) -> Box<dyn PlacementPolicy> {
        match self {
            Placement::LruBytes => Box::new(LruBytes),
            Placement::CostAware => Box::new(CostAware),
        }
    }
}

/// Disk-tier configuration (the serve config owns the user-facing
/// knobs; this is the resolved form the store runs on).
pub struct StoreConfig {
    /// Directory holding record files and the manifest.
    pub dir: PathBuf,
    /// Byte budget for record files. Exceeding it evicts records by
    /// placement score. `0` means unbounded.
    pub disk_budget_bytes: usize,
    /// The placement/eviction policy.
    pub placement: Placement,
}

struct IndexEntry {
    meta: RecordMeta,
}

struct StoreState {
    index: HashMap<(Fingerprint, usize), IndexEntry>,
    bytes: u64,
    tick: u64,
}

/// The disk tier: one record file per plan, a manifest of placement
/// metadata, atomic writes, strict read-side validation.
pub struct PlanStore<T: AtomicScalar> {
    dir: PathBuf,
    budget: usize,
    policy: Box<dyn PlacementPolicy>,
    state: Mutex<StoreState>,
    /// Record files whose header was unreadable at open — removed and
    /// counted, so the warm path can report them as rejections.
    swept_corrupt: usize,
    _scalar: PhantomData<fn() -> T>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn io_err(what: &str, e: std::io::Error) -> LfError {
    LfError::ResourceExhausted {
        what: format!("plan store {what}: {e}"),
    }
}

/// `fsync` a directory so a just-renamed entry is durable.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// Atomically publish `bytes` at `path` (same-directory temp + fsync +
/// rename + directory fsync). Under the chaos tier, `torn_site` can
/// simulate a crash mid-write: a truncated temp file is left behind and
/// the rename never happens — exactly the on-disk state a real kill
/// would leave.
fn atomic_write(
    path: &Path,
    bytes: &[u8],
    #[allow(unused_variables)] torn_site: lf_check::chaos::ChaosSite,
) -> LfResult<()> {
    let dir = path.parent().expect("store paths always have a parent");
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("create temp", e))?;
    #[cfg(feature = "chaos")]
    {
        if lf_check::chaos::decide(torn_site) {
            // Simulated crash: half the bytes reach the temp file, no
            // rename, no manifest update. The store's caller sees an
            // error; a restart must recover from exactly this state.
            let half = bytes.len() / 2;
            let _ = f.write_all(&bytes[..half]);
            let _ = f.sync_all();
            return Err(LfError::ResourceExhausted {
                what: format!("chaos: torn write at {}", torn_site.name()),
            });
        }
    }
    f.write_all(bytes).map_err(|e| io_err("write temp", e))?;
    f.sync_all().map_err(|e| io_err("fsync temp", e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename", e))?;
    sync_dir(dir).map_err(|e| io_err("fsync dir", e))?;
    Ok(())
}

fn write_fingerprint(w: &mut ByteWriter, fp: &Fingerprint) {
    w.u64(fp.rows as u64);
    w.u64(fp.cols as u64);
    w.u64(fp.nnz as u64);
    w.u64(fp.row_structure);
    w.u64(fp.col_structure);
    w.u64(fp.values);
    w.u64(fp.epoch);
}

fn read_fingerprint(r: &mut ByteReader<'_>) -> Result<Fingerprint, CodecError> {
    Ok(Fingerprint {
        rows: r.len(usize::MAX >> 8, "fp rows")?,
        cols: r.len(usize::MAX >> 8, "fp cols")?,
        nnz: r.len(usize::MAX >> 8, "fp nnz")?,
        row_structure: r.u64()?,
        col_structure: r.u64()?,
        values: r.u64()?,
        epoch: r.u64()?,
    })
}

impl<T: AtomicScalar> PlanStore<T> {
    /// Open (or create) a store directory: sweep stray temp files from
    /// interrupted writes, index the record files present, and fold in
    /// whatever placement metadata the manifest preserved.
    ///
    /// Indexing reads only each record's fixed-size header (magic,
    /// version, key); full validation — both CRCs, structural bounds,
    /// the fingerprint re-check — runs when a record is actually loaded,
    /// so a corrupt record costs its warm/promotion attempt, never the
    /// open.
    pub fn open(config: StoreConfig) -> LfResult<Self> {
        fs::create_dir_all(&config.dir).map_err(|e| io_err("create dir", e))?;
        let mut state = StoreState {
            index: HashMap::new(),
            bytes: 0,
            tick: 0,
        };
        let manifest_meta = read_manifest(&config.dir.join(MANIFEST_NAME)).unwrap_or_default();
        let mut swept_corrupt = 0usize;
        let entries = fs::read_dir(&config.dir).map_err(|e| io_err("read dir", e))?;
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // A crash mid-write left this; the rename never happened
                // so nothing references it. Sweep it.
                let _ = fs::remove_file(&path);
                continue;
            }
            if !name.ends_with(".lfp") {
                continue;
            }
            let Ok(bytes) = fs::read(&path) else { continue };
            let Ok((fp, j)) = record_key(&bytes) else {
                // Unreadable header under a final name: not a state an
                // atomic writer produces, so treat it as corruption and
                // remove it (counted, so warming can report it) rather
                // than re-reporting it every restart.
                let _ = fs::remove_file(&path);
                swept_corrupt += 1;
                continue;
            };
            let mut meta = manifest_meta.get(&(fp, j)).copied().unwrap_or_default();
            meta.bytes = bytes.len() as u64;
            state.tick = state.tick.max(meta.last_used);
            state.bytes += meta.bytes;
            state.index.insert((fp, j), IndexEntry { meta });
        }
        Ok(PlanStore {
            dir: config.dir,
            budget: config.disk_budget_bytes,
            policy: config.placement.policy(),
            state: Mutex::new(state),
            swept_corrupt,
            _scalar: PhantomData,
        })
    }

    /// Record files removed at open because their header was
    /// unreadable (wrong magic/version or truncated before the key).
    pub fn swept_corrupt(&self) -> usize {
        self.swept_corrupt
    }

    /// The active placement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Bytes currently held in record files.
    pub fn bytes(&self) -> u64 {
        lock(&self.state).bytes
    }

    /// Number of records currently indexed.
    pub fn records(&self) -> usize {
        lock(&self.state).index.len()
    }

    fn record_path(&self, fp: &Fingerprint, j: usize) -> PathBuf {
        self.dir.join(format!("p{:016x}-{j}.lfp", fp.digest()))
    }

    /// Demote a plan to disk. Evicts lowest-scoring records to fit the
    /// byte budget, then publishes the record atomically and rewrites
    /// the manifest. On any failure the store's on-disk state is either
    /// untouched or missing only evicted records — never torn.
    pub fn put(
        &self,
        fp: &Fingerprint,
        j: usize,
        plan: &PreparedPlan<T>,
        cost_ns: u64,
        uses: u64,
    ) -> LfResult<()> {
        // A record whose key epoch disagrees with the plan's own stamp
        // would fail read-side validation anyway; refuse to write it.
        if plan.epoch != fp.epoch {
            return Err(LfError::PlanDecode(CodecError::BadField(STALE_EPOCH)));
        }
        let blob = codec::encode_plan(plan)?;
        let mut record = ByteWriter::with_capacity(blob.len() + 96);
        record.bytes(&RECORD_MAGIC);
        record.u16(STORE_VERSION);
        write_fingerprint(&mut record, fp);
        record.u64(j as u64);
        record.u64(cost_ns);
        record.u64(blob.len() as u64);
        record.bytes(&blob);
        record.crc_trailer();
        let record = record.into_bytes();

        // Make room first (under the index lock; file deletion is
        // idempotent so a crash between delete and insert only shrinks
        // the tier).
        let mut victims = Vec::new();
        {
            let mut st = lock(&self.state);
            st.tick += 1;
            let tick = st.tick;
            if self.budget > 0 {
                let incoming = record.len() as u64;
                while st.bytes + incoming > self.budget as u64 && !st.index.is_empty() {
                    let victim = st
                        .index
                        .iter()
                        .filter(|(k, _)| **k != (*fp, j))
                        .min_by(|a, b| {
                            self.policy
                                .retention_score(&a.1.meta)
                                .total_cmp(&self.policy.retention_score(&b.1.meta))
                        })
                        .map(|(k, _)| *k);
                    let Some(key) = victim else { break };
                    let e = st.index.remove(&key).expect("victim indexed");
                    st.bytes -= e.meta.bytes;
                    victims.push(key);
                }
            }
            // Replace-in-place accounting: an existing record for this
            // key is about to be overwritten.
            if let Some(old) = st.index.remove(&(*fp, j)) {
                st.bytes -= old.meta.bytes;
            }
            st.bytes += record.len() as u64;
            st.index.insert(
                (*fp, j),
                IndexEntry {
                    meta: RecordMeta {
                        bytes: record.len() as u64,
                        uses,
                        cost_ns,
                        last_used: tick,
                    },
                },
            );
        }
        for (vfp, vj) in &victims {
            let _ = fs::remove_file(self.record_path(vfp, *vj));
        }
        let path = self.record_path(fp, j);
        if let Err(e) = atomic_write(&path, &record, lf_check::chaos::ChaosSite::DemoteTorn) {
            // The record never became visible: roll the index back.
            let mut st = lock(&self.state);
            if let Some(old) = st.index.remove(&(*fp, j)) {
                st.bytes -= old.meta.bytes;
            }
            return Err(e);
        }
        self.write_manifest()
    }

    /// Load a record, fully validated: store framing CRC, key equality,
    /// plan-blob decode (its own CRC + structural bounds), and a
    /// **fingerprint re-check** — the decoded plan's operand is
    /// reconstructed and re-fingerprinted, proving the record still
    /// describes the matrix it claims. Any failure deletes the record
    /// and returns the typed rejection; `Ok(None)` is a clean miss.
    pub fn get(
        &self,
        fp: &Fingerprint,
        j: usize,
    ) -> LfResult<Option<(PreparedPlan<T>, RecordMeta)>> {
        {
            let st = lock(&self.state);
            if !st.index.contains_key(&(*fp, j)) {
                return Ok(None);
            }
        }
        let path = self.record_path(fp, j);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                // Indexed but unreadable (raced removal, IO error):
                // drop the index entry and treat as a miss.
                self.forget(fp, j);
                return Ok(None);
            }
        };
        match self.validate_record(&bytes, fp, j) {
            Ok(plan) => {
                let mut st = lock(&self.state);
                st.tick += 1;
                let tick = st.tick;
                let meta = match st.index.get_mut(&(*fp, j)) {
                    Some(e) => {
                        e.meta.uses += 1;
                        e.meta.last_used = tick;
                        e.meta
                    }
                    None => RecordMeta::default(),
                };
                Ok(Some((plan, meta)))
            }
            Err(e) => {
                // Rejection is terminal for the record: corrupted bytes
                // are never re-tried, never served.
                let _ = fs::remove_file(&path);
                self.forget(fp, j);
                Err(e)
            }
        }
    }

    /// Parse and strictly validate one record against the key it is
    /// expected to hold.
    fn validate_record(
        &self,
        bytes: &[u8],
        fp: &Fingerprint,
        j: usize,
    ) -> LfResult<PreparedPlan<T>> {
        let (stored_fp, stored_j, blob) = parse_record(bytes)?;
        if stored_fp != *fp || stored_j != j {
            // A record that matches in every field *except* the epoch is
            // a plan from a retired generation of this matrix — the one
            // state the epoch protocol exists to refuse. Classify it
            // separately so the engine can count it as a stale eviction
            // rather than generic corruption.
            if stored_j == j && stored_fp.with_epoch(fp.epoch) == *fp {
                return Err(LfError::PlanDecode(CodecError::BadField(STALE_EPOCH)));
            }
            return Err(LfError::PlanDecode(CodecError::BadField(
                "record key mismatch",
            )));
        }
        let plan = codec::decode_plan::<T>(blob)?;
        // The epoch stamped inside the plan blob must agree with the
        // record key: a blob spliced from another generation passes its
        // own CRC but not this check.
        if plan.epoch != fp.epoch {
            return Err(LfError::PlanDecode(CodecError::BadField(STALE_EPOCH)));
        }
        // Fingerprint re-check: the plan's buckets must still encode the
        // exact matrix the record is keyed by. This catches records that
        // pass both CRCs but were written for a different matrix (or a
        // stale version of this one). The reconstruction carries no
        // epoch, so align it before comparing content.
        let refp = Fingerprint::of_csr(&plan.reconstruct_csr());
        if refp.with_epoch(fp.epoch) != *fp {
            return Err(LfError::PlanDecode(CodecError::BadField(
                "stale fingerprint",
            )));
        }
        Ok(plan)
    }

    /// Remove a record (quarantine purge, or explicit invalidation).
    pub fn remove(&self, fp: &Fingerprint, j: usize) {
        let _ = fs::remove_file(self.record_path(fp, j));
        self.forget(fp, j);
        let _ = self.write_manifest();
    }

    /// Remove **every** record keyed by `fp` (all batch widths) — the
    /// disk half of retiring an epoch. Returns how many records were
    /// dropped. File deletion is idempotent, so a crash part-way merely
    /// leaves records the next sweep (or read-side validation) retires.
    pub fn remove_matrix(&self, fp: &Fingerprint) -> usize {
        let keys: Vec<usize> = {
            let st = lock(&self.state);
            st.index
                .keys()
                .filter(|(f, _)| f == fp)
                .map(|&(_, j)| j)
                .collect()
        };
        for &j in &keys {
            let _ = fs::remove_file(self.record_path(fp, j));
            self.forget(fp, j);
        }
        if !keys.is_empty() {
            let _ = self.write_manifest();
        }
        keys.len()
    }

    fn forget(&self, fp: &Fingerprint, j: usize) {
        let mut st = lock(&self.state);
        if let Some(e) = st.index.remove(&(*fp, j)) {
            st.bytes -= e.meta.bytes;
        }
    }

    /// The keys currently on disk, highest retention score first — the
    /// order cache warming should load them in.
    pub fn warm_order(&self) -> Vec<((Fingerprint, usize), RecordMeta)> {
        let st = lock(&self.state);
        let mut keys: Vec<_> = st.index.iter().map(|(k, e)| (*k, e.meta)).collect();
        keys.sort_by(|a, b| {
            self.policy
                .retention_score(&b.1)
                .total_cmp(&self.policy.retention_score(&a.1))
        });
        keys
    }

    /// Persist the manifest (placement metadata for every indexed
    /// record) atomically.
    pub fn write_manifest(&self) -> LfResult<()> {
        let mut w = ByteWriter::new();
        w.bytes(&MANIFEST_MAGIC);
        w.u16(STORE_VERSION);
        {
            let st = lock(&self.state);
            w.u64(st.index.len() as u64);
            for ((fp, j), e) in &st.index {
                write_fingerprint(&mut w, fp);
                w.u64(*j as u64);
                w.u64(e.meta.bytes);
                w.u64(e.meta.uses);
                w.u64(e.meta.cost_ns);
                w.u64(e.meta.last_used);
            }
        }
        w.crc_trailer();
        atomic_write(
            &self.dir.join(MANIFEST_NAME),
            w.as_bytes(),
            lf_check::chaos::ChaosSite::ManifestTorn,
        )
    }
}

/// Parse a record's framing: magic, version, key, blob, trailing CRC
/// over everything before it.
fn parse_record(bytes: &[u8]) -> Result<(Fingerprint, usize, &[u8]), LfError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(4).map_err(LfError::PlanDecode)? != RECORD_MAGIC {
        return Err(LfError::PlanDecode(CodecError::BadMagic));
    }
    let version = r.u16().map_err(LfError::PlanDecode)?;
    if version != STORE_VERSION {
        return Err(LfError::PlanDecode(CodecError::UnsupportedVersion(version)));
    }
    let fp = read_fingerprint(&mut r).map_err(LfError::PlanDecode)?;
    let j = r
        .len(usize::MAX >> 8, "record j")
        .map_err(LfError::PlanDecode)?;
    let _cost_ns = r.u64().map_err(LfError::PlanDecode)?;
    let blob_len = r
        .len(r.remaining().saturating_sub(4), "record blob len")
        .map_err(LfError::PlanDecode)?;
    let crc_at = bytes.len() - r.remaining() + blob_len;
    let blob = r.bytes(blob_len).map_err(LfError::PlanDecode)?;
    let stored_crc = r.u32().map_err(LfError::PlanDecode)?;
    if r.remaining() != 0 {
        return Err(LfError::PlanDecode(CodecError::BadField(
            "record trailing bytes",
        )));
    }
    if codec::crc32(&bytes[..crc_at]) != stored_crc {
        return Err(LfError::PlanDecode(CodecError::ChecksumMismatch));
    }
    Ok((fp, j, blob))
}

/// Read just the key from a record's header (used to index the
/// directory on open; no CRC work).
fn record_key(bytes: &[u8]) -> Result<(Fingerprint, usize), CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(4)? != RECORD_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != STORE_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let fp = read_fingerprint(&mut r)?;
    let j = r.len(usize::MAX >> 8, "record j")?;
    Ok((fp, j))
}

/// Read the manifest's metadata map; any framing or checksum problem
/// yields `None` (the manifest is advisory — record files are ground
/// truth).
fn read_manifest(path: &Path) -> Option<HashMap<(Fingerprint, usize), RecordMeta>> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < 4 {
        return None;
    }
    let body = &bytes[..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
    if codec::crc32(body) != stored_crc {
        return None;
    }
    let mut r = ByteReader::new(body);
    if r.bytes(4).ok()? != MANIFEST_MAGIC {
        return None;
    }
    if r.u16().ok()? != STORE_VERSION {
        return None;
    }
    let n = r.len(r.remaining() / 104, "manifest entries").ok()?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let fp = read_fingerprint(&mut r).ok()?;
        let j = r.len(usize::MAX >> 8, "manifest j").ok()?;
        let meta = RecordMeta {
            bytes: r.u64().ok()?,
            uses: r.u64().ok()?,
            cost_ns: r.u64().ok()?,
            last_used: r.u64().ok()?,
        };
        map.insert((fp, j), meta);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_scores_rank_as_documented() {
        let cheap_big = RecordMeta {
            bytes: 1 << 20,
            uses: 0,
            cost_ns: 1_000,
            last_used: 10,
        };
        let dear_small = RecordMeta {
            bytes: 1 << 10,
            uses: 5,
            cost_ns: 50_000_000,
            last_used: 1,
        };
        // LRU keeps the recently used one regardless of value.
        assert!(LruBytes.retention_score(&cheap_big) > LruBytes.retention_score(&dear_small));
        // Cost-aware keeps the hot, expensive, small one.
        assert!(
            CostAware.retention_score(&dear_small) > CostAware.retention_score(&cheap_big),
            "cost-aware must rank recompose value per byte"
        );
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("lf-store-manifest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store: PlanStore<f64> = PlanStore::open(StoreConfig {
            dir: dir.clone(),
            disk_budget_bytes: 0,
            placement: Placement::CostAware,
        })
        .unwrap();
        store.write_manifest().unwrap();
        let path = dir.join(MANIFEST_NAME);
        assert!(read_manifest(&path).is_some());
        // Flip one byte: the manifest must be rejected wholesale.
        let mut bytes = fs::read(&path).unwrap();
        bytes[3] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(read_manifest(&path).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
