#![warn(missing_docs)]

//! # lf-serve
//!
//! A thread-safe SpMM **serving engine** over the LiteForm composer.
//!
//! The paper's whole argument (§6.4, Figures 8–9) is that composition
//! overhead must be *amortized across repeated multiplications on the
//! same matrix* — one compose, many executions. Up to now every
//! `LiteForm::spmm` call re-ran feature extraction, model inference,
//! width search and CELL construction from scratch. This crate adds the
//! amortization path as a long-lived service:
//!
//! * [`Fingerprint`] — cheap matrix identity (dims + nnz +
//!   row-pointer/column-index/value hashes, one O(nnz) pass);
//! * [`Planner`] — a plan source: the trained [`LiteForm`] pipeline,
//!   [`FixedCellPlanner`] for pinned configurations, or
//!   [`ResilientPlanner`] wrapping either with a per-matrix circuit
//!   breaker and graceful degradation to the baseline CSR format;
//! * [`ServeEngine`] — concurrent requests (`matrix handle or CSR
//!   payload`, dense `B`), a sharded LRU of
//!   [`PreparedPlan`]s keyed by `(fingerprint, j)` under a configurable
//!   byte budget, and a disjoint outcome ledger
//!   (hit/miss/rejected/degraded/failed, [`ServeStats`]);
//! * **fault isolation** (DESIGN.md §10) — strict input validation with
//!   typed [`LfError`](liteform_core::LfError) rejections, per-request
//!   `catch_unwind` containment, poisoned-plan quarantine, cooperative
//!   deadlines, and a `max_inflight` admission gate;
//! * execution on the **shared** `lf_sim` worker pool — no
//!   pool-per-request churn (asserted by the stress suite).
//!
//! ```
//! use lf_serve::{FixedCellPlanner, ServeConfig, ServeEngine};
//! use lf_sparse::{gen::mixed_regions, CsrMatrix, DenseMatrix, Pcg32};
//!
//! let mut rng = Pcg32::seed_from_u64(1);
//! let a: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(256, 256, 4000, 4, &mut rng));
//! let b = DenseMatrix::random(256, 32, &mut rng);
//!
//! let engine = ServeEngine::new(FixedCellPlanner::tuned(4), ServeConfig::default());
//! let cold = engine.serve(&a, &b).unwrap();   // composes
//! let warm = engine.serve(&a, &b).unwrap();   // cache hit
//! assert!(!cold.hit && warm.hit);
//! assert_eq!(engine.stats().requests(), 2);
//! ```
//!
//! [`LiteForm`]: liteform_core::LiteForm
//! [`PreparedPlan`]: liteform_core::PreparedPlan

pub(crate) mod batch;
pub mod engine;
pub mod fingerprint;
pub mod planner;
pub mod store;

pub use engine::{
    AppliedDelta, MatrixHandle, ServeConfig, ServeEngine, ServeOutcome, ServeStats, UpdateOutcome,
};
pub use fingerprint::Fingerprint;
pub use planner::{FixedCellPlanner, PinnedLiteForm, Planner, ResilientPlanner};
pub use store::{
    is_stale_epoch, CostAware, LruBytes, Placement, PlacementPolicy, PlanStore, RecordMeta,
    StoreConfig,
};
