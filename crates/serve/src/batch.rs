//! Same-fingerprint request coalescing: the admission-window machinery
//! behind [`crate::ServeConfig::batch_window_us`] (DESIGN.md §11).
//!
//! The first admitted request for a fingerprint becomes the **leader**:
//! it opens a [`BatchGroup`] on the board and parks for the admission
//! window while concurrent same-fingerprint requests join by depositing
//! their dense operand, their cancel token, and a [`JoinSlot`] to wait
//! on. When the window elapses — or the fused-width cap is reached,
//! whichever comes first — the leader closes the group, runs **one**
//! fused SpMM over the concatenated operands, and resolves every
//! member's slot individually: each member keeps its own deadline
//! verdict, its own ledger class, and (after a fused panic) its own
//! reference rescue. The engine half of the protocol lives in
//! `engine.rs` (`serve_batched` / `run_batch`); this module owns the
//! synchronization.
//!
//! Invariants:
//!
//! * **Lock order is board → group state**, in both the join and the
//!   close path, so the two never deadlock.
//! * A group is removed from the board and emptied **under the board
//!   lock** ([`BatchBoard::close`]); joiners reach a group only through
//!   the board and join while still holding the board lock, so no
//!   member can ever be added to a closed group (and none is ever
//!   dropped unresolved by a racing close).
//! * The leader's own member entry is always **index 0** of the closed
//!   member list (it created the group with itself inside).
//! * Every closed member is eventually resolved: the normal path
//!   resolves each slot explicitly, and [`ResolveGuard`] backstops a
//!   panicking leader by releasing the stragglers as
//!   [`Resolution::Solo`].

use crate::fingerprint::Fingerprint;
use lf_sim::cancel::CancelToken;
use lf_sparse::{DenseMatrix, Scalar};
use liteform_core::{LfError, PreprocessProfile};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How the coalescer settled one member's request.
pub(crate) enum Resolution<T> {
    /// The fused run (or this member's per-member rescue after a fused
    /// panic) produced the member's result slice.
    Served {
        /// This member's columns of the fused product.
        result: DenseMatrix<T>,
        /// Whether the fused-width plan came from the cache.
        hit: bool,
        /// Whether the result came down the degradation ladder.
        degraded: bool,
        /// Compose instrumentation — `Some` only on the leader when the
        /// fused plan was freshly composed.
        compose: Option<PreprocessProfile>,
    },
    /// The member failed with a typed error (its own deadline fired, or
    /// the fused execute panicked and its rescue failed too).
    Failed(LfError),
    /// The batch dissolved without serving this member (nobody joined,
    /// a typed kernel error, or the leader unwound): run solo instead.
    Solo,
}

enum SlotState<T> {
    Waiting,
    Resolved(Resolution<T>),
    /// The waiter gave up (backstop timeout) or already collected the
    /// resolution; later resolves are dropped.
    Abandoned,
}

/// One member's rendezvous cell: the leader deposits the member's
/// [`Resolution`], the member's thread blocks on it.
pub(crate) struct JoinSlot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

impl<T> JoinSlot<T> {
    fn new() -> Arc<Self> {
        Arc::new(JoinSlot {
            state: Mutex::new(SlotState::Waiting),
            ready: Condvar::new(),
        })
    }

    /// Deliver the member's resolution. First write wins; an abandoned
    /// slot swallows it silently.
    pub(crate) fn resolve(&self, r: Resolution<T>) {
        let mut st = lock(&self.state);
        if matches!(*st, SlotState::Waiting) {
            *st = SlotState::Resolved(r);
            self.ready.notify_all();
        }
    }

    /// Block until resolved. `backstop` is a liveness net only — leaders
    /// always resolve their members (a [`ResolveGuard`] covers even a
    /// panicking leader); should it ever fire, the member abandons the
    /// slot and falls back to a solo run.
    pub(crate) fn wait(&self, backstop: Duration) -> Resolution<T> {
        let deadline = Instant::now() + backstop;
        let mut st = lock(&self.state);
        loop {
            if matches!(*st, SlotState::Resolved(_)) {
                match std::mem::replace(&mut *st, SlotState::Abandoned) {
                    SlotState::Resolved(r) => return r,
                    // lf-lint: allow(panic-path): re-matches a state observed one line up under the same lock hold
                    _ => unreachable!("state just observed Resolved"),
                }
            }
            let now = Instant::now();
            if now >= deadline {
                *st = SlotState::Abandoned;
                return Resolution::Solo;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }
}

/// One coalesced request: the member's (cloned) dense operand, its
/// cancel token, and the slot its thread waits on.
pub(crate) struct Member<T> {
    pub(crate) b: DenseMatrix<T>,
    pub(crate) token: Option<CancelToken>,
    pub(crate) slot: Arc<JoinSlot<T>>,
}

struct GroupState<T> {
    members: Vec<Member<T>>,
    /// Sum of member widths, capped by the engine's `max_batch_j`.
    total_j: usize,
}

/// One open admission window for a fingerprint.
pub(crate) struct BatchGroup<T> {
    state: Mutex<GroupState<T>>,
    /// Signalled when the fused-width cap is reached, waking the leader
    /// before the window elapses.
    full: Condvar,
}

impl<T> BatchGroup<T> {
    /// Park the leader until the admission window elapses or the fused
    /// width cap is reached, whichever comes first.
    pub(crate) fn await_window(&self, window: Duration, max_j: usize) {
        let deadline = Instant::now() + window;
        let mut st = lock(&self.state);
        while st.total_j < max_j {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .full
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            if timeout.timed_out() {
                break;
            }
        }
    }
}

/// How the board admitted a request into the coalescer.
pub(crate) enum Admission<T> {
    /// This request opened the group and owns its execution.
    Leader {
        /// The group to park on and later close.
        group: Arc<BatchGroup<T>>,
        /// The leader's own member slot (index 0 of the closed group).
        slot: Arc<JoinSlot<T>>,
    },
    /// This request joined an open group; wait on the slot.
    Joined(Arc<JoinSlot<T>>),
    /// The open group had no room under the width cap: go solo now.
    Full,
}

/// The engine-wide map of open admission windows, one per fingerprint.
pub(crate) struct BatchBoard<T> {
    open: Mutex<HashMap<Fingerprint, Arc<BatchGroup<T>>>>,
}

impl<T: Scalar> BatchBoard<T> {
    pub(crate) fn new() -> Self {
        BatchBoard {
            open: Mutex::new(HashMap::new()),
        }
    }

    /// Join the open group for `fp`, or open one as its leader. The
    /// group's width never exceeds `max_j`: a request that would push it
    /// past the cap is turned away ([`Admission::Full`]).
    pub(crate) fn admit(
        &self,
        fp: &Fingerprint,
        b: &DenseMatrix<T>,
        token: Option<&CancelToken>,
        max_j: usize,
    ) -> Admission<T> {
        let mut open = lock(&self.open);
        match open.get(fp) {
            Some(group) => {
                let mut st = lock(&group.state);
                if st.total_j + b.cols() > max_j {
                    return Admission::Full;
                }
                let slot = JoinSlot::new();
                st.total_j += b.cols();
                st.members.push(Member {
                    b: b.clone(),
                    token: token.cloned(),
                    slot: Arc::clone(&slot),
                });
                if st.total_j >= max_j {
                    group.full.notify_all();
                }
                Admission::Joined(slot)
            }
            None => {
                let slot = JoinSlot::new();
                let group = Arc::new(BatchGroup {
                    state: Mutex::new(GroupState {
                        members: vec![Member {
                            b: b.clone(),
                            token: token.cloned(),
                            slot: Arc::clone(&slot),
                        }],
                        total_j: b.cols(),
                    }),
                    full: Condvar::new(),
                });
                open.insert(*fp, Arc::clone(&group));
                Admission::Leader { group, slot }
            }
        }
    }

    /// Close a group: atomically (under the board lock) unhook it from
    /// the board and take its members. After this returns no request can
    /// join it — joiners only reach a group through the board, and they
    /// join while still holding the board lock.
    pub(crate) fn close(&self, fp: &Fingerprint, group: &Arc<BatchGroup<T>>) -> Vec<Member<T>> {
        let mut open = lock(&self.open);
        if open.get(fp).is_some_and(|g| Arc::ptr_eq(g, group)) {
            open.remove(fp);
        }
        let mut st = lock(&group.state);
        st.total_j = 0;
        std::mem::take(&mut st.members)
    }

    /// The pre-PR-6 close order, kept (unused) as the lock-order rule's
    /// seeded bug: it takes `group.state` *first* and only then the
    /// board lock — the exact inversion against `admit` (board →
    /// group) that could deadlock a closing leader against a joining
    /// member. `crates/check/tests/lint_rules.rs` runs the lint with
    /// suppressions ignored and asserts the `lock-order` rule
    /// rediscovers this acquisition pair, the same way the model
    /// checker rediscovers the PR-2 use-after-free.
    #[allow(dead_code)]
    pub(crate) fn close_reverted(
        &self,
        fp: &Fingerprint,
        group: &Arc<BatchGroup<T>>,
    ) -> Vec<Member<T>> {
        let mut st = lock(&group.state);
        // lf-lint: allow(lock-order): seeded inversion, never called; regression-tested via --no-suppress
        let mut open = lock(&self.open);
        if open.get(fp).is_some_and(|g| Arc::ptr_eq(g, group)) {
            open.remove(fp);
        }
        st.total_j = 0;
        std::mem::take(&mut st.members)
    }
}

/// Drop guard over a closed group's members: any slot still unresolved
/// when the guard drops is released as [`Resolution::Solo`], so members
/// can never hang on a leader that unwound mid-batch.
pub(crate) struct ResolveGuard<'a, T> {
    members: &'a [Member<T>],
}

impl<'a, T> ResolveGuard<'a, T> {
    pub(crate) fn new(members: &'a [Member<T>]) -> Self {
        ResolveGuard { members }
    }
}

impl<T> Drop for ResolveGuard<'_, T> {
    fn drop(&mut self) {
        for m in self.members {
            m.slot.resolve(Resolution::Solo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(tag: u64) -> Fingerprint {
        let csr = lf_sparse::CsrMatrix::<f64>::from_raw_unchecked(
            1,
            2,
            vec![0, 1],
            vec![(tag % 2) as lf_sparse::Index],
            vec![tag as f64],
        );
        Fingerprint::of_csr(&csr)
    }

    fn b(cols: usize) -> DenseMatrix<f64> {
        DenseMatrix::zeros(4, cols)
    }

    #[test]
    fn leader_then_joiners_then_close_takes_all_members_in_order() {
        let board = BatchBoard::<f64>::new();
        let f = fp(1);
        let Admission::Leader { group, slot } = board.admit(&f, &b(8), None, 64) else {
            panic!("first arrival must lead");
        };
        assert!(matches!(
            board.admit(&f, &b(8), None, 64),
            Admission::Joined(_)
        ));
        assert!(matches!(
            board.admit(&f, &b(8), None, 64),
            Admission::Joined(_)
        ));
        let members = board.close(&f, &group);
        assert_eq!(members.len(), 3);
        assert_eq!(members[0].b.cols(), 8, "leader is member 0");
        assert!(Arc::ptr_eq(&members[0].slot, &slot));
        // After close the board is empty: the next arrival leads anew.
        assert!(matches!(
            board.admit(&f, &b(8), None, 64),
            Admission::Leader { .. }
        ));
    }

    #[test]
    fn width_cap_turns_joiners_away_and_wakes_the_leader_early() {
        let board = BatchBoard::<f64>::new();
        let f = fp(2);
        let Admission::Leader { group, .. } = board.admit(&f, &b(8), None, 16) else {
            panic!("first arrival must lead");
        };
        assert!(matches!(
            board.admit(&f, &b(8), None, 16),
            Admission::Joined(_)
        ));
        // 16/16 columns used: no room for even a 1-wide member.
        assert!(matches!(board.admit(&f, &b(1), None, 16), Admission::Full));
        // Zero-width members always fit.
        assert!(matches!(
            board.admit(&f, &b(0), None, 16),
            Admission::Joined(_)
        ));
        // The cap was reached, so the window returns immediately even
        // though it is nominally very long.
        let t0 = Instant::now();
        group.await_window(Duration::from_secs(10), 16);
        assert!(t0.elapsed() < Duration::from_secs(5), "cap must short-cut");
        assert_eq!(board.close(&f, &group).len(), 3);
    }

    #[test]
    fn distinct_fingerprints_never_share_a_group() {
        let board = BatchBoard::<f64>::new();
        assert!(matches!(
            board.admit(&fp(3), &b(4), None, 64),
            Admission::Leader { .. }
        ));
        assert!(matches!(
            board.admit(&fp(4), &b(4), None, 64),
            Admission::Leader { .. }
        ));
    }

    #[test]
    fn slot_resolve_then_wait_returns_and_first_write_wins() {
        let slot = JoinSlot::<f64>::new();
        slot.resolve(Resolution::Failed(LfError::DeadlineExceeded {
            stage: "execute",
        }));
        slot.resolve(Resolution::Solo); // dropped: first write wins
        match slot.wait(Duration::from_secs(1)) {
            Resolution::Failed(LfError::DeadlineExceeded { stage }) => {
                assert_eq!(stage, "execute")
            }
            _ => panic!("first resolution must win"),
        }
    }

    #[test]
    fn wait_backstop_abandons_and_falls_back_to_solo() {
        let slot = JoinSlot::<f64>::new();
        let t0 = Instant::now();
        assert!(matches!(
            slot.wait(Duration::from_millis(20)),
            Resolution::Solo
        ));
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // A resolution arriving after abandonment is swallowed, not
        // delivered to a second wait.
        slot.resolve(Resolution::Solo);
    }

    #[test]
    fn resolve_guard_releases_unresolved_members_as_solo() {
        let members: Vec<Member<f64>> = (0..3)
            .map(|_| Member {
                b: b(2),
                token: None,
                slot: JoinSlot::new(),
            })
            .collect();
        members[1].slot.resolve(Resolution::Served {
            result: b(2),
            hit: true,
            degraded: false,
            compose: None,
        });
        drop(ResolveGuard::new(&members));
        assert!(matches!(
            members[0].slot.wait(Duration::from_secs(1)),
            Resolution::Solo
        ));
        assert!(matches!(
            members[1].slot.wait(Duration::from_secs(1)),
            Resolution::Served { .. }
        ));
        assert!(matches!(
            members[2].slot.wait(Duration::from_secs(1)),
            Resolution::Solo
        ));
    }
}
