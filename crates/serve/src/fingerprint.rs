//! Matrix fingerprinting: the cache key of the serving layer.
//!
//! A fingerprint is cheap (one O(nnz) pass, no allocation) and binds the
//! cached plan to the *exact* matrix it was composed for:
//!
//! * dimensions and non-zero count (checked verbatim, not hashed);
//! * a 64-bit hash of the row-pointer array (row structure);
//! * a 64-bit hash of the column-index array (column structure);
//! * a 64-bit hash of the value bits.
//!
//! The value hash matters because a cached plan carries the matrix's
//! *values* inside its CELL buckets (or CSR clone): two matrices with
//! identical structure but different values must never share a plan, or
//! a cache hit would silently return the wrong product.

use lf_sparse::{CsrMatrix, Scalar};
use serde::{Deserialize, Serialize};

/// 64-bit FNV-1a over a stream of words, finished with a splitmix64
/// avalanche so short inputs still diffuse into all output bits.
#[derive(Clone, Copy)]
struct WordHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl WordHasher {
    fn new() -> Self {
        WordHasher(FNV_OFFSET)
    }

    #[inline]
    fn write(&mut self, word: u64) {
        // FNV-1a one byte at a time is slow; word-at-a-time with the same
        // xor/multiply structure keeps the distribution and runs at
        // memory speed.
        self.0 = (self.0 ^ word).wrapping_mul(FNV_PRIME);
    }

    fn finish(self) -> u64 {
        // splitmix64 finalizer.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Identity of a sparse matrix for plan caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Non-zero count.
    pub nnz: usize,
    /// Hash of the CSR row-pointer array.
    pub row_structure: u64,
    /// Hash of the CSR column-index array.
    pub col_structure: u64,
    /// Hash of the non-zero value bits.
    pub values: u64,
    /// Mutation epoch of the handle the matrix was served under. A
    /// freshly registered (or anonymous) matrix is epoch 0; every
    /// applied delta batch bumps it. The epoch participates in
    /// equality, hashing, and [`digest`](Fingerprint::digest), so a
    /// plan composed before an update can never satisfy a lookup made
    /// after it — even if an update cycle returns the matrix to
    /// byte-identical content.
    pub epoch: u64,
}

impl Fingerprint {
    /// Fingerprint a CSR matrix (one pass over `row_ptr`, `col_ind`,
    /// `values`; no allocation).
    pub fn of_csr<T: Scalar>(csr: &CsrMatrix<T>) -> Self {
        let mut rh = WordHasher::new();
        for &p in csr.row_ptr() {
            rh.write(p as u64);
        }
        let mut ch = WordHasher::new();
        for &c in csr.col_ind() {
            ch.write(c as u64);
        }
        let mut vh = WordHasher::new();
        for &v in csr.values() {
            vh.write(v.to_f64().to_bits());
        }
        Fingerprint {
            rows: csr.rows(),
            cols: csr.cols(),
            nnz: csr.nnz(),
            row_structure: rh.finish(),
            col_structure: ch.finish(),
            values: vh.finish(),
            epoch: 0,
        }
    }

    /// The same fingerprint pinned to a different mutation epoch.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Fold the whole fingerprint into one 64-bit digest — the stable
    /// per-matrix key the engine hands planners for failure memory
    /// (circuit breakers). Mixes every field, so matrices differing in
    /// shape, structure, or values get distinct digests (up to hash
    /// collisions).
    pub fn digest(&self) -> u64 {
        let mut h = WordHasher::new();
        h.write(self.rows as u64);
        h.write(self.cols as u64);
        h.write(self.nnz as u64);
        h.write(self.row_structure);
        h.write(self.col_structure);
        h.write(self.values);
        h.write(self.epoch);
        h.finish()
    }

    /// The shard a fingerprint maps to, for `n` shards.
    pub(crate) fn shard(&self, n: usize) -> usize {
        debug_assert!(n >= 1);
        // The structure hashes are already avalanched; fold them so
        // matrices differing in either field spread across shards.
        ((self.row_structure ^ self.col_structure.rotate_left(32) ^ self.values) % n as u64)
            as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::{gen::uniform_random, CooMatrix, Pcg32};

    fn matrix(seed: u64) -> CsrMatrix<f64> {
        let mut rng = Pcg32::seed_from_u64(seed);
        CsrMatrix::from_coo(&uniform_random(64, 48, 400, &mut rng))
    }

    #[test]
    fn identical_matrices_share_a_fingerprint() {
        assert_eq!(
            Fingerprint::of_csr(&matrix(1)),
            Fingerprint::of_csr(&matrix(1))
        );
    }

    #[test]
    fn different_structure_diverges() {
        assert_ne!(
            Fingerprint::of_csr(&matrix(1)),
            Fingerprint::of_csr(&matrix(2))
        );
    }

    #[test]
    fn same_structure_different_values_diverges() {
        let a = matrix(3);
        let triplets: Vec<(usize, usize, f64)> =
            a.iter().map(|(r, c, v)| (r, c, v + 1.0)).collect();
        let b =
            CsrMatrix::from_coo(&CooMatrix::from_triplets(a.rows(), a.cols(), triplets).unwrap());
        let fa = Fingerprint::of_csr(&a);
        let fb = Fingerprint::of_csr(&b);
        assert_eq!(fa.row_structure, fb.row_structure);
        assert_eq!(fa.col_structure, fb.col_structure);
        assert_ne!(fa.values, fb.values, "value hash must bind the plan");
        assert_ne!(fa, fb);
    }

    #[test]
    fn empty_and_degenerate_shapes_are_distinct() {
        let shapes = [(0usize, 0usize), (0, 5), (5, 0), (5, 5)];
        let fps: Vec<Fingerprint> = shapes
            .iter()
            .map(|&(r, c)| Fingerprint::of_csr(&CsrMatrix::<f32>::empty(r, c)))
            .collect();
        for i in 0..fps.len() {
            for j in 0..fps.len() {
                assert_eq!(i == j, fps[i] == fps[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn epoch_separates_otherwise_identical_matrices() {
        let base = Fingerprint::of_csr(&matrix(9));
        assert_eq!(base.epoch, 0, "fresh fingerprints start at epoch 0");
        let bumped = base.with_epoch(3);
        assert_ne!(base, bumped, "epoch must participate in key equality");
        assert_ne!(
            base.digest(),
            bumped.digest(),
            "stale-epoch records must land under distinct digests"
        );
        assert_eq!(bumped.with_epoch(0), base);
    }

    #[test]
    fn sharding_spreads_and_stays_in_range() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let fp = Fingerprint::of_csr(&matrix(seed));
            let s = fp.shard(8);
            assert!(s < 8);
            seen.insert(s);
        }
        assert!(
            seen.len() >= 4,
            "64 matrices landed on {} shards",
            seen.len()
        );
    }
}
