//! Plan sources for the serving engine.
//!
//! The engine is agnostic to *how* a plan is produced: the trained
//! LiteForm pipeline is the production planner, and
//! [`FixedCellPlanner`] composes a hand-picked configuration — used by
//! benchmarks and tests that need a specific partition count without
//! training models first.
//!
//! [`ResilientPlanner`] wraps any of them with the degradation ladder of
//! DESIGN.md §10: a CELL composition that panics, fails, or blows its
//! budget falls back to the baseline CSR kernel (a **degraded** plan the
//! engine serves but never caches), and a per-key circuit breaker stops
//! re-attempting compositions that keep failing.

use lf_cell::span::effective_partitions;
use lf_cell::{build_cell, CellConfig};
use lf_cost::search::optimal_widths_for_matrix;
use lf_sim::atomicf::AtomicScalar;
use lf_sparse::{CsrMatrix, FormatFeatures};
use liteform_core::{LfResult, LiteForm, PreparedPlan, PreprocessProfile, StageStats};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Produces an executable composition for a matrix and dense width `j`.
///
/// Implementations must be thread-safe: the engine calls `prepare`
/// concurrently from every serving thread that misses the cache.
pub trait Planner<T: AtomicScalar>: Send + Sync {
    /// Build the full plan (the cold path a cache hit amortizes away).
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> LfResult<PreparedPlan<T>>;

    /// [`Planner::prepare`] with a stable per-request key (the engine
    /// passes a fingerprint digest) that stateful planners can use as
    /// failure memory. The default ignores it.
    fn prepare_keyed(&self, key: u64, csr: &CsrMatrix<T>, j: usize) -> LfResult<PreparedPlan<T>> {
        let _ = key;
        self.prepare(csr, j)
    }

    /// Feedback from the engine: a plan for `key` failed *after*
    /// composition (execution panic, quarantine). Stateful planners fold
    /// this into their breaker state; the default drops it.
    fn record_failure(&self, key: u64) {
        let _ = key;
    }

    /// Name for reports.
    fn name(&self) -> &'static str {
        "planner"
    }
}

impl<T: AtomicScalar> Planner<T> for LiteForm {
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> LfResult<PreparedPlan<T>> {
        Ok(LiteForm::prepare(self, csr, j))
    }

    fn name(&self) -> &'static str {
        "liteform"
    }
}

/// Compose CELL with a fixed partition count (clamped to the column
/// count), optionally running the Algorithm-3 width search.
///
/// This is the "autotuner pinned one config" planner: no trained models,
/// but the same width search and construction cost a cold LiteForm
/// compose pays, so cache-hit speedups measured against it are honest.
#[derive(Debug, Clone)]
pub struct FixedCellPlanner {
    /// Requested column partition count.
    pub partitions: usize,
    /// Run the Algorithm-3 bucket-width search (`true`) or use natural
    /// widths (`false`). Natural widths never fold rows, which keeps
    /// every bucket single-writer within its partition — the bitwise
    /// deterministic regime.
    pub tune_widths: bool,
}

impl FixedCellPlanner {
    /// Planner with `partitions` partitions and tuned widths.
    pub fn tuned(partitions: usize) -> Self {
        FixedCellPlanner {
            partitions,
            tune_widths: true,
        }
    }

    /// Planner with `partitions` partitions and natural (un-capped)
    /// widths.
    pub fn natural(partitions: usize) -> Self {
        FixedCellPlanner {
            partitions,
            tune_widths: false,
        }
    }
}

impl<T: AtomicScalar> Planner<T> for FixedCellPlanner {
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> LfResult<PreparedPlan<T>> {
        let mut profile = PreprocessProfile::default();
        // Clamp up front: `p > cols` would otherwise desync the width
        // vector length from the config's partition count.
        let p = effective_partitions(csr.cols(), self.partitions);
        let (widths, stats) = StageStats::measure(|| {
            self.tune_widths
                .then(|| optimal_widths_for_matrix(csr, p, j))
        });
        profile.width_search = stats;
        let config = CellConfig {
            num_partitions: p,
            max_widths: widths,
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let (cell, stats) =
            StageStats::measure(|| build_cell(csr, &config).expect("clamped config is valid"));
        profile.build = stats;
        Ok(PreparedPlan::from_cell(config, cell, profile).with_tuned_j(j))
    }

    fn name(&self) -> &'static str {
        "fixed_cell"
    }
}

/// The trained pipeline with the partition count pinned by the operator.
///
/// Production serving often fixes partitioning for capacity planning
/// (the byte budget is easier to reason about when every plan uses the
/// same `p`) while keeping the learned front-end. A cold compose here
/// pays every Figure-2 stage a full `LiteForm` compose pays — feature
/// extraction and selector inference included; the selector's verdict is
/// recorded in the plan's profile timings but the composition always
/// builds CELL at the pinned count (the operator override). Only the
/// partition-predictor inference is skipped: its output is exactly what
/// the pin replaces.
#[derive(Debug, Clone)]
pub struct PinnedLiteForm {
    /// The trained pipeline supplying feature extraction and selection.
    pub pipeline: LiteForm,
    /// Operator-pinned partition count (clamped to the column count).
    pub partitions: usize,
}

impl<T: AtomicScalar> Planner<T> for PinnedLiteForm {
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> LfResult<PreparedPlan<T>> {
        let mut profile = PreprocessProfile::default();
        let (features, stats) = StageStats::measure(|| FormatFeatures::from_csr(csr));
        profile.feature_extraction = stats;
        let (_would_compose, stats) =
            StageStats::measure(|| self.pipeline.selector.predict(&features));
        profile.selection_inference = stats;
        let p = effective_partitions(csr.cols(), self.partitions);
        let (widths, stats) = StageStats::measure(|| optimal_widths_for_matrix(csr, p, j));
        profile.width_search = stats;
        let config = CellConfig {
            num_partitions: p,
            max_widths: Some(widths),
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let (cell, stats) =
            StageStats::measure(|| build_cell(csr, &config).expect("clamped config is valid"));
        profile.build = stats;
        Ok(PreparedPlan::from_cell(config, cell, profile).with_tuned_j(j))
    }

    fn name(&self) -> &'static str {
        "liteform_pinned"
    }
}

/// The degradation ladder (DESIGN.md §10) as a planner wrapper.
///
/// `prepare_keyed` delegates to the inner planner under `catch_unwind`;
/// if the composition **panics**, returns a typed error, or exceeds the
/// optional per-compose wall budget, the wrapper records the failure
/// against the key and falls back to a baseline CSR plan marked
/// [`PreparedPlan::degraded`] — the result is still exact (the CSR
/// vector kernel is bitwise-equal to `spmm_reference`), only slower, and
/// the engine serves it without caching it.
///
/// A per-key **circuit breaker** counts consecutive failures (compose
/// failures here, execution failures via [`Planner::record_failure`]
/// from the engine). At `breaker_threshold` the breaker opens and
/// requests for that key skip straight to the fallback, so a matrix
/// whose composition reliably dies stops burning compose budget; one
/// successful composition closes the breaker again.
pub struct ResilientPlanner<P> {
    inner: P,
    /// Consecutive failures per key before the breaker opens.
    breaker_threshold: u32,
    /// Wall budget for one composition; exceeding it counts as a failure
    /// and degrades the request (`None` = unbounded).
    compose_budget: Option<Duration>,
    failures: Mutex<HashMap<u64, u32>>,
    downgrades: AtomicU64,
}

impl<P> ResilientPlanner<P> {
    /// Wrap a planner with the default breaker (3 consecutive failures)
    /// and no compose budget.
    pub fn new(inner: P) -> Self {
        ResilientPlanner {
            inner,
            breaker_threshold: 3,
            compose_budget: None,
            failures: Mutex::new(HashMap::new()),
            downgrades: AtomicU64::new(0),
        }
    }

    /// Set the consecutive-failure count that opens the breaker
    /// (clamped to ≥ 1).
    pub fn with_breaker_threshold(mut self, threshold: u32) -> Self {
        self.breaker_threshold = threshold.max(1);
        self
    }

    /// Set the per-compose wall budget.
    pub fn with_compose_budget(mut self, budget: Duration) -> Self {
        self.compose_budget = Some(budget);
        self
    }

    /// The wrapped planner.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// How many requests were downgraded to the CSR fallback so far.
    pub fn downgrades(&self) -> u64 {
        self.downgrades.load(Ordering::Relaxed)
    }

    fn failure_count(&self, key: u64) -> u32 {
        self.failures
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .copied()
            .unwrap_or(0)
    }

    fn note_failure(&self, key: u64) {
        *self
            .failures
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(0) += 1;
    }

    fn note_success(&self, key: u64) {
        self.failures
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&key);
    }

    fn fallback<T: AtomicScalar>(&self, csr: &CsrMatrix<T>, j: usize) -> PreparedPlan<T> {
        self.downgrades.fetch_add(1, Ordering::Relaxed);
        PreparedPlan::from_csr(csr.clone(), PreprocessProfile::default())
            .with_tuned_j(j)
            .mark_degraded()
    }
}

impl<T: AtomicScalar, P: Planner<T>> Planner<T> for ResilientPlanner<P> {
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> LfResult<PreparedPlan<T>> {
        // Uncorrelated callers share key 0; the engine always goes
        // through `prepare_keyed`.
        self.prepare_keyed(0, csr, j)
    }

    fn prepare_keyed(&self, key: u64, csr: &CsrMatrix<T>, j: usize) -> LfResult<PreparedPlan<T>> {
        if self.failure_count(key) >= self.breaker_threshold {
            // Breaker open: don't even attempt the composition.
            return Ok(self.fallback(csr, j));
        }
        let t0 = Instant::now();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "chaos")]
            {
                use lf_check::chaos::{decide, ChaosSite};
                if decide(ChaosSite::ComposePanic) {
                    panic!("chaos: injected compose panic");
                }
                if decide(ChaosSite::AllocFail) {
                    return Err(liteform_core::LfError::ResourceExhausted {
                        what: "chaos: injected plan-scratch allocation failure".to_string(),
                    });
                }
            }
            self.inner.prepare_keyed(key, csr, j)
        }));
        let over_budget = self.compose_budget.is_some_and(|b| t0.elapsed() > b);
        #[cfg(feature = "chaos")]
        let over_budget =
            over_budget || lf_check::chaos::decide(lf_check::chaos::ChaosSite::SlowPath);
        match attempt {
            Ok(Ok(plan)) if !over_budget => {
                self.note_success(key);
                Ok(plan)
            }
            // Composed fine but past the budget: count it against the
            // breaker and degrade — a plan this slow to build is exactly
            // what the breaker should stop re-attempting.
            Ok(Ok(_)) => {
                self.note_failure(key);
                Ok(self.fallback(csr, j))
            }
            Ok(Err(e)) => {
                // Typed rejections (e.g. invalid input) are the caller's
                // bug, not a composition failure — degrading would mask
                // them.
                if e.is_rejection() {
                    return Err(e);
                }
                self.note_failure(key);
                Ok(self.fallback(csr, j))
            }
            Err(_panic) => {
                self.note_failure(key);
                Ok(self.fallback(csr, j))
            }
        }
    }

    fn record_failure(&self, key: u64) {
        self.note_failure(key);
        self.inner.record_failure(key);
    }

    fn name(&self) -> &'static str {
        "resilient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::mixed_regions;
    use lf_sparse::{DenseMatrix, Pcg32};

    #[test]
    fn fixed_planner_is_correct_and_instrumented() {
        let mut rng = Pcg32::seed_from_u64(31);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(200, 200, 4000, 4, &mut rng));
        let b = DenseMatrix::random(200, 16, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        for planner in [FixedCellPlanner::tuned(4), FixedCellPlanner::natural(4)] {
            let plan = Planner::prepare(&planner, &csr, 16).unwrap();
            assert!(plan.uses_cell());
            assert_eq!(plan.cell_config().unwrap().num_partitions, 4);
            assert_eq!(plan.tuned_j, 16);
            assert!(plan.profile.build.alloc_bytes > 0);
            let c = plan.run(&b).unwrap();
            assert!(c.approx_eq(&want, 1e-9));
        }
    }

    #[test]
    fn pinned_pipeline_composes_at_the_pin_with_full_front_end() {
        let pipeline = liteform_core::ModelBundle::load(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/liteform-models.json"
        ))
        .expect("checked-in model bundle must load")
        .into_liteform();
        let planner = PinnedLiteForm {
            pipeline,
            partitions: 6,
        };
        let mut rng = Pcg32::seed_from_u64(33);
        let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(300, 300, 6000, 4, &mut rng));
        let plan = Planner::prepare(&planner, &csr, 16).unwrap();
        assert!(plan.uses_cell());
        assert_eq!(plan.cell_config().unwrap().num_partitions, 6);
        // The cold path pays the front-end: feature extraction and
        // selection both allocate/measure (wall_s can round to zero on a
        // fast machine, so assert the stages ran via the alloc counter
        // and the recorded build).
        assert!(plan.profile.feature_extraction.wall_s >= 0.0);
        assert!(plan.profile.build.alloc_bytes > 0);
        let b = DenseMatrix::random(300, 16, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        assert!(plan.run(&b).unwrap().approx_eq(&want, 1e-4));
    }

    #[test]
    fn fixed_planner_clamps_excess_partitions() {
        let mut rng = Pcg32::seed_from_u64(32);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(40, 10, 120, 2, &mut rng));
        let plan = Planner::prepare(&FixedCellPlanner::tuned(64), &csr, 8).unwrap();
        assert_eq!(plan.cell_config().unwrap().num_partitions, 10);
        let b = DenseMatrix::random(10, 8, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        assert!(plan.run(&b).unwrap().approx_eq(&want, 1e-9));
    }

    /// A planner whose compose panics on demand, for ladder tests.
    struct FaultyPlanner {
        inner: FixedCellPlanner,
        panic_on: std::sync::atomic::AtomicBool,
    }

    impl FaultyPlanner {
        fn new() -> Self {
            FaultyPlanner {
                inner: FixedCellPlanner::tuned(4),
                panic_on: std::sync::atomic::AtomicBool::new(true),
            }
        }
    }

    impl Planner<f64> for FaultyPlanner {
        fn prepare(&self, csr: &CsrMatrix<f64>, j: usize) -> LfResult<PreparedPlan<f64>> {
            if self.panic_on.load(Ordering::Relaxed) {
                panic!("composer bug");
            }
            self.inner.prepare(csr, j)
        }
    }

    #[test]
    fn resilient_degrades_on_compose_panic_with_exact_results() {
        let mut rng = Pcg32::seed_from_u64(41);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(120, 120, 2000, 4, &mut rng));
        let b = DenseMatrix::random(120, 8, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();

        let planner = ResilientPlanner::new(FaultyPlanner::new());
        let plan = planner.prepare_keyed(7, &csr, 8).unwrap();
        assert!(plan.degraded, "compose panic must degrade, not propagate");
        assert!(!plan.uses_cell(), "fallback is the baseline CSR kernel");
        assert_eq!(planner.downgrades(), 1);
        // The degraded result is bitwise the reference result: the CSR
        // vector kernel accumulates each row in index order.
        let got = plan.run(&b).unwrap();
        for r in 0..want.rows() {
            for c in 0..want.cols() {
                assert_eq!(got.get(r, c).to_bits(), want.get(r, c).to_bits());
            }
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_closes_on_success() {
        let mut rng = Pcg32::seed_from_u64(42);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(64, 64, 600, 2, &mut rng));
        let faulty = FaultyPlanner::new();
        let planner = ResilientPlanner::new(faulty).with_breaker_threshold(2);

        // Two panicking composes open the breaker.
        for _ in 0..2 {
            assert!(planner.prepare_keyed(9, &csr, 8).unwrap().degraded);
        }
        // Even a now-healthy composer is skipped while the breaker is
        // open (the whole point: stop burning compose budget).
        planner.inner().panic_on.store(false, Ordering::Relaxed);
        assert!(planner.failure_count(9) >= 2);
        assert!(
            planner.prepare_keyed(9, &csr, 8).unwrap().degraded,
            "open breaker must skip the compose attempt"
        );
        // A different key is unaffected.
        let plan = planner.prepare_keyed(10, &csr, 8).unwrap();
        assert!(!plan.degraded);
        // Closing: reset the broken key's count (as an operator clearing
        // state would) and compose successfully once.
        planner.note_success(9);
        let plan = planner.prepare_keyed(9, &csr, 8).unwrap();
        assert!(!plan.degraded, "healthy compose closes the breaker");
        assert_eq!(planner.failure_count(9), 0);
    }

    #[test]
    fn engine_reported_failures_feed_the_breaker() {
        let mut rng = Pcg32::seed_from_u64(43);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(64, 64, 600, 2, &mut rng));
        let faulty = FaultyPlanner::new();
        faulty.panic_on.store(false, Ordering::Relaxed);
        let planner = ResilientPlanner::new(faulty).with_breaker_threshold(3);
        // Three execution-side failures (reported by the engine) open
        // the breaker even though compose never failed.
        for _ in 0..3 {
            Planner::<f64>::record_failure(&planner, 11);
        }
        assert!(
            planner.prepare_keyed(11, &csr, 8).unwrap().degraded,
            "execution failures must open the breaker too"
        );
    }

    #[test]
    fn compose_budget_overrun_degrades_and_counts() {
        let mut rng = Pcg32::seed_from_u64(44);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(64, 64, 600, 2, &mut rng));
        let planner = ResilientPlanner::new(FixedCellPlanner::tuned(4))
            .with_compose_budget(Duration::from_secs(0));
        let plan = planner.prepare_keyed(12, &csr, 8).unwrap();
        assert!(plan.degraded, "zero budget must always overrun");
        assert_eq!(planner.failure_count(12), 1);
        let b = DenseMatrix::random(64, 8, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        assert!(plan.run(&b).unwrap().approx_eq(&want, 1e-9));
    }
}
