//! Plan sources for the serving engine.
//!
//! The engine is agnostic to *how* a plan is produced: the trained
//! LiteForm pipeline is the production planner, and
//! [`FixedCellPlanner`] composes a hand-picked configuration — used by
//! benchmarks and tests that need a specific partition count without
//! training models first.

use lf_cell::span::effective_partitions;
use lf_cell::{build_cell, CellConfig};
use lf_cost::search::optimal_widths_for_matrix;
use lf_sim::atomicf::AtomicScalar;
use lf_sparse::{CsrMatrix, FormatFeatures};
use liteform_core::{LiteForm, PreparedPlan, PreprocessProfile, StageStats};

/// Produces an executable composition for a matrix and dense width `j`.
///
/// Implementations must be thread-safe: the engine calls `prepare`
/// concurrently from every serving thread that misses the cache.
pub trait Planner<T: AtomicScalar>: Send + Sync {
    /// Build the full plan (the cold path a cache hit amortizes away).
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> PreparedPlan<T>;

    /// Name for reports.
    fn name(&self) -> &'static str {
        "planner"
    }
}

impl<T: AtomicScalar> Planner<T> for LiteForm {
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> PreparedPlan<T> {
        LiteForm::prepare(self, csr, j)
    }

    fn name(&self) -> &'static str {
        "liteform"
    }
}

/// Compose CELL with a fixed partition count (clamped to the column
/// count), optionally running the Algorithm-3 width search.
///
/// This is the "autotuner pinned one config" planner: no trained models,
/// but the same width search and construction cost a cold LiteForm
/// compose pays, so cache-hit speedups measured against it are honest.
#[derive(Debug, Clone)]
pub struct FixedCellPlanner {
    /// Requested column partition count.
    pub partitions: usize,
    /// Run the Algorithm-3 bucket-width search (`true`) or use natural
    /// widths (`false`). Natural widths never fold rows, which keeps
    /// every bucket single-writer within its partition — the bitwise
    /// deterministic regime.
    pub tune_widths: bool,
}

impl FixedCellPlanner {
    /// Planner with `partitions` partitions and tuned widths.
    pub fn tuned(partitions: usize) -> Self {
        FixedCellPlanner {
            partitions,
            tune_widths: true,
        }
    }

    /// Planner with `partitions` partitions and natural (un-capped)
    /// widths.
    pub fn natural(partitions: usize) -> Self {
        FixedCellPlanner {
            partitions,
            tune_widths: false,
        }
    }
}

impl<T: AtomicScalar> Planner<T> for FixedCellPlanner {
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> PreparedPlan<T> {
        let mut profile = PreprocessProfile::default();
        // Clamp up front: `p > cols` would otherwise desync the width
        // vector length from the config's partition count.
        let p = effective_partitions(csr.cols(), self.partitions);
        let (widths, stats) = StageStats::measure(|| {
            self.tune_widths
                .then(|| optimal_widths_for_matrix(csr, p, j))
        });
        profile.width_search = stats;
        let config = CellConfig {
            num_partitions: p,
            max_widths: widths,
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let (cell, stats) =
            StageStats::measure(|| build_cell(csr, &config).expect("clamped config is valid"));
        profile.build = stats;
        PreparedPlan::from_cell(config, cell, profile).with_tuned_j(j)
    }

    fn name(&self) -> &'static str {
        "fixed_cell"
    }
}

/// The trained pipeline with the partition count pinned by the operator.
///
/// Production serving often fixes partitioning for capacity planning
/// (the byte budget is easier to reason about when every plan uses the
/// same `p`) while keeping the learned front-end. A cold compose here
/// pays every Figure-2 stage a full `LiteForm` compose pays — feature
/// extraction and selector inference included; the selector's verdict is
/// recorded in the plan's profile timings but the composition always
/// builds CELL at the pinned count (the operator override). Only the
/// partition-predictor inference is skipped: its output is exactly what
/// the pin replaces.
#[derive(Debug, Clone)]
pub struct PinnedLiteForm {
    /// The trained pipeline supplying feature extraction and selection.
    pub pipeline: LiteForm,
    /// Operator-pinned partition count (clamped to the column count).
    pub partitions: usize,
}

impl<T: AtomicScalar> Planner<T> for PinnedLiteForm {
    fn prepare(&self, csr: &CsrMatrix<T>, j: usize) -> PreparedPlan<T> {
        let mut profile = PreprocessProfile::default();
        let (features, stats) = StageStats::measure(|| FormatFeatures::from_csr(csr));
        profile.feature_extraction = stats;
        let (_would_compose, stats) =
            StageStats::measure(|| self.pipeline.selector.predict(&features));
        profile.selection_inference = stats;
        let p = effective_partitions(csr.cols(), self.partitions);
        let (widths, stats) = StageStats::measure(|| optimal_widths_for_matrix(csr, p, j));
        profile.width_search = stats;
        let config = CellConfig {
            num_partitions: p,
            max_widths: Some(widths),
            block_nnz_multiple: 4,
            uniform_block_nnz: true,
        };
        let (cell, stats) =
            StageStats::measure(|| build_cell(csr, &config).expect("clamped config is valid"));
        profile.build = stats;
        PreparedPlan::from_cell(config, cell, profile).with_tuned_j(j)
    }

    fn name(&self) -> &'static str {
        "liteform_pinned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::mixed_regions;
    use lf_sparse::{DenseMatrix, Pcg32};

    #[test]
    fn fixed_planner_is_correct_and_instrumented() {
        let mut rng = Pcg32::seed_from_u64(31);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(200, 200, 4000, 4, &mut rng));
        let b = DenseMatrix::random(200, 16, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        for planner in [FixedCellPlanner::tuned(4), FixedCellPlanner::natural(4)] {
            let plan = Planner::prepare(&planner, &csr, 16);
            assert!(plan.uses_cell());
            assert_eq!(plan.cell_config().unwrap().num_partitions, 4);
            assert_eq!(plan.tuned_j, 16);
            assert!(plan.profile.build.alloc_bytes > 0);
            let c = plan.run(&b).unwrap();
            assert!(c.approx_eq(&want, 1e-9));
        }
    }

    #[test]
    fn pinned_pipeline_composes_at_the_pin_with_full_front_end() {
        let pipeline = liteform_core::ModelBundle::load(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/liteform-models.json"
        ))
        .expect("checked-in model bundle must load")
        .into_liteform();
        let planner = PinnedLiteForm {
            pipeline,
            partitions: 6,
        };
        let mut rng = Pcg32::seed_from_u64(33);
        let csr: CsrMatrix<f32> = CsrMatrix::from_coo(&mixed_regions(300, 300, 6000, 4, &mut rng));
        let plan = Planner::prepare(&planner, &csr, 16);
        assert!(plan.uses_cell());
        assert_eq!(plan.cell_config().unwrap().num_partitions, 6);
        // The cold path pays the front-end: feature extraction and
        // selection both allocate/measure (wall_s can round to zero on a
        // fast machine, so assert the stages ran via the alloc counter
        // and the recorded build).
        assert!(plan.profile.feature_extraction.wall_s >= 0.0);
        assert!(plan.profile.build.alloc_bytes > 0);
        let b = DenseMatrix::random(300, 16, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        assert!(plan.run(&b).unwrap().approx_eq(&want, 1e-4));
    }

    #[test]
    fn fixed_planner_clamps_excess_partitions() {
        let mut rng = Pcg32::seed_from_u64(32);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&mixed_regions(40, 10, 120, 2, &mut rng));
        let plan = Planner::prepare(&FixedCellPlanner::tuned(64), &csr, 8);
        assert_eq!(plan.cell_config().unwrap().num_partitions, 10);
        let b = DenseMatrix::random(10, 8, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        assert!(plan.run(&b).unwrap().approx_eq(&want, 1e-9));
    }
}
