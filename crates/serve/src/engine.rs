//! The concurrent serving engine: a sharded, byte-budgeted LRU of
//! prepared composition plans, hardened against hostile inputs, panics,
//! and deadline overruns.
//!
//! Request path (`serve` / `serve_handle`):
//!
//! 1. **validate** the payload (strict CSR structure, NaN/Inf policy) —
//!    malformed matrices are rejected with a typed
//!    [`LfError::InvalidInput`] *before* fingerprinting, so they never
//!    touch the cache or the hit/miss ledger;
//! 2. **admit** under the backpressure gate (`max_inflight`) and arm the
//!    per-request deadline as a cooperative
//!    [`lf_sim::cancel::CancelToken`] — parallel regions under this
//!    request check it between chunks, so an oversized request times out
//!    cleanly instead of wedging pool workers;
//! 3. fingerprint the matrix (skipped for handles, which carry theirs);
//! 4. look the `(fingerprint, j)` key up in the shard the fingerprint
//!    maps to — a **hit** returns the cached [`PreparedPlan`] and pays
//!    only the kernel execution;
//! 5. on a **miss**, the planner composes outside any lock (other
//!    requests — including other misses — proceed concurrently) under
//!    `catch_unwind`; the plan is admitted under the shard's byte budget
//!    (evicting whole least-recently-used plans) and the request
//!    executes it, also under `catch_unwind`.
//!
//! Failures are contained per request (DESIGN.md §10): a panicking
//! *execution* quarantines the cached plan (poisoned, evicted exactly
//! once, never re-served) and degrades the request to the baseline
//! reference CSR result; a panicking *composition* fails the request
//! with a typed error unless the planner itself degrades (see
//! [`crate::planner::ResilientPlanner`]). Every request lands in exactly
//! one ledger class, so
//! `requests == hits + misses + rejected + degraded + failed` holds
//! exactly — the chaos tier asserts this identity under fault injection.
//!
//! Execution itself runs on the process-wide `lf_sim` worker pool —
//! every request shares the one pool the kernels already dispatch to, so
//! serving N concurrent requests spawns no threads beyond the pool's
//! (asserted by the stress suite via
//! `lf_sim::pool::workers_spawned_total`).
//!
//! Two requests that miss on the same key simultaneously both compose
//! (no cross-request blocking); the first insert wins and the loser's
//! plan serves only its own request, then drops. This trades a bounded
//! amount of duplicate cold work for a lock-free compose path.
//!
//! [`PreparedPlan`]: liteform_core::PreparedPlan

use crate::batch::{Admission, BatchBoard, Member, Resolution, ResolveGuard};
use crate::fingerprint::Fingerprint;
use crate::planner::Planner;
use crate::store::{Placement, PlanStore, StoreConfig};
use lf_cost::TileFeatures;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::cancel::{self, CancelToken};
use lf_sparse::{CsrMatrix, DenseMatrix, EdgeUpdate, Scalar, SparseError};
use liteform_core::{panic_detail, LfError, LfResult, PreparedPlan, PreprocessProfile, StageStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Serving-layer tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of independent cache shards (lock granularity). Clamped to
    /// ≥ 1.
    pub shards: usize,
    /// Whole-cache byte budget for retained plan memory
    /// ([`PreparedPlan::format_bytes`](liteform_core::PreparedPlan::format_bytes)).
    /// Split evenly across shards; a plan larger than its shard's slice
    /// is served but never admitted.
    pub byte_budget: usize,
    /// Per-request deadline in milliseconds (`None` = unbounded). The
    /// deadline is cooperative: parallel regions notice it between
    /// chunks, the request fails with [`LfError::DeadlineExceeded`], and
    /// partial results are discarded, never served.
    pub deadline_ms: Option<u64>,
    /// Admission gate: requests beyond this many already in flight are
    /// rejected with [`LfError::Overloaded`] (`0` = unlimited).
    pub max_inflight: usize,
    /// Reject payloads containing NaN/Inf values at ingress (`true`,
    /// the default). With `false`, only structural validation runs and
    /// non-finite values propagate into results IEEE-style.
    pub reject_nonfinite: bool,
    /// Same-fingerprint request coalescing: requests arriving within
    /// this admission window (microseconds) fuse into one wide SpMM,
    /// amortizing the sparse index-stream traversal across all of them
    /// (`0` disables coalescing — the default). The window wait counts
    /// against each member's deadline and `serve_wall_s`. See
    /// DESIGN.md §11.
    pub batch_window_us: u64,
    /// Cap on the fused dense width: a batch stops admitting members
    /// once the sum of their B widths would exceed this many columns
    /// (reaching it closes the window early). A request at least this
    /// wide on its own always runs solo. Ignored when coalescing is off.
    pub max_batch_j: usize,
    /// Directory for the disk tier of the plan cache (`None` disables
    /// it — the default). With a store, RAM-evicted plans are demoted
    /// to disk instead of dropped, RAM misses check disk before
    /// composing, and engine construction **warms** the cache from the
    /// directory (every record strictly re-validated; failures are
    /// counted in `warm_rejected` and never served). See DESIGN.md §13.
    pub store_dir: Option<String>,
    /// Byte budget for the disk tier's record files (`0` = unbounded).
    /// Exceeding it evicts records by the placement policy's score.
    pub disk_budget_bytes: usize,
    /// Which placement policy ranks disk-tier records for retention.
    pub placement: Placement,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            byte_budget: 256 << 20,
            deadline_ms: None,
            max_inflight: 0,
            reject_nonfinite: true,
            batch_window_us: 0,
            max_batch_j: 256,
            store_dir: None,
            disk_budget_bytes: 0,
            placement: Placement::CostAware,
        }
    }
}

/// The mutable registration behind a [`MatrixHandle`]: the current
/// payload, its epoch-stamped fingerprint, and the fingerprints of
/// retired epochs whose cached plans may still linger in some tier.
#[derive(Debug)]
struct HandleState<T> {
    csr: Arc<CsrMatrix<T>>,
    fingerprint: Fingerprint,
    /// Fingerprints retired by [`MatrixHandle::apply_updates`], kept
    /// until a sweep confirms both cache tiers hold nothing under them.
    /// Persisting the list (rather than sweeping fire-and-forget) is
    /// what makes invalidation crash-tolerant: an aborted sweep retries
    /// on the next one.
    retired: Vec<Fingerprint>,
}

/// A registered matrix: validated once, fingerprint computed once,
/// payload retained so the engine can re-compose after an eviction
/// without resubmission.
///
/// Handles are **mutable registrations**: [`apply_updates`] applies an
/// edge-delta batch atomically, bumping the matrix's *epoch* — the
/// version counter folded into [`Fingerprint`] equality, hashing, and
/// digests — so every plan cached for an earlier generation becomes
/// unreachable the instant the batch commits. Clones share the
/// registration (an update through one clone is visible to all), which
/// is what lets concurrent servers and updaters coordinate through the
/// epoch.
///
/// [`apply_updates`]: MatrixHandle::apply_updates
#[derive(Debug)]
pub struct MatrixHandle<T> {
    shared: Arc<RwLock<HandleState<T>>>,
}

impl<T> Clone for MatrixHandle<T> {
    fn clone(&self) -> Self {
        MatrixHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// What one committed delta batch did to a handle — the engine's
/// cache-maintenance input, and the caller's receipt.
#[derive(Debug)]
pub struct AppliedDelta<T> {
    /// The fingerprint retired by this batch.
    pub old_fingerprint: Fingerprint,
    /// The handle's new fingerprint (epoch = old + 1).
    pub fingerprint: Fingerprint,
    /// The updated payload the handle now serves.
    pub csr: Arc<CsrMatrix<T>>,
    /// Every touched `(row, col)` coordinate, in batch order.
    pub touched: Vec<(usize, usize)>,
    /// Distinct rows the batch touched.
    pub touched_rows: usize,
    /// `true` when the churn crossed [`lf_cost::churn_threshold`]: the
    /// measured-cost model predicts incremental CELL maintenance would
    /// be slower than recomposing, so cached plans should be dropped and
    /// rebuilt rather than migrated.
    pub rebuild: bool,
}

impl<T: Scalar> MatrixHandle<T> {
    /// Register a matrix: validates it strictly (structure **and**
    /// finiteness — handles are the trusted fast path, so they always
    /// get the strict policy), then fingerprints it (one O(nnz) pass)
    /// and wraps the payload for cheap sharing across requests. A fresh
    /// registration is epoch 0.
    pub fn new(csr: CsrMatrix<T>) -> LfResult<Self> {
        csr.validate_finite()?;
        let fingerprint = Fingerprint::of_csr(&csr);
        Ok(MatrixHandle {
            shared: Arc::new(RwLock::new(HandleState {
                csr: Arc::new(csr),
                fingerprint,
                retired: Vec::new(),
            })),
        })
    }

    fn read(&self) -> RwLockReadGuard<'_, HandleState<T>> {
        self.shared.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, HandleState<T>> {
        self.shared.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The handle's current fingerprint (epoch included).
    pub fn fingerprint(&self) -> Fingerprint {
        self.read().fingerprint
    }

    /// The handle's current mutation epoch (0 until the first update).
    pub fn epoch(&self) -> u64 {
        self.read().fingerprint.epoch
    }

    /// The current payload (cheap: clones the `Arc`, not the matrix).
    pub fn csr(&self) -> Arc<CsrMatrix<T>> {
        Arc::clone(&self.read().csr)
    }

    /// One consistent `(fingerprint, payload)` snapshot — the pair a
    /// serve must use together. Reading the two through separate calls
    /// could interleave with a concurrent update and pair the old
    /// payload with the new key (or vice versa).
    pub fn current(&self) -> (Fingerprint, Arc<CsrMatrix<T>>) {
        let st = self.read();
        (st.fingerprint, Arc::clone(&st.csr))
    }

    /// Fingerprints of retired epochs not yet confirmed swept from
    /// every cache tier.
    pub fn retired(&self) -> Vec<Fingerprint> {
        self.read().retired.clone()
    }

    /// Drop retired fingerprints a sweep has confirmed clean.
    fn clear_retired(&self, done: &[Fingerprint]) {
        if done.is_empty() {
            return;
        }
        self.write().retired.retain(|fp| !done.contains(fp));
    }

    /// Apply an edge-delta batch **atomically**: the whole batch is
    /// validated against the current matrix first (typed
    /// [`SparseError`]s: out-of-range coordinates, duplicate targets,
    /// insert-present / delete-absent conflicts, non-finite values), a
    /// new payload is built, and only then — under the handle's write
    /// lock — the payload, fingerprint, and epoch swap in together. A
    /// rejected batch leaves the handle bitwise untouched; a reader
    /// never observes a half-applied generation because the previous
    /// payload is an immutable `Arc` snapshot until the commit point.
    ///
    /// The returned [`AppliedDelta`] carries what cache maintenance
    /// needs (retired fingerprint, touched coordinates, the
    /// churn-threshold verdict). Callers serving through a
    /// [`ServeEngine`] should prefer
    /// [`ServeEngine::apply_updates`], which also migrates cached plans
    /// and retires stale ones across both cache tiers.
    pub fn apply_updates(&self, updates: &[EdgeUpdate<T>]) -> LfResult<AppliedDelta<T>> {
        let mut st = self.write();
        let new_csr = st
            .csr
            .apply_updates(updates)
            .map_err(LfError::InvalidInput)?;
        #[cfg(feature = "chaos")]
        {
            use lf_check::chaos::{decide, ChaosSite};
            if decide(ChaosSite::UpdateTorn) {
                // Simulated kill between validation and commit: the
                // fully built next generation is dropped and the handle
                // stays on the old epoch — the only two states a torn
                // update may leave.
                return Err(LfError::ResourceExhausted {
                    what: format!("chaos: torn update at {}", ChaosSite::UpdateTorn.name()),
                });
            }
        }
        let touched: Vec<(usize, usize)> = updates.iter().map(EdgeUpdate::coord).collect();
        let mut rows: Vec<usize> = touched.iter().map(|&(r, _)| r).collect();
        rows.sort_unstable();
        rows.dedup();
        let touched_rows = rows.len();
        let features = TileFeatures::new(new_csr.rows(), new_csr.nnz(), std::mem::size_of::<T>());
        let rebuild = lf_cost::should_rebuild(features, touched_rows);
        let old_fingerprint = st.fingerprint;
        let fingerprint = Fingerprint::of_csr(&new_csr).with_epoch(old_fingerprint.epoch + 1);
        let csr = Arc::new(new_csr);
        st.csr = Arc::clone(&csr);
        st.fingerprint = fingerprint;
        st.retired.push(old_fingerprint);
        Ok(AppliedDelta {
            old_fingerprint,
            fingerprint,
            csr,
            touched,
            touched_rows,
            rebuild,
        })
    }
}

/// What [`ServeEngine::apply_updates`] did: the committed delta's new
/// identity plus the cache maintenance that followed it.
#[derive(Debug, Clone, Copy)]
pub struct UpdateOutcome {
    /// The handle's epoch after the batch.
    pub epoch: u64,
    /// The handle's fingerprint after the batch.
    pub fingerprint: Fingerprint,
    /// Distinct rows the batch touched.
    pub touched_rows: usize,
    /// `true` when churn crossed the measured crossover and cached plans
    /// were dropped for lazy recomposition instead of migrated.
    pub rebuild: bool,
    /// Cached plans incrementally migrated to the new epoch (0 when
    /// `rebuild` is set, or when nothing was cached).
    pub migrated: usize,
    /// Whether every retired fingerprint was confirmed swept from both
    /// tiers (`false` only under injected sweep faults; the handle
    /// retries on its next sweep).
    pub swept: bool,
}

/// One served request's result and accounting.
#[derive(Debug)]
pub struct ServeOutcome<T> {
    /// The product `C = A · B`.
    pub result: DenseMatrix<T>,
    /// Whether the plan came from the cache.
    pub hit: bool,
    /// Whether the result came from the degradation ladder (a degraded
    /// fallback plan, or the reference-CSR rescue after an execution
    /// panic). Degraded results are exact; only the format is baseline.
    pub degraded: bool,
    /// The request's cache key fingerprint.
    pub fingerprint: Fingerprint,
    /// Composition instrumentation — `Some` exactly when this request
    /// composed a plan (cache misses, including degraded composes; for
    /// a coalesced request, only the batch leader's compose).
    pub compose: Option<PreprocessProfile>,
    /// End-to-end wall seconds for this request (lookup + compose if
    /// cold + execution; for coalesced requests this *includes* the
    /// admission-window wait and the scatter copy, so latency
    /// percentiles over it never understate batched requests).
    pub serve_wall_s: f64,
    /// Whether this request was resolved by a fused (coalesced) execute
    /// shared with other same-fingerprint requests.
    pub batched: bool,
}

/// Counter snapshot, [`StageStats`]-style: wall clock plus allocation
/// counters where the engine measures them.
///
/// The five request classes are disjoint and exhaustive — every call to
/// `serve`/`serve_handle` bumps exactly one of `hits`, `misses`,
/// `rejected`, `degraded`, `failed`, so
/// [`ServeStats::requests`]` == hits + misses + rejected + degraded +
/// failed` holds exactly at every quiescent point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests answered from the cache (and executed cleanly).
    pub hits: u64,
    /// Requests that composed a plan (and executed cleanly).
    pub misses: u64,
    /// Requests rejected at ingress: invalid payload, dimension
    /// mismatch, or the admission gate ([`LfError::is_rejection`]).
    pub rejected: u64,
    /// Requests answered through the degradation ladder: the result is
    /// exact but came from a baseline-format fallback.
    pub degraded: u64,
    /// Requests that failed after admission with a typed error
    /// (deadline exceeded, contained panic with no fallback, compose
    /// failure).
    pub failed: u64,
    /// Plans evicted to make room under the byte budget.
    pub evictions: u64,
    /// Bytes of evicted plans that were **dropped outright** — no disk
    /// tier, the store write failed, or the plan was poisoned. With
    /// `demotions`, this splits every eviction by what happened to the
    /// bytes.
    pub evicted_bytes: u64,
    /// Evicted plans successfully demoted to the disk tier (a later
    /// miss can promote them back instead of recomposing).
    pub demotions: u64,
    /// RAM misses answered by a validated disk-tier record. Disk hits
    /// land in the `hits` ledger class; this counter splits them out.
    pub disk_hits: u64,
    /// Disk-tier records re-admitted into the RAM cache (a disk hit
    /// whose plan also fit its shard's budget slice).
    pub promotions: u64,
    /// Plans loaded into RAM by startup cache warming from the disk
    /// tier (each strictly re-validated first).
    pub warm_loaded: u64,
    /// Persisted records rejected by strict validation — bad framing,
    /// checksum mismatch, version drift, stale fingerprint — at warm or
    /// promotion time. Rejected records are deleted and recomposed on
    /// demand; they are **never served**. Retired-**epoch** rejections
    /// are split out into `stale_evicted`.
    pub warm_rejected: u64,
    /// Stale-epoch plans retired across both cache tiers: RAM entries
    /// swept after an update batch (or by the publish-time epoch
    /// re-check), disk records deleted by the epoch sweep, and disk
    /// records *refused* by read-side validation because their epoch was
    /// retired. Evicted, never corrupted: none of these were served.
    pub stale_evicted: u64,
    /// Plans too large for their shard's budget slice (served, never
    /// admitted).
    pub oversized: u64,
    /// Cached plans poisoned by an execution panic and evicted by the
    /// quarantine protocol (exactly once per plan).
    pub quarantined: u64,
    /// Fused executes performed by the coalescer (each covering ≥ 2
    /// member requests).
    pub batches: u64,
    /// Requests resolved by a fused execute — including members that
    /// failed on their own deadline and members rescued per-request
    /// after a fused panic. Requests whose window dissolved back to a
    /// solo run are not counted.
    pub batched_requests: u64,
    /// Accumulated wall seconds request threads spent inside the
    /// coalescer (admission-window wait through scatter). Already part
    /// of `serve`; split out for visibility.
    pub batch_wait_s: f64,
    /// Accumulated cold-compose cost across all misses (wall + allocs,
    /// via the `lf-sim` counting allocator).
    pub cold_compose: StageStats,
    /// Accumulated end-to-end serve wall time across all admitted
    /// requests (allocation fields unused).
    pub serve: StageStats,
    /// Plans currently cached.
    pub cached_plans: usize,
    /// Bytes currently charged against the budget.
    pub cached_bytes: usize,
    /// Bytes currently held by the disk tier's record files (0 when the
    /// store is disabled).
    pub store_bytes: usize,
}

impl ServeStats {
    /// Total requests, over all five disjoint outcome classes.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.rejected + self.degraded + self.failed
    }

    /// Fraction of cleanly executed plan requests answered from the
    /// cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            return 0.0;
        }
        self.hits as f64 / (self.hits + self.misses) as f64
    }
}

/// A cached plan plus its poison flag. The `Arc` is shared between the
/// shard map and in-flight executions, so a request that catches the
/// plan panicking can quarantine it for everyone: the first poisoner
/// (atomic swap) evicts the entry; late lookups that still see the entry
/// treat a poisoned slot as a miss and sweep it.
struct PlanSlot<T: AtomicScalar> {
    plan: PreparedPlan<T>,
    poisoned: AtomicBool,
    /// Measured compose cost, nanoseconds — what a miss on this plan
    /// would re-pay. Travels with the plan into the disk tier, where
    /// the cost-aware placement policy ranks on it.
    cost_ns: u64,
}

impl<T: AtomicScalar> PlanSlot<T> {
    fn new(plan: PreparedPlan<T>, cost_ns: u64) -> Arc<Self> {
        Arc::new(PlanSlot {
            plan,
            poisoned: AtomicBool::new(false),
            cost_ns,
        })
    }
}

struct Entry<T: AtomicScalar> {
    slot: Arc<PlanSlot<T>>,
    bytes: usize,
    last_used: u64,
    /// Cache hits this entry served (seeds the disk tier's frequency
    /// accounting when the entry is demoted).
    uses: u64,
}

struct Shard<T: AtomicScalar> {
    map: HashMap<(Fingerprint, usize), Entry<T>>,
    bytes: usize,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    demotions: AtomicU64,
    disk_hits: AtomicU64,
    promotions: AtomicU64,
    warm_loaded: AtomicU64,
    warm_rejected: AtomicU64,
    stale_evicted: AtomicU64,
    oversized: AtomicU64,
    quarantined: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    batch_wait_ns: AtomicU64,
    inflight: AtomicUsize,
    cold_wall_ns: AtomicU64,
    cold_alloc_calls: AtomicU64,
    cold_alloc_bytes: AtomicU64,
    serve_wall_ns: AtomicU64,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// RAII admission permit: holds one in-flight slot, released on drop
/// (even if the request unwinds).
struct InflightPermit<'a> {
    gauge: &'a AtomicUsize,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// An admitted request's successful body result, before the single
/// classification point assigns it a ledger class.
struct Served<T> {
    result: DenseMatrix<T>,
    hit: bool,
    degraded: bool,
    compose: Option<PreprocessProfile>,
    batched: bool,
}

/// A thread-safe SpMM server: plans composed once per `(matrix, j)`,
/// cached under a byte budget, executed on the shared worker pool, with
/// per-request fault isolation (see the module docs).
pub struct ServeEngine<T: AtomicScalar, P> {
    planner: P,
    config: ServeConfig,
    shards: Vec<Mutex<Shard<T>>>,
    /// Logical clock for LRU recency; bumped on every touch.
    tick: AtomicU64,
    counters: Counters,
    /// Open admission windows for same-fingerprint coalescing.
    coalescer: BatchBoard<T>,
    /// The disk tier (`None` when `store_dir` is unset or the directory
    /// could not be opened — the engine then runs RAM-only).
    store: Option<PlanStore<T>>,
}

impl<T: AtomicScalar, P: Planner<T>> ServeEngine<T, P> {
    /// Build an engine over a planner. When the config names a
    /// `store_dir`, the disk tier is opened (stray temp files from a
    /// crash are swept) and the RAM cache is **warmed** from it:
    /// records load in placement-score order, each strictly
    /// re-validated — framing CRC, plan-blob CRC, structural bounds,
    /// fingerprint re-check — until the RAM byte budget is reached.
    /// A store directory that cannot be opened degrades the engine to
    /// RAM-only rather than failing construction.
    pub fn new(planner: P, config: ServeConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    bytes: 0,
                })
            })
            .collect();
        let store = config.store_dir.as_ref().and_then(|dir| {
            PlanStore::open(StoreConfig {
                dir: dir.into(),
                disk_budget_bytes: config.disk_budget_bytes,
                placement: config.placement,
            })
            .ok()
        });
        let engine = ServeEngine {
            planner,
            config,
            shards,
            tick: AtomicU64::new(0),
            counters: Counters::default(),
            coalescer: BatchBoard::new(),
            store,
        };
        engine.warm_from_disk();
        engine
    }

    /// Warm the RAM cache from the disk tier (no-op without one).
    /// Loads records highest-retention-score first and stops at the RAM
    /// byte budget, so warming never triggers its own eviction churn.
    /// Every record is strictly re-validated by [`PlanStore::get`];
    /// rejections count in `warm_rejected` and the record is deleted.
    fn warm_from_disk(&self) {
        let Some(store) = &self.store else { return };
        // Files the store already swept at open (unreadable header) are
        // rejections too — same contract: skipped, counted, not served.
        self.counters
            .warm_rejected
            .fetch_add(store.swept_corrupt() as u64, Ordering::Relaxed);
        let mut loaded_bytes = 0usize;
        for ((fp, j), _) in store.warm_order() {
            if loaded_bytes >= self.config.byte_budget {
                break;
            }
            #[cfg(feature = "chaos")]
            {
                use lf_check::chaos::{decide, ChaosSite};
                if decide(ChaosSite::WarmAbort) {
                    // Simulated kill mid-warm: the engine comes up with
                    // a partial cache. Correctness must not depend on
                    // warming finishing.
                    break;
                }
            }
            match store.get(&fp, j) {
                Ok(Some((plan, meta))) => {
                    let bytes = plan.format_bytes();
                    let slot = PlanSlot::new(plan, meta.cost_ns);
                    if self.admit_with((fp, j), slot, meta.uses.saturating_sub(1)) {
                        self.counters.warm_loaded.fetch_add(1, Ordering::Relaxed);
                        loaded_bytes += bytes;
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    self.note_record_rejection(&e);
                }
            }
        }
    }

    /// Account one disk-record rejection: a retired-epoch refusal counts
    /// as a stale eviction, everything else as generic warm rejection.
    fn note_record_rejection(&self, e: &LfError) {
        let class = if crate::store::is_stale_epoch(e) {
            &self.counters.stale_evicted
        } else {
            &self.counters.warm_rejected
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Persist every currently cached RAM plan to the disk tier and
    /// rewrite the manifest — the snapshot a restart warms from.
    /// Returns the number of plans written, or `Ok(0)` without a store.
    /// Poisoned slots are skipped (a quarantined plan must never
    /// resurrect through a snapshot).
    pub fn snapshot(&self) -> LfResult<usize> {
        let Some(store) = &self.store else {
            return Ok(0);
        };
        // Clone the Arcs out under each shard lock, write behind.
        let mut plans = Vec::new();
        for shard in &self.shards {
            let shard = lock_unpoisoned(shard);
            for (key, e) in &shard.map {
                if !e.slot.poisoned.load(Ordering::Relaxed) {
                    plans.push((*key, Arc::clone(&e.slot), e.uses));
                }
            }
        }
        let mut written = 0usize;
        for ((fp, j), slot, uses) in plans {
            store.put(&fp, j, &slot.plan, slot.cost_ns, uses)?;
            written += 1;
        }
        Ok(written)
    }

    /// The disk tier's placement-policy name, when a store is open.
    pub fn store_policy(&self) -> Option<&'static str> {
        self.store.as_ref().map(|s| s.policy_name())
    }

    /// The planner behind the engine.
    pub fn planner(&self) -> &P {
        &self.planner
    }

    /// Serve a raw CSR payload: validates it (rejecting malformed input
    /// with a typed error before the fingerprinter, the cache, or any
    /// counter other than `rejected` is touched), fingerprints it, then
    /// runs the cached or freshly composed plan against `b`.
    pub fn serve(&self, csr: &CsrMatrix<T>, b: &DenseMatrix<T>) -> LfResult<ServeOutcome<T>> {
        let checked = if self.config.reject_nonfinite {
            csr.validate_finite()
        } else {
            csr.validate()
        };
        if let Err(e) = checked {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e.into());
        }
        let fp = Fingerprint::of_csr(csr);
        self.serve_keyed(&fp, csr, b)
    }

    /// Serve a registered handle: skips validation (done at
    /// registration) and fingerprinting entirely. The request runs
    /// against one consistent `(fingerprint, payload)` snapshot, so a
    /// concurrent [`apply_updates`](Self::apply_updates) can never pair
    /// this request's result with the wrong generation — an in-flight
    /// request pinned to the old epoch completes on the old payload
    /// (the `Arc` keeps it alive) and lands in its ledger class
    /// normally.
    pub fn serve_handle(
        &self,
        h: &MatrixHandle<T>,
        b: &DenseMatrix<T>,
    ) -> LfResult<ServeOutcome<T>> {
        let (fp, csr) = h.current();
        let out = self.serve_keyed(&fp, &csr, b);
        // Publish-time epoch re-check (the mutation-side mirror of the
        // deadline re-check above the classification point): if the
        // handle moved on while this request ran, any plan the request
        // admitted under the snapshot key is already stale — and may
        // have been admitted *after* the updater's sweep passed. Sweep
        // the snapshot key again so the stale entry cannot outlive the
        // race. (The served result itself is fine: it answers the
        // snapshot the caller handed in.)
        if h.epoch() != fp.epoch {
            self.retire_epoch(&fp);
        }
        out
    }

    /// Pre-compose a handle's plan for width `j` (admission-warming).
    /// Returns `Ok(true)` if a plan was composed, `Ok(false)` on an
    /// existing cached plan or a degraded compose (degraded plans are
    /// never cached). Warming is not a request: it touches no ledger
    /// class.
    pub fn warm(&self, h: &MatrixHandle<T>, j: usize) -> LfResult<bool> {
        let (fp, csr) = h.current();
        let key = (fp, j);
        if self.lookup(&key).is_some() {
            return Ok(false);
        }
        let slot = self.compose_guarded(Self::digest(&fp, j), &csr, j, fp.epoch)?;
        if slot.plan.degraded {
            return Ok(false);
        }
        self.admit(key, slot);
        if h.epoch() != fp.epoch {
            self.retire_epoch(&fp);
            return Ok(false);
        }
        Ok(true)
    }

    /// Apply an edge-delta batch to a registered handle **and** bring
    /// both cache tiers to the new epoch (DESIGN.md §15):
    ///
    /// 1. the handle commits the batch atomically
    ///    ([`MatrixHandle::apply_updates`]) — from this instant every
    ///    lookup misses the old generation, because the epoch is part of
    ///    the cache key;
    /// 2. unless churn crossed [`lf_cost::churn_threshold`], cached CELL
    ///    plans for the retired fingerprint are **migrated**: their CELL
    ///    payload is incrementally re-bucketed
    ///    ([`lf_cell::update_cell`] — bitwise-identical to a rebuild)
    ///    and re-admitted under the new key, so the next serve hits
    ///    instead of recomposing;
    /// 3. stale plans are retired RAM-first, then disk
    ///    ([`Self::sweep_stale`]) — counted in
    ///    [`ServeStats::stale_evicted`].
    ///
    /// Failures leave nothing half-applied: a rejected batch (typed
    /// [`SparseError`]) changes neither the handle nor the caches; a
    /// failed migration just skips the plan (the sweep still retires the
    /// stale copy and the next serve recomposes); an aborted sweep
    /// leaves the retired fingerprint on the handle's list for the next
    /// sweep to retry. In-flight requests pinned to the old epoch
    /// complete on the old payload and are accounted normally.
    pub fn apply_updates(
        &self,
        h: &MatrixHandle<T>,
        updates: &[EdgeUpdate<T>],
    ) -> LfResult<UpdateOutcome> {
        let delta = h.apply_updates(updates)?;
        let migrated = if delta.rebuild {
            0
        } else {
            self.migrate_plans(&delta)
        };
        let swept = self.sweep_stale(h);
        Ok(UpdateOutcome {
            epoch: delta.fingerprint.epoch,
            fingerprint: delta.fingerprint,
            touched_rows: delta.touched_rows,
            rebuild: delta.rebuild,
            migrated,
            swept,
        })
    }

    /// Migrate every cached CELL plan keyed by the retired fingerprint
    /// to the new epoch via incremental maintenance. CSR-kernel and
    /// poisoned plans are skipped (swept and recomposed on demand); a
    /// panicking or failing migration skips that plan the same way.
    /// Returns how many plans were re-admitted under the new key.
    fn migrate_plans(&self, delta: &AppliedDelta<T>) -> usize {
        // Every `j` of a fingerprint maps to the same shard, so one
        // lock snapshot collects all candidates.
        let candidates: Vec<(usize, Arc<PlanSlot<T>>)> = {
            let old = &delta.old_fingerprint;
            // lf-lint: allow(panic-path): shard() reduces modulo shards.len(), always in bounds
            let shard = lock_unpoisoned(&self.shards[old.shard(self.shards.len())]);
            shard
                .map
                .iter()
                .filter(|((fp, _), e)| fp == old && !e.slot.poisoned.load(Ordering::Relaxed))
                .map(|((_, j), e)| (*j, Arc::clone(&e.slot)))
                .collect()
        };
        let mut migrated = 0usize;
        for (j, slot) in candidates {
            let (Some(config), Some(cell)) = (slot.plan.cell_config(), slot.plan.cell()) else {
                continue;
            };
            let rebucketed = catch_unwind(AssertUnwindSafe(|| {
                let mut cell = cell.clone();
                lf_cell::update_cell(&mut cell, &delta.csr, &delta.touched).map(|()| cell)
            }));
            let Ok(Ok(cell)) = rebucketed else { continue };
            let plan = PreparedPlan::from_cell(config.clone(), cell, slot.plan.profile)
                .with_tuned_j(slot.plan.tuned_j)
                .with_epoch(delta.fingerprint.epoch);
            let migrated_slot = PlanSlot::new(plan, slot.cost_ns);
            if self.admit_with((delta.fingerprint, j), migrated_slot, 0) {
                migrated += 1;
            }
        }
        migrated
    }

    /// Retire every stale-epoch plan for the handle's retired
    /// fingerprints — RAM first (so a promotion can't resurrect what RAM
    /// just dropped), then disk. Returns `true` when every retired
    /// fingerprint was confirmed clean in both tiers (and forgotten);
    /// `false` means a sweep was aborted and the fingerprint stays on
    /// the handle's retired list for the next sweep — stale entries are
    /// unreachable meanwhile (the epoch is part of every key), just not
    /// yet reclaimed.
    pub fn sweep_stale(&self, h: &MatrixHandle<T>) -> bool {
        let mut done = Vec::new();
        #[cfg_attr(not(feature = "chaos"), allow(unused_mut))]
        let mut clean = true;
        for fp in h.retired() {
            #[cfg(feature = "chaos")]
            {
                use lf_check::chaos::{decide, ChaosSite};
                if decide(ChaosSite::EpochSweepAbort) {
                    // Simulated kill before this epoch's sweep: both
                    // tiers keep their stale entries until a later
                    // sweep retries.
                    clean = false;
                    continue;
                }
            }
            let ram = self.retire_epoch_ram(&fp);
            self.counters
                .stale_evicted
                .fetch_add(ram as u64, Ordering::Relaxed);
            #[cfg(feature = "chaos")]
            {
                use lf_check::chaos::{decide, ChaosSite};
                if decide(ChaosSite::StaleDiskRecord) {
                    // Simulated kill between the RAM and disk halves:
                    // the stale record stays on disk. Read-side epoch
                    // validation refuses it if anything ever asks.
                    clean = false;
                    continue;
                }
            }
            if let Some(store) = &self.store {
                let disk = store.remove_matrix(&fp);
                self.counters
                    .stale_evicted
                    .fetch_add(disk as u64, Ordering::Relaxed);
            }
            done.push(fp);
        }
        h.clear_retired(&done);
        clean
    }

    /// Drop every RAM entry keyed by `fp` (all widths). Stale entries
    /// are discarded, not demoted — a retired epoch must not re-enter
    /// through the disk tier. Returns the number of entries dropped.
    fn retire_epoch_ram(&self, fp: &Fingerprint) -> usize {
        // lf-lint: allow(panic-path): shard() reduces modulo shards.len(), always in bounds
        let mut shard = lock_unpoisoned(&self.shards[fp.shard(self.shards.len())]);
        let keys: Vec<(Fingerprint, usize)> =
            shard.map.keys().filter(|(f, _)| f == fp).copied().collect();
        for key in &keys {
            // lf-lint: allow(panic-path): key was just read from this map under this lock
            let evicted = shard.map.remove(key).expect("key just observed");
            shard.bytes -= evicted.bytes;
        }
        keys.len()
    }

    /// Retire one fingerprint from both tiers immediately (the
    /// publish-time epoch re-check's sweep; no chaos gating — the chaos
    /// sites model crashes of the *update* path).
    fn retire_epoch(&self, fp: &Fingerprint) {
        let ram = self.retire_epoch_ram(fp);
        let disk = self
            .store
            .as_ref()
            .map_or(0, |store| store.remove_matrix(fp));
        self.counters
            .stale_evicted
            .fetch_add((ram + disk) as u64, Ordering::Relaxed);
    }

    /// Stable per-`(matrix, j)` key for planner failure memory.
    fn digest(fp: &Fingerprint, j: usize) -> u64 {
        fp.digest() ^ (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Claim an in-flight slot or reject with [`LfError::Overloaded`].
    fn try_admit(&self) -> LfResult<InflightPermit<'_>> {
        let max = self.config.max_inflight;
        let inflight = self.counters.inflight.fetch_add(1, Ordering::Relaxed);
        if max != 0 && inflight >= max {
            self.counters.inflight.fetch_sub(1, Ordering::Relaxed);
            return Err(LfError::Overloaded {
                inflight,
                max_inflight: max,
            });
        }
        Ok(InflightPermit {
            gauge: &self.counters.inflight,
        })
    }

    fn serve_keyed(
        &self,
        fp: &Fingerprint,
        csr: &CsrMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> LfResult<ServeOutcome<T>> {
        let t0 = Instant::now();
        if csr.cols() != b.rows() {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(LfError::InvalidInput(SparseError::DimensionMismatch {
                op: "serve",
                lhs: csr.shape(),
                rhs: b.shape(),
            }));
        }
        let _permit = match self.try_admit() {
            Ok(p) => p,
            Err(e) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let token = self
            .config
            .deadline_ms
            .map(|ms| CancelToken::with_deadline(t0 + Duration::from_millis(ms)));
        let served = self.serve_routed(fp, csr, b, token.as_ref());
        let serve_wall_s = t0.elapsed().as_secs_f64();
        self.counters
            .serve_wall_ns
            .fetch_add((serve_wall_s * 1e9) as u64, Ordering::Relaxed);
        // The single classification point: exactly one ledger class per
        // admitted request, keeping the stats identity exact.
        match served {
            Ok(s) => {
                if token.as_ref().is_some_and(|t| t.is_cancelled()) {
                    // Publish-time re-check: the body may have finished a
                    // shielded final chunk (reference rescue, fused
                    // region another member still wanted) after this
                    // request's deadline fired. A fired deadline is
                    // always `DeadlineExceeded` — never late output.
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    return Err(LfError::DeadlineExceeded { stage: "publish" });
                }
                let class = if s.degraded {
                    &self.counters.degraded
                } else if s.hit {
                    &self.counters.hits
                } else {
                    &self.counters.misses
                };
                class.fetch_add(1, Ordering::Relaxed);
                Ok(ServeOutcome {
                    result: s.result,
                    hit: s.hit,
                    degraded: s.degraded,
                    fingerprint: *fp,
                    compose: s.compose,
                    serve_wall_s,
                    batched: s.batched,
                })
            }
            Err(e) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Route an admitted request: through the coalescer when batching is
    /// on and the request can afford the window, solo otherwise. The
    /// request's token is installed only around the solo body — batch
    /// members enforce their deadlines at resolution (and `serve_keyed`
    /// re-checks at publish), while the fused region runs under the
    /// *conjunction* of its members' tokens.
    fn serve_routed(
        &self,
        fp: &Fingerprint,
        csr: &CsrMatrix<T>,
        b: &DenseMatrix<T>,
        token: Option<&CancelToken>,
    ) -> LfResult<Served<T>> {
        if self.batch_eligible(token) {
            if let Some(res) = self.serve_batched(fp, csr, b, token) {
                return res;
            }
        }
        match token {
            Some(t) => cancel::with_token(t, || self.serve_admitted(fp, csr, b)),
            None => self.serve_admitted(fp, csr, b),
        }
    }

    /// The admitted request body: hit/miss resolution, compose, execute.
    /// Runs with the request's cancel token installed (when configured).
    fn serve_admitted(
        &self,
        fp: &Fingerprint,
        csr: &CsrMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> LfResult<Served<T>> {
        let j = b.cols();
        let key = (*fp, j);
        let digest = Self::digest(fp, j);
        match self.lookup(&key) {
            Some(slot) => {
                let (result, fell_back) = self.execute_guarded(&key, &slot, csr, b, digest)?;
                Ok(Served {
                    result,
                    hit: true,
                    degraded: fell_back || slot.plan.degraded,
                    compose: None,
                    batched: false,
                })
            }
            None => {
                // RAM miss: a validated disk-tier record beats a fresh
                // compose. Promotions are `hits` in the ledger (the
                // plan was cached, just colder), split out by
                // `disk_hits`.
                if let Some(slot) = self.try_promote(&key) {
                    let (result, fell_back) = self.execute_guarded(&key, &slot, csr, b, digest)?;
                    return Ok(Served {
                        result,
                        hit: true,
                        degraded: fell_back,
                        compose: None,
                        batched: false,
                    });
                }
                let slot = self.compose_guarded(digest, csr, j, fp.epoch)?;
                let profile = slot.plan.profile;
                // Degraded fallback plans are served but never cached:
                // the cache must only amortize *intended* compositions.
                if !slot.plan.degraded {
                    self.admit(key, Arc::clone(&slot));
                }
                let (result, fell_back) = self.execute_guarded(&key, &slot, csr, b, digest)?;
                Ok(Served {
                    result,
                    hit: false,
                    degraded: fell_back || slot.plan.degraded,
                    compose: Some(profile),
                    batched: false,
                })
            }
        }
    }

    /// Try to answer a RAM miss from the disk tier. A validated record
    /// is decoded, counted (`disk_hits`), and re-admitted into RAM
    /// (`promotions` — unless oversized for its shard slice). A record
    /// that fails strict validation bumps `warm_rejected` (it was
    /// deleted by the store) and the caller composes fresh.
    fn try_promote(&self, key: &(Fingerprint, usize)) -> Option<Arc<PlanSlot<T>>> {
        let store = self.store.as_ref()?;
        match store.get(&key.0, key.1) {
            Ok(Some((plan, meta))) => {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                let slot = PlanSlot::new(plan, meta.cost_ns);
                if self.admit_with(*key, Arc::clone(&slot), meta.uses) {
                    self.counters.promotions.fetch_add(1, Ordering::Relaxed);
                }
                Some(slot)
            }
            Ok(None) => None,
            Err(e) => {
                self.note_record_rejection(&e);
                None
            }
        }
    }

    /// Whether an admitted request may enter the coalescing window.
    /// A late joiner whose remaining deadline budget cannot cover the
    /// window *plus* a fused run of comparable scale executes solo
    /// instead of joining (and then failing out of) a batch.
    fn batch_eligible(&self, token: Option<&CancelToken>) -> bool {
        let window = self.config.batch_window_us;
        if window == 0 {
            return false;
        }
        match token {
            None => true,
            Some(t) => {
                if t.is_cancelled() {
                    return false;
                }
                match t.deadline() {
                    None => true,
                    Some(d) => {
                        let budget = Duration::from_micros(window.saturating_mul(2));
                        Instant::now()
                            .checked_add(budget)
                            .is_some_and(|need| need < d)
                    }
                }
            }
        }
    }

    /// Try to resolve the request through the coalescer. `None` means
    /// the batch dissolved without serving it (no room under the width
    /// cap, nobody joined the window, a typed kernel error) and the
    /// caller must run solo.
    fn serve_batched(
        &self,
        fp: &Fingerprint,
        csr: &CsrMatrix<T>,
        b: &DenseMatrix<T>,
        token: Option<&CancelToken>,
    ) -> Option<LfResult<Served<T>>> {
        /// Liveness backstop for a member waiting on its leader — never
        /// reached in normal operation (a `ResolveGuard` releases
        /// members even when the leader unwinds).
        const JOIN_BACKSTOP: Duration = Duration::from_secs(60);
        let t_enter = Instant::now();
        let max_j = self.config.max_batch_j.max(1);
        if b.cols() >= max_j {
            // Wide enough to fill a whole batch alone: nothing to fuse.
            return None;
        }
        let admission = self.coalescer.admit(fp, b, token, max_j);
        let res = match admission {
            Admission::Full => return None,
            Admission::Joined(slot) => slot.wait(JOIN_BACKSTOP),
            Admission::Leader { group, slot } => {
                let window = Duration::from_micros(self.config.batch_window_us);
                group.await_window(window, max_j);
                let members = self.coalescer.close(fp, &group);
                if members.len() < 2 {
                    // Nobody joined: dissolve to the solo path. The
                    // window wait stays on this request's wall clock.
                    self.note_batch_wait(t_enter);
                    return None;
                }
                self.run_batch(fp, csr, &members);
                // Already resolved by run_batch (or its guard): returns
                // without blocking.
                slot.wait(JOIN_BACKSTOP)
            }
        };
        self.note_batch_wait(t_enter);
        match res {
            Resolution::Solo => None,
            Resolution::Failed(e) => Some(Err(e)),
            Resolution::Served {
                result,
                hit,
                degraded,
                compose,
            } => Some(Ok(Served {
                result,
                hit,
                degraded,
                compose,
                batched: true,
            })),
        }
    }

    fn note_batch_wait(&self, since: Instant) {
        self.counters
            .batch_wait_ns
            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Execute one fused SpMM for a closed group (≥ 2 members) and
    /// resolve every member's slot — each under its *own* deadline
    /// verdict and, after a fused panic, its own reference rescue.
    ///
    /// The plan is resolved at the **fused** width `Σ jᵢ`: the cache key
    /// and the planner both see the total, so a plan keyed (and tuned)
    /// for a member's narrow `j` is never reused for the wide execute.
    fn run_batch(&self, fp: &Fingerprint, csr: &CsrMatrix<T>, members: &[Member<T>]) {
        // Whatever happens below — including a panic unwinding through
        // this frame — no member may be left waiting.
        let _guard = ResolveGuard::new(members);
        let total_j: usize = members.iter().map(|m| m.b.cols()).sum();
        let key = (*fp, total_j);
        let digest = Self::digest(fp, total_j);
        let (slot, hit, compose) = match self.lookup(&key).or_else(|| self.try_promote(&key)) {
            Some(slot) => (slot, true, None),
            None => match self.compose_guarded(digest, csr, total_j, fp.epoch) {
                Ok(slot) => {
                    let profile = slot.plan.profile;
                    if !slot.plan.degraded {
                        self.admit(key, Arc::clone(&slot));
                    }
                    (slot, false, Some(profile))
                }
                Err(e) => {
                    // The fused compose failed: the leader takes the
                    // typed error (exactly as its solo compose would
                    // have); joiners retry solo via the guard.
                    // lf-lint: allow(panic-path): a closed group always has a leader at members[0]
                    members[0].slot.resolve(Resolution::Failed(e));
                    return;
                }
            },
        };
        let bs: Vec<&DenseMatrix<T>> = members.iter().map(|m| &m.b).collect();
        // The fused region runs under the *conjunction* of the members'
        // tokens: no single member's deadline may kill work the others
        // still want, but once every deadline has fired nobody wants the
        // result and the region stops. When any member is deadline-free
        // the region is shielded — it must run to completion for them.
        let tokens: Vec<CancelToken> = members.iter().filter_map(|m| m.token.clone()).collect();
        let group_token = (tokens.len() == members.len() && !tokens.is_empty())
            .then(|| CancelToken::all_of(tokens));
        let run = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "chaos")]
            {
                use lf_check::chaos::{decide, ChaosSite};
                if decide(ChaosSite::ExecutePanic) {
                    panic!("chaos: injected execute panic");
                }
            }
            match &group_token {
                Some(t) => cancel::with_token(t, || slot.plan.run_batched(&bs)),
                None => cancel::shielded(|| slot.plan.run_batched(&bs)),
            }
        }));
        let member_expired = |m: &Member<T>| m.token.as_ref().is_some_and(|t| t.is_cancelled());
        match run {
            Ok(Ok(results)) => {
                self.counters.batches.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .batched_requests
                    .fetch_add(members.len() as u64, Ordering::Relaxed);
                if group_token.as_ref().is_some_and(|t| t.is_cancelled()) {
                    // Every member's deadline fired mid-run: the region
                    // returned early and the wide result is garbage.
                    for m in members {
                        m.slot
                            .resolve(Resolution::Failed(LfError::DeadlineExceeded {
                                stage: "execute",
                            }));
                    }
                    return;
                }
                for (i, (m, result)) in members.iter().zip(results).enumerate() {
                    let res = if member_expired(m) {
                        // This member's own deadline fired while the
                        // fused run (still wanted by others) completed:
                        // its slice is discarded, never served late.
                        Resolution::Failed(LfError::DeadlineExceeded { stage: "execute" })
                    } else {
                        Resolution::Served {
                            result,
                            hit,
                            degraded: slot.plan.degraded,
                            compose: if i == 0 { compose } else { None },
                        }
                    };
                    m.slot.resolve(res);
                }
            }
            Ok(Err(_)) => {
                // A typed kernel error — impossible for members that
                // passed ingress validation (widths and rows are
                // checked), but if it ever happens the batch dissolves
                // and every member retries solo (via the guard).
            }
            Err(payload) => {
                let detail = panic_detail(payload.as_ref());
                self.quarantine(&key, &slot);
                self.planner.record_failure(digest);
                self.counters.batches.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .batched_requests
                    .fetch_add(members.len() as u64, Ordering::Relaxed);
                for (i, m) in members.iter().enumerate() {
                    let res = if member_expired(m) {
                        Resolution::Failed(LfError::DeadlineExceeded { stage: "execute" })
                    } else {
                        // Per-member rescue: the last rung of the
                        // ladder, shielded, then re-checked against the
                        // member's OWN token so a rescue that outlived
                        // its deadline reports `DeadlineExceeded`, never
                        // late output.
                        let rescue = catch_unwind(AssertUnwindSafe(|| {
                            cancel::shielded(|| csr.spmm_reference(&m.b))
                        }));
                        match rescue {
                            Ok(Ok(result)) => {
                                if member_expired(m) {
                                    Resolution::Failed(LfError::DeadlineExceeded {
                                        stage: "execute",
                                    })
                                } else {
                                    Resolution::Served {
                                        result,
                                        hit,
                                        degraded: true,
                                        compose: if i == 0 { compose } else { None },
                                    }
                                }
                            }
                            _ => Resolution::Failed(LfError::ExecutePanicked {
                                detail: detail.clone(),
                            }),
                        }
                    };
                    m.slot.resolve(res);
                }
            }
        }
    }

    /// Compose on the calling thread (no locks held) under
    /// `catch_unwind`, recording the cold cost. Allocation counters are
    /// process-wide, so concurrent misses attribute each other's traffic
    /// to both — the totals stay an upper bound per request and exact in
    /// aggregate intent (see `lf-sim`'s allocator docs).
    fn compose_guarded(
        &self,
        digest: u64,
        csr: &CsrMatrix<T>,
        j: usize,
        epoch: u64,
    ) -> LfResult<Arc<PlanSlot<T>>> {
        if cancel::cancelled() {
            return Err(LfError::DeadlineExceeded { stage: "compose" });
        }
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            StageStats::measure(|| self.planner.prepare_keyed(digest, csr, j))
        }));
        match attempt {
            Ok((outcome, stats)) => {
                self.counters
                    .cold_wall_ns
                    .fetch_add((stats.wall_s * 1e9) as u64, Ordering::Relaxed);
                self.counters
                    .cold_alloc_calls
                    .fetch_add(stats.alloc_calls, Ordering::Relaxed);
                self.counters
                    .cold_alloc_bytes
                    .fetch_add(stats.alloc_bytes, Ordering::Relaxed);
                // Stamp the operand's epoch: the disk tier refuses any
                // record whose key and blob epochs disagree, so a plan
                // composed for a mutated handle must carry its
                // generation from birth.
                let plan = outcome?.with_epoch(epoch);
                if cancel::cancelled() {
                    // The deadline fired during composition: the plan is
                    // intact but the request is over budget. Fail fast;
                    // the plan is dropped, not cached.
                    return Err(LfError::DeadlineExceeded { stage: "compose" });
                }
                Ok(PlanSlot::new(plan, (stats.wall_s * 1e9) as u64))
            }
            Err(payload) => {
                // A panic the planner did not contain itself (a
                // ResilientPlanner would have): feed the breaker and
                // fail the request with the typed panic error.
                self.planner.record_failure(digest);
                Err(LfError::ComposePanicked {
                    detail: panic_detail(payload.as_ref()),
                })
            }
        }
    }

    /// Execute the plan under `catch_unwind`. On a panic: quarantine the
    /// slot (exactly once, for every holder), report the failure to the
    /// planner, and rescue the request with the baseline reference
    /// result — the last rung of the degradation ladder. Partial results
    /// of a deadline-cancelled execution are discarded, never returned.
    fn execute_guarded(
        &self,
        key: &(Fingerprint, usize),
        slot: &Arc<PlanSlot<T>>,
        csr: &CsrMatrix<T>,
        b: &DenseMatrix<T>,
        digest: u64,
    ) -> LfResult<(DenseMatrix<T>, bool)> {
        let run = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "chaos")]
            {
                use lf_check::chaos::{decide, ChaosSite};
                if decide(ChaosSite::ExecutePanic) {
                    panic!("chaos: injected execute panic");
                }
            }
            slot.plan.run(b)
        }));
        match run {
            Ok(Ok(result)) => {
                if cancel::cancelled() {
                    // The token fired mid-execution: parallel regions
                    // returned early, so `result` may be partial garbage.
                    return Err(LfError::DeadlineExceeded { stage: "execute" });
                }
                Ok((result, false))
            }
            Ok(Err(e)) => Err(e.into()),
            Err(payload) => {
                let detail = panic_detail(payload.as_ref());
                self.quarantine(key, slot);
                self.planner.record_failure(digest);
                if cancel::cancelled() {
                    return Err(LfError::DeadlineExceeded { stage: "execute" });
                }
                // Rescue with the reference kernel, shielded so the
                // rescue itself cannot be cancelled into partial output:
                // it runs to completion, then the token is re-checked
                // below so a rescue that outlived its deadline reports
                // `DeadlineExceeded` — never a late publish.
                let rescue = catch_unwind(AssertUnwindSafe(|| {
                    cancel::shielded(|| csr.spmm_reference(b))
                }));
                match rescue {
                    Ok(Ok(result)) => {
                        if cancel::cancelled() {
                            return Err(LfError::DeadlineExceeded { stage: "execute" });
                        }
                        Ok((result, true))
                    }
                    _ => Err(LfError::ExecutePanicked { detail }),
                }
            }
        }
    }

    /// Poison `slot` and evict its cache entry — exactly once across all
    /// concurrent holders (the poison swap elects one winner; the
    /// `ptr_eq` check keeps a racing re-insert of the same key alive).
    fn quarantine(&self, key: &(Fingerprint, usize), slot: &Arc<PlanSlot<T>>) {
        if slot.poisoned.swap(true, Ordering::Relaxed) {
            return; // someone else already quarantined this plan
        }
        self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        // lf-lint: allow(panic-path): shard() reduces modulo shards.len(), always in bounds
        let mut shard = lock_unpoisoned(&self.shards[key.0.shard(self.shards.len())]);
        let ours = shard
            .map
            .get(key)
            .is_some_and(|e| Arc::ptr_eq(&e.slot, slot));
        if ours {
            // lf-lint: allow(panic-path): presence was observed two lines up under this shard lock
            let evicted = shard.map.remove(key).expect("entry just observed");
            shard.bytes -= evicted.bytes;
        }
        drop(shard);
        // Purge the disk tier too: a poisoned plan must not resurrect
        // through a later promotion or a restart warm.
        if let Some(store) = &self.store {
            store.remove(&key.0, key.1);
        }
    }

    fn lookup(&self, key: &(Fingerprint, usize)) -> Option<Arc<PlanSlot<T>>> {
        // lf-lint: allow(panic-path): shard() reduces modulo shards.len(), always in bounds
        let mut shard = lock_unpoisoned(&self.shards[key.0.shard(self.shards.len())]);
        let entry = shard.map.get_mut(key)?;
        if entry.slot.poisoned.load(Ordering::Relaxed) {
            // Belt-and-braces sweep: the poisoner evicts under the shard
            // lock, so this window is a replaced-entry race at most —
            // never serve a poisoned plan.
            // lf-lint: allow(panic-path): get_mut above proved presence under this shard lock
            let evicted = shard.map.remove(key).expect("entry just observed");
            shard.bytes -= evicted.bytes;
            return None;
        }
        entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        entry.uses += 1;
        Some(Arc::clone(&entry.slot))
    }

    /// Admit a freshly composed plan under the shard's byte budget,
    /// evicting whole least-recently-used plans to make room. A plan
    /// bigger than the whole slice is oversized (served, not cached); a
    /// concurrent insert of the same key wins and this plan just drops.
    fn admit(&self, key: (Fingerprint, usize), slot: Arc<PlanSlot<T>>) {
        self.admit_with(key, slot, 0);
    }

    /// [`admit`](Self::admit) with explicit frequency seeding (warm
    /// loads and promotions carry their disk-tier use counts back into
    /// RAM). Returns whether the plan was inserted.
    ///
    /// Eviction is **write-behind demoting**: victims leave the shard
    /// under the lock, then — with no lock held — each is offered to the
    /// disk tier. A successful write counts as a demotion; a failed
    /// write (or no store) counts the plan's bytes as dropped
    /// (`evicted_bytes`). Either way the RAM budget was already
    /// honored.
    fn admit_with(&self, key: (Fingerprint, usize), slot: Arc<PlanSlot<T>>, uses: u64) -> bool {
        debug_assert!(!slot.plan.degraded, "degraded plans are never cached");
        let bytes = slot.plan.format_bytes();
        let per_shard = (self.config.byte_budget / self.shards.len()).max(1);
        if bytes > per_shard {
            self.counters.oversized.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut victims = Vec::new();
        let inserted = {
            // lf-lint: allow(panic-path): shard() reduces modulo shards.len(), always in bounds
            let mut shard = lock_unpoisoned(&self.shards[key.0.shard(self.shards.len())]);
            if shard.map.contains_key(&key) {
                false
            } else {
                while shard.bytes + bytes > per_shard {
                    let victim = shard
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| *k)
                        // lf-lint: allow(panic-path): loop guard bytes > 0 implies a non-empty map
                        .expect("bytes > 0 implies a cached entry");
                    // lf-lint: allow(panic-path): victim key was just read from this map
                    let evicted = shard.map.remove(&victim).expect("victim exists");
                    shard.bytes -= evicted.bytes;
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                    victims.push((victim, evicted));
                }
                shard.bytes += bytes;
                shard.map.insert(
                    key,
                    Entry {
                        slot,
                        bytes,
                        last_used: self.tick.fetch_add(1, Ordering::Relaxed),
                        uses,
                    },
                );
                true
            }
        };
        for ((vfp, vj), entry) in victims {
            self.demote(&vfp, vj, &entry);
        }
        inserted
    }

    /// Offer an evicted RAM entry to the disk tier (write-behind; no
    /// shard lock is held). Poisoned plans are never demoted.
    fn demote(&self, fp: &Fingerprint, j: usize, entry: &Entry<T>) {
        let demoted = match &self.store {
            Some(store) if !entry.slot.poisoned.load(Ordering::Relaxed) => store
                .put(fp, j, &entry.slot.plan, entry.slot.cost_ns, entry.uses)
                .is_ok(),
            _ => false,
        };
        if demoted {
            self.counters.demotions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters
                .evicted_bytes
                .fetch_add(entry.bytes as u64, Ordering::Relaxed);
        }
    }

    /// Drop every cached plan (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = lock_unpoisoned(shard);
            shard.map.clear();
            shard.bytes = 0;
        }
    }

    /// Counter snapshot plus current cache occupancy.
    pub fn stats(&self) -> ServeStats {
        let (mut plans, mut bytes) = (0usize, 0usize);
        for shard in &self.shards {
            let shard = lock_unpoisoned(shard);
            plans += shard.map.len();
            bytes += shard.bytes;
        }
        let c = &self.counters;
        ServeStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            evicted_bytes: c.evicted_bytes.load(Ordering::Relaxed),
            demotions: c.demotions.load(Ordering::Relaxed),
            disk_hits: c.disk_hits.load(Ordering::Relaxed),
            promotions: c.promotions.load(Ordering::Relaxed),
            warm_loaded: c.warm_loaded.load(Ordering::Relaxed),
            warm_rejected: c.warm_rejected.load(Ordering::Relaxed),
            stale_evicted: c.stale_evicted.load(Ordering::Relaxed),
            oversized: c.oversized.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            cold_compose: StageStats {
                wall_s: c.cold_wall_ns.load(Ordering::Relaxed) as f64 / 1e9,
                alloc_calls: c.cold_alloc_calls.load(Ordering::Relaxed),
                alloc_bytes: c.cold_alloc_bytes.load(Ordering::Relaxed),
            },
            serve: StageStats {
                wall_s: c.serve_wall_ns.load(Ordering::Relaxed) as f64 / 1e9,
                alloc_calls: 0,
                alloc_bytes: 0,
            },
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            batch_wait_s: c.batch_wait_ns.load(Ordering::Relaxed) as f64 / 1e9,
            cached_plans: plans,
            cached_bytes: bytes,
            store_bytes: self.store.as_ref().map_or(0, |s| s.bytes() as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::FixedCellPlanner;
    use lf_sparse::gen::mixed_regions;
    use lf_sparse::Pcg32;

    fn matrix(seed: u64) -> CsrMatrix<f64> {
        let mut rng = Pcg32::seed_from_u64(seed);
        CsrMatrix::from_coo(&mixed_regions(128, 128, 2500, 4, &mut rng))
    }

    fn engine() -> ServeEngine<f64, FixedCellPlanner> {
        ServeEngine::new(FixedCellPlanner::tuned(4), ServeConfig::default())
    }

    fn assert_ledger_balances(s: &ServeStats) {
        assert_eq!(
            s.requests(),
            s.hits + s.misses + s.rejected + s.degraded + s.failed
        );
    }

    #[test]
    fn miss_then_hit_with_correct_results() {
        let e = engine();
        let a = matrix(1);
        let mut rng = Pcg32::seed_from_u64(99);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let want = a.spmm_reference(&b).unwrap();

        let cold = e.serve(&a, &b).unwrap();
        assert!(!cold.hit);
        assert!(!cold.degraded);
        assert!(cold.compose.is_some());
        assert!(cold.result.approx_eq(&want, 1e-9));

        let warm = e.serve(&a, &b).unwrap();
        assert!(warm.hit);
        assert!(warm.compose.is_none());
        assert!(warm.result.approx_eq(&want, 1e-9));

        let s = e.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!((s.rejected, s.degraded, s.failed), (0, 0, 0));
        assert_ledger_balances(&s);
        assert_eq!(s.cached_plans, 1);
        assert!(s.cached_bytes > 0);
        assert!(s.cold_compose.wall_s >= 0.0);
        assert!(s.cold_compose.alloc_bytes > 0);
    }

    #[test]
    fn distinct_j_widths_are_distinct_plans() {
        let e = engine();
        let a = matrix(2);
        let mut rng = Pcg32::seed_from_u64(98);
        let b8 = DenseMatrix::random(128, 8, &mut rng);
        let b16 = DenseMatrix::random(128, 16, &mut rng);
        assert!(!e.serve(&a, &b8).unwrap().hit);
        assert!(!e.serve(&a, &b16).unwrap().hit, "j is part of the key");
        assert!(e.serve(&a, &b8).unwrap().hit);
        assert_eq!(e.stats().cached_plans, 2);
    }

    #[test]
    fn handle_skips_fingerprinting_and_hits() {
        let e = engine();
        let h = MatrixHandle::new(matrix(3)).unwrap();
        let mut rng = Pcg32::seed_from_u64(97);
        let b = DenseMatrix::random(128, 8, &mut rng);
        assert!(e.warm(&h, 8).unwrap(), "first warm composes");
        assert!(!e.warm(&h, 8).unwrap(), "second warm is a no-op");
        let out = e.serve_handle(&h, &b).unwrap();
        assert!(out.hit, "warmed handle must hit");
        // Payload and handle share the cache entry.
        assert!(e.serve(&h.csr(), &b).unwrap().hit);
    }

    #[test]
    fn byte_budget_evicts_lru_whole_plans() {
        // One shard, budget sized for ~1 plan: every new matrix evicts
        // the previous one.
        let probe = engine();
        let mut rng = Pcg32::seed_from_u64(96);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let one = probe.serve(&matrix(10), &b).unwrap();
        drop(one);
        let plan_bytes = probe.stats().cached_bytes;
        assert!(plan_bytes > 0);

        let e = ServeEngine::new(
            FixedCellPlanner::tuned(4),
            ServeConfig {
                shards: 1,
                byte_budget: plan_bytes + plan_bytes / 2,
                ..ServeConfig::default()
            },
        );
        for seed in [20u64, 21, 22] {
            assert!(!e.serve(&matrix(seed), &b).unwrap().hit);
        }
        let s = e.stats();
        assert_eq!(s.misses, 3);
        assert!(s.evictions >= 2, "evictions: {}", s.evictions);
        assert_eq!(s.cached_plans, 1, "whole plans are evicted");
        assert!(s.cached_bytes <= s.cached_bytes.max(plan_bytes * 3 / 2));
    }

    #[test]
    fn oversized_plans_are_served_but_never_cached() {
        let e = ServeEngine::new(
            FixedCellPlanner::tuned(4),
            ServeConfig {
                shards: 1,
                byte_budget: 16,
                ..ServeConfig::default()
            },
        );
        let mut rng = Pcg32::seed_from_u64(95);
        let a = matrix(30);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let want = a.spmm_reference(&b).unwrap();
        let out = e.serve(&a, &b).unwrap();
        assert!(out.result.approx_eq(&want, 1e-9));
        let s = e.stats();
        assert_eq!(s.oversized, 1);
        assert_eq!(s.cached_plans, 0);
        // The same request misses again: nothing was cached. An
        // oversized plan is still a clean miss in the ledger.
        assert!(!e.serve(&a, &b).unwrap().hit);
        assert_eq!(e.stats().misses, 2);
        assert_ledger_balances(&e.stats());
    }

    #[test]
    fn dimension_mismatch_is_a_counted_rejection_not_a_cache_entry() {
        let e = engine();
        let a = matrix(40);
        let b = DenseMatrix::<f64>::zeros(64, 8); // wrong inner dim
        let err = e.serve(&a, &b).unwrap_err();
        assert!(matches!(err, LfError::InvalidInput(_)));
        assert!(err.is_rejection());
        let s = e.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.requests(), 1, "rejections are requests too");
        assert_eq!((s.hits, s.misses), (0, 0));
        assert_eq!(s.cached_plans, 0);
        assert_ledger_balances(&s);
    }

    #[test]
    fn zero_deadline_fails_typed_before_composing() {
        let e = ServeEngine::new(
            FixedCellPlanner::tuned(4),
            ServeConfig {
                deadline_ms: Some(0),
                ..ServeConfig::default()
            },
        );
        let a = matrix(41);
        let mut rng = Pcg32::seed_from_u64(90);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let err = e.serve(&a, &b).unwrap_err();
        assert!(matches!(err, LfError::DeadlineExceeded { .. }), "{err}");
        let s = e.stats();
        assert_eq!(s.failed, 1);
        assert_eq!(s.cached_plans, 0, "no partial work is cached");
        assert_ledger_balances(&s);
    }

    #[test]
    fn admission_gate_rejects_beyond_max_inflight() {
        let e = ServeEngine::new(
            FixedCellPlanner::tuned(4),
            ServeConfig {
                max_inflight: 1,
                ..ServeConfig::default()
            },
        );
        // Hold the only slot, then serve: the gate must reject.
        let permit = e.try_admit().unwrap();
        let a = matrix(42);
        let mut rng = Pcg32::seed_from_u64(89);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let err = e.serve(&a, &b).unwrap_err();
        assert!(matches!(err, LfError::Overloaded { .. }), "{err}");
        assert!(err.is_rejection());
        assert_eq!(e.stats().rejected, 1);
        // Releasing the permit reopens the gate.
        drop(permit);
        assert!(!e.serve(&a, &b).unwrap().hit);
        assert_ledger_balances(&e.stats());
    }

    #[test]
    fn quarantine_evicts_exactly_once_and_poisoned_plans_never_reserve() {
        let e = engine();
        let a = matrix(43);
        let mut rng = Pcg32::seed_from_u64(88);
        let b = DenseMatrix::random(128, 8, &mut rng);
        e.serve(&a, &b).unwrap();
        let key = (Fingerprint::of_csr(&a), 8);
        let slot = e.lookup(&key).expect("plan was cached");

        // Two concurrent panickers race the quarantine: exactly one wins.
        e.quarantine(&key, &slot);
        e.quarantine(&key, &slot);
        let s = e.stats();
        assert_eq!(s.quarantined, 1, "quarantine is exactly-once");
        assert_eq!(s.cached_plans, 0, "the poisoned plan was evicted");

        // A holder that still has the Arc can never re-serve it.
        assert!(slot.poisoned.load(Ordering::Relaxed));
        assert!(e.lookup(&key).is_none());

        // The key itself is not tainted: the next request recomposes.
        assert!(!e.serve(&a, &b).unwrap().hit);
        assert_eq!(e.stats().cached_plans, 1);
        assert_ledger_balances(&e.stats());
    }

    #[test]
    fn nonfinite_payloads_follow_the_policy() {
        let values = vec![1.0, f64::NAN, 2.0];
        let a = CsrMatrix::from_raw_unchecked(2, 2, vec![0, 2, 3], vec![0, 1, 0], values);
        let b = DenseMatrix::<f64>::zeros(2, 4);

        let strict = engine();
        let err = strict.serve(&a, &b).unwrap_err();
        assert!(matches!(err, LfError::InvalidInput(_)), "{err}");
        let s = strict.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!((s.hits, s.misses), (0, 0), "no cache or miss counters");
        assert_eq!(s.cached_plans, 0);

        let lenient = ServeEngine::new(
            FixedCellPlanner::tuned(4),
            ServeConfig {
                reject_nonfinite: false,
                ..ServeConfig::default()
            },
        );
        let out = lenient.serve(&a, &b).unwrap();
        assert!(!out.hit, "lenient policy serves non-finite payloads");
    }

    #[test]
    fn malformed_payload_rejected_before_fingerprint_or_cache() {
        // Satellite bugfix regression: an invalid CSR must produce a
        // typed rejection without touching the cache or miss counters.
        let a = CsrMatrix::<f64>::from_raw_unchecked(
            2,
            2,
            vec![0, 3, 2], // non-monotone row_ptr
            vec![0, 1],
            vec![1.0, 2.0],
        );
        let b = DenseMatrix::<f64>::zeros(2, 4);
        let e = engine();
        let err = e.serve(&a, &b).unwrap_err();
        assert!(matches!(err, LfError::InvalidInput(_)), "{err}");
        let s = e.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!((s.hits, s.misses, s.cached_plans), (0, 0, 0));
        assert_ledger_balances(&s);
    }

    /// A planner whose plan always panics on execute: its single bucket
    /// stores a column index equal to `cols`, so the kernel's `B`-row
    /// gather is out of bounds. The shape is honest, so ingress
    /// validation and the plan shape check both pass.
    struct BrokenPlanner;

    impl Planner<f64> for BrokenPlanner {
        fn prepare(
            &self,
            csr: &CsrMatrix<f64>,
            _j: usize,
        ) -> liteform_core::LfResult<PreparedPlan<f64>> {
            let config = lf_cell::CellConfig::default();
            let cell = lf_cell::CellMatrix::from_parts(
                csr.rows(),
                csr.cols(),
                1,
                vec![lf_cell::Partition {
                    col_range: (0, csr.cols()),
                    buckets: vec![lf_cell::Bucket {
                        width: 1,
                        row_ind: vec![0],
                        col_ind: vec![csr.cols() as lf_sparse::Index], // out of bounds
                        values: vec![1.0],
                        rows_per_block: 1,
                        needs_atomic: false,
                        has_folded: false,
                    }],
                }],
                config.clone(),
            );
            Ok(PreparedPlan::from_cell(
                config,
                cell,
                PreprocessProfile::default(),
            ))
        }

        fn name(&self) -> &'static str {
            "broken"
        }
    }

    #[test]
    fn deadline_firing_mid_rescue_is_deadline_exceeded_not_late_output() {
        // Satellite regression: the plan panics immediately, and the
        // shielded reference rescue — the request's *final chunk* — runs
        // to completion long after the 5 ms deadline fires (~100 MFLOP
        // on one thread). Before the post-rescue token re-check, the
        // stale rescue result was published as a degraded success; a
        // fired deadline must always be `DeadlineExceeded`.
        let e = ServeEngine::new(
            BrokenPlanner,
            ServeConfig {
                deadline_ms: Some(5),
                ..ServeConfig::default()
            },
        );
        let mut rng = Pcg32::seed_from_u64(7);
        let a: CsrMatrix<f64> =
            CsrMatrix::from_coo(&mixed_regions(1024, 1024, 400_000, 4, &mut rng));
        let b = DenseMatrix::random(1024, 128, &mut rng);
        let err = e.serve(&a, &b).unwrap_err();
        assert!(matches!(err, LfError::DeadlineExceeded { .. }), "{err}");
        let s = e.stats();
        assert_eq!(s.failed, 1, "a fired deadline is failed, not degraded");
        assert_eq!(s.degraded, 0, "the rescue result was discarded");
        assert_eq!(s.quarantined, 1, "the panicking plan was quarantined");
        assert_ledger_balances(&s);
    }

    #[test]
    fn clear_resets_cache_but_not_counters() {
        let e = engine();
        let mut rng = Pcg32::seed_from_u64(94);
        let a = matrix(50);
        let b = DenseMatrix::random(128, 8, &mut rng);
        e.serve(&a, &b).unwrap();
        e.clear();
        let s = e.stats();
        assert_eq!(s.cached_plans, 0);
        assert_eq!(s.cached_bytes, 0);
        assert_eq!(s.misses, 1);
        assert!(!e.serve(&a, &b).unwrap().hit, "cleared cache misses again");
    }
}
