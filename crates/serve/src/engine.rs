//! The concurrent serving engine: a sharded, byte-budgeted LRU of
//! prepared composition plans.
//!
//! Request path (`serve` / `serve_handle`):
//!
//! 1. fingerprint the matrix (skipped for handles, which carry theirs);
//! 2. look the `(fingerprint, j)` key up in the shard the fingerprint
//!    maps to — a **hit** returns the cached [`PreparedPlan`] and pays
//!    only the kernel execution;
//! 3. on a **miss**, the planner composes outside any lock (other
//!    requests — including other misses — proceed concurrently), the
//!    plan is admitted under the shard's byte budget (evicting whole
//!    least-recently-used plans), and the request executes it.
//!
//! Execution itself runs on the process-wide `lf_sim` worker pool —
//! every request shares the one pool the kernels already dispatch to, so
//! serving N concurrent requests spawns no threads beyond the pool's
//! (asserted by the stress suite via
//! `lf_sim::pool::workers_spawned_total`).
//!
//! Two requests that miss on the same key simultaneously both compose
//! (no cross-request blocking); the first insert wins and the loser's
//! plan serves only its own request, then drops. This trades a bounded
//! amount of duplicate cold work for a lock-free compose path.

use crate::fingerprint::Fingerprint;
use crate::planner::Planner;
use lf_sim::atomicf::AtomicScalar;
use lf_sparse::{CsrMatrix, DenseMatrix, Result, Scalar, SparseError};
use liteform_core::{PreprocessProfile, StageStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Serving-layer tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of independent cache shards (lock granularity). Clamped to
    /// ≥ 1.
    pub shards: usize,
    /// Whole-cache byte budget for retained plan memory
    /// ([`PreparedPlan::format_bytes`](liteform_core::PreparedPlan::format_bytes)).
    /// Split evenly across shards; a plan larger than its shard's slice
    /// is served but never admitted.
    pub byte_budget: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            byte_budget: 256 << 20,
        }
    }
}

/// A registered matrix: fingerprint computed once, payload retained so
/// the engine can re-compose after an eviction without resubmission.
#[derive(Debug, Clone)]
pub struct MatrixHandle<T> {
    fingerprint: Fingerprint,
    csr: Arc<CsrMatrix<T>>,
}

impl<T: Scalar> MatrixHandle<T> {
    /// Register a matrix: fingerprints it (one O(nnz) pass) and wraps the
    /// payload for cheap sharing across requests.
    pub fn new(csr: CsrMatrix<T>) -> Self {
        MatrixHandle {
            fingerprint: Fingerprint::of_csr(&csr),
            csr: Arc::new(csr),
        }
    }

    /// The handle's fingerprint.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// The underlying matrix.
    pub fn csr(&self) -> &CsrMatrix<T> {
        &self.csr
    }
}

/// One served request's result and accounting.
#[derive(Debug)]
pub struct ServeOutcome<T> {
    /// The product `C = A · B`.
    pub result: DenseMatrix<T>,
    /// Whether the plan came from the cache.
    pub hit: bool,
    /// The request's cache key fingerprint.
    pub fingerprint: Fingerprint,
    /// Composition instrumentation — `Some` exactly on misses.
    pub compose: Option<PreprocessProfile>,
    /// End-to-end wall seconds for this request (lookup + compose if
    /// cold + execution).
    pub serve_wall_s: f64,
}

/// Counter snapshot, [`StageStats`]-style: wall clock plus allocation
/// counters where the engine measures them.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that composed a plan.
    pub misses: u64,
    /// Plans evicted to make room under the byte budget.
    pub evictions: u64,
    /// Plans too large for their shard's budget slice (served, never
    /// admitted).
    pub rejected: u64,
    /// Accumulated cold-compose cost across all misses (wall + allocs,
    /// via the `lf-sim` counting allocator).
    pub cold_compose: StageStats,
    /// Accumulated end-to-end serve wall time across all requests
    /// (allocation fields unused).
    pub serve: StageStats,
    /// Plans currently cached.
    pub cached_plans: usize,
    /// Bytes currently charged against the budget.
    pub cached_bytes: usize,
}

impl ServeStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            return 0.0;
        }
        self.hits as f64 / self.requests() as f64
    }
}

struct Entry<T: AtomicScalar> {
    plan: Arc<liteform_core::PreparedPlan<T>>,
    bytes: usize,
    last_used: u64,
}

struct Shard<T: AtomicScalar> {
    map: HashMap<(Fingerprint, usize), Entry<T>>,
    bytes: usize,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    cold_wall_ns: AtomicU64,
    cold_alloc_calls: AtomicU64,
    cold_alloc_bytes: AtomicU64,
    serve_wall_ns: AtomicU64,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A thread-safe SpMM server: plans composed once per `(matrix, j)`,
/// cached under a byte budget, executed on the shared worker pool.
pub struct ServeEngine<T: AtomicScalar, P> {
    planner: P,
    config: ServeConfig,
    shards: Vec<Mutex<Shard<T>>>,
    /// Logical clock for LRU recency; bumped on every touch.
    tick: AtomicU64,
    counters: Counters,
}

impl<T: AtomicScalar, P: Planner<T>> ServeEngine<T, P> {
    /// Build an engine over a planner.
    pub fn new(planner: P, config: ServeConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    bytes: 0,
                })
            })
            .collect();
        ServeEngine {
            planner,
            config,
            shards,
            tick: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    /// The planner behind the engine.
    pub fn planner(&self) -> &P {
        &self.planner
    }

    /// Serve a raw CSR payload: fingerprints the matrix, then runs the
    /// cached or freshly composed plan against `b`.
    pub fn serve(&self, csr: &CsrMatrix<T>, b: &DenseMatrix<T>) -> Result<ServeOutcome<T>> {
        let fp = Fingerprint::of_csr(csr);
        self.serve_keyed(&fp, csr, b)
    }

    /// Serve a registered handle: skips fingerprinting entirely.
    pub fn serve_handle(&self, h: &MatrixHandle<T>, b: &DenseMatrix<T>) -> Result<ServeOutcome<T>> {
        self.serve_keyed(h.fingerprint(), h.csr(), b)
    }

    /// Pre-compose a handle's plan for width `j` (admission-warming).
    /// Returns `true` if a plan was composed, `false` on an existing
    /// cached plan.
    pub fn warm(&self, h: &MatrixHandle<T>, j: usize) -> bool {
        let key = (*h.fingerprint(), j);
        if self.lookup(&key).is_some() {
            return false;
        }
        let plan = self.compose_counted(h.csr(), j);
        self.admit(key, plan);
        true
    }

    fn serve_keyed(
        &self,
        fp: &Fingerprint,
        csr: &CsrMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> Result<ServeOutcome<T>> {
        if csr.cols() != b.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "serve",
                lhs: csr.shape(),
                rhs: b.shape(),
            });
        }
        let t0 = Instant::now();
        let j = b.cols();
        let key = (*fp, j);
        let (plan, hit, compose) = match self.lookup(&key) {
            Some(plan) => (plan, true, None),
            None => {
                let plan = self.compose_counted(csr, j);
                let profile = plan.profile;
                self.admit(key, Arc::clone(&plan));
                (plan, false, Some(profile))
            }
        };
        let result = plan.run(b)?;
        let serve_wall_s = t0.elapsed().as_secs_f64();
        let bump = if hit {
            &self.counters.hits
        } else {
            &self.counters.misses
        };
        bump.fetch_add(1, Ordering::Relaxed);
        self.counters
            .serve_wall_ns
            .fetch_add((serve_wall_s * 1e9) as u64, Ordering::Relaxed);
        Ok(ServeOutcome {
            result,
            hit,
            fingerprint: *fp,
            compose,
            serve_wall_s,
        })
    }

    /// Compose on the calling thread (no locks held) and record the cold
    /// cost. Allocation counters are process-wide, so concurrent misses
    /// attribute each other's traffic to both — the totals stay an upper
    /// bound per request and exact in aggregate intent (see `lf-sim`'s
    /// allocator docs).
    fn compose_counted(&self, csr: &CsrMatrix<T>, j: usize) -> Arc<liteform_core::PreparedPlan<T>> {
        let (plan, stats) = StageStats::measure(|| self.planner.prepare(csr, j));
        self.counters
            .cold_wall_ns
            .fetch_add((stats.wall_s * 1e9) as u64, Ordering::Relaxed);
        self.counters
            .cold_alloc_calls
            .fetch_add(stats.alloc_calls, Ordering::Relaxed);
        self.counters
            .cold_alloc_bytes
            .fetch_add(stats.alloc_bytes, Ordering::Relaxed);
        Arc::new(plan)
    }

    fn lookup(&self, key: &(Fingerprint, usize)) -> Option<Arc<liteform_core::PreparedPlan<T>>> {
        let mut shard = lock_unpoisoned(&self.shards[key.0.shard(self.shards.len())]);
        let entry = shard.map.get_mut(key)?;
        entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.plan))
    }

    /// Admit a freshly composed plan under the shard's byte budget,
    /// evicting whole least-recently-used plans to make room. A plan
    /// bigger than the whole slice is rejected (served, not cached); a
    /// concurrent insert of the same key wins and this plan just drops.
    fn admit(&self, key: (Fingerprint, usize), plan: Arc<liteform_core::PreparedPlan<T>>) {
        let bytes = plan.format_bytes();
        let per_shard = (self.config.byte_budget / self.shards.len()).max(1);
        if bytes > per_shard {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut shard = lock_unpoisoned(&self.shards[key.0.shard(self.shards.len())]);
        if shard.map.contains_key(&key) {
            return;
        }
        while shard.bytes + bytes > per_shard {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("bytes > 0 implies a cached entry");
            let evicted = shard.map.remove(&victim).expect("victim exists");
            shard.bytes -= evicted.bytes;
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.bytes += bytes;
        shard.map.insert(
            key,
            Entry {
                plan,
                bytes,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
    }

    /// Drop every cached plan (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = lock_unpoisoned(shard);
            shard.map.clear();
            shard.bytes = 0;
        }
    }

    /// Counter snapshot plus current cache occupancy.
    pub fn stats(&self) -> ServeStats {
        let (mut plans, mut bytes) = (0usize, 0usize);
        for shard in &self.shards {
            let shard = lock_unpoisoned(shard);
            plans += shard.map.len();
            bytes += shard.bytes;
        }
        let c = &self.counters;
        ServeStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cold_compose: StageStats {
                wall_s: c.cold_wall_ns.load(Ordering::Relaxed) as f64 / 1e9,
                alloc_calls: c.cold_alloc_calls.load(Ordering::Relaxed),
                alloc_bytes: c.cold_alloc_bytes.load(Ordering::Relaxed),
            },
            serve: StageStats {
                wall_s: c.serve_wall_ns.load(Ordering::Relaxed) as f64 / 1e9,
                alloc_calls: 0,
                alloc_bytes: 0,
            },
            cached_plans: plans,
            cached_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::FixedCellPlanner;
    use lf_sparse::gen::mixed_regions;
    use lf_sparse::Pcg32;

    fn matrix(seed: u64) -> CsrMatrix<f64> {
        let mut rng = Pcg32::seed_from_u64(seed);
        CsrMatrix::from_coo(&mixed_regions(128, 128, 2500, 4, &mut rng))
    }

    fn engine() -> ServeEngine<f64, FixedCellPlanner> {
        ServeEngine::new(FixedCellPlanner::tuned(4), ServeConfig::default())
    }

    #[test]
    fn miss_then_hit_with_correct_results() {
        let e = engine();
        let a = matrix(1);
        let mut rng = Pcg32::seed_from_u64(99);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let want = a.spmm_reference(&b).unwrap();

        let cold = e.serve(&a, &b).unwrap();
        assert!(!cold.hit);
        assert!(cold.compose.is_some());
        assert!(cold.result.approx_eq(&want, 1e-9));

        let warm = e.serve(&a, &b).unwrap();
        assert!(warm.hit);
        assert!(warm.compose.is_none());
        assert!(warm.result.approx_eq(&want, 1e-9));

        let s = e.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.cached_plans, 1);
        assert!(s.cached_bytes > 0);
        assert!(s.cold_compose.wall_s >= 0.0);
        assert!(s.cold_compose.alloc_bytes > 0);
    }

    #[test]
    fn distinct_j_widths_are_distinct_plans() {
        let e = engine();
        let a = matrix(2);
        let mut rng = Pcg32::seed_from_u64(98);
        let b8 = DenseMatrix::random(128, 8, &mut rng);
        let b16 = DenseMatrix::random(128, 16, &mut rng);
        assert!(!e.serve(&a, &b8).unwrap().hit);
        assert!(!e.serve(&a, &b16).unwrap().hit, "j is part of the key");
        assert!(e.serve(&a, &b8).unwrap().hit);
        assert_eq!(e.stats().cached_plans, 2);
    }

    #[test]
    fn handle_skips_fingerprinting_and_hits() {
        let e = engine();
        let h = MatrixHandle::new(matrix(3));
        let mut rng = Pcg32::seed_from_u64(97);
        let b = DenseMatrix::random(128, 8, &mut rng);
        assert!(e.warm(&h, 8), "first warm composes");
        assert!(!e.warm(&h, 8), "second warm is a no-op");
        let out = e.serve_handle(&h, &b).unwrap();
        assert!(out.hit, "warmed handle must hit");
        // Payload and handle share the cache entry.
        assert!(e.serve(h.csr(), &b).unwrap().hit);
    }

    #[test]
    fn byte_budget_evicts_lru_whole_plans() {
        // One shard, budget sized for ~1 plan: every new matrix evicts
        // the previous one.
        let probe = engine();
        let mut rng = Pcg32::seed_from_u64(96);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let one = probe.serve(&matrix(10), &b).unwrap();
        drop(one);
        let plan_bytes = probe.stats().cached_bytes;
        assert!(plan_bytes > 0);

        let e = ServeEngine::new(
            FixedCellPlanner::tuned(4),
            ServeConfig {
                shards: 1,
                byte_budget: plan_bytes + plan_bytes / 2,
            },
        );
        for seed in [20u64, 21, 22] {
            assert!(!e.serve(&matrix(seed), &b).unwrap().hit);
        }
        let s = e.stats();
        assert_eq!(s.misses, 3);
        assert!(s.evictions >= 2, "evictions: {}", s.evictions);
        assert_eq!(s.cached_plans, 1, "whole plans are evicted");
        assert!(s.cached_bytes <= s.cached_bytes.max(plan_bytes * 3 / 2));
    }

    #[test]
    fn oversized_plans_are_served_but_rejected() {
        let e = ServeEngine::new(
            FixedCellPlanner::tuned(4),
            ServeConfig {
                shards: 1,
                byte_budget: 16,
            },
        );
        let mut rng = Pcg32::seed_from_u64(95);
        let a = matrix(30);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let want = a.spmm_reference(&b).unwrap();
        let out = e.serve(&a, &b).unwrap();
        assert!(out.result.approx_eq(&want, 1e-9));
        let s = e.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.cached_plans, 0);
        // The same request misses again: nothing was cached.
        assert!(!e.serve(&a, &b).unwrap().hit);
    }

    #[test]
    fn dimension_mismatch_is_an_error_not_a_cache_entry() {
        let e = engine();
        let a = matrix(40);
        let b = DenseMatrix::<f64>::zeros(64, 8); // wrong inner dim
        assert!(e.serve(&a, &b).is_err());
        let s = e.stats();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.cached_plans, 0);
    }

    #[test]
    fn clear_resets_cache_but_not_counters() {
        let e = engine();
        let mut rng = Pcg32::seed_from_u64(94);
        let a = matrix(50);
        let b = DenseMatrix::random(128, 8, &mut rng);
        e.serve(&a, &b).unwrap();
        e.clear();
        let s = e.stats();
        assert_eq!(s.cached_plans, 0);
        assert_eq!(s.cached_bytes, 0);
        assert_eq!(s.misses, 1);
        assert!(!e.serve(&a, &b).unwrap().hit, "cleared cache misses again");
    }
}
