//! Concurrency stress suite: N threads hammer one `ServeEngine` with a
//! mix of repeated (hot) and fresh (cold) matrices.
//!
//! Asserts, under the PR-2 persistent worker pool:
//!
//! * no deadlock (the test completing is the assertion — every serve
//!   nests kernel parallel regions inside concurrently serving threads);
//! * correct results on every thread, every request;
//! * hit + miss counters sum exactly to the request count;
//! * no pool-per-request churn: the process-wide worker-spawn counter is
//!   flat across the whole storm.
//!
//! Iteration counts scale with `LF_STRESS_THREADS` / `LF_STRESS_ITERS`
//! (the `scripts/verify.sh --stress` tier raises them).

use lf_serve::{FixedCellPlanner, MatrixHandle, ServeConfig, ServeEngine};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{CsrMatrix, DenseMatrix, Pcg32};
use std::sync::atomic::{AtomicU64, Ordering};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn matrix(seed: u64, n: usize, nnz: usize) -> CsrMatrix<f64> {
    let mut rng = Pcg32::seed_from_u64(seed);
    CsrMatrix::from_coo(&mixed_regions(n, n, nnz, 4, &mut rng))
}

#[test]
fn concurrent_mixed_workload_is_correct_and_fully_counted() {
    let threads = env_or("LF_STRESS_THREADS", 8).max(2);
    let iters = env_or("LF_STRESS_ITERS", 24);
    let n = 192;
    let j = 9;

    // Force the shared pool into existence before snapshotting the spawn
    // counter, so the assertion below isolates serving-layer churn.
    lf_sim::pool::global();
    let workers_before = lf_sim::pool::workers_spawned_total();

    // A modest budget so the fresh matrices churn through evictions
    // while the hot set mostly survives (it is re-touched constantly).
    let engine = ServeEngine::new(
        FixedCellPlanner::tuned(4),
        ServeConfig {
            shards: 4,
            byte_budget: 2 << 20,
            ..ServeConfig::default()
        },
    );

    // Hot set: registered handles shared by every thread, references
    // precomputed once.
    let hot: Vec<(MatrixHandle<f64>, DenseMatrix<f64>, DenseMatrix<f64>)> = (0..4u64)
        .map(|s| {
            let a = matrix(1000 + s, n, 3500);
            let mut rng = Pcg32::seed_from_u64(2000 + s);
            let b = DenseMatrix::random(n, j, &mut rng);
            let want = a.spmm_reference(&b).unwrap();
            (MatrixHandle::new(a).unwrap(), b, want)
        })
        .collect();

    let requests = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            let hot = &hot;
            let requests = &requests;
            scope.spawn(move || {
                let mut rng = Pcg32::seed_from_u64(0xBEEF + t as u64);
                for i in 0..iters {
                    requests.fetch_add(1, Ordering::Relaxed);
                    if rng.bernoulli(0.6) {
                        // Repeated matrix via its handle.
                        let (h, b, want) = &hot[rng.usize_in(0, hot.len())];
                        let out = engine.serve_handle(h, b).unwrap();
                        assert!(
                            out.result.approx_eq(want, 1e-9),
                            "thread {t} iter {i}: wrong hot result"
                        );
                    } else {
                        // Fresh matrix via raw payload; verified in-thread.
                        let seed = 0x5000 + (t * iters + i) as u64;
                        let a = matrix(seed, n, 2500);
                        let b = DenseMatrix::random(n, j, &mut rng);
                        let want = a.spmm_reference(&b).unwrap();
                        let out = engine.serve(&a, &b).unwrap();
                        assert!(
                            out.result.approx_eq(&want, 1e-9),
                            "thread {t} iter {i}: wrong cold result"
                        );
                    }
                }
            });
        }
    });

    let total = requests.load(Ordering::Relaxed);
    assert_eq!(total, (threads * iters) as u64);
    let s = engine.stats();
    assert_eq!(
        s.hits + s.misses,
        total,
        "hit/miss counters must sum to the request count: {s:?}"
    );
    assert!(s.hits > 0, "hot set must produce hits: {s:?}");
    assert!(s.misses > 0, "fresh matrices must produce misses: {s:?}");
    assert!(
        s.cold_compose.wall_s > 0.0 && s.serve.wall_s > 0.0,
        "wall counters must accumulate: {s:?}"
    );

    // The serving layer shares the one process pool: handling the whole
    // storm must not have spawned a single extra worker.
    assert_eq!(
        lf_sim::pool::workers_spawned_total(),
        workers_before,
        "serving must not churn worker pools"
    );
}

#[test]
fn coalesced_same_fingerprint_storm_keeps_the_ledger_exact() {
    // Every thread hammers the SAME handle through a batching engine
    // with a realistic (hundreds of µs) admission window. Client-side
    // success/error tallies must reconcile exactly with the engine's
    // disjoint outcome ledger, results must be correct on every thread,
    // and the fused path must not churn worker pools.
    let threads = env_or("LF_STRESS_THREADS", 8).max(2);
    let iters = env_or("LF_STRESS_ITERS", 24);
    let n = 160;
    let j = 5;

    lf_sim::pool::global();
    let workers_before = lf_sim::pool::workers_spawned_total();

    let a = matrix(0xC0A1, n, 3000);
    let handle = MatrixHandle::new(a.clone()).unwrap();
    let engine = ServeEngine::new(
        FixedCellPlanner::tuned(4),
        ServeConfig {
            batch_window_us: 400,
            max_batch_j: 64,
            ..ServeConfig::default()
        },
    );

    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (engine, handle, a) = (&engine, &handle, &a);
            let (ok, failed) = (&ok, &failed);
            scope.spawn(move || {
                let mut rng = Pcg32::seed_from_u64(0xFA7 + t as u64);
                for i in 0..iters {
                    let b = DenseMatrix::random(n, j, &mut rng);
                    match engine.serve_handle(handle, &b) {
                        Ok(out) => {
                            let want = a.spmm_reference(&b).unwrap();
                            assert!(
                                out.result.approx_eq(&want, 1e-9),
                                "thread {t} iter {i}: wrong coalesced result"
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let total = (threads * iters) as u64;
    let s = engine.stats();
    assert_eq!(
        s.requests(),
        total,
        "every request is ledgered exactly once: {s:?}"
    );
    assert_eq!(
        s.hits + s.misses + s.rejected + s.degraded + s.failed,
        total,
        "the five classes stay disjoint and exhaustive: {s:?}"
    );
    assert_eq!(
        s.hits + s.misses + s.degraded,
        ok.load(Ordering::Relaxed),
        "engine successes must match client-side successes: {s:?}"
    );
    assert_eq!(
        s.rejected + s.failed,
        failed.load(Ordering::Relaxed),
        "engine errors must match client-side errors: {s:?}"
    );
    assert!(
        s.batches >= 1,
        "a same-fingerprint storm through an open window must fuse: {s:?}"
    );
    assert!(
        s.batched_requests >= 2 * s.batches,
        "every fused execute covers at least two members: {s:?}"
    );
    assert_eq!(
        lf_sim::pool::workers_spawned_total(),
        workers_before,
        "coalesced serving must not churn worker pools"
    );
}

#[test]
fn concurrent_same_key_storm_converges_to_one_plan() {
    // Every thread requests the same (matrix, j): racing misses are
    // allowed to duplicate compose work, but the cache must converge to
    // one plan and all results must agree with the reference.
    let threads = env_or("LF_STRESS_THREADS", 8).max(2);
    let a = matrix(77, 160, 3000);
    let mut rng = Pcg32::seed_from_u64(78);
    let b = DenseMatrix::random(160, 7, &mut rng);
    let want = a.spmm_reference(&b).unwrap();
    let engine = ServeEngine::new(FixedCellPlanner::tuned(4), ServeConfig::default());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (engine, a, b, want) = (&engine, &a, &b, &want);
            scope.spawn(move || {
                for _ in 0..6 {
                    let out = engine.serve(a, b).unwrap();
                    assert!(out.result.approx_eq(want, 1e-9));
                }
            });
        }
    });
    let s = engine.stats();
    assert_eq!(s.requests(), (threads * 6) as u64);
    assert_eq!(s.cached_plans, 1, "same key must converge to one entry");
    assert!(s.hits >= s.requests() - threads as u64, "stats: {s:?}");
}
