//! Integration suite for same-fingerprint request coalescing
//! (DESIGN.md §11): concurrent requests on one matrix fuse into a
//! single wide execute, while every joiner keeps its own result bits,
//! its own ledger class, its own deadline, and its own rescue.

use lf_serve::{FixedCellPlanner, MatrixHandle, Planner, ServeConfig, ServeEngine};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{CsrMatrix, DenseMatrix, Pcg32};
use liteform_core::{LfResult, PreparedPlan, PreprocessProfile};
use std::sync::{Arc, Barrier, Mutex};

fn matrix(seed: u64, n: usize, nnz: usize) -> CsrMatrix<f64> {
    let mut rng = Pcg32::seed_from_u64(seed);
    CsrMatrix::from_coo(&mixed_regions(n, n, nnz, 4, &mut rng))
}

fn bits(m: &DenseMatrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn batching_config(window_us: u64, max_batch_j: usize) -> ServeConfig {
    ServeConfig {
        batch_window_us: window_us,
        max_batch_j,
        ..ServeConfig::default()
    }
}

#[test]
fn coalesced_results_are_bitwise_identical_to_solo_serving() {
    // Eight barrier-synced same-handle requests against a batching
    // engine; a second engine with the window off serves the identical
    // operands solo. Single-partition CELL plans are single-writer, so
    // the fused execute must reproduce every solo bit.
    let n = 160;
    let threads = 8usize;
    let a = matrix(11, n, 3000);
    let handle = MatrixHandle::new(a.clone()).unwrap();
    let bs: Vec<DenseMatrix<f64>> = (0..threads)
        .map(|t| {
            let mut rng = Pcg32::seed_from_u64(0xB17 + t as u64);
            DenseMatrix::random(n, 6, &mut rng)
        })
        .collect();

    let batched = ServeEngine::new(FixedCellPlanner::natural(1), batching_config(100_000, 256));
    let solo = ServeEngine::new(FixedCellPlanner::natural(1), ServeConfig::default());
    let barrier = Barrier::new(threads);
    let outcomes: Vec<(usize, bool, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (batched, handle, b, barrier) = (&batched, &handle, &bs[t], &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let out = batched.serve_handle(handle, b).unwrap();
                    (t, out.batched, bits(&out.result))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, _, got) in &outcomes {
        let want = solo.serve_handle(&handle, &bs[*t]).unwrap();
        assert_eq!(
            got,
            &bits(&want.result),
            "thread {t}: batched bits diverged"
        );
    }
    let s = batched.stats();
    assert_eq!(s.requests(), threads as u64);
    assert_eq!(s.hits + s.misses, threads as u64, "all clean: {s:?}");
    assert!(s.batches >= 1, "the barrier storm must fuse: {s:?}");
    assert!(
        s.batched_requests >= 2 * s.batches,
        "every batch covers at least two members: {s:?}"
    );
    assert!(s.batch_wait_s > 0.0, "window wait must be metered: {s:?}");
    assert!(
        outcomes.iter().filter(|(_, batched, _)| *batched).count() >= 2,
        "at least one fused pair must report batched outcomes"
    );
}

#[test]
fn zero_and_one_width_joiners_ride_along() {
    // J=0 and J=1 members are legal joiners: they cost (almost) nothing
    // in the fused operand and must come back with exactly their own
    // column count. The window is generous and uncapped so all three
    // requests land in one group.
    let n = 96;
    let a = matrix(12, n, 1500);
    let handle = MatrixHandle::new(a.clone()).unwrap();
    let widths = [8usize, 0, 1];
    let engine = ServeEngine::new(FixedCellPlanner::natural(1), batching_config(400_000, 256));
    let barrier = Barrier::new(widths.len());
    let results: Vec<(usize, DenseMatrix<f64>, DenseMatrix<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = widths
            .iter()
            .enumerate()
            .map(|(t, &w)| {
                let (engine, handle, barrier) = (&engine, &handle, &barrier);
                let a = &a;
                scope.spawn(move || {
                    let mut rng = Pcg32::seed_from_u64(0x10 + t as u64);
                    let b = DenseMatrix::random(n, w, &mut rng);
                    let want = a.spmm_reference(&b).unwrap();
                    barrier.wait();
                    let out = engine.serve_handle(handle, &b).unwrap();
                    (w, out.result, want)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (w, got, want) in &results {
        assert_eq!(got.cols(), *w, "member got exactly its own columns back");
        assert!(got.approx_eq(want, 1e-9), "width-{w} member wrong");
    }
    let s = engine.stats();
    assert_eq!(s.requests(), widths.len() as u64);
    assert_eq!(s.hits + s.misses, widths.len() as u64, "all clean: {s:?}");
}

/// A planner whose plan panics on every execute (an out-of-bounds
/// column index the kernels trip over), forcing the fused-panic path.
struct BrokenPlanner;

impl Planner<f64> for BrokenPlanner {
    fn prepare(&self, csr: &CsrMatrix<f64>, _j: usize) -> LfResult<PreparedPlan<f64>> {
        let config = lf_cell::CellConfig::default();
        let cell = lf_cell::CellMatrix::from_parts(
            csr.rows(),
            csr.cols(),
            1,
            vec![lf_cell::Partition {
                col_range: (0, csr.cols()),
                buckets: vec![lf_cell::Bucket {
                    width: 1,
                    row_ind: vec![0],
                    col_ind: vec![csr.cols() as lf_sparse::Index], // out of bounds
                    values: vec![1.0],
                    rows_per_block: 1,
                    needs_atomic: false,
                    has_folded: false,
                }],
            }],
            config.clone(),
        );
        Ok(PreparedPlan::from_cell(
            config,
            cell,
            PreprocessProfile::default(),
        ))
    }

    fn name(&self) -> &'static str {
        "broken"
    }
}

#[test]
fn fused_panic_rescues_every_member_individually() {
    // The fused execute panics mid-batch: the fused plan is quarantined
    // and every member — not just the leader — is rescued with its OWN
    // reference result, each counted as its own degraded request.
    let n = 96;
    let threads = 4usize;
    let a = matrix(13, n, 1500);
    let handle = MatrixHandle::new(a.clone()).unwrap();
    let engine = ServeEngine::new(BrokenPlanner, batching_config(300_000, 256));
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (engine, handle, barrier, a) = (&engine, &handle, &barrier, &a);
            scope.spawn(move || {
                let mut rng = Pcg32::seed_from_u64(0xD0 + t as u64);
                let b = DenseMatrix::random(n, 4, &mut rng);
                let want = a.spmm_reference(&b).unwrap();
                barrier.wait();
                let out = engine.serve_handle(handle, &b).unwrap();
                assert!(out.degraded, "thread {t}: rescue must be degraded");
                assert!(
                    out.result.approx_eq(&want, 1e-9),
                    "thread {t}: rescue must be this member's own product"
                );
            });
        }
    });
    let s = engine.stats();
    assert_eq!(s.requests(), threads as u64);
    assert_eq!(
        s.degraded, threads as u64,
        "each member is its own rescue: {s:?}"
    );
    assert!(
        s.quarantined >= 1,
        "the panicking fused plan is quarantined: {s:?}"
    );
    assert_eq!(s.cached_plans, 0, "no poisoned plan survives: {s:?}");
    assert_eq!(
        s.requests(),
        s.hits + s.misses + s.rejected + s.degraded + s.failed,
        "ledger identity: {s:?}"
    );
}

/// Wraps a real planner and records every width it is asked to compose.
struct RecordingPlanner {
    inner: FixedCellPlanner,
    widths: Arc<Mutex<Vec<usize>>>,
}

impl Planner<f64> for RecordingPlanner {
    fn prepare(&self, csr: &CsrMatrix<f64>, j: usize) -> LfResult<PreparedPlan<f64>> {
        self.widths.lock().unwrap().push(j);
        Planner::<f64>::prepare(&self.inner, csr, j)
    }

    fn name(&self) -> &'static str {
        "recording"
    }
}

#[test]
fn fused_execute_rekeys_and_retunes_the_plan_at_the_fused_width() {
    // Satellite regression: a fused run over eight J=8 members is a
    // J=64 execute. The coalescer must resolve a plan *keyed and tuned*
    // at 64, never reuse one tuned for 8 — and the fused-width plan it
    // caches must be a first-class citizen a direct J=64 request hits.
    let n = 160;
    let threads = 8usize;
    let a = matrix(14, n, 3000);
    let handle = MatrixHandle::new(a.clone()).unwrap();
    let widths = Arc::new(Mutex::new(Vec::new()));
    let planner = RecordingPlanner {
        inner: FixedCellPlanner::tuned(4),
        widths: Arc::clone(&widths),
    };
    // max_batch_j equals the exact fused width, so the leader closes the
    // moment the eighth member joins (no full-window sleep).
    let engine = ServeEngine::new(planner, batching_config(400_000, 64));
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (engine, handle, barrier) = (&engine, &handle, &barrier);
            scope.spawn(move || {
                let mut rng = Pcg32::seed_from_u64(0xA0 + t as u64);
                let b = DenseMatrix::random(n, 8, &mut rng);
                barrier.wait();
                engine.serve_handle(handle, &b).unwrap();
            });
        }
    });
    {
        let seen = widths.lock().unwrap();
        assert!(
            seen.contains(&64),
            "the fused execute must compose at the fused width, got {seen:?}"
        );
        assert!(
            !seen.contains(&8) || seen.iter().filter(|&&w| w == 8).count() < threads,
            "members must not each compose at their narrow width: {seen:?}"
        );
    }
    // A direct J=64 request reuses the fused-width plan: same key space.
    let mut rng = Pcg32::seed_from_u64(0xFEED);
    let wide = DenseMatrix::random(n, 64, &mut rng);
    let out = engine.serve_handle(&handle, &wide).unwrap();
    assert!(out.hit, "the fused-width plan is a first-class cache entry");
    assert!(!out.batched, "a request at the width cap never coalesces");
    // A solo J=8 request does NOT hit the J=64 plan: distinct keys.
    let narrow = DenseMatrix::random(n, 8, &mut rng);
    let before = widths.lock().unwrap().len();
    let out = engine.serve_handle(&handle, &narrow).unwrap();
    assert!(
        !out.hit,
        "a narrow request must not reuse the fused-width plan"
    );
    assert_eq!(
        widths.lock().unwrap()[before..],
        [8],
        "the narrow request composes at its own width"
    );
}

#[test]
fn joiner_without_deadline_budget_for_the_window_goes_solo() {
    // A 10 ms deadline cannot afford a 50 ms admission window (plus a
    // fused run): the request must skip the coalescer and serve solo
    // immediately instead of joining a batch it would fail out of.
    let n = 128;
    let a = matrix(15, n, 2000);
    let engine = ServeEngine::new(
        FixedCellPlanner::tuned(4),
        ServeConfig {
            deadline_ms: Some(500),
            ..batching_config(1_000_000, 256)
        },
    );
    let mut rng = Pcg32::seed_from_u64(0xCAFE);
    let b = DenseMatrix::random(n, 6, &mut rng);
    // 500 ms deadline < 2 × 1 s window: solo, and comfortably in budget.
    let out = engine.serve(&a, &b).unwrap();
    assert!(!out.batched, "tight-deadline requests must not coalesce");
    let s = engine.stats();
    assert_eq!(s.batch_wait_s, 0.0, "no window wait was paid: {s:?}");
    assert_eq!((s.batches, s.batched_requests), (0, 0));
}

#[test]
fn lonely_leader_dissolves_and_the_window_wait_stays_on_its_clock() {
    // Satellite regression for `serve_wall_s`: a leader nobody joins
    // dissolves to a solo run, but the 30 ms it parked in the admission
    // window happened to *this* request — its wall clock (and the
    // engine's batch_wait_s meter) must include the wait, or latency
    // percentiles understate every coalesced request.
    let n = 128;
    let a = matrix(16, n, 2000);
    let engine = ServeEngine::new(FixedCellPlanner::tuned(4), batching_config(30_000, 256));
    let mut rng = Pcg32::seed_from_u64(0xBEE);
    let b = DenseMatrix::random(n, 6, &mut rng);
    let out = engine.serve(&a, &b).unwrap();
    assert!(!out.batched, "a lonely leader dissolves to solo");
    assert!(
        out.serve_wall_s >= 0.030,
        "the window wait is on the request's clock: {}",
        out.serve_wall_s
    );
    let s = engine.stats();
    assert!(s.batch_wait_s >= 0.030, "the wait is metered: {s:?}");
    assert_eq!((s.batches, s.batched_requests), (0, 0), "dissolved: {s:?}");
    assert_eq!(s.misses, 1, "the solo retry classifies normally: {s:?}");
}
