//! Model-checked verification of the plan cache's miss-path protocol.
//!
//! `ServeEngine` deliberately composes plans *outside* the shard lock:
//! two threads missing the same key may both compose, and the first
//! `admit` wins while the loser's plan just drops (engine.rs documents
//! this as the chosen trade-off — duplicate compose work over holding a
//! lock across an expensive compose). This test re-states that protocol
//! over `lf-check`'s instrumented primitives and explores every bounded
//! interleaving of two concurrent misses, proving the invariants the
//! stress suite can only sample:
//!
//! * the cache ends with exactly one entry for the key, held bytes match
//!   the entries exactly, and every thread returns a usable plan;
//! * compose runs once or twice — never zero, never more;
//! * a seeded broken variant (insert without the still-absent check,
//!   i.e. `admit` minus its `contains_key` guard) is caught: there is a
//!   schedule where both misses insert and the byte accounting diverges
//!   from the map contents — the leak the guard exists to prevent.

use lf_check::sync::thread::spawn_named;
use lf_check::sync::Mutex;
use lf_check::{model, Model};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// A stand-in for `PreparedPlan`: identity-distinguishable via `Arc`.
type Plan = Arc<usize>;

/// Bytes charged per cached plan (all plans equal-sized in the model).
const PLAN_BYTES: usize = 100;

struct State {
    map: HashMap<u64, Plan>,
    /// Bytes charged against the budget — must always equal
    /// `map.len() * PLAN_BYTES`.
    bytes: usize,
}

struct Cache {
    state: Mutex<State>,
    composed: AtomicUsize,
}

impl Cache {
    fn new() -> Self {
        Cache {
            state: Mutex::new(State {
                map: HashMap::new(),
                bytes: 0,
            }),
            composed: AtomicUsize::new(0),
        }
    }

    /// The engine's miss path: lookup under the lock, compose outside
    /// it, re-lock and insert only if still absent (first insert wins;
    /// the loser serves its own compose result and drops it).
    // The two-step contains_key + insert deliberately mirrors
    // `ServeEngine::admit`'s shape — the guard under test.
    #[allow(clippy::map_entry)]
    fn serve(&self, key: u64) -> Plan {
        if let Some(plan) = self.state.lock().unwrap().map.get(&key) {
            return Arc::clone(plan);
        }
        // Compose outside the lock (the expensive step).
        let plan: Plan = Arc::new(self.composed.fetch_add(1, Relaxed));
        let mut st = self.state.lock().unwrap();
        if !st.map.contains_key(&key) {
            st.map.insert(key, Arc::clone(&plan));
            st.bytes += PLAN_BYTES;
        }
        plan
    }

    /// Seeded bug: `admit` without its still-absent check. A losing
    /// insert replaces the winner's entry and charges the budget again.
    fn serve_unguarded(&self, key: u64) -> Plan {
        if let Some(plan) = self.state.lock().unwrap().map.get(&key) {
            return Arc::clone(plan);
        }
        let plan: Plan = Arc::new(self.composed.fetch_add(1, Relaxed));
        let mut st = self.state.lock().unwrap();
        st.map.insert(key, Arc::clone(&plan));
        st.bytes += PLAN_BYTES;
        plan
    }

    fn check_accounting(&self) {
        let st = self.state.lock().unwrap();
        assert_eq!(
            st.bytes,
            st.map.len() * PLAN_BYTES,
            "cache byte accounting diverged from contents"
        );
    }
}

#[test]
fn two_concurrent_misses_converge_to_one_entry() {
    let report = model(|| {
        let cache = Arc::new(Cache::new());
        let t = {
            let cache = Arc::clone(&cache);
            spawn_named("miss-b", move || cache.serve(42)).expect("spawn model thread")
        };
        let plan_a = cache.serve(42);
        let plan_b = t.join().unwrap();
        // Compose ran at least once and at most twice.
        let composed = cache.composed.load(Relaxed);
        assert!((1..=2).contains(&composed), "composed {composed}");
        // Both requests got a plan that compose actually produced.
        assert!(*plan_a < composed && *plan_b < composed);
        cache.check_accounting();
        {
            // Exactly one entry survives, and it is one of the two plans.
            let st = cache.state.lock().unwrap();
            assert_eq!(st.map.len(), 1);
            let cached = st.map.get(&42).expect("entry must exist");
            assert!(
                Arc::ptr_eq(cached, &plan_a) || Arc::ptr_eq(cached, &plan_b),
                "cached plan is neither thread's"
            );
        }
        // A subsequent request hits and returns the cached identity.
        let again = cache.serve(42);
        let st = cache.state.lock().unwrap();
        assert!(Arc::ptr_eq(&again, st.map.get(&42).unwrap()));
        assert_eq!(
            cache.composed.load(Relaxed),
            composed,
            "hit must not compose"
        );
    });
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

#[test]
fn unguarded_insert_breaks_accounting_and_is_caught() {
    let checker = Model {
        wedge_timeout: Duration::from_secs(2),
        ..Model::default()
    };
    let result = catch_unwind(AssertUnwindSafe(move || {
        checker.check(|| {
            let cache = Arc::new(Cache::new());
            let t = {
                let cache = Arc::clone(&cache);
                spawn_named("miss-b", move || cache.serve_unguarded(7)).expect("spawn model thread")
            };
            let _mine = cache.serve_unguarded(7);
            let _other = t.join().unwrap();
            // In the schedule where both threads miss before either
            // inserts, both inserts land: one map entry, two plans'
            // bytes charged — the budget leak `admit`'s guard prevents.
            cache.check_accounting();
        });
    }));
    let msg = match result {
        Ok(()) => panic!("the checker must catch the unguarded insert"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
    };
    assert!(msg.contains("accounting"), "unexpected failure: {msg}");
}
