//! The chaos tier: fault-injected serving storm.
//!
//! Only compiled with `--features chaos`: the serving pipeline then
//! carries `lf_check::chaos` injection sites (compose panic, execute
//! panic, allocation failure, forced slow path). This test installs a
//! seeded [`ChaosPlan`], hammers one engine from many threads with mixed
//! traffic — hot handles, cold payloads, malformed payloads, shape
//! mismatches — and asserts the engine's robustness contract *under
//! fire*:
//!
//! * **no deadlock / no wedge** — the storm completes (workers released
//!   on every error path, quarantine never holds a lock across compose);
//! * **no wrong bytes** — every `Ok` result agrees with the sequential
//!   reference; *degraded* results (fallback plans and post-panic
//!   rescues both execute baseline CSR row-in-order) are **bitwise**
//!   equal to it;
//! * **the ledger balances exactly** —
//!   `requests == hits + misses + rejected + degraded + failed`, with
//!   every thread's every call counted in exactly one class;
//! * **faults really happened** — ≥ 5 % of requests drew an injection
//!   (asserted from the chaos module's own accounting, not the nominal
//!   rate), and the quarantine + degradation machinery demonstrably ran;
//! * **no thread churn** — the process-wide worker pool is flat across
//!   the storm.
//!
//! Seed, thread count, and per-thread iterations come from
//! `LF_CHAOS_SEED` / `LF_CHAOS_THREADS` / `LF_CHAOS_ITERS`
//! (`scripts/verify.sh --chaos` runs three seeds at 16×200).
//!
//! The chaos plan is process-global, so all scenarios live in this one
//! `#[test]`.

#![cfg(feature = "chaos")]

use lf_check::chaos::{self, ChaosPlan};
use lf_serve::{FixedCellPlanner, MatrixHandle, ResilientPlanner, ServeConfig, ServeEngine};
use lf_sparse::gen::{fuzz_case, mixed_regions, FUZZ_CLASSES, MALFORMED_CLASS};
use lf_sparse::{CsrMatrix, DenseMatrix, Pcg32};
use liteform_core::LfError;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn matrix(seed: u64, n: usize, nnz: usize) -> CsrMatrix<f64> {
    let mut rng = Pcg32::seed_from_u64(seed);
    CsrMatrix::from_coo(&mixed_regions(n, n, nnz, 4, &mut rng))
}

fn bits(m: &DenseMatrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn chaos_storm_no_deadlock_no_wrong_bytes_exact_ledger() {
    let seed = env_or("LF_CHAOS_SEED", 0x00C0_FFEE);
    let threads = env_or("LF_CHAOS_THREADS", 16).max(2) as usize;
    let iters = env_or("LF_CHAOS_ITERS", 200) as usize;
    let (n, j) = (128usize, 8usize);

    lf_sim::pool::global();
    let workers_before = lf_sim::pool::workers_spawned_total();

    let engine = ServeEngine::new(
        ResilientPlanner::new(FixedCellPlanner::tuned(4)),
        ServeConfig {
            shards: 4,
            byte_budget: 64 << 20,
            ..ServeConfig::default()
        },
    );

    // Hot set: warmed *before* faults are armed so the storm starts from
    // a healthy cache (the injected execute panics then exercise the
    // quarantine + re-admission cycle on it).
    let hot: Vec<(MatrixHandle<f64>, DenseMatrix<f64>, DenseMatrix<f64>)> = (0..4u64)
        .map(|s| {
            let a = matrix(0x7000 + s, n, 3000);
            let mut rng = Pcg32::seed_from_u64(0x8000 + s);
            let b = DenseMatrix::random(n, j, &mut rng);
            let want = a.spmm_reference(&b).unwrap();
            let h = MatrixHandle::new(a).unwrap();
            engine.warm(&h, j).unwrap();
            (h, b, want)
        })
        .collect();

    // 10% nominal rate at every site; the post-run assertion uses the
    // *achieved* counts.
    chaos::install(ChaosPlan::uniform(seed, 100));

    let sent = AtomicU64::new(0);
    let ok_clean = AtomicU64::new(0);
    let ok_degraded = AtomicU64::new(0);
    let err_rejected = AtomicU64::new(0);
    let err_failed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            let hot = &hot;
            let (sent, ok_clean, ok_degraded, err_rejected, err_failed) =
                (&sent, &ok_clean, &ok_degraded, &err_rejected, &err_failed);
            scope.spawn(move || {
                let mut rng = Pcg32::seed_from_u64(seed ^ (0xAB1E + t as u64));
                for i in 0..iters {
                    sent.fetch_add(1, Relaxed);
                    let draw = rng.usize_in(0, 100);
                    let outcome = if draw < 50 {
                        // Hot handle: mostly hits; injected execute
                        // panics quarantine the plan and rescue the
                        // request.
                        let (h, b, want) = &hot[rng.usize_in(0, hot.len())];
                        engine.serve_handle(h, b).map(|out| {
                            if out.degraded {
                                assert_eq!(
                                    bits(&out.result),
                                    bits(want),
                                    "thread {t} iter {i}: degraded hot result not bitwise-exact"
                                );
                            } else {
                                assert!(
                                    out.result.approx_eq(want, 1e-9),
                                    "thread {t} iter {i}: wrong hot result"
                                );
                            }
                            out.degraded
                        })
                    } else if draw < 75 {
                        // Cold payload, verified in-thread; injected
                        // compose faults degrade to baseline CSR.
                        let a = matrix(0x9_0000 + (t * iters + i) as u64, n, 2000);
                        let mut brng = Pcg32::seed_from_u64(0xB0B0 + (t * iters + i) as u64);
                        let b = DenseMatrix::random(n, j, &mut brng);
                        let want = a.spmm_reference(&b).unwrap();
                        engine.serve(&a, &b).map(|out| {
                            if out.degraded {
                                assert_eq!(
                                    bits(&out.result),
                                    bits(&want),
                                    "thread {t} iter {i}: degraded cold result not bitwise-exact"
                                );
                            } else {
                                assert!(
                                    out.result.approx_eq(&want, 1e-9),
                                    "thread {t} iter {i}: wrong cold result"
                                );
                            }
                            out.degraded
                        })
                    } else if draw < 90 {
                        // Hostile payload: must be a typed rejection.
                        let case = fuzz_case::<f64>(
                            MALFORMED_CLASS + rng.usize_in(0, 64) as u64 * FUZZ_CLASSES,
                        );
                        let b = DenseMatrix::<f64>::zeros(case.csr.cols().max(1), j);
                        let err = engine
                            .serve(&case.csr, &b)
                            .expect_err("malformed payload must be rejected");
                        assert!(
                            matches!(err, LfError::InvalidInput(_)),
                            "thread {t} iter {i}: wrong rejection class: {err}"
                        );
                        Err(err)
                    } else {
                        // Shape mismatch: typed rejection, pre-admission.
                        let (h, _, _) = &hot[0];
                        let bad = DenseMatrix::<f64>::zeros(n / 2, j);
                        let err = engine
                            .serve_handle(h, &bad)
                            .expect_err("shape mismatch must be rejected");
                        assert!(err.is_rejection(), "{err}");
                        Err(err)
                    };
                    match outcome {
                        Ok(true) => ok_degraded.fetch_add(1, Relaxed),
                        Ok(false) => ok_clean.fetch_add(1, Relaxed),
                        Err(ref e) if e.is_rejection() => err_rejected.fetch_add(1, Relaxed),
                        Err(_) => err_failed.fetch_add(1, Relaxed),
                    };
                }
            });
        }
    });
    chaos::reset();

    let total = sent.load(Relaxed);
    assert_eq!(total, (threads * iters) as u64);
    let s = engine.stats();

    // The exact outcome ledger: engine-side classes match the
    // client-side tallies, and the identity holds with no slack.
    assert_eq!(
        s.requests(),
        s.hits + s.misses + s.rejected + s.degraded + s.failed,
        "ledger identity: {s:?}"
    );
    assert_eq!(s.requests(), total, "every request counted once: {s:?}");
    assert_eq!(
        s.hits + s.misses,
        ok_clean.load(Relaxed),
        "clean outcomes: {s:?}"
    );
    assert_eq!(s.degraded, ok_degraded.load(Relaxed), "degraded: {s:?}");
    assert_eq!(s.rejected, err_rejected.load(Relaxed), "rejected: {s:?}");
    assert_eq!(s.failed, err_failed.load(Relaxed), "failed: {s:?}");

    // Faults demonstrably happened: ≥ 5% of requests drew an injection
    // (achieved counts, not nominal rate), and both degradation
    // mechanisms ran.
    let injected = chaos::injected_total();
    assert!(
        injected * 20 >= total,
        "only {injected} injections across {total} requests"
    );
    assert!(s.degraded > 0, "no request degraded: {s:?}");
    assert!(
        s.quarantined > 0,
        "no plan was quarantined by injected execute panics: {s:?}"
    );
    assert!(
        engine.planner().downgrades() > 0,
        "no compose-side downgrade: {s:?}"
    );
    assert!(s.rejected > 0 && s.hits > 0 && s.misses > 0, "{s:?}");

    // The storm — panics, rescues, quarantines and all — spawned no
    // threads beyond the shared pool.
    assert_eq!(
        lf_sim::pool::workers_spawned_total(),
        workers_before,
        "serving under chaos must not churn worker pools"
    );

    // --- Deadline scenario: the `failed` class, deterministic --------
    let strict = ServeEngine::new(
        ResilientPlanner::new(FixedCellPlanner::tuned(4)),
        ServeConfig {
            deadline_ms: Some(0),
            ..ServeConfig::default()
        },
    );
    let a = matrix(0xDEAD, n, 2000);
    let mut rng = Pcg32::seed_from_u64(0xFADE);
    let b = DenseMatrix::random(n, j, &mut rng);
    for _ in 0..5 {
        let err = strict.serve(&a, &b).unwrap_err();
        assert!(matches!(err, LfError::DeadlineExceeded { .. }), "{err}");
    }
    let ds = strict.stats();
    assert_eq!(ds.failed, 5);
    assert_eq!(ds.requests(), 5);
    assert_eq!(ds.cached_plans, 0, "expired requests cache nothing");
}
