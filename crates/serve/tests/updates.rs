//! Mutation tier: dynamic matrices behind [`MatrixHandle`] (DESIGN.md
//! §15).
//!
//! The contract under test: **a serve after an update is never stale.**
//! Every result served through a handle agrees with the handle's
//! *current* payload; cached plans either migrate to the new epoch
//! (bitwise-identical to a fresh compose) or are retired, and the
//! outcome ledger stays exact through arbitrary interleavings of
//! serves and updates.
//!
//! The mid-update kill scenarios (torn commit, aborted sweep, stale
//! disk record surviving a crash) are driven by seeded
//! `lf_check::chaos` injection and compile only with
//! `--features chaos`; the rest of the suite runs in tier 1. The chaos
//! plan is process-global, so every test here serializes on one gate.

use lf_serve::{FixedCellPlanner, MatrixHandle, ServeConfig, ServeEngine};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{CsrMatrix, DenseMatrix, EdgeUpdate, Pcg32};
use std::collections::HashSet;
use std::sync::Mutex;

/// Serializes every test in this binary: the chaos plan (and nothing
/// else) is process-global.
static GATE: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn matrix(seed: u64) -> CsrMatrix<f64> {
    let mut rng = Pcg32::seed_from_u64(seed);
    CsrMatrix::from_coo(&mixed_regions(128, 128, 2500, 4, &mut rng))
}

fn bits(m: &DenseMatrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn engine(config: ServeConfig) -> ServeEngine<f64, FixedCellPlanner> {
    ServeEngine::new(FixedCellPlanner::tuned(4), config)
}

fn assert_ledger_exact(e: &ServeEngine<f64, FixedCellPlanner>) {
    let s = e.stats();
    assert_eq!(
        s.requests(),
        s.hits + s.misses + s.rejected + s.degraded + s.failed,
        "ledger identity: {s:?}"
    );
}

/// Pattern-preserving value changes on the first `n` stored entries,
/// salted so consecutive batches produce different value hashes.
fn value_updates(csr: &CsrMatrix<f64>, n: usize, salt: u64) -> Vec<EdgeUpdate<f64>> {
    csr.iter()
        .take(n)
        .map(|(row, col, v)| EdgeUpdate::SetValue {
            row,
            col,
            value: v + 1.0 + salt as f64,
        })
        .collect()
}

/// One structural batch: delete the matrix's first stored entry and
/// insert into a column row 0 doesn't populate.
fn structural_updates(csr: &CsrMatrix<f64>) -> Vec<EdgeUpdate<f64>> {
    let (del_row, del_col, _) = csr.iter().next().expect("non-empty matrix");
    let row0: HashSet<usize> = csr
        .iter()
        .filter(|&(r, _, _)| r == 0)
        .map(|(_, c, _)| c)
        .collect();
    let free = (0..csr.cols())
        .find(|c| !(row0.contains(c) || del_row == 0 && *c == del_col))
        .expect("row 0 has a free column");
    vec![
        EdgeUpdate::Delete {
            row: del_row,
            col: del_col,
        },
        EdgeUpdate::Insert {
            row: 0,
            col: free,
            value: 2.5,
        },
    ]
}

#[test]
fn post_update_serve_is_never_stale_and_migrated_plans_are_bitwise_fresh() {
    let _g = locked();
    let e = engine(ServeConfig::default());
    let mut rng = Pcg32::seed_from_u64(0x11FE);
    let b = DenseMatrix::random(128, 8, &mut rng);
    let h = MatrixHandle::new(matrix(0x600)).unwrap();

    let cold = e.serve_handle(&h, &b).unwrap();
    assert!(!cold.hit);
    assert_eq!(h.epoch(), 0);

    // Five sequential batches — value-only and structural — each
    // followed by a serve that must answer the *new* payload.
    for round in 1..=5u64 {
        let snapshot = h.csr();
        let updates = if round % 2 == 0 {
            structural_updates(&snapshot)
        } else {
            value_updates(&snapshot, 8, round)
        };
        let out = e.apply_updates(&h, &updates).unwrap();
        assert_eq!(out.epoch, round, "epoch bumps once per batch");
        assert_eq!(out.fingerprint, h.fingerprint());
        // 128 rows sit far below the churn crossover (a rebuild pays a
        // full pool dispatch): the incremental path must be chosen and
        // the cached plan carried over.
        assert!(!out.rebuild, "round {round}: tiny matrix must migrate");
        assert_eq!(out.migrated, 1, "round {round}: cached plan migrates");
        assert!(out.swept, "round {round}: both tiers confirmed clean");
        assert!(h.retired().is_empty(), "round {round}: nothing pending");

        let want = h.csr().spmm_reference(&b).unwrap();
        let served = e.serve_handle(&h, &b).unwrap();
        assert!(
            served.hit,
            "round {round}: migrated plan must hit, not recompose"
        );
        assert!(served.compose.is_none());
        // Migration is bitwise: the migrated CELL equals a from-scratch
        // compose of the updated matrix, so the served product matches
        // a fresh engine's bit for bit.
        let fresh = engine(ServeConfig::default());
        let rebuilt = fresh.serve(&h.csr(), &b).unwrap();
        assert_eq!(
            bits(&served.result),
            bits(&rebuilt.result),
            "round {round}: migrated plan diverged from fresh compose"
        );
        assert!(
            served.result.approx_eq(&want, 1e-9),
            "round {round}: served result disagrees with the reference"
        );
    }
    let s = e.stats();
    assert!(s.stale_evicted >= 5, "every retired epoch swept: {s:?}");
    assert_ledger_exact(&e);
}

#[test]
fn rejected_update_batch_leaves_handle_and_cache_untouched() {
    let _g = locked();
    let e = engine(ServeConfig::default());
    let mut rng = Pcg32::seed_from_u64(0x22FE);
    let b = DenseMatrix::random(128, 8, &mut rng);
    let h = MatrixHandle::new(matrix(0x601)).unwrap();
    let cold = e.serve_handle(&h, &b).unwrap();
    let fp_before = h.fingerprint();

    // Every hostile shape must be refused atomically: out-of-range
    // coordinates, non-finite values, conflicts against the current
    // pattern, and duplicate targets within one batch.
    let (er, ec, _) = h.csr().iter().next().unwrap();
    let hostile: Vec<Vec<EdgeUpdate<f64>>> = vec![
        vec![EdgeUpdate::Delete { row: 999, col: 0 }],
        vec![EdgeUpdate::SetValue {
            row: er,
            col: ec,
            value: f64::NAN,
        }],
        vec![EdgeUpdate::Insert {
            row: er,
            col: ec,
            value: 1.0,
        }],
        vec![
            EdgeUpdate::SetValue {
                row: er,
                col: ec,
                value: 1.0,
            },
            EdgeUpdate::SetValue {
                row: er,
                col: ec,
                value: 2.0,
            },
        ],
    ];
    for (i, batch) in hostile.iter().enumerate() {
        let err = e.apply_updates(&h, batch).expect_err("hostile batch");
        assert!(err.is_rejection(), "batch {i}: typed rejection, got {err}");
    }
    assert_eq!(h.epoch(), 0, "rejected batches must not bump the epoch");
    assert_eq!(h.fingerprint(), fp_before);

    let again = e.serve_handle(&h, &b).unwrap();
    assert!(again.hit, "cached plan survives rejected updates");
    assert_eq!(bits(&again.result), bits(&cold.result));
    let s = e.stats();
    assert_eq!(s.stale_evicted, 0, "{s:?}");
    assert_ledger_exact(&e);
}

#[test]
fn update_sweeps_both_tiers_and_restart_serves_only_fresh_bytes() {
    let _g = locked();
    let dir = std::env::temp_dir().join(format!("lf-updates-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    };
    let mut rng = Pcg32::seed_from_u64(0x33FE);
    let b = DenseMatrix::random(128, 8, &mut rng);

    {
        let e = engine(config.clone());
        let h = MatrixHandle::new(matrix(0x602)).unwrap();
        e.serve_handle(&h, &b).unwrap();
        assert_eq!(e.snapshot().unwrap(), 1, "epoch-0 plan lands on disk");
        assert!(e.stats().store_bytes > 0);

        let out = e.apply_updates(&h, &structural_updates(&h.csr())).unwrap();
        assert!(out.swept);
        let s = e.stats();
        // One RAM entry and one disk record retired.
        assert!(s.stale_evicted >= 2, "{s:?}");
        assert_eq!(s.store_bytes, 0, "stale disk record must be deleted");

        let want = h.csr().spmm_reference(&b).unwrap();
        let served = e.serve_handle(&h, &b).unwrap();
        assert!(served.result.approx_eq(&want, 1e-9));
        assert_ledger_exact(&e);
    } // process "dies" with the handle

    // Restart: nothing stale to warm, and re-registering the updated
    // matrix serves right bytes from a fresh compose.
    let e = engine(config);
    let s = e.stats();
    assert_eq!(
        s.warm_loaded, 0,
        "no stale record survives the sweep: {s:?}"
    );
    assert_eq!(s.warm_rejected, 0, "{s:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Mid-update kill scenarios (chaos feature): a seeded fault tears the
// update at each boundary; the handle and both cache tiers must stay
// on exactly one epoch, and a restart must never serve stale bytes.
// ---------------------------------------------------------------------

#[cfg(feature = "chaos")]
mod mid_update_kill {
    use super::*;
    use lf_check::chaos::{self, ChaosPlan, ChaosSite};
    use liteform_core::LfError;

    fn always(site: ChaosSite) -> ChaosPlan {
        ChaosPlan::disabled(0x5EED_5151).with_rate(site, 1000)
    }

    #[test]
    fn torn_update_leaves_the_old_epoch_fully_intact() {
        let _g = locked();
        let e = engine(ServeConfig::default());
        let mut rng = Pcg32::seed_from_u64(0x44FE);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let h = MatrixHandle::new(matrix(0x603)).unwrap();
        let cold = e.serve_handle(&h, &b).unwrap();

        chaos::install(always(ChaosSite::UpdateTorn));
        let err = e
            .apply_updates(&h, &structural_updates(&h.csr()))
            .expect_err("torn update must surface");
        chaos::reset();
        assert!(matches!(err, LfError::ResourceExhausted { .. }), "{err}");

        // The kill hit between validation and commit: epoch, payload,
        // retired list, and the cached plan are all exactly pre-update.
        assert_eq!(h.epoch(), 0);
        assert!(h.retired().is_empty());
        let again = e.serve_handle(&h, &b).unwrap();
        assert!(again.hit, "old-epoch plan still serves");
        assert_eq!(
            bits(&again.result),
            bits(&cold.result),
            "torn update changed served bytes"
        );
        let s = e.stats();
        assert_eq!(s.stale_evicted, 0, "nothing was retired: {s:?}");
        assert_ledger_exact(&e);
    }

    #[test]
    fn aborted_sweep_keeps_the_retired_list_and_retries_clean() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("lf-updates-abort-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = engine(ServeConfig {
            store_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        });
        let mut rng = Pcg32::seed_from_u64(0x55FE);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let h = MatrixHandle::new(matrix(0x604)).unwrap();
        e.serve_handle(&h, &b).unwrap();
        assert_eq!(e.snapshot().unwrap(), 1);

        chaos::install(always(ChaosSite::EpochSweepAbort));
        let out = e.apply_updates(&h, &value_updates(&h.csr(), 6, 1)).unwrap();
        chaos::reset();
        assert!(!out.swept, "aborted sweep must report unclean");
        assert_eq!(h.retired().len(), 1, "fingerprint stays pending");
        // Stale entries are unreachable meanwhile: the serve answers the
        // new epoch via the migrated plan.
        let want = h.csr().spmm_reference(&b).unwrap();
        let served = e.serve_handle(&h, &b).unwrap();
        assert!(served.hit && served.result.approx_eq(&want, 1e-9));

        // The retry reclaims both tiers and clears the pending list.
        assert!(e.sweep_stale(&h), "retry must confirm clean");
        assert!(h.retired().is_empty());
        let s = e.stats();
        assert!(s.stale_evicted >= 2, "RAM entry + disk record: {s:?}");
        assert_eq!(s.store_bytes, 0, "{s:?}");
        assert_ledger_exact(&e);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_disk_record_after_a_kill_never_serves_wrong_bytes() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("lf-updates-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            store_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        };
        let mut rng = Pcg32::seed_from_u64(0x66FE);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let updated = {
            let e = engine(config.clone());
            let h = MatrixHandle::new(matrix(0x605)).unwrap();
            e.serve_handle(&h, &b).unwrap();
            assert_eq!(e.snapshot().unwrap(), 1);

            // The kill lands between the RAM and disk halves of the
            // sweep: RAM is clean, the stale record survives on disk,
            // and the handle still owes a sweep when the process dies.
            chaos::install(always(ChaosSite::StaleDiskRecord));
            let out = e.apply_updates(&h, &structural_updates(&h.csr())).unwrap();
            chaos::reset();
            assert!(!out.swept);
            assert!(!h.retired().is_empty(), "sweep debt survives to the kill");
            assert!(e.stats().store_bytes > 0, "stale record still on disk");
            h.csr()
        }; // "kill" with the sweep pending

        // Restart over the same directory. The leftover record is
        // self-consistent (it answers the *old* matrix content, keyed by
        // the old content fingerprint), so it may warm — but it can
        // never satisfy a lookup for the updated matrix.
        let e = engine(config);
        let s = e.stats();
        assert_eq!(s.warm_rejected, 0, "{s:?}");
        let h = MatrixHandle::new(updated.as_ref().clone()).unwrap();
        let want = h.csr().spmm_reference(&b).unwrap();
        let served = e.serve_handle(&h, &b).unwrap();
        assert!(
            !served.hit,
            "updated matrix must recompose, not reuse the stale record"
        );
        assert!(
            served.result.approx_eq(&want, 1e-9),
            "restart served wrong bytes"
        );
        assert_ledger_exact(&e);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
