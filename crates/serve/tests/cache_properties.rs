//! Cache-correctness properties of the serving engine.
//!
//! The contract: serving from the cache changes *when* work happens,
//! never *what* is computed. For deterministic plans (single-partition,
//! natural widths — the engine's atomic-free regime, proven bitwise
//! reproducible in `lf-kernels`' engine suite) a cache-hit serve must be
//! **bit-identical** to a cold compose+run, including after a full
//! eviction/re-admission cycle. Plans whose buckets update `C` through
//! atomics (multi-partition) accumulate in nondeterministic order — for
//! those the property is agreement within floating-point tolerance, the
//! same bound the kernel suite holds every engine path to.

use lf_serve::{FixedCellPlanner, Planner, ServeConfig, ServeEngine};
use lf_sparse::gen::PatternFamily;
use lf_sparse::{CsrMatrix, DenseMatrix, Pcg32};

fn bits(m: &DenseMatrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn random_case(seed: u64) -> (CsrMatrix<f64>, DenseMatrix<f64>) {
    let mut rng = Pcg32::seed_from_u64(seed);
    let fam = PatternFamily::ALL[rng.usize_in(0, PatternFamily::ALL.len())];
    let rows = rng.usize_in(30, 300);
    let cols = rng.usize_in(30, 300);
    let nnz = rng.usize_in(rows, rows * 12);
    let csr = CsrMatrix::from_coo(&fam.generate(rows, cols, nnz, &mut rng));
    let j = rng.usize_in(1, 40);
    let b = DenseMatrix::random(cols, j, &mut rng);
    (csr, b)
}

#[test]
fn hit_is_bit_identical_to_cold_compose_and_run() {
    // Deterministic regime: p=1, natural widths — no folding, no
    // atomics, bitwise-reproducible execution.
    let planner = FixedCellPlanner::natural(1);
    let engine = ServeEngine::new(planner.clone(), ServeConfig::default());
    for seed in 0..24u64 {
        let (csr, b) = random_case(seed);
        // Cold oracle: compose+run outside the engine.
        let want = Planner::<f64>::prepare(&planner, &csr, b.cols())
            .unwrap()
            .run(&b)
            .unwrap();
        let miss = engine.serve(&csr, &b).unwrap();
        let hit = engine.serve(&csr, &b).unwrap();
        assert!(!miss.hit && hit.hit, "seed {seed}");
        assert_eq!(bits(&miss.result), bits(&want), "cold serve, seed {seed}");
        assert_eq!(bits(&hit.result), bits(&want), "hit serve, seed {seed}");
    }
    let s = engine.stats();
    assert_eq!((s.hits, s.misses), (24, 24));
}

#[test]
fn hit_matches_cold_run_under_atomics_within_tolerance() {
    // Multi-partition plans accumulate through atomics; order varies
    // run-to-run, so the property is tight numeric agreement.
    let planner = FixedCellPlanner::tuned(4);
    let engine = ServeEngine::new(planner, ServeConfig::default());
    for seed in 100..116u64 {
        let (csr, b) = random_case(seed);
        let want = csr.spmm_reference(&b).unwrap();
        let miss = engine.serve(&csr, &b).unwrap();
        let hit = engine.serve(&csr, &b).unwrap();
        assert!(!miss.hit && hit.hit, "seed {seed}");
        assert!(miss.result.approx_eq(&want, 1e-9), "seed {seed}");
        assert!(hit.result.approx_eq(&want, 1e-9), "seed {seed}");
    }
}

#[test]
fn eviction_and_readmission_cycle_preserves_results_bitwise() {
    let planner = FixedCellPlanner::natural(1);
    // Same-shape matrices so both plans have comparable footprints and a
    // ~one-plan budget forces B's admission to evict A.
    let fixed_case = |seed: u64| {
        let mut rng = Pcg32::seed_from_u64(seed);
        let csr: CsrMatrix<f64> =
            CsrMatrix::from_coo(&lf_sparse::gen::mixed_regions(200, 200, 3000, 4, &mut rng));
        let b = DenseMatrix::random(200, 8, &mut rng);
        (csr, b)
    };
    let (csr_a, b_a) = fixed_case(7);
    // Probe the plan footprint so the budget holds roughly one plan.
    let probe = ServeEngine::new(planner.clone(), ServeConfig::default());
    probe.serve(&csr_a, &b_a).unwrap();
    let plan_bytes = probe.stats().cached_bytes;
    assert!(plan_bytes > 0);

    let engine = ServeEngine::new(
        planner,
        ServeConfig {
            shards: 1,
            byte_budget: plan_bytes + plan_bytes / 4,
            ..ServeConfig::default()
        },
    );
    let (csr_b, b_b) = fixed_case(8);

    let first = engine.serve(&csr_a, &b_a).unwrap();
    assert!(!first.hit);
    let hit = engine.serve(&csr_a, &b_a).unwrap();
    assert!(hit.hit);
    assert_eq!(bits(&first.result), bits(&hit.result));

    // B's admission evicts A (budget fits ~one plan)...
    engine.serve(&csr_b, &b_b).unwrap();
    let s = engine.stats();
    assert!(s.evictions >= 1, "evictions: {}", s.evictions);

    // ...and A's re-admission recomposes to the exact same answer.
    let readmitted = engine.serve(&csr_a, &b_a).unwrap();
    assert!(!readmitted.hit, "A must have been evicted");
    assert_eq!(
        bits(&readmitted.result),
        bits(&first.result),
        "re-admitted plan must reproduce the original bits"
    );
    let rehit = engine.serve(&csr_a, &b_a).unwrap();
    assert!(rehit.hit);
    assert_eq!(bits(&rehit.result), bits(&first.result));
}

#[test]
fn hits_never_change_results_across_many_interleavings() {
    // Interleave three matrices through a cache big enough for all,
    // asserting every serve of the same (matrix, B) yields the same bits
    // as its first serve (deterministic regime).
    let engine = ServeEngine::new(FixedCellPlanner::natural(1), ServeConfig::default());
    let cases: Vec<_> = (50..53u64).map(random_case).collect();
    let first: Vec<Vec<u64>> = cases
        .iter()
        .map(|(csr, b)| bits(&engine.serve(csr, b).unwrap().result))
        .collect();
    let mut rng = Pcg32::seed_from_u64(1234);
    for _ in 0..30 {
        let i = rng.usize_in(0, cases.len());
        let (csr, b) = &cases[i];
        let out = engine.serve(csr, b).unwrap();
        assert!(out.hit);
        assert_eq!(bits(&out.result), first[i]);
    }
    let s = engine.stats();
    assert_eq!(s.misses, 3);
    assert_eq!(s.hits, 30);
    assert_eq!(s.requests(), 33);
}
