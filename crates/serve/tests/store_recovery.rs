//! Crash-recovery tier for the tiered plan store (DESIGN.md §13).
//!
//! The contract under test: **after any crash, restart, or on-disk
//! corruption, the engine never serves wrong bytes.** Every result
//! served through a warmed, promoted, or recovered plan must be
//! bitwise identical to a fresh compose; records that fail strict
//! validation are skipped, counted, and recomposed — never served.
//!
//! The kill-point scenarios (mid-demotion, mid-manifest, mid-warm) are
//! driven by seeded `lf_check::chaos` injection and compile only with
//! `--features chaos`; the rest of the suite runs in tier 1. The chaos
//! plan is process-global, so every test here serializes on one gate.

use lf_serve::Fingerprint;
use lf_serve::{FixedCellPlanner, Placement, PlanStore, ServeConfig, ServeEngine, StoreConfig};
use lf_sparse::gen::mixed_regions;
use lf_sparse::{CsrMatrix, DenseMatrix, Pcg32};
use liteform_core::{LfError, PreparedPlan, PreprocessProfile};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes every test in this binary: the chaos plan (and nothing
/// else) is process-global, and the cheapest correct thing is to never
/// run two scenarios concurrently.
static GATE: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn matrix(seed: u64) -> CsrMatrix<f64> {
    let mut rng = Pcg32::seed_from_u64(seed);
    CsrMatrix::from_coo(&mixed_regions(128, 128, 2500, 4, &mut rng))
}

fn bits(m: &DenseMatrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A fresh scratch directory under the target-adjacent temp root.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lf-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn store_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    }
}

fn engine(config: ServeConfig) -> ServeEngine<f64, FixedCellPlanner> {
    ServeEngine::new(FixedCellPlanner::tuned(4), config)
}

/// Size of one cached plan for these matrices, measured once.
fn plan_bytes() -> usize {
    let probe = engine(ServeConfig::default());
    let mut rng = Pcg32::seed_from_u64(0x5123);
    let b = DenseMatrix::random(128, 8, &mut rng);
    probe.serve(&matrix(900), &b).unwrap();
    probe.stats().cached_bytes
}

#[test]
fn snapshot_then_restart_serves_identical_bits_from_a_warm_cache() {
    let _g = locked();
    let dir = scratch("restart");
    let mut rng = Pcg32::seed_from_u64(0xA11CE);
    let b = DenseMatrix::random(128, 8, &mut rng);

    let seeds = [1u64, 2, 3, 4];
    let mut cold_bits = Vec::new();
    {
        let a_engine = engine(store_config(&dir));
        for &s in &seeds {
            let out = a_engine.serve(&matrix(s), &b).unwrap();
            assert!(!out.hit);
            cold_bits.push(bits(&out.result));
        }
        let written = a_engine.snapshot().unwrap();
        assert_eq!(written, seeds.len(), "every cached plan is snapshot");
        assert!(a_engine.stats().store_bytes > 0);
    } // process "dies" here

    let b_engine = engine(store_config(&dir));
    let s = b_engine.stats();
    assert_eq!(
        s.warm_loaded as usize,
        seeds.len(),
        "restart warms every snapshot record: {s:?}"
    );
    assert_eq!(s.warm_rejected, 0, "{s:?}");
    for (&seed, cold) in seeds.iter().zip(&cold_bits) {
        let out = b_engine.serve(&matrix(seed), &b).unwrap();
        assert!(out.hit, "warmed plan must hit without recomposing");
        assert!(out.compose.is_none());
        assert_eq!(
            &bits(&out.result),
            cold,
            "seed {seed}: warmed plan served different bits than its own cold compose"
        );
    }
    let s = b_engine.stats();
    assert_eq!(s.hits as usize, seeds.len());
    assert_eq!(s.misses, 0, "no request recomposed after warm: {s:?}");
    assert_eq!(
        s.requests(),
        s.hits + s.misses + s.rejected + s.degraded + s.failed
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn demoted_then_promoted_plan_is_bitwise_identical_to_its_pre_demotion_self() {
    let _g = locked();
    let dir = scratch("demote-promote");
    let plan_bytes = plan_bytes();
    // One shard, room for ~1.5 plans: the second matrix demotes the
    // first to disk; re-requesting the first promotes it back.
    let e = engine(ServeConfig {
        shards: 1,
        byte_budget: plan_bytes + plan_bytes / 2,
        ..store_config(&dir)
    });
    let mut rng = Pcg32::seed_from_u64(0xBEEF);
    let b = DenseMatrix::random(128, 8, &mut rng);
    let (m1, m2) = (matrix(10), matrix(11));

    let before = e.serve(&m1, &b).unwrap();
    assert!(!before.hit);
    assert!(!e.serve(&m2, &b).unwrap().hit);
    let s = e.stats();
    assert!(s.evictions >= 1, "{s:?}");
    assert_eq!(s.demotions, s.evictions, "every eviction demoted: {s:?}");
    assert_eq!(s.evicted_bytes, 0, "no bytes dropped on the floor: {s:?}");

    let after = e.serve(&m1, &b).unwrap();
    assert!(after.hit, "promotion counts as a hit");
    assert!(after.compose.is_none(), "promotion does not recompose");
    assert_eq!(
        bits(&after.result),
        bits(&before.result),
        "demote→promote round trip changed served bits"
    );
    let s = e.stats();
    assert_eq!(s.disk_hits, 1, "{s:?}");
    assert_eq!(s.promotions, 1, "{s:?}");
    assert_eq!(s.warm_rejected, 0, "{s:?}");
    assert_eq!(
        s.requests(),
        s.hits + s.misses + s.rejected + s.degraded + s.failed
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn without_a_store_evicted_bytes_are_counted_as_dropped() {
    let _g = locked();
    let plan_bytes = plan_bytes();
    let e = engine(ServeConfig {
        shards: 1,
        byte_budget: plan_bytes + plan_bytes / 2,
        ..ServeConfig::default() // no store_dir
    });
    let mut rng = Pcg32::seed_from_u64(0xD00F);
    let b = DenseMatrix::random(128, 8, &mut rng);
    e.serve(&matrix(20), &b).unwrap();
    e.serve(&matrix(21), &b).unwrap();
    let s = e.stats();
    assert!(s.evictions >= 1, "{s:?}");
    assert_eq!(s.demotions, 0, "no disk tier to demote to: {s:?}");
    assert!(
        s.evicted_bytes as usize >= plan_bytes / 2,
        "dropped bytes must be charged: {s:?}"
    );
    assert_eq!(s.store_bytes, 0);
}

#[test]
fn corrupted_records_are_rejected_counted_and_recomposed_never_served() {
    let _g = locked();
    let mut rng = Pcg32::seed_from_u64(0xC0FE);
    let b = DenseMatrix::random(128, 8, &mut rng);
    let a = matrix(30);
    let want = a.spmm_reference(&b).unwrap();

    // Three corruption modes, each against a fresh snapshot.
    enum Mode {
        FlipPayload,
        Truncate,
        FlipHeader,
    }
    for (i, mode) in [Mode::FlipPayload, Mode::Truncate, Mode::FlipHeader]
        .into_iter()
        .enumerate()
    {
        let dir = scratch(&format!("corrupt-{i}"));
        {
            let writer = engine(store_config(&dir));
            writer.serve(&a, &b).unwrap();
            assert_eq!(writer.snapshot().unwrap(), 1);
        }
        let record = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "lfp"))
            .expect("snapshot wrote a record");
        let mut bytes = fs::read(&record).unwrap();
        let mid = bytes.len() / 2;
        match mode {
            Mode::FlipPayload => bytes[mid] ^= 0x10,
            Mode::Truncate => bytes.truncate(bytes.len() / 3),
            Mode::FlipHeader => bytes[0] ^= 0xff,
        }
        fs::write(&record, &bytes).unwrap();

        let reader = engine(store_config(&dir));
        let s = reader.stats();
        assert_eq!(s.warm_loaded, 0, "mode {i}: corrupt record warmed: {s:?}");
        assert_eq!(
            s.warm_rejected, 1,
            "mode {i}: rejection must be counted: {s:?}"
        );
        assert!(
            !record.exists(),
            "mode {i}: rejected record must be deleted"
        );
        // The matrix still serves — by fresh compose, with right bits.
        let out = reader.serve(&a, &b).unwrap();
        assert!(!out.hit, "mode {i}: nothing cached to hit");
        assert!(out.result.approx_eq(&want, 1e-9), "mode {i}: wrong bytes");
        let s = reader.stats();
        assert_eq!(s.disk_hits, 0, "mode {i}: {s:?}");
        assert_eq!(
            s.requests(),
            s.hits + s.misses + s.rejected + s.degraded + s.failed
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn stale_fingerprint_records_are_rejected_at_the_store() {
    let _g = locked();
    let dir = scratch("stale-fp");
    let store: PlanStore<f64> = PlanStore::open(StoreConfig {
        dir: dir.clone(),
        disk_budget_bytes: 0,
        placement: Placement::CostAware,
    })
    .unwrap();
    // A plan for matrix X filed under matrix Y's fingerprint: both CRCs
    // pass (the bytes are honest), but the fingerprint re-check must
    // catch the mismatch — this is the "stale record after the matrix
    // changed" case.
    let x = matrix(40);
    let y = matrix(41);
    let plan = PreparedPlan::from_csr(x, PreprocessProfile::default()).with_tuned_j(8);
    let fp_y = Fingerprint::of_csr(&y);
    store.put(&fp_y, 8, &plan, 1_000, 0).unwrap();
    let err = store.get(&fp_y, 8).unwrap_err();
    assert!(matches!(err, LfError::PlanDecode(_)), "{err}");
    assert!(err.to_string().contains("stale fingerprint"), "{err}");
    // Rejection is terminal: the record is gone, the next get misses.
    assert!(store.get(&fp_y, 8).unwrap().is_none());
    assert_eq!(store.records(), 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn disk_budget_evicts_by_placement_score() {
    let _g = locked();
    let dir = scratch("disk-budget");
    let plan = PreparedPlan::from_csr(matrix(50), PreprocessProfile::default()).with_tuned_j(8);
    let one_record = {
        let probe: PlanStore<f64> = PlanStore::open(StoreConfig {
            dir: dir.clone(),
            disk_budget_bytes: 0,
            placement: Placement::CostAware,
        })
        .unwrap();
        let fp = Fingerprint::of_csr(&matrix(50));
        probe.put(&fp, 8, &plan, 1, 0).unwrap();
        let b = probe.bytes() as usize;
        let _ = fs::remove_dir_all(&dir);
        b
    };
    let store: PlanStore<f64> = PlanStore::open(StoreConfig {
        dir: dir.clone(),
        disk_budget_bytes: one_record * 2 + one_record / 2,
        placement: Placement::CostAware,
    })
    .unwrap();
    // Three equal-size records with very different recompose value: the
    // cheap one must be the eviction victim.
    let m = matrix(50);
    let fp_a = Fingerprint::of_csr(&matrix(51));
    let fp_b = Fingerprint::of_csr(&matrix(52));
    let fp_c = Fingerprint::of_csr(&matrix(53));
    let plan = PreparedPlan::from_csr(m, PreprocessProfile::default()).with_tuned_j(8);
    store.put(&fp_a, 8, &plan, 50_000_000, 9).unwrap(); // hot + dear
    store.put(&fp_b, 8, &plan, 10, 0).unwrap(); // cheap throwaway
    store.put(&fp_c, 8, &plan, 40_000_000, 5).unwrap(); // forces eviction
    assert_eq!(store.records(), 2, "budget holds two records");
    assert!(store.bytes() as usize <= one_record * 2 + one_record / 2);
    // fp_b (cheap to recompose) was sacrificed; the dear ones survive.
    // Note get() runs the fingerprint re-check, which *fails* here by
    // construction (shared plan) — use the index instead.
    let kept: Vec<_> = store.warm_order().into_iter().map(|(k, _)| k.0).collect();
    assert!(kept.contains(&fp_a), "hot record evicted");
    assert!(kept.contains(&fp_c), "dear record evicted");
    assert!(!kept.contains(&fp_b), "cheap record must be the victim");
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Kill-point scenarios (chaos feature): a seeded fault tears the write
// at each durability boundary; recovery must come up clean and serve
// only right bytes.
// ---------------------------------------------------------------------

#[cfg(feature = "chaos")]
mod kill_points {
    use super::*;
    use lf_check::chaos::{self, ChaosPlan, ChaosSite};

    fn always(site: ChaosSite) -> ChaosPlan {
        ChaosPlan::disabled(0x5EED_4111).with_rate(site, 1000)
    }

    #[test]
    fn kill_mid_demotion_recovers_with_no_wrong_bytes() {
        let _g = locked();
        let dir = scratch("kill-demote");
        let plan_bytes = plan_bytes();
        let mut rng = Pcg32::seed_from_u64(0x1D1E);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let (m1, m2) = (matrix(60), matrix(61));
        let want1 = m1.spmm_reference(&b).unwrap();

        chaos::install(always(ChaosSite::DemoteTorn));
        {
            let e = engine(ServeConfig {
                shards: 1,
                byte_budget: plan_bytes + plan_bytes / 2,
                ..store_config(&dir)
            });
            e.serve(&m1, &b).unwrap();
            e.serve(&m2, &b).unwrap(); // evicts m1 → demotion tears
            let s = e.stats();
            assert!(s.evictions >= 1, "{s:?}");
            assert_eq!(s.demotions, 0, "every demotion write was torn: {s:?}");
            assert!(s.evicted_bytes > 0, "torn demotions drop bytes: {s:?}");
        } // "kill"
        chaos::reset();

        // The torn temp file is on disk; recovery must sweep it and
        // never surface it as a record.
        let torn: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(!torn.is_empty(), "scenario must actually tear a write");

        let e = engine(store_config(&dir));
        let s = e.stats();
        assert_eq!(
            s.warm_rejected, 0,
            "torn temps are swept, not records: {s:?}"
        );
        let no_tmp = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .all(|e| !e.file_name().to_string_lossy().ends_with(".tmp"));
        assert!(no_tmp, "recovery sweeps torn temp files");
        let out = e.serve(&m1, &b).unwrap();
        assert_eq!(
            bits(&out.result),
            bits(&want1),
            "recovered engine served wrong bytes"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_mid_manifest_keeps_committed_records_warm() {
        let _g = locked();
        let dir = scratch("kill-manifest");
        let mut rng = Pcg32::seed_from_u64(0x2D2E);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let a = matrix(62);

        let cold = {
            let e = engine(store_config(&dir));
            let cold = e.serve(&a, &b).unwrap();
            // The record commits; the manifest rewrite right after it
            // tears. snapshot must report the failure...
            chaos::install(always(ChaosSite::ManifestTorn));
            let res = e.snapshot();
            chaos::reset();
            assert!(res.is_err(), "torn manifest write must surface");
            cold
        }; // "kill" between record rename and manifest publish

        // ...but the record itself is durable: the manifest is advisory
        // and directory scan is ground truth, so recovery still warms
        // the plan — with default placement metadata at worst.
        let e = engine(store_config(&dir));
        let s = e.stats();
        assert_eq!(s.warm_loaded, 1, "committed record lost: {s:?}");
        assert_eq!(s.warm_rejected, 0, "{s:?}");
        let out = e.serve(&a, &b).unwrap();
        assert!(out.hit, "recovered record must serve as a hit");
        assert_eq!(
            bits(&out.result),
            bits(&cold.result),
            "recovered record served different bits than the cold compose"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_mid_warm_leaves_a_partial_but_correct_cache() {
        let _g = locked();
        let dir = scratch("kill-warm");
        let mut rng = Pcg32::seed_from_u64(0x3D3E);
        let b = DenseMatrix::random(128, 8, &mut rng);
        let seeds = [70u64, 71, 72];
        let mut cold_bits = Vec::new();
        {
            let e = engine(store_config(&dir));
            for &s in &seeds {
                cold_bits.push(bits(&e.serve(&matrix(s), &b).unwrap().result));
            }
            assert_eq!(e.snapshot().unwrap(), seeds.len());
        }

        // Warm aborts immediately — the engine comes up cold.
        chaos::install(always(ChaosSite::WarmAbort));
        let e = engine(store_config(&dir));
        chaos::reset();
        let s = e.stats();
        assert_eq!(s.warm_loaded, 0, "warm was aborted: {s:?}");

        // Every request still lands on the right bytes: the disk tier
        // answers on the miss path (promotion), not just at warm.
        for (&seed, cold) in seeds.iter().zip(&cold_bits) {
            let out = e.serve(&matrix(seed), &b).unwrap();
            assert!(out.hit, "seed {seed}: disk promotion must hit");
            assert_eq!(
                &bits(&out.result),
                cold,
                "seed {seed}: promoted plan diverged from its cold compose"
            );
        }
        let s = e.stats();
        assert_eq!(s.disk_hits as usize, seeds.len(), "{s:?}");
        assert_eq!(
            s.requests(),
            s.hits + s.misses + s.rejected + s.degraded + s.failed
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
