//! Model-checked verification of the poisoned-plan quarantine protocol.
//!
//! When a cached plan panics mid-execution, `ServeEngine` poisons its
//! slot and evicts it — and the protocol promises (engine.rs): the
//! eviction happens **exactly once** no matter how many concurrent
//! requests were running the plan, every holder comes back with a typed
//! error or a degraded result (never a hang), a poisoned slot is never
//! served again, and a *fresh* plan re-admitted under the same key is
//! never collateral damage of a stale quarantine (the `Arc::ptr_eq`
//! identity guard).
//!
//! This test re-states the protocol over `lf-check`'s instrumented
//! primitives and explores every bounded interleaving:
//!
//! * two concurrent holders of a panicking plan race the quarantine —
//!   in every schedule the eviction count is exactly 1, the byte
//!   accounting matches the map, both holders return, and the key
//!   recomposes cleanly afterwards;
//! * a quarantine racing a same-key capacity-eviction + re-admission
//!   never evicts the innocent replacement (the identity guard);
//! * the seeded broken variant — quarantine *without* the identity
//!   guard, the tempting "just remove the key" shortcut — is caught:
//!   there is a schedule where the stale quarantine evicts the fresh
//!   plan.

use lf_check::sync::thread::spawn_named;
use lf_check::sync::Mutex;
use lf_check::{model, Model};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Bytes charged per cached plan (all plans equal-sized in the model).
const PLAN_BYTES: usize = 100;

/// A stand-in for the engine's `PlanSlot`: `Arc` identity plus poison
/// flag. The flag is a plain `std` atomic (unmodeled): the checker
/// branches on the shard lock, which is where the protocol's races live.
struct Slot {
    poisoned: AtomicBool,
}

struct State {
    map: HashMap<u64, Arc<Slot>>,
    bytes: usize,
}

struct Cache {
    state: Mutex<State>,
    quarantined: AtomicUsize,
}

impl Cache {
    fn new() -> Self {
        Cache {
            state: Mutex::new(State {
                map: HashMap::new(),
                bytes: 0,
            }),
            quarantined: AtomicUsize::new(0),
        }
    }

    /// Compose a fresh plan and admit it (the model's miss path).
    // The two-step contains_key + insert deliberately mirrors
    // `ServeEngine::admit`'s shape — first insert wins.
    #[allow(clippy::map_entry)]
    fn compose_and_admit(&self, key: u64) -> Arc<Slot> {
        let slot = Arc::new(Slot {
            poisoned: AtomicBool::new(false),
        });
        let mut st = self.state.lock().unwrap();
        if !st.map.contains_key(&key) {
            st.map.insert(key, Arc::clone(&slot));
            st.bytes += PLAN_BYTES;
        }
        slot
    }

    /// The engine's lookup: poisoned entries are swept, never served.
    fn lookup(&self, key: u64) -> Option<Arc<Slot>> {
        let mut st = self.state.lock().unwrap();
        let slot = Arc::clone(st.map.get(&key)?);
        if slot.poisoned.load(Relaxed) {
            st.map.remove(&key);
            st.bytes -= PLAN_BYTES;
            return None;
        }
        Some(slot)
    }

    /// Capacity eviction of `key` (LRU stand-in).
    fn evict(&self, key: u64) {
        let mut st = self.state.lock().unwrap();
        if st.map.remove(&key).is_some() {
            st.bytes -= PLAN_BYTES;
        }
    }

    /// `ServeEngine::quarantine`: the poison swap elects exactly one
    /// winner; the identity guard keeps a same-key replacement alive.
    fn quarantine(&self, key: u64, slot: &Arc<Slot>) {
        if slot.poisoned.swap(true, Relaxed) {
            return;
        }
        self.quarantined.fetch_add(1, Relaxed);
        let mut st = self.state.lock().unwrap();
        let ours = st.map.get(&key).is_some_and(|e| Arc::ptr_eq(e, slot));
        if ours {
            st.map.remove(&key);
            st.bytes -= PLAN_BYTES;
        }
    }

    /// Seeded bug: the quarantine without its identity guard.
    fn quarantine_unguarded(&self, key: u64, slot: &Arc<Slot>) {
        if slot.poisoned.swap(true, Relaxed) {
            return;
        }
        self.quarantined.fetch_add(1, Relaxed);
        let mut st = self.state.lock().unwrap();
        if st.map.remove(&key).is_some() {
            st.bytes -= PLAN_BYTES;
        }
    }

    fn check_accounting(&self) {
        let st = self.state.lock().unwrap();
        assert_eq!(
            st.bytes,
            st.map.len() * PLAN_BYTES,
            "cache byte accounting diverged from contents"
        );
    }
}

/// Two concurrent requests are mid-execution on the same cached plan
/// when it panics for both: each runs the quarantine path. In every
/// schedule the plan is evicted exactly once, both callers return (a
/// hang would trip the model's wedge detector), the poisoned slot is
/// never served again, and the key recomposes cleanly.
#[test]
fn concurrent_panicking_hitters_quarantine_exactly_once() {
    let report = model(|| {
        let cache = Arc::new(Cache::new());
        let slot = cache.compose_and_admit(42);
        // Both requests already hold the plan (they hit, then the plan
        // panicked under them). Each reports the failure concurrently —
        // in the engine this is the path that hands back the typed
        // error / degraded result.
        let t = {
            let (cache, slot) = (Arc::clone(&cache), Arc::clone(&slot));
            spawn_named("hitter-b", move || cache.quarantine(42, &slot))
                .expect("spawn model thread")
        };
        cache.quarantine(42, &slot);
        t.join().unwrap();

        assert_eq!(
            cache.quarantined.load(Relaxed),
            1,
            "quarantine must be exactly-once across all holders"
        );
        cache.check_accounting();
        assert!(
            cache.lookup(42).is_none(),
            "a poisoned plan must never be served again"
        );
        // The key itself is not tainted: a later miss recomposes.
        let fresh = cache.compose_and_admit(42);
        assert!(!fresh.poisoned.load(Relaxed));
        let served = cache.lookup(42).expect("fresh plan must serve");
        assert!(Arc::ptr_eq(&served, &fresh));
        cache.check_accounting();
    });
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// A quarantine racing a capacity-eviction + same-key re-admission: the
/// identity guard must keep the innocent replacement plan cached in
/// every schedule.
#[test]
fn stale_quarantine_never_evicts_a_replacement_plan() {
    let report = model(|| {
        let cache = Arc::new(Cache::new());
        let old = cache.compose_and_admit(7);
        let t = {
            let (cache, old) = (Arc::clone(&cache), Arc::clone(&old));
            spawn_named("panicker", move || cache.quarantine(7, &old)).expect("spawn model thread")
        };
        // Concurrently: the old entry churns out under capacity pressure
        // and a fresh plan for the same key is admitted.
        cache.evict(7);
        let fresh = cache.compose_and_admit(7);
        t.join().unwrap();

        let st = cache.state.lock().unwrap();
        let cached = st.map.get(&7);
        assert!(
            cached.is_some_and(|s| Arc::ptr_eq(s, &fresh)),
            "stale quarantine evicted an innocent replacement plan"
        );
        drop(st);
        cache.check_accounting();
    });
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// Drop the identity guard and the checker must find the schedule where
/// the stale quarantine destroys the replacement plan.
#[test]
fn unguarded_quarantine_is_caught() {
    let checker = Model {
        wedge_timeout: Duration::from_secs(2),
        ..Model::default()
    };
    let result = catch_unwind(AssertUnwindSafe(move || {
        checker.check(|| {
            let cache = Arc::new(Cache::new());
            let old = cache.compose_and_admit(7);
            let t = {
                let (cache, old) = (Arc::clone(&cache), Arc::clone(&old));
                spawn_named("panicker", move || cache.quarantine_unguarded(7, &old))
                    .expect("spawn model thread")
            };
            cache.evict(7);
            let fresh = cache.compose_and_admit(7);
            t.join().unwrap();
            let st = cache.state.lock().unwrap();
            assert!(
                st.map.get(&7).is_some_and(|s| Arc::ptr_eq(s, &fresh)),
                "stale quarantine evicted an innocent replacement plan"
            );
        });
    }));
    let msg = match result {
        Ok(()) => panic!("the checker must catch the unguarded quarantine"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
    };
    assert!(msg.contains("innocent"), "unexpected failure: {msg}");
}
