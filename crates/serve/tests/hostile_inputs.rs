//! Hostile-input suite: the serving engine's ingress contract.
//!
//! Malformed payloads (broken row-pointer monotonicity, out-of-range
//! column indices, length mismatches, non-finite values) must be
//! rejected with a typed [`LfError::InvalidInput`] **before** the
//! fingerprinter or the cache is touched: no cache entry, no hit/miss
//! counter movement, only the `rejected` ledger class — and never a
//! panic or a wrong answer. The malformed corpus is the same 12-class
//! rotation the kernel differential fuzzer draws from
//! (`lf_sparse::gen::fuzz_case`), so the two suites share one definition
//! of "hostile".

use lf_serve::{FixedCellPlanner, MatrixHandle, ServeConfig, ServeEngine};
use lf_sparse::gen::{fuzz_case, FUZZ_CLASSES, MALFORMED_CLASS};
use lf_sparse::{CsrMatrix, DenseMatrix, Pcg32};
use liteform_core::LfError;

fn engine() -> ServeEngine<f64, FixedCellPlanner> {
    ServeEngine::new(FixedCellPlanner::tuned(4), ServeConfig::default())
}

/// Every malformed corpus case is rejected with a typed error and zero
/// cache-side effects — across enough seeds to hit all corruption
/// sub-modes.
#[test]
fn malformed_payloads_are_typed_rejections_with_no_cache_effects() {
    let e = engine();
    let mut rejected = 0u64;
    for k in 0..32u64 {
        let case = fuzz_case::<f64>(MALFORMED_CLASS + k * FUZZ_CLASSES);
        assert!(case.malformed);
        let b = DenseMatrix::<f64>::zeros(case.csr.cols(), case.j.max(1));
        let err = e
            .serve(&case.csr, &b)
            .expect_err(&format!("[{}] must be rejected", case.label));
        assert!(
            matches!(err, LfError::InvalidInput(_)),
            "[{}] wrong error class: {err}",
            case.label
        );
        assert!(err.is_rejection());
        rejected += 1;

        let s = e.stats();
        assert_eq!(s.rejected, rejected, "[{}]", case.label);
        assert_eq!(
            (s.hits, s.misses, s.degraded, s.failed),
            (0, 0, 0, 0),
            "[{}] hostile input moved a non-rejection counter",
            case.label
        );
        assert_eq!(
            s.cached_plans, 0,
            "[{}] hostile input was cached",
            case.label
        );
        assert_eq!(s.requests(), rejected, "[{}] ledger identity", case.label);
    }
}

/// The full fuzz rotation through the engine: well-formed cases serve
/// correctly, malformed cases reject typed — one process, no panics.
#[test]
fn fuzz_corpus_differential_serve_never_panics() {
    let e = engine();
    for seed in 0..4 * FUZZ_CLASSES {
        let case = fuzz_case::<f64>(seed);
        let mut rng = Pcg32::new(seed, 0x5E12);
        let b = DenseMatrix::random(case.csr.cols(), case.j.max(1), &mut rng);
        match e.serve(&case.csr, &b) {
            Ok(out) => {
                assert!(!case.malformed, "seed {seed} [{}] must reject", case.label);
                let want = case.csr.spmm_reference(&b).unwrap();
                assert!(
                    out.result.approx_eq(&want, 1e-9),
                    "seed {seed} [{}]: served result diverges",
                    case.label
                );
            }
            Err(err) => {
                assert!(
                    case.malformed,
                    "seed {seed} [{}] rejected a valid payload: {err}",
                    case.label
                );
                assert!(matches!(err, LfError::InvalidInput(_)), "{err}");
            }
        }
    }
    let s = e.stats();
    assert_eq!(
        s.requests(),
        s.hits + s.misses + s.rejected + s.degraded + s.failed
    );
    assert!(s.rejected >= 4, "the malformed class rotated through");
    assert_eq!((s.degraded, s.failed), (0, 0), "no faults were injected");
}

/// Handle registration applies the strict policy up front: a malformed
/// matrix never becomes a handle (so `serve_handle` can skip
/// re-validation), and a valid one round-trips.
#[test]
fn handle_registration_rejects_malformed_matrices() {
    for k in 0..8u64 {
        let case = fuzz_case::<f64>(MALFORMED_CLASS + k * FUZZ_CLASSES);
        let err = MatrixHandle::new(case.csr).expect_err(case.label);
        assert!(matches!(err, LfError::InvalidInput(_)), "{err}");
    }
    let ok = fuzz_case::<f64>(0);
    assert!(!ok.malformed);
    MatrixHandle::new(ok.csr).expect("valid matrix must register");
}

/// The strict NaN policy is the handle's even when the engine is
/// lenient; raw payloads follow the engine's config.
#[test]
fn nan_policy_is_strict_for_handles_lenient_only_for_raw_serves() {
    let nan_matrix =
        || CsrMatrix::from_raw_unchecked(2, 2, vec![0, 1, 2], vec![0, 1], vec![f64::NAN, 1.0]);
    assert!(MatrixHandle::new(nan_matrix()).is_err());

    let lenient = ServeEngine::new(
        FixedCellPlanner::tuned(4),
        ServeConfig {
            reject_nonfinite: false,
            ..ServeConfig::default()
        },
    );
    let b = DenseMatrix::<f64>::zeros(2, 3);
    let out = lenient.serve(&nan_matrix(), &b).unwrap();
    assert!(out.result.get(0, 0).is_nan(), "NaN propagates IEEE-style");
}
