//! Model-checked verification of the worker pool's broadcast protocol.
//!
//! Only compiled with `--features check`: the pool's sync primitives then
//! come from `lf-check`, and every scenario below is explored over all
//! bounded thread interleavings (preemption-bounded DFS) instead of the
//! one schedule the OS happens to pick.
//!
//! Proven here:
//!
//! * the publish / slot-win / latch / unpublish / `wait_idle` protocol
//!   never lets a worker touch a job whose submitting frame died
//!   (the `Job::alive` liveness witness), across two workers and two
//!   consecutive regions, and no body runs after `broadcast` returns;
//! * a panicking submitter body still unpublishes and drains the region
//!   (the PR-2 fix), leaving the pool reusable, in *every* schedule;
//! * a panicking worker body propagates to the submitter in every
//!   schedule;
//! * with the fix reverted (`broadcast_reverted`), the checker
//!   re-discovers the original submitter-panic use-after-free;
//! * skipping the drain after a cancelled region
//!   (`broadcast_cancelled_no_drain`) is likewise rediscovered as a
//!   use-after-free: a cancelled region must `wait_idle` exactly like a
//!   completed one before its job slot is reused.

#![cfg(feature = "check")]

use lf_check::{model, Model};
use lf_sim::pool::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

fn failure_message<T>(result: std::thread::Result<T>) -> String {
    let payload = match result {
        Ok(_) => panic!("the model must find the seeded bug"),
        Err(p) => p,
    };
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

fn on_worker() -> bool {
    std::thread::current().name() == Some("lf-pool-worker")
}

/// The core protocol proof: two workers, two consecutive regions. In
/// every explored schedule each region's body runs at least once (the
/// submitter always participates), no body call is observed after its
/// `broadcast` returned, and the liveness witness never fires.
///
/// Bodies use plain `std` atomics (unmodeled): the checker only branches
/// on the pool's own sync operations, which is exactly the protocol
/// under test and keeps the schedule space tractable.
#[test]
fn pool_protocol_two_workers_two_regions() {
    let report = model(|| {
        let pool = ThreadPool::new(2);
        for _region in 0..2 {
            let runs = Arc::new(AtomicUsize::new(0));
            let done = Arc::new(AtomicBool::new(false));
            {
                let (runs, done) = (Arc::clone(&runs), Arc::clone(&done));
                pool.broadcast(2, &move || {
                    assert!(!done.load(Relaxed), "body ran after broadcast returned");
                    runs.fetch_add(1, Relaxed);
                });
            }
            done.store(true, Relaxed);
            let r = runs.load(Relaxed);
            assert!((1..=3).contains(&r), "region ran {r} bodies");
        }
        drop(pool); // must join both workers in every schedule
    });
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// A submitter-side body panic must, in every schedule, unpublish the
/// job, drain joined workers, and leave the pool fully reusable — the
/// protocol obligation whose absence is re-discovered by
/// [`reverted_fix_use_after_free_is_rediscovered`].
#[test]
fn submitter_panic_is_safe_in_all_schedules() {
    let report = model(|| {
        let pool = ThreadPool::new(1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(1, &|| {
                if !on_worker() {
                    panic!("submitter body panic");
                }
            });
        }));
        assert!(caught.is_err(), "submitter panic must propagate");
        // The pool must still work: the dead job was unpublished, the
        // worker is parked again, nothing dangles.
        let runs = AtomicUsize::new(0);
        pool.broadcast(1, &|| {
            runs.fetch_add(1, Relaxed);
        });
        assert!(runs.load(Relaxed) >= 1);
        drop(pool);
    });
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// A worker-side body panic must reach the submitter in every schedule.
/// The bodies handshake over the model's own mutex/condvar so the worker
/// provably joins the region (no spin-waits: those would unboundedly
/// grow the schedule space).
#[test]
fn worker_panic_propagates_in_all_schedules() {
    let report = model(|| {
        let pool = ThreadPool::new(1);
        let entered = Arc::new((
            lf_check::sync::Mutex::new(false),
            lf_check::sync::Condvar::new(),
        ));
        let caught = {
            let entered = Arc::clone(&entered);
            catch_unwind(AssertUnwindSafe(|| {
                pool.broadcast(1, &move || {
                    let (flag, cv) = &*entered;
                    if on_worker() {
                        *flag.lock().unwrap() = true;
                        cv.notify_all();
                        panic!("worker body panic");
                    }
                    // Submitter: hold the region open until the worker
                    // joined, so the panic lands inside this job.
                    let mut g = flag.lock().unwrap();
                    while !*g {
                        g = cv.wait(g).unwrap();
                    }
                });
            }))
        };
        let msg = failure_message(caught.map_err(|p| -> Box<dyn std::any::Any + Send> { p }));
        assert!(msg.contains("worker body panic"), "got: {msg}");
        // The worker caught its own unwind and keeps serving.
        let runs = AtomicUsize::new(0);
        pool.broadcast(1, &|| {
            runs.fetch_add(1, Relaxed);
        });
        assert!(runs.load(Relaxed) >= 1);
        drop(pool);
    });
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// Revert the PR-2 fix and the checker must find the bug again: with the
/// unpublish + `wait_idle` epilogue in straight-line code instead of a
/// drop guard, a submitter panic skips it, and the schedule where the
/// worker wins the job slot *after* the submitting frame died trips the
/// `Job::alive` use-after-free witness.
#[test]
fn reverted_fix_use_after_free_is_rediscovered() {
    let checker = Model {
        // The failing schedule leaves a really-dead worker behind; keep
        // the post-failure drain window short.
        wedge_timeout: Duration::from_secs(5),
        ..Model::default()
    };
    let msg = failure_message(catch_unwind(AssertUnwindSafe(move || {
        checker.check(|| {
            let pool = ThreadPool::new(1);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.broadcast_reverted(1, &|| {
                    if !on_worker() {
                        panic!("submitter body panic");
                    }
                });
            }));
            assert!(caught.is_err(), "submitter panic must propagate");
            drop(pool);
        });
    })));
    assert!(msg.contains("use-after-free"), "unexpected failure: {msg}");
}

/// Skip the drain after a "cancelled" region (the tempting optimization:
/// its workers will exit on their own, why wait?) and the checker must
/// find the window: a worker that won the job slot just before the
/// unpublish trips one of the two `Job::alive` witness checks — it
/// either hasn't entered the body when the submitting frame dies, or is
/// still inside it. Either way the real protocol's `wait_idle` is what
/// prevents a use-after-free, so cancelled regions must drain before the
/// slot is reused.
#[test]
fn skipped_drain_after_cancelled_region_is_rediscovered() {
    let checker = Model {
        // The failing schedule kills the lone worker; keep the
        // post-failure drain window short.
        wedge_timeout: Duration::from_secs(5),
        ..Model::default()
    };
    let msg = failure_message(catch_unwind(AssertUnwindSafe(move || {
        checker.check(|| {
            // The body outlives the pool so the *test* never dangles; the
            // `alive` witness models the frame death that would occur in
            // real code (borrowed closure + chunk counter on the dead
            // submitting frame).
            let body = || {};
            let pool = ThreadPool::new(1);
            pool.broadcast_cancelled_no_drain(1, &body);
            drop(pool);
        });
    })));
    assert!(msg.contains("use-after-free"), "unexpected failure: {msg}");
}
