//! End-to-end happens-before validation of the pool protocol.
//!
//! Only meaningful with `--features check`: the hb hooks live in the
//! instrumented `lf-check` primitives, and the pool's publish / slot /
//! latch protocol is built on `crate::sync`. Without the feature the
//! shims are plain `std` types with no hooks, and the detector would
//! see the `Tracked` accesses with no edges at all.
//!
//! The test is the positive complement of the seeded-race tests in
//! `lf-check`: a real `parallel_for` region writing disjoint cells must
//! come out race-free, which certifies the whole edge chain — submitter
//! publishes the job under the state mutex (submitter → worker), each
//! worker's exit decrements the active latch under its mutex (worker →
//! submitter), so every cell write is ordered against the submitter's
//! later reads.
#![cfg(feature = "check")]

use lf_sim::parallel::parallel_for;
use lf_sim::sync::hb::{self, Tracked};
use std::sync::Arc;

#[test]
fn pool_region_orders_disjoint_writes() {
    let session = hb::session();
    let cells: Vec<Arc<Tracked<u64>>> = (0..64)
        .map(|_| Arc::new(Tracked::new("pool-cell", 0)))
        .collect();
    {
        let cells = &cells;
        parallel_for(cells.len(), 4, move |i| {
            cells[i].write(|v| *v = i as u64 + 1);
        });
    }
    let sum: u64 = cells.iter().map(|c| c.read(|v| *v)).sum();
    assert_eq!(sum, (1..=64).sum::<u64>());
    let races = session.finish();
    assert!(
        races.is_empty(),
        "pool protocol must order every cell write against the \
         submitter's reads: {races:?}"
    );
}

#[test]
fn back_to_back_regions_stay_ordered() {
    let session = hb::session();
    let cell = Arc::new(Tracked::new("reused-cell", 0u64));
    for _ in 0..8 {
        let cell = &cell;
        // Every region's lone index writes the same cell; regions are
        // serialized by the latch, so no two writes may race even
        // though different pool workers execute them.
        parallel_for(4, 4, move |i| {
            if i == 0 {
                cell.write(|v| *v += 1);
            }
        });
    }
    assert_eq!(cell.read(|v| *v), 8);
    let races = session.finish();
    assert!(races.is_empty(), "regions are latch-serialized: {races:?}");
}
