//! The execution engine's synchronization primitives, switchable to the
//! `lf-check` model-checked versions.
//!
//! Default build: zero-cost re-exports of `std::sync`, so the pool pays
//! nothing for checkability. With `--features check`: `lf-check`'s
//! instrumented primitives, which hand the model checker a scheduling
//! decision at every operation *inside a model run* and transparently
//! delegate to `std` outside one — a `check`-featured build still runs
//! the whole ordinary test suite.
//!
//! Only protocol-relevant state goes through this module (the pool's
//! state mutex/condvar, the job latch, slot and liveness atomics). Hot
//! numeric-path atomics (`atomicf`, chunk counters) intentionally stay
//! on `std`: they are data-plane, their correctness is covered by the
//! shadow race detector and differential tests, and modeling them would
//! blow up the schedule space.

/// The happens-before race-detector surface (`lf_check::hb`). Always
/// available — `lf-check` is an unconditional dependency — but the
/// shim hooks that feed it lock/atomic/spawn edges only exist in the
/// instrumented primitives, so meaningful sessions require
/// `--features check`. Hooks are no-ops while no session is active.
pub use lf_check::hb;

#[cfg(not(feature = "check"))]
pub use std::sync::atomic::{AtomicBool, AtomicUsize};
#[cfg(not(feature = "check"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(feature = "check")]
pub use lf_check::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, MutexGuard};

#[cfg(feature = "check")]
pub use lf_check::sync::thread;

/// Thread spawning with a name, mirroring the `lf_check::sync::thread`
/// surface so pool code is identical under both builds.
#[cfg(not(feature = "check"))]
pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawn a named OS thread.
    pub fn spawn_named<F, T>(name: &str, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::Builder::new().name(name.to_string()).spawn(f)
    }
}
