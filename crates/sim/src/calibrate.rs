//! One-time measured machine calibration for the execution engine's
//! tuning decisions.
//!
//! The tile search in `lf-cost` and the scatter crossover in
//! `lf-kernels::batch` both need a handful of machine constants: how fast
//! an L1-resident accumulate loop runs per element (scalar vs. lane-
//! unrolled), how much an L1-overflowing working set slows it down, how
//! fast a straight `memcpy` streams, and what one pool-region dispatch
//! costs. Rather than bake in numbers from one development box, this
//! module measures them **once per process** on first use (a few
//! milliseconds total) and caches the result in a `OnceLock`.
//!
//! Every measured coefficient is clamped to a generous sane range so a
//! noisy VM or a preempted first run can never produce a calibration
//! that breaks tuning decisions outright — the consumers only ever use
//! these numbers to *rank* candidates, never for correctness.

use std::sync::OnceLock;
use std::time::Instant;

/// Measured machine constants (all nanoseconds unless noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// ns per accumulated element for the scalar `acc[s] += a * b[s]`
    /// loop over an L1-resident strip.
    pub axpy_scalar_ns: f64,
    /// ns per accumulated element for the 4-lane unrolled loop.
    pub axpy_x4_ns: f64,
    /// ns per accumulated element for the 8-lane unrolled loop (the
    /// widest portable microkernel shape).
    pub axpy_x8_ns: f64,
    /// Multiplier on the axpy cost when the blocked working set
    /// (`k_block × j_tile × elem`) overflows L1 (measured, >= 1).
    pub l1_spill_factor: f64,
    /// ns per element for a serial row `memcpy` (8-byte elements).
    pub copy_ns: f64,
    /// ns to dispatch and join one (near-empty) pool parallel region.
    pub pool_dispatch_ns: f64,
    /// L1 data-cache budget in bytes the tile search plans against
    /// (conservative: half the typical 32–48 KiB so `B` strips coexist
    /// with the accumulator tile and streamed index arrays).
    pub l1_budget_bytes: usize,
}

impl Calibration {
    /// A fixed fallback model (used only to clamp nonsense measurements;
    /// roughly a 2 GHz core with SSE2 baseline codegen).
    pub fn default_model() -> Self {
        Calibration {
            axpy_scalar_ns: 0.60,
            axpy_x4_ns: 0.30,
            axpy_x8_ns: 0.15,
            l1_spill_factor: 1.5,
            copy_ns: 0.12,
            pool_dispatch_ns: 4_000.0,
            l1_budget_bytes: 16 * 1024,
        }
    }
}

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Scalar accumulate: the exact shape of the kernels' pre-SIMD inner
/// loops.
fn axpy_scalar(acc: &mut [f32], a: f32, b: &[f32]) {
    for (cv, &bv) in acc.iter_mut().zip(b) {
        *cv += a * bv;
    }
}

/// `LANES`-unrolled accumulate, the portable microkernel shape. The
/// baseline build autovectorizes this to the target's default vector
/// width; on x86_64 with AVX2 available the real microkernels run a
/// `#[target_feature]` clone, measured separately below.
#[inline(always)]
fn axpy_lanes<const LANES: usize>(acc: &mut [f32], a: f32, b: &[f32]) {
    let n = acc.len().min(b.len());
    let mut s = 0;
    while s + LANES <= n {
        let mut r = [0.0f32; LANES];
        for l in 0..LANES {
            r[l] = acc[s + l] + a * b[s + l];
        }
        acc[s..s + LANES].copy_from_slice(&r);
        s += LANES;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn axpy_lanes_avx2<const LANES: usize>(acc: &mut [f32], a: f32, b: &[f32]) {
    axpy_lanes::<LANES>(acc, a, b)
}

fn axpy_lanes_dispatch<const LANES: usize>(acc: &mut [f32], a: f32, b: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { axpy_lanes_avx2::<LANES>(acc, a, b) };
        return;
    }
    axpy_lanes::<LANES>(acc, a, b);
}

/// Rows per block in the blocked-accumulate measurement (mirrors the
/// kernels' typical gathered k-block depth).
const BLOCK_K: usize = 8;

/// Blocked accumulate — the *gather engine's* microkernel shape: load a
/// `LANES × GROUPS` register strip from `acc` once, sweep `BLOCK_K`
/// source rows through it, store once. This is the structure whose
/// per-element cost the tile search compares across lane widths; a plain
/// k=1 axpy cannot see the register-blocking advantage of wider strips
/// (the k-loop amortizes the acc load/store and loop overhead).
///
/// # Safety
///
/// Every `rows[i]` must be at least `acc.len()` elements long
/// (debug-asserted) — unchecked indexing mirrors the production
/// microkernel so the measurement sees the same codegen.
#[inline(always)]
unsafe fn axpy_block<const LANES: usize, const GROUPS: usize>(
    acc: &mut [f32],
    coeffs: &[f32; BLOCK_K],
    rows: &[&[f32]; BLOCK_K],
) {
    debug_assert!(rows.iter().all(|r| r.len() >= acc.len()));
    let n = acc.len();
    let strip = LANES * GROUPS;
    let mut s = 0;
    while s + strip <= n {
        let mut r = [[0.0f32; LANES]; GROUPS];
        for (g, rg) in r.iter_mut().enumerate() {
            for (l, rv) in rg.iter_mut().enumerate() {
                // SAFETY: s + strip <= n == acc.len().
                *rv = unsafe { *acc.get_unchecked(s + g * LANES + l) };
            }
        }
        for i in 0..BLOCK_K {
            let a = coeffs[i];
            let row = rows[i];
            for (g, rg) in r.iter_mut().enumerate() {
                for (l, rv) in rg.iter_mut().enumerate() {
                    // SAFETY: s + strip <= n <= row.len() (caller
                    // contract, debug-asserted above).
                    *rv += a * unsafe { *row.get_unchecked(s + g * LANES + l) };
                }
            }
        }
        for (g, rg) in r.iter().enumerate() {
            for (l, rv) in rg.iter().enumerate() {
                // SAFETY: s + strip <= n == acc.len().
                unsafe { *acc.get_unchecked_mut(s + g * LANES + l) = *rv };
            }
        }
        s += strip;
    }
}

/// # Safety
///
/// Forwarded caller contract from [`axpy_block`] (row lengths).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_block_avx2<const LANES: usize, const GROUPS: usize>(
    acc: &mut [f32],
    coeffs: &[f32; BLOCK_K],
    rows: &[&[f32]; BLOCK_K],
) {
    // SAFETY: forwarded caller contract (row lengths).
    unsafe { axpy_block::<LANES, GROUPS>(acc, coeffs, rows) }
}

/// # Safety
///
/// Forwarded caller contract from [`axpy_block`] (row lengths).
unsafe fn axpy_block_dispatch<const LANES: usize, const GROUPS: usize>(
    acc: &mut [f32],
    coeffs: &[f32; BLOCK_K],
    rows: &[&[f32]; BLOCK_K],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime; row-length
        // contract forwarded from the caller.
        unsafe { axpy_block_avx2::<LANES, GROUPS>(acc, coeffs, rows) };
        return;
    }
    // SAFETY: forwarded caller contract (row lengths).
    unsafe { axpy_block::<LANES, GROUPS>(acc, coeffs, rows) }
}

fn measure() -> Calibration {
    let d = Calibration::default_model();

    // --- accumulate loops over an L1-resident strip -------------------
    const STRIP: usize = 1024; // 4 KiB acc + 4 KiB b: comfortably L1
    const SWEEPS: usize = 256;
    let mut acc = vec![0.0f32; STRIP];
    let src: Vec<f32> = (0..STRIP).map(|i| (i % 13) as f32 * 0.25).collect();
    let elems = (STRIP * SWEEPS) as f64;
    let per_elem = |ns: f64| ns / elems;

    let scalar = per_elem(best_ns(5, || {
        for k in 0..SWEEPS {
            axpy_scalar(&mut acc, 1.0 + k as f32 * 1e-7, &src);
        }
        std::hint::black_box(&acc);
    }));
    // Flat k=1 strip sweep for the wide path — used only to normalize
    // the spill measurement below (same shape, bigger working set).
    let x8_flat = per_elem(best_ns(5, || {
        for k in 0..SWEEPS {
            axpy_lanes_dispatch::<8>(&mut acc, 1.0 + k as f32 * 1e-7, &src);
        }
        std::hint::black_box(&acc);
    }));

    // --- blocked accumulate: the gather engine's real shape -----------
    // The wide engines never run k=1 axpy: they sweep a k-block of
    // gathered rows through a resident register strip, so the strip
    // width's real lever — amortizing per-k row/coefficient loads and
    // loop overhead across more accumulators — only shows up here.
    // 1 KiB acc + BLOCK_K x 1 KiB rows: ~9 KiB, L1-resident.
    const BSTRIP: usize = 256;
    const BSWEEPS: usize = 128;
    let mut bacc = vec![0.0f32; BSTRIP];
    let bsrc: Vec<f32> = (0..BSTRIP * BLOCK_K)
        .map(|i| (i % 11) as f32 * 0.5)
        .collect();
    let rows: [&[f32]; BLOCK_K] = std::array::from_fn(|i| &bsrc[i * BSTRIP..(i + 1) * BSTRIP]);
    let coeffs: [f32; BLOCK_K] = std::array::from_fn(|i| 1.0 + i as f32 * 1e-3);
    let belems = (BSTRIP * BLOCK_K * BSWEEPS) as f64;
    let x4 = best_ns(5, || {
        for _ in 0..BSWEEPS {
            // SAFETY: every row slice is exactly BSTRIP == bacc.len().
            unsafe { axpy_block_dispatch::<4, 8>(&mut bacc, &coeffs, &rows) };
        }
        std::hint::black_box(&bacc);
    }) / belems;
    let x8 = best_ns(5, || {
        for _ in 0..BSWEEPS {
            // SAFETY: every row slice is exactly BSTRIP == bacc.len().
            unsafe { axpy_block_dispatch::<8, 8>(&mut bacc, &coeffs, &rows) };
        }
        std::hint::black_box(&bacc);
    }) / belems;

    // --- L1 spill: same 8-lane loop, working set far beyond L1 --------
    // Walk many distinct source rows so every sweep re-streams from L2.
    const BIG_ROWS: usize = 512; // 512 rows x 1 KiB = 512 KiB
    const SPILL_SWEEPS: usize = 4;
    let big: Vec<f32> = (0..BIG_ROWS * 256).map(|i| (i % 7) as f32).collect();
    let mut sacc = vec![0.0f32; 256];
    let spill = best_ns(3, || {
        for k in 0..SPILL_SWEEPS {
            for r in 0..BIG_ROWS {
                axpy_lanes_dispatch::<8>(
                    &mut sacc,
                    1.0 + k as f32 * 1e-7,
                    &big[r * 256..(r + 1) * 256],
                );
            }
        }
        std::hint::black_box(&sacc);
    }) / (BIG_ROWS * 256 * SPILL_SWEEPS) as f64;

    // --- serial copy --------------------------------------------------
    let src64 = vec![0u64; 64 * 1024];
    let mut dst64 = vec![0u64; 64 * 1024];
    let copy = best_ns(5, || {
        dst64.copy_from_slice(&src64);
        std::hint::black_box(&dst64);
    }) / src64.len() as f64;

    // --- pool dispatch ------------------------------------------------
    // One near-empty region per measurement: dispatch + join dominate.
    let dispatch = best_ns(7, || {
        crate::parallel::parallel_for(crate::parallel::default_workers().max(2), 2, |i| {
            std::hint::black_box(i);
        });
    });

    // Clamp everything to generous sanity ranges around the fallback
    // model; ratios stay measured as long as the machine is not insane.
    let clamp = |v: f64, lo: f64, hi: f64, fallback: f64| {
        if v.is_finite() && v >= lo && v <= hi {
            v
        } else {
            fallback
        }
    };
    let axpy_scalar_ns = clamp(scalar, 0.02, 50.0, d.axpy_scalar_ns);
    Calibration {
        axpy_scalar_ns,
        // The unrolled paths never cost more than scalar in the model:
        // a miscalibrated wide loop must not trick the tile search into
        // preferring scalar tiles on a machine where SIMD wins.
        axpy_x4_ns: clamp(x4, 0.01, 50.0, d.axpy_x4_ns).min(axpy_scalar_ns),
        axpy_x8_ns: clamp(x8, 0.005, 50.0, d.axpy_x8_ns).min(axpy_scalar_ns),
        l1_spill_factor: clamp(spill / x8_flat.max(1e-6), 1.0, 16.0, d.l1_spill_factor),
        copy_ns: clamp(copy, 0.005, 20.0, d.copy_ns),
        pool_dispatch_ns: clamp(dispatch, 100.0, 5e6, d.pool_dispatch_ns),
        l1_budget_bytes: d.l1_budget_bytes,
    }
}

/// The process-wide calibration, measured on first call (a few
/// milliseconds) and cached for the process lifetime.
pub fn calibration() -> &'static Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    CAL.get_or_init(measure)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_cached_and_sane() {
        let a = calibration();
        let b = calibration();
        assert!(std::ptr::eq(a, b), "OnceLock must cache");
        assert!(a.axpy_scalar_ns > 0.0 && a.axpy_scalar_ns <= 50.0);
        assert!(a.axpy_x8_ns > 0.0 && a.axpy_x8_ns <= a.axpy_scalar_ns);
        assert!(a.axpy_x4_ns > 0.0 && a.axpy_x4_ns <= a.axpy_scalar_ns);
        assert!(a.l1_spill_factor >= 1.0 && a.l1_spill_factor <= 16.0);
        assert!(a.copy_ns > 0.0);
        assert!(a.pool_dispatch_ns >= 100.0);
        assert!(a.l1_budget_bytes >= 4096);
    }

    #[test]
    fn default_model_within_clamp_ranges() {
        let d = Calibration::default_model();
        assert!(d.axpy_x8_ns < d.axpy_x4_ns && d.axpy_x4_ns < d.axpy_scalar_ns);
        assert!(d.l1_spill_factor >= 1.0);
    }
}
