//! Lock-free atomic floating-point accumulation buffers.
//!
//! The CELL kernel's folded rows and multi-partition updates translate to
//! `atomicAdd` on the GPU (Algorithm 2, line 12). The numeric CPU path
//! mirrors that with compare-exchange loops over bit-cast floats, so the
//! parallel execution is race-free for exactly the same updates the GPU
//! would serialize.

use lf_sparse::Scalar;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A scalar that supports lock-free atomic accumulation through a bit-cast
/// atomic integer cell. Lets SpMM kernels stay generic over `f32`/`f64`
/// while mirroring GPU `atomicAdd` semantics on the CPU.
pub trait AtomicScalar: Scalar {
    /// The atomic integer type holding this scalar's bits.
    type Cell: Sync;

    /// Reinterpret an exclusively borrowed scalar slice as atomic cells.
    fn as_cells(data: &mut [Self]) -> &[Self::Cell];

    /// Atomic `cell += v` (CAS loop).
    fn atomic_add(cell: &Self::Cell, v: Self);

    /// Plain (relaxed) `cell = v` — the single-writer fast path. On
    /// mainstream ISAs a relaxed atomic store compiles to an ordinary
    /// store, so kernels whose output rows have exactly one writer
    /// (`needs_atomic == false`) skip the CAS loop entirely.
    fn store_cell(cell: &Self::Cell, v: Self);

    /// Read a cell (safe once writers have joined).
    fn load_cell(cell: &Self::Cell) -> Self;
}

impl AtomicScalar for f64 {
    type Cell = AtomicU64;

    fn as_cells(data: &mut [Self]) -> &[AtomicU64] {
        let ptr = data.as_mut_ptr() as *const AtomicU64;
        // SAFETY: exclusive borrow for the output lifetime; AtomicU64 is
        // layout-compatible with u64/f64 bits; all access is atomic.
        unsafe { std::slice::from_raw_parts(ptr, data.len()) }
    }

    #[inline]
    fn atomic_add(cell: &AtomicU64, v: f64) {
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    fn store_cell(cell: &AtomicU64, v: f64) {
        cell.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    fn load_cell(cell: &AtomicU64) -> f64 {
        f64::from_bits(cell.load(Ordering::Relaxed))
    }
}

impl AtomicScalar for f32 {
    type Cell = AtomicU32;

    fn as_cells(data: &mut [Self]) -> &[AtomicU32] {
        let ptr = data.as_mut_ptr() as *const AtomicU32;
        // SAFETY: as for f64.
        unsafe { std::slice::from_raw_parts(ptr, data.len()) }
    }

    #[inline]
    fn atomic_add(cell: &AtomicU32, v: f32) {
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    fn store_cell(cell: &AtomicU32, v: f32) {
        cell.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    fn load_cell(cell: &AtomicU32) -> f32 {
        f32::from_bits(cell.load(Ordering::Relaxed))
    }
}

/// A `&mut [f64]` exposed as atomically updatable cells.
pub struct AtomicF64Slice<'a> {
    cells: &'a [AtomicU64],
}

impl<'a> AtomicF64Slice<'a> {
    /// Wrap a mutable slice. The wrapper owns exclusive access for its
    /// lifetime, so the transmute to atomic cells is sound (same layout,
    /// `AtomicU64` has the same size/alignment as `u64`/`f64`).
    pub fn new(data: &'a mut [f64]) -> Self {
        let ptr = data.as_mut_ptr() as *const AtomicU64;
        // SAFETY: we hold the unique &mut borrow for 'a; AtomicU64 is
        // layout-compatible with u64 which is layout-compatible with f64
        // bits. All access goes through atomic ops.
        let cells = unsafe { std::slice::from_raw_parts(ptr, data.len()) };
        AtomicF64Slice { cells }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic `cells[i] += v` via CAS loop.
    #[inline]
    pub fn add(&self, i: usize, v: f64) {
        let cell = &self.cells[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Non-atomic read (valid once parallel writers have joined).
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }
}

/// A `&mut [f32]` exposed as atomically updatable cells.
pub struct AtomicF32Slice<'a> {
    cells: &'a [AtomicU32],
}

impl<'a> AtomicF32Slice<'a> {
    /// Wrap a mutable slice (see [`AtomicF64Slice::new`] for safety).
    pub fn new(data: &'a mut [f32]) -> Self {
        let ptr = data.as_mut_ptr() as *const AtomicU32;
        // SAFETY: as for AtomicF64Slice.
        let cells = unsafe { std::slice::from_raw_parts(ptr, data.len()) };
        AtomicF32Slice { cells }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic `cells[i] += v` via CAS loop.
    #[inline]
    pub fn add(&self, i: usize, v: f32) {
        let cell = &self.cells[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Non-atomic read (valid once parallel writers have joined).
    #[inline]
    pub fn load(&self, i: usize) -> f32 {
        f32::from_bits(self.cells[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_for;

    #[test]
    fn single_threaded_adds() {
        let mut data = vec![0.0f64; 4];
        {
            let a = AtomicF64Slice::new(&mut data);
            a.add(0, 1.5);
            a.add(0, 2.5);
            a.add(3, -1.0);
            assert_eq!(a.load(0), 4.0);
            assert_eq!(a.len(), 4);
        }
        assert_eq!(data, vec![4.0, 0.0, 0.0, -1.0]);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let mut data = vec![0.0f64; 8];
        {
            let a = AtomicF64Slice::new(&mut data);
            // 64 tasks × 100 adds of 1.0 across 8 cells.
            parallel_for(64, 8, |task| {
                for k in 0..100 {
                    a.add((task + k) % 8, 1.0);
                }
            });
        }
        let total: f64 = data.iter().sum();
        assert_eq!(total, 6400.0);
    }

    #[test]
    fn f32_concurrent_adds() {
        let mut data = vec![0.0f32; 4];
        {
            let a = AtomicF32Slice::new(&mut data);
            parallel_for(32, 4, |_| {
                for _ in 0..50 {
                    a.add(2, 1.0);
                }
            });
        }
        assert_eq!(data[2], 1600.0);
        assert_eq!(data[0], 0.0);
    }

    #[test]
    fn empty_slice() {
        let mut data: Vec<f64> = vec![];
        let a = AtomicF64Slice::new(&mut data);
        assert!(a.is_empty());
    }
}

#[cfg(test)]
mod atomic_scalar_tests {
    use super::*;
    use crate::parallel::parallel_for;

    fn hammer<T: AtomicScalar>() -> T {
        let mut data = vec![T::ZERO; 4];
        {
            let cells = T::as_cells(&mut data);
            parallel_for(64, 8, |_| {
                for _ in 0..100 {
                    T::atomic_add(&cells[1], T::ONE);
                }
            });
            assert_eq!(T::load_cell(&cells[1]), T::from_f64(6400.0));
        }
        data[1]
    }

    #[test]
    fn generic_atomic_add_f64() {
        assert_eq!(hammer::<f64>(), 6400.0);
    }

    #[test]
    fn generic_atomic_add_f32() {
        assert_eq!(hammer::<f32>(), 6400.0);
    }
}
