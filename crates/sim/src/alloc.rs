//! A counting global allocator: real allocation statistics for the
//! preprocessing-overhead instrumentation (`PreprocessProfile` in
//! `liteform-core`).
//!
//! The allocator forwards every request to [`System`] and bumps two
//! process-wide relaxed atomics (calls, bytes). Overhead is two atomic
//! adds per allocation — negligible next to the allocation itself — and
//! the counters include worker-thread allocations, so parallel stages
//! are fully accounted. Counters are global: concurrent measured regions
//! attribute each other's allocations to both, so measure stages from a
//! single driver thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] plus process-wide allocation counters.
pub struct CountingAlloc;

// SAFETY: pure forwarding to `System`; the counters do not affect layout
// or pointer validity.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation calls since process start (alloc + alloc_zeroed +
    /// growing reallocs).
    pub calls: u64,
    /// Bytes requested since process start (reallocs count only growth).
    pub bytes: u64,
}

/// Read the counters now.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Counter deltas since `earlier` (saturating, in case of reordering
/// between relaxed loads on another thread).
pub fn since(earlier: AllocSnapshot) -> AllocSnapshot {
    let now = snapshot();
    AllocSnapshot {
        calls: now.calls.saturating_sub(earlier.calls),
        bytes: now.bytes.saturating_sub(earlier.bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_a_vec_allocation() {
        let before = snapshot();
        let v = vec![0u8; 1 << 16];
        std::hint::black_box(&v);
        let d = since(before);
        assert!(d.calls >= 1, "the Vec allocation must be counted");
        assert!(d.bytes >= 1 << 16, "at least the Vec's bytes: {}", d.bytes);
    }

    #[test]
    fn counters_are_monotonic() {
        let a = snapshot();
        let _x = Vec::<usize>::with_capacity(10);
        let b = snapshot();
        assert!(b.calls >= a.calls && b.bytes >= a.bytes);
    }
}
