//! A persistent worker-thread pool for the kernels' numeric path.
//!
//! The original execution layer spawned and joined fresh OS threads on
//! every `parallel_for` call — `CellKernel::run` paid that cost once per
//! bucket, so a p=32 CELL build crossed hundreds of spawn/join barriers
//! per multiply. This pool spawns its workers once (lazily, on first
//! use) and reuses them for every subsequent parallel region: a dispatch
//! is a mutex-protected slot publish plus a condvar wake, two orders of
//! magnitude cheaper than thread creation.
//!
//! Design:
//!
//! * [`ThreadPool::broadcast`] runs one closure on the calling thread
//!   *and* on up to `helpers` pool workers; every participant pulls
//!   chunks from the caller's shared atomic counter, so work distribution
//!   stays the same dynamic self-scheduling the scoped path used.
//! * The job slot holds a type-erased pointer to the caller's closure.
//!   The caller never returns before every joined worker has exited the
//!   closure (a per-job active-count latch), which is what makes the
//!   borrowed, non-`'static` closure sound.
//! * Concurrent or nested `broadcast` calls are permitted: a new job
//!   simply replaces the slot. A job that loses the slot before workers
//!   joined still completes — the submitting thread always executes the
//!   closure itself, so progress never depends on a pool worker.
//! * Panics are contained: a worker catches an unwinding body and hands
//!   the payload to the submitter (re-raised after the region joins), and
//!   the submitter's own unwind still unpublishes the job and waits for
//!   joined workers via a drop guard, so the borrowed closure can never
//!   dangle and the pool keeps all its threads.
//! * The global pool ([`global`]) lives for the process. Locally
//!   constructed pools (tests) shut their workers down on drop.
//!
//! The broadcast protocol (publish / slot win / latch / unpublish /
//! `wait_idle` / panic re-raise) is built on [`crate::sync`], so a
//! `--features check` build runs it under the `lf-check` model checker:
//! `tests/model_pool.rs` explores its thread interleavings exhaustively
//! (bounded), including panicking bodies, and proves the [`Job::alive`]
//! liveness witness is never violated. [`ThreadPool::broadcast_reverted`]
//! (feature-gated) re-creates the pre-review protocol without the drop
//! guard, whose submitter-panic use-after-free the checker re-discovers.

use crate::sync::{thread, AtomicBool, AtomicUsize, Condvar, Mutex, MutexGuard};
use std::any::Any;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, PoisonError};

/// Lock a mutex, ignoring poison: pool state stays consistent across
/// panics by construction (no invariants are broken mid-update), and the
/// cleanup paths below must not double-panic while already unwinding.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Type-erased pointer to a caller-owned `dyn Fn() + Sync` closure.
///
/// Sound to send across threads because the submitting thread keeps the
/// closure alive until the job's active-count latch reaches zero.
struct RawFn(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the pointer
// is only dereferenced while the owning `broadcast` frame is blocked in
// `wait_idle`, so the borrow outlives every use.
unsafe impl Send for RawFn {}
// SAFETY: the pointee is `Sync`, so concurrent shared calls through the
// pointer are safe for the same lifetime argument as `Send` above.
unsafe impl Sync for RawFn {}

/// One published parallel region.
struct Job {
    body: RawFn,
    /// Worker slots left; a worker joins only after winning one.
    slots: AtomicUsize,
    /// Workers currently inside `body` (latch for the submitter).
    active: Mutex<usize>,
    idle: Condvar,
    /// First panic payload caught on a worker, re-raised by the submitter
    /// once the region has joined.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Liveness witness for the borrowed closure: `true` while the
    /// submitting frame guarantees the `body` pointee is alive. The
    /// fixed protocol clears it only *after* unpublish + `wait_idle`, so
    /// a worker can assert it right before dereferencing `body` — under
    /// the model checker this turns the use-after-free of a broken
    /// protocol (e.g. [`ThreadPool::broadcast_reverted`]) into a
    /// deterministic failure instead of silent UB.
    alive: AtomicBool,
}

impl Job {
    fn new(body: RawFn, helpers: usize) -> Arc<Job> {
        Arc::new(Job {
            body,
            slots: AtomicUsize::new(helpers),
            active: Mutex::new(0),
            idle: Condvar::new(),
            panic: Mutex::new(None),
            alive: AtomicBool::new(true),
        })
    }

    fn wait_idle(&self) {
        let mut active = lock_unpoisoned(&self.active);
        while *active > 0 {
            active = self
                .idle
                .wait(active)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Panic-safe completion of a published broadcast.
///
/// Runs the unpublish + `wait_idle` steps on drop, so they execute even
/// while the submitter's closure is unwinding — otherwise a late-waking
/// worker could dereference the lifetime-erased body pointer after the
/// submitting stack frame (closure, chunk counter) is dead.
struct BroadcastGuard<'a> {
    shared: &'a Shared,
    job: &'a Arc<Job>,
}

impl Drop for BroadcastGuard<'_> {
    fn drop(&mut self) {
        {
            // Unpublish so late-waking workers cannot join, then wait for
            // the ones that did join to leave the closure.
            let mut st = lock_unpoisoned(&self.shared.state);
            if st
                .job
                .as_ref()
                .is_some_and(|current| Arc::ptr_eq(current, self.job))
            {
                st.job = None;
            }
        }
        self.job.wait_idle();
        // Only now is the borrowed closure allowed to die: no worker can
        // join (unpublished) and none is inside the body (idle latch).
        self.job.alive.store(false, Ordering::Release);
        // Re-raise a worker-side panic on the submitting thread — unless
        // the submitter's own body already panicked, in which case that
        // unwind (currently in flight) takes precedence.
        if !std::thread::panicking() {
            let payload = lock_unpoisoned(&self.job.panic).take();
            if let Some(payload) = payload {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

struct PoolState {
    /// Bumped on every publish so parked workers can tell jobs apart.
    epoch: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// Process-wide count of pool worker threads ever spawned (all pools).
///
/// Observability hook for the serving layer: a correctly shared pool
/// spawns its workers once, so this counter must stay flat while a
/// `ServeEngine` handles arbitrarily many concurrent requests. The
/// stress suite asserts exactly that (no pool-per-request churn).
static WORKERS_SPAWNED: StdAtomicUsize = StdAtomicUsize::new(0);

/// Total pool worker threads spawned since process start.
pub fn workers_spawned_total() -> usize {
    WORKERS_SPAWNED.load(Ordering::Relaxed)
}

/// A pool of parked worker threads executing broadcast parallel regions.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` parked workers (0 is allowed: every
    /// broadcast then runs entirely on the calling thread).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        WORKERS_SPAWNED.fetch_add(threads, Ordering::Relaxed);
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn_named("lf-pool-worker", move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of pool worker threads (excluding callers).
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Publish `job` as the pool's current work and wake the workers.
    fn publish(&self, job: &Arc<Job>) {
        let mut st = lock_unpoisoned(&self.shared.state);
        st.epoch += 1;
        st.job = Some(Arc::clone(job));
        drop(st);
        self.shared.work_ready.notify_all();
    }

    /// Run `body` on the calling thread and on up to `helpers` pool
    /// workers, returning once every participant has exited `body`.
    ///
    /// `body` must be safe to execute concurrently with itself; callers
    /// coordinate actual work division (typically via a shared atomic
    /// chunk counter).
    pub fn broadcast(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        let helpers = helpers.min(self.handles.len());
        if helpers == 0 {
            body();
            return;
        }
        // SAFETY: the transmute only erases the borrow's lifetime so the
        // job can live in the slot; it is sound because `BroadcastGuard`
        // (dropped before this frame returns or finishes unwinding)
        // unpublishes the job and drains the active latch, so no worker
        // holds or can acquire the pointer once the borrow ends.
        let body_ptr: *const (dyn Fn() + Sync) =
            unsafe { std::mem::transmute(body as *const (dyn Fn() + Sync)) };
        let job = Job::new(RawFn(body_ptr), helpers);
        self.publish(&job);
        // From here on the cleanup (unpublish + wait_idle) must run even
        // if `body` unwinds, so it lives in a drop guard.
        let guard = BroadcastGuard {
            shared: &self.shared,
            job: &job,
        };
        // The submitter always participates, so the region completes even
        // if every worker is busy elsewhere.
        body();
        // Unpublish, wait for joined workers, re-raise any worker panic.
        drop(guard);
    }

    /// The pre-review broadcast protocol, kept (feature-gated) as the
    /// model checker's seeded bug: the unpublish + `wait_idle` epilogue
    /// runs straight-line after `body()` instead of in a drop guard, so
    /// a submitter-side panic skips both and a late-waking worker
    /// dereferences the dead frame's closure — the exact use-after-free
    /// the PR-2 review caught. `tests/model_pool.rs` asserts the checker
    /// re-discovers it.
    #[cfg(feature = "check")]
    pub fn broadcast_reverted(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        let helpers = helpers.min(self.handles.len());
        if helpers == 0 {
            body();
            return;
        }
        // SAFETY: same lifetime erasure as `broadcast` — except the
        // reverted protocol does NOT keep the promise on the panic path,
        // which is precisely the bug the model checker must find (the
        // `alive` witness turns the dangling dereference into an
        // assertion failure instead of UB).
        let body_ptr: *const (dyn Fn() + Sync) =
            unsafe { std::mem::transmute(body as *const (dyn Fn() + Sync)) };
        let job = Job::new(RawFn(body_ptr), helpers);
        self.publish(&job);
        // Models the submitting stack frame dying on unwind: after this
        // drop runs during a panic, the body pointer dangles — without
        // the job having been unpublished or drained.
        struct FrameSentinel<'a> {
            job: &'a Arc<Job>,
        }
        impl Drop for FrameSentinel<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.job.alive.store(false, Ordering::Release);
                }
            }
        }
        let sentinel = FrameSentinel { job: &job };
        body();
        drop(sentinel);
        // Buggy epilogue: correct on the happy path, skipped on unwind.
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            if st
                .job
                .as_ref()
                .is_some_and(|current| Arc::ptr_eq(current, &job))
            {
                st.job = None;
            }
        }
        job.wait_idle();
        job.alive.store(false, Ordering::Release);
        let payload = lock_unpoisoned(&job.panic).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Seeded bug for the cancellation/reuse window, kept feature-gated
    /// for the model checker: a broadcast whose epilogue *skips*
    /// `wait_idle` on the theory that a cancelled region's workers "will
    /// exit on their own anyway", so waiting is wasted latency before the
    /// next request can reuse the pool.
    ///
    /// The theory is wrong: a worker that won the slot just before the
    /// unpublish may not have *entered* the body yet (or may still be
    /// inside it) when this frame returns and its borrowed closure plus
    /// chunk counter die. `tests/model_pool.rs` asserts the checker finds
    /// the schedule where one of the two [`Job::alive`] witness checks
    /// fires. The real [`ThreadPool::broadcast`] always drains: a
    /// cancelled region is distinguished from a completed one only by
    /// its counter value, never by its join protocol.
    #[cfg(feature = "check")]
    pub fn broadcast_cancelled_no_drain(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        let helpers = helpers.min(self.handles.len());
        if helpers == 0 {
            body();
            return;
        }
        // SAFETY: same lifetime erasure as `broadcast` — except this
        // variant deliberately breaks the promise by returning without
        // draining, which is the bug under test (the `alive` witness
        // turns the dangling window into an assertion failure).
        let body_ptr: *const (dyn Fn() + Sync) =
            unsafe { std::mem::transmute(body as *const (dyn Fn() + Sync)) };
        let job = Job::new(RawFn(body_ptr), helpers);
        self.publish(&job);
        // Models a body that observed cancellation and exited after zero
        // chunks — the exact situation that makes skipping the drain
        // tempting.
        body();
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            if st
                .job
                .as_ref()
                .is_some_and(|current| Arc::ptr_eq(current, &job))
            {
                st.job = None;
            }
        }
        // Buggy epilogue: no `wait_idle`. The frame (and with it the
        // borrowed closure) dies at return, modeled by clearing the
        // liveness witness.
        job.alive.store(false, Ordering::Release);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock_unpoisoned(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    if let Some(job) = st.job.as_ref() {
                        // Win a helper slot; losers keep waiting for the
                        // next epoch.
                        if job
                            .slots
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                                s.checked_sub(1)
                            })
                            .is_ok()
                        {
                            let job = Arc::clone(job);
                            // Count in while still holding the pool lock:
                            // the submitter unpublishes under this lock,
                            // so it cannot observe the latch before this
                            // increment.
                            *lock_unpoisoned(&job.active) += 1;
                            break job;
                        }
                    }
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // The liveness witness must hold between the slot win above and
        // the dereference below; a violation means the protocol let the
        // submitting frame die first. Deliberately outside the
        // catch_unwind: this is a worker-loop invariant, not a body
        // panic, and must propagate (the model checker records it).
        assert!(
            job.alive.load(Ordering::Acquire),
            "pool protocol use-after-free: worker joined a job whose submitting \
             frame already died (the body pointer would dangle)"
        );
        // SAFETY: the submitter blocks in `wait_idle` until our decrement
        // below (its drop guard runs that wait even while the submitter's
        // own body call unwinds), so the pointee is alive for the whole
        // call. An unwinding body is caught here: skipping the decrement
        // would hang the submitter forever and kill this worker thread.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (&*job.body.0)() }));
        if let Err(payload) = result {
            // First panic wins; the submitter re-raises it after joining.
            lock_unpoisoned(&job.panic).get_or_insert(payload);
        }
        // Second witness check, covering the other half of the window: a
        // submitter must not drop the frame while this worker is *inside*
        // the body. The correct protocol guarantees it — the submitter's
        // `wait_idle` cannot return before the decrement below — so a
        // violation here means a drain was skipped (e.g. the
        // "cancelled regions drain themselves" shortcut of
        // [`ThreadPool::broadcast_cancelled_no_drain`]).
        assert!(
            job.alive.load(Ordering::Acquire),
            "pool protocol use-after-free: submitting frame died while a worker \
             was still inside the body (wait_idle was skipped)"
        );
        let mut active = lock_unpoisoned(&job.active);
        *active -= 1;
        if *active == 0 {
            job.idle.notify_all();
        }
    }
}

/// Worker count for the process-wide pool: one per available core beyond
/// the caller, but at least 3 so concurrency paths (atomics, disjoint
/// writes) are genuinely exercised even on single-core hosts.
/// Overridable with `LF_POOL_WORKERS`.
fn global_pool_threads() -> usize {
    if let Ok(v) = std::env::var("LF_POOL_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .saturating_sub(1)
        .max(3)
}

/// The process-wide pool, spawned on first use and never torn down.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(global_pool_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_on_caller_and_helpers() {
        let pool = ThreadPool::new(3);
        let runs = AtomicU64::new(0);
        pool.broadcast(3, &|| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        let r = runs.load(Ordering::Relaxed);
        assert!((1..=4).contains(&r), "runs={r}");
    }

    #[test]
    fn zero_thread_pool_runs_inline() {
        let pool = ThreadPool::new(0);
        let runs = AtomicU64::new(0);
        pool.broadcast(8, &|| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sequential_broadcasts_reuse_workers() {
        let pool = ThreadPool::new(2);
        for _ in 0..100 {
            let counter = StdAtomicUsize::new(0);
            let total = 1000usize;
            pool.broadcast(2, &|| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
            });
            assert!(counter.load(Ordering::Relaxed) >= total);
        }
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn nested_broadcast_completes() {
        let pool = ThreadPool::new(2);
        let hits = AtomicU64::new(0);
        pool.broadcast(2, &|| {
            // A nested region must complete even with all workers busy.
            let inner = AtomicU64::new(0);
            global().broadcast(1, &|| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
            assert!(inner.load(Ordering::Relaxed) >= 1);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn submitter_panic_unwinds_cleanly_and_pool_survives() {
        // A panicking body on the submitting thread must still unpublish
        // the job and wait for joined workers (the drop guard), so no
        // worker can dereference the dead stack frame. Iterate to stress
        // the late-waking-worker window.
        let pool = ThreadPool::new(2);
        for _ in 0..50 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.broadcast(2, &|| {
                    if std::thread::current().name() != Some("lf-pool-worker") {
                        panic!("submitter body panic");
                    }
                });
            }));
            assert!(caught.is_err(), "submitter panic must propagate");
        }
        let runs = AtomicU64::new(0);
        pool.broadcast(2, &|| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert!(runs.load(Ordering::Relaxed) >= 1);
        drop(pool); // must still join cleanly
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let entered = StdAtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(2, &|| {
                if std::thread::current().name() == Some("lf-pool-worker") {
                    entered.fetch_add(1, Ordering::Relaxed);
                    panic!("worker body panic");
                }
                // Submitter: hold the region open until a worker joined,
                // so the panic deterministically lands inside this job.
                while entered.load(Ordering::Relaxed) == 0 {
                    std::thread::yield_now();
                }
            });
        }));
        assert!(
            caught.is_err(),
            "worker panic must surface to the submitter"
        );
        // The worker caught the unwind and keeps serving jobs; the
        // submitter is not hung in wait_idle.
        let runs = AtomicU64::new(0);
        pool.broadcast(2, &|| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert!(runs.load(Ordering::Relaxed) >= 1);
        drop(pool); // must still join cleanly
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(4);
        pool.broadcast(4, &|| {});
        drop(pool); // must not hang
    }

    #[test]
    fn spawn_counter_tracks_new_pools() {
        let before = workers_spawned_total();
        let pool = ThreadPool::new(2);
        assert_eq!(workers_spawned_total(), before + 2);
        // Reusing the pool spawns nothing.
        pool.broadcast(2, &|| {});
        pool.broadcast(2, &|| {});
        assert_eq!(workers_spawned_total(), before + 2);
    }

    #[test]
    fn global_pool_is_stable() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 3);
    }
}
