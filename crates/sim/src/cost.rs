//! Per-block cost records and the SM scheduler.

use crate::device::DeviceModel;

/// Traffic and work of one thread block, derived by a kernel from its real
/// index streams.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockCost {
    /// Memory transactions that miss L2 and go to DRAM.
    pub dram_transactions: u64,
    /// Memory transactions served by L2.
    pub l2_transactions: u64,
    /// Floating-point operations (FMA counted as 2).
    pub flops: u64,
    /// Atomic read-modify-write transactions (pay `atomic_penalty`).
    pub atomic_transactions: u64,
    /// Fraction of SIMT lanes doing useful work in this block, in `(0, 1]`.
    /// Padding slots and ragged rows lower it (warp divergence / wasted
    /// lanes). Values ≤ 0 are treated as 1.
    pub lane_efficiency: f64,
}

impl BlockCost {
    /// Sum of all memory transactions including atomics.
    pub fn total_transactions(&self) -> u64 {
        self.dram_transactions + self.l2_transactions + self.atomic_transactions
    }

    /// Merge another block's counts into this one (used when a kernel
    /// fuses logical blocks into one launch unit).
    pub fn merge(&mut self, other: &BlockCost) {
        let self_w = self.work_weight();
        let other_w = other.work_weight();
        let denom = self_w + other_w;
        self.lane_efficiency = if denom > 0.0 {
            (self.eff() * self_w + other.eff() * other_w) / denom
        } else {
            1.0
        };
        self.dram_transactions += other.dram_transactions;
        self.l2_transactions += other.l2_transactions;
        self.flops += other.flops;
        self.atomic_transactions += other.atomic_transactions;
    }

    fn work_weight(&self) -> f64 {
        (self.flops + self.total_transactions()) as f64
    }

    fn eff(&self) -> f64 {
        if self.lane_efficiency > 0.0 {
            self.lane_efficiency.min(1.0)
        } else {
            1.0
        }
    }

    /// Cycles this block needs running *alone* on one SM drawing its peak
    /// bandwidth share — the critical-path cost of a hot block. Lane
    /// inefficiency inflates it (divergent warps retire fewer useful
    /// lanes per cycle).
    pub fn cycles(&self, device: &DeviceModel) -> f64 {
        let tb = device.transaction_bytes as f64;
        let dram_bpc = device.sm_peak_bytes_per_cycle();
        let l2_bpc = dram_bpc * device.l2_speedup;
        let mem_cycles = (self.dram_transactions as f64 * tb) / dram_bpc
            + (self.l2_transactions as f64 * tb) / l2_bpc
            + (self.atomic_transactions as f64 * tb * device.atomic_penalty) / dram_bpc;
        let compute_cycles = self.flops as f64 / device.flops_per_sm_per_cycle;
        mem_cycles.max(compute_cycles) / self.eff()
    }
}

/// Result of scheduling a grid onto the device.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Kernel makespan in cycles (longest slot).
    pub makespan_cycles: f64,
    /// Sum of block cycles (ideal work).
    pub total_cycles: f64,
    /// `total / (makespan * slots)`: 1.0 = perfectly balanced and full.
    pub utilization: f64,
    /// `max block / mean block` cycles: grid-level imbalance indicator.
    pub imbalance: f64,
    /// Number of slots used for the schedule.
    pub slots: usize,
}

/// Greedy in-order block-to-slot assignment, the policy hardware block
/// schedulers approximate: each block goes to the earliest-free slot.
///
/// Uses a binary heap keyed on slot completion time — O(n log s).
pub fn schedule(block_cycles: &[f64], slots: usize) -> ScheduleResult {
    let slots = slots.max(1);
    if block_cycles.is_empty() {
        return ScheduleResult {
            makespan_cycles: 0.0,
            total_cycles: 0.0,
            utilization: 1.0,
            imbalance: 1.0,
            slots,
        };
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // f64 isn't Ord; key the heap on bit-ordered non-negative floats.
    #[derive(PartialEq, PartialOrd)]
    struct F(f64);
    impl Eq for F {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for F {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
        }
    }

    let mut heap: BinaryHeap<Reverse<F>> = (0..slots).map(|_| Reverse(F(0.0))).collect();
    for &c in block_cycles {
        let Reverse(F(t)) = heap.pop().expect("heap has `slots` entries");
        heap.push(Reverse(F(t + c.max(0.0))));
    }
    let makespan = heap
        .into_iter()
        .map(|Reverse(F(t))| t)
        .fold(0.0f64, f64::max);
    let total: f64 = block_cycles.iter().map(|&c| c.max(0.0)).sum();
    let mean = total / block_cycles.len() as f64;
    let max_block = block_cycles.iter().copied().fold(0.0f64, f64::max);
    ScheduleResult {
        makespan_cycles: makespan,
        total_cycles: total,
        utilization: if makespan > 0.0 {
            (total / (makespan * slots as f64)).min(1.0)
        } else {
            1.0
        },
        imbalance: if mean > 0.0 { max_block / mean } else { 1.0 },
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceModel {
        DeviceModel::tiny()
    }

    #[test]
    fn memory_bound_block() {
        let b = BlockCost {
            dram_transactions: 1000,
            l2_transactions: 0,
            flops: 1,
            atomic_transactions: 0,
            lane_efficiency: 1.0,
        };
        let d = dev();
        let expected = 1000.0 * 32.0 / d.sm_peak_bytes_per_cycle();
        assert!((b.cycles(&d) - expected).abs() < 1e-6);
    }

    #[test]
    fn compute_bound_block() {
        let b = BlockCost {
            dram_transactions: 1,
            l2_transactions: 0,
            flops: 1_000_000,
            atomic_transactions: 0,
            lane_efficiency: 1.0,
        };
        let d = dev();
        let expected = 1_000_000.0 / d.flops_per_sm_per_cycle;
        assert!((b.cycles(&d) - expected).abs() < 1.0);
    }

    #[test]
    fn l2_hits_are_cheaper() {
        let d = dev();
        let dram = BlockCost {
            dram_transactions: 1000,
            ..Default::default()
        };
        let l2 = BlockCost {
            l2_transactions: 1000,
            ..Default::default()
        };
        assert!(l2.cycles(&d) < dram.cycles(&d));
        assert!((dram.cycles(&d) / l2.cycles(&d) - d.l2_speedup).abs() < 1e-9);
    }

    #[test]
    fn atomics_pay_penalty() {
        let d = dev();
        let store = BlockCost {
            dram_transactions: 1000,
            ..Default::default()
        };
        let atomic = BlockCost {
            atomic_transactions: 1000,
            ..Default::default()
        };
        assert!(
            (atomic.cycles(&d) / store.cycles(&d) - d.atomic_penalty).abs() < 1e-9,
            "atomic multiplier"
        );
    }

    #[test]
    fn divergence_inflates_cycles() {
        let d = dev();
        let full = BlockCost {
            dram_transactions: 100,
            lane_efficiency: 1.0,
            ..Default::default()
        };
        let half = BlockCost {
            dram_transactions: 100,
            lane_efficiency: 0.5,
            ..Default::default()
        };
        assert!((half.cycles(&d) / full.cycles(&d) - 2.0).abs() < 1e-9);
        // Zero efficiency treated as 1 (no NaN).
        let zero = BlockCost {
            dram_transactions: 100,
            lane_efficiency: 0.0,
            ..Default::default()
        };
        assert!((zero.cycles(&d) - full.cycles(&d)).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates_and_weights_efficiency() {
        let mut a = BlockCost {
            dram_transactions: 100,
            flops: 0,
            lane_efficiency: 1.0,
            ..Default::default()
        };
        let b = BlockCost {
            dram_transactions: 100,
            flops: 0,
            lane_efficiency: 0.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dram_transactions, 200);
        assert!((a.lane_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn schedule_balanced_load() {
        let blocks = vec![10.0; 8];
        let r = schedule(&blocks, 4);
        assert!((r.makespan_cycles - 20.0).abs() < 1e-12);
        assert!((r.utilization - 1.0).abs() < 1e-12);
        assert!((r.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_single_hot_block_dominates() {
        let mut blocks = vec![1.0; 16];
        blocks.push(100.0);
        let r = schedule(&blocks, 4);
        // Greedy: the 100-cycle block lands on some slot; makespan ≥ 100.
        assert!(r.makespan_cycles >= 100.0);
        assert!(r.utilization < 0.5);
        assert!(r.imbalance > 10.0);
    }

    #[test]
    fn schedule_empty_and_degenerate() {
        let r = schedule(&[], 4);
        assert_eq!(r.makespan_cycles, 0.0);
        let r = schedule(&[5.0], 0);
        assert_eq!(r.slots, 1);
        assert_eq!(r.makespan_cycles, 5.0);
    }

    #[test]
    fn schedule_more_slots_never_slower() {
        let blocks: Vec<f64> = (0..50).map(|i| (i % 7) as f64 + 1.0).collect();
        let mut prev = f64::INFINITY;
        for slots in [1, 2, 4, 8, 16] {
            let r = schedule(&blocks, slots);
            assert!(r.makespan_cycles <= prev + 1e-9);
            prev = r.makespan_cycles;
        }
    }
}
