//! Cooperative cancellation for parallel regions.
//!
//! A [`CancelToken`] is a cheap, cloneable handle over a shared fired
//! flag, an optional wall-clock deadline, and an optional parent token.
//! The serving layer creates one per request (armed with the request's
//! deadline), installs it for the duration of the request with
//! [`with_token`], and every [`crate::parallel::parallel_for_init`]
//! region entered underneath checks it **between chunks**: once the
//! token fires, the region returns early instead of completing, and the
//! caller discards the partial result.
//!
//! Design points:
//!
//! * **Cooperative, chunk-granular.** A body call that has already
//!   started always runs to completion; cancellation only prevents the
//!   *next* chunk claim. Nothing is interrupted mid-write, so the only
//!   caller obligation is to treat the output of a cancelled region as
//!   garbage.
//! * **Scoped through a thread-local, carried by capture.** The token is
//!   installed on the submitting thread ([`with_token`]) and read once
//!   at region entry; from there it travels into pool workers inside the
//!   region's executor closure. Pool workers themselves never have a
//!   thread-local token, so *nested* regions opened from inside a body
//!   are not individually cancellable — the outer region's chunk checks
//!   bound the latency instead.
//! * **Maskable.** [`shielded`] hides the token for a sub-computation
//!   that must run to completion even under cancellation —
//!   `parallel_map_init` shields itself because its `set_len` requires
//!   every slot initialized (a skipped chunk would expose uninitialized
//!   memory, a soundness bug rather than a stale result).
//! * **Latching.** Deadline expiry and parent cancellation latch into
//!   the local fired flag on first observation, so steady-state checks
//!   are one relaxed atomic load.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Inner {
    /// Latched "cancelled" flag; relaxed ordering is enough because the
    /// token only gates whether *more* work starts — it never orders the
    /// work's own memory accesses.
    fired: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
    /// Conjunction members ([`CancelToken::all_of`]): when non-empty,
    /// the token also fires once **every** member has fired.
    members: Vec<CancelToken>,
}

/// A cloneable cancellation handle; see the [module docs](self).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    fn from_parts(deadline: Option<Instant>, parent: Option<CancelToken>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                fired: AtomicBool::new(false),
                deadline,
                parent,
                members: Vec::new(),
            }),
        }
    }

    /// A token that only fires when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::from_parts(None, None)
    }

    /// A token that fires automatically once `deadline` has passed (or
    /// explicitly, via [`CancelToken::cancel`]).
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::from_parts(Some(deadline), None)
    }

    /// A child token: fires when `self` fires, when its own `deadline`
    /// (if any) passes, or when cancelled directly. Cancelling the child
    /// never affects the parent — this is how a stage gets a tighter
    /// budget than its request.
    pub fn child(&self, deadline: Option<Instant>) -> Self {
        Self::from_parts(deadline, Some(self.clone()))
    }

    /// A **conjunction** token over several requests' tokens: fires when
    /// *every* member has fired (or when cancelled directly). This is
    /// the cancel scope for a fused region serving many requests at
    /// once — no single member's deadline may kill work the others still
    /// want, but once nobody wants the result the region should stop.
    ///
    /// With an empty member list the conjunction never fires
    /// spontaneously (there is no one left to want cancellation), only
    /// via [`CancelToken::cancel`].
    pub fn all_of(members: Vec<CancelToken>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                fired: AtomicBool::new(false),
                deadline: None,
                parent: None,
                members,
            }),
        }
    }

    /// Fire the token explicitly.
    pub fn cancel(&self) {
        self.inner.fired.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired (explicitly, by deadline, through its
    /// parent chain, or — for [`CancelToken::all_of`] conjunctions —
    /// because every member has fired). Deadline, parent, and member
    /// observations latch, so repeated checks after the first positive
    /// are a single load.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.fired.load(Ordering::Relaxed) {
            return true;
        }
        let expired = self.inner.deadline.is_some_and(|d| Instant::now() >= d)
            || self.inner.parent.as_ref().is_some_and(|p| p.is_cancelled())
            || (!self.inner.members.is_empty()
                && self.inner.members.iter().all(|m| m.is_cancelled()));
        if expired {
            self.inner.fired.store(true, Ordering::Relaxed);
        }
        expired
    }

    /// The token's own deadline, if any (not the parent chain's).
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.fired.load(Ordering::Relaxed))
            .field("deadline", &self.inner.deadline)
            .field("chained", &self.inner.parent.is_some())
            .field("members", &self.inner.members.len())
            .finish()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the previously installed token on drop, so scopes unwind
/// correctly even when `f` panics.
struct Restore(Option<CancelToken>);

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.0.take());
    }
}

fn swap_current(new: Option<CancelToken>) -> Restore {
    Restore(CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), new)))
}

/// The token currently installed on this thread, if any. Parallel
/// regions read this once at entry and carry the clone into their
/// executors.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Run `f` with `token` installed as this thread's current token,
/// restoring the previous token afterwards (panic-safe).
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    let _restore = swap_current(Some(token.clone()));
    f()
}

/// Run `f` with no current token, masking any installed one — for
/// sub-computations that must run to completion (see the module docs).
pub fn shielded<R>(f: impl FnOnce() -> R) -> R {
    let _restore = swap_current(None);
    f()
}

/// `true` if this thread has a current token and it has fired.
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|t| t.is_cancelled()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.clone().is_cancelled(), "clones share the flag");
    }

    #[test]
    fn past_deadline_fires_future_does_not() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_some());
    }

    #[test]
    fn child_observes_parent_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child(None);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());

        let parent = CancelToken::new();
        let child = parent.child(None);
        child.cancel();
        assert!(!parent.is_cancelled(), "child cancel must not leak up");

        // A child deadline tightens the budget independently.
        let parent = CancelToken::new();
        let child = parent.child(Some(Instant::now() - Duration::from_millis(1)));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn conjunction_fires_only_when_every_member_fires() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        let c = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let all = CancelToken::all_of(vec![a.clone(), b.clone(), c.clone()]);
        assert!(!all.is_cancelled(), "one fired member is not enough");
        a.cancel();
        assert!(!all.is_cancelled(), "two of three is not enough");
        b.cancel();
        assert!(all.is_cancelled(), "all members fired");
        assert!(
            all.is_cancelled(),
            "conjunction latches after first positive"
        );
    }

    #[test]
    fn conjunction_does_not_fire_members() {
        // The conjunction observes its members; firing it directly must
        // never leak down into them.
        let a = CancelToken::new();
        let all = CancelToken::all_of(vec![a.clone()]);
        all.cancel();
        assert!(all.is_cancelled());
        assert!(!a.is_cancelled(), "member must be untouched");
    }

    #[test]
    fn empty_conjunction_never_fires_spontaneously() {
        let all = CancelToken::all_of(Vec::new());
        assert!(!all.is_cancelled());
        all.cancel();
        assert!(all.is_cancelled(), "explicit cancel still works");
    }

    #[test]
    fn single_member_conjunction_tracks_that_member() {
        let a = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        let all = CancelToken::all_of(vec![a.clone()]);
        assert!(!all.is_cancelled());
        a.cancel();
        assert!(all.is_cancelled());
    }

    #[test]
    fn with_token_scopes_and_nests() {
        assert!(current().is_none());
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        with_token(&outer, || {
            assert!(!cancelled());
            outer.cancel();
            assert!(cancelled());
            with_token(&inner, || assert!(!cancelled()));
            assert!(cancelled(), "outer token restored after inner scope");
            shielded(|| {
                assert!(!cancelled());
                assert!(current().is_none());
            });
            assert!(cancelled());
        });
        assert!(current().is_none());
    }

    #[test]
    fn scope_restores_across_panics() {
        let t = CancelToken::new();
        let caught = std::panic::catch_unwind(|| {
            with_token(&t, || panic!("scoped panic"));
        });
        assert!(caught.is_err());
        assert!(
            current().is_none(),
            "panicking scope must still restore the previous token"
        );
    }
}
