//! Device parameter set: the knobs of the GPU performance model.

use serde::{Deserialize, Serialize};

/// Parameters of the modelled GPU.
///
/// Defaults mirror a V100-SXM2-16GB, the card used in the paper's
/// evaluation (§7). The absolute values matter less than their ratios —
/// memory bandwidth per SM, L2 speedup, atomic penalty — which set where
/// format trade-offs (padding vs. index traffic vs. atomics) cross over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Maximum resident threads per SM (occupancy bound).
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in bytes/second.
    pub dram_bandwidth: f64,
    /// L2-hit bandwidth multiplier over DRAM.
    pub l2_speedup: f64,
    /// L2 capacity in bytes (decides whether the dense operand's rows keep
    /// hitting in cache).
    pub l2_bytes: usize,
    /// Memory transaction (sector) size in bytes.
    pub transaction_bytes: usize,
    /// FP32 FMA throughput per SM per cycle, counted as 2 flops each.
    pub flops_per_sm_per_cycle: f64,
    /// Extra cost multiplier of an atomic read-modify-write over a plain
    /// store — the paper's `Atomic = P(2)/P(1)` weight (§5.3 sets it to 2).
    pub atomic_penalty: f64,
    /// Fraction of device DRAM bandwidth one SM can draw at peak (used
    /// for the critical-path cost of a single hot block).
    pub sm_peak_fraction: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Device memory capacity in bytes (drives OOM verdicts).
    pub memory_capacity: usize,
}

impl DeviceModel {
    /// The paper's testbed: NVIDIA V100-SXM2-16GB.
    pub fn v100() -> Self {
        DeviceModel {
            name: "V100-SXM2-16GB (modelled)".to_string(),
            num_sms: 80,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            clock_ghz: 1.53,
            dram_bandwidth: 900.0e9,
            l2_speedup: 3.0,
            l2_bytes: 6 * 1024 * 1024,
            transaction_bytes: 32,
            flops_per_sm_per_cycle: 128.0,
            atomic_penalty: 2.0,
            sm_peak_fraction: 0.125,
            launch_overhead_us: 5.0,
            memory_capacity: 16 * 1024 * 1024 * 1024,
        }
    }

    /// A newer datacenter part: NVIDIA A100-SXM4-40GB. Used by the
    /// transfer-learning extension experiment (§8 of the paper notes
    /// LiteForm must retrain for new architectures).
    pub fn a100() -> Self {
        DeviceModel {
            name: "A100-SXM4-40GB (modelled)".to_string(),
            num_sms: 108,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            clock_ghz: 1.41,
            dram_bandwidth: 1555.0e9,
            l2_speedup: 4.0,
            l2_bytes: 40 * 1024 * 1024,
            transaction_bytes: 32,
            flops_per_sm_per_cycle: 128.0,
            atomic_penalty: 1.6,
            sm_peak_fraction: 0.1,
            launch_overhead_us: 4.0,
            memory_capacity: 40 * 1024 * 1024 * 1024,
        }
    }

    /// A deliberately small device for tests: 4 SMs, tiny L2, so that
    /// scheduling and cache effects show up on toy matrices.
    pub fn tiny() -> Self {
        DeviceModel {
            name: "tiny-test-gpu".to_string(),
            num_sms: 4,
            warp_size: 32,
            max_threads_per_sm: 256,
            max_blocks_per_sm: 4,
            clock_ghz: 1.0,
            dram_bandwidth: 32.0e9,
            l2_speedup: 3.0,
            l2_bytes: 64 * 1024,
            transaction_bytes: 32,
            flops_per_sm_per_cycle: 64.0,
            atomic_penalty: 2.0,
            sm_peak_fraction: 0.25,
            launch_overhead_us: 5.0,
            memory_capacity: 256 * 1024 * 1024,
        }
    }

    /// DRAM bytes transferable per clock cycle, whole device.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth / (self.clock_ghz * 1e9)
    }

    /// DRAM bytes per cycle available to one SM (uniform-share model).
    pub fn dram_bytes_per_cycle_per_sm(&self) -> f64 {
        self.dram_bytes_per_cycle() / self.num_sms as f64
    }

    /// Peak DRAM bytes per cycle a single SM can draw in isolation.
    pub fn sm_peak_bytes_per_cycle(&self) -> f64 {
        self.dram_bytes_per_cycle() * self.sm_peak_fraction
    }

    /// Concurrent block slots per SM for the given block size.
    pub fn slots_per_sm(&self, threads_per_block: usize) -> usize {
        if threads_per_block == 0 {
            return 1;
        }
        (self.max_threads_per_sm / threads_per_block).clamp(1, self.max_blocks_per_sm)
    }

    /// Total concurrent block slots on the device.
    pub fn total_slots(&self, threads_per_block: usize) -> usize {
        self.slots_per_sm(threads_per_block) * self.num_sms
    }

    /// Probability that a repeated access to a working set of `bytes`
    /// hits in L2 (clamped linear model: 1 when it fits, falling as the
    /// working set exceeds capacity).
    pub fn l2_hit_fraction(&self, working_set_bytes: usize) -> f64 {
        if working_set_bytes == 0 {
            return 1.0;
        }
        (self.l2_bytes as f64 / working_set_bytes as f64).min(1.0)
    }

    /// Convert a cycle count into milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_parameters_sane() {
        let d = DeviceModel::v100();
        assert_eq!(d.num_sms, 80);
        // ~588 bytes/cycle total on V100.
        let bpc = d.dram_bytes_per_cycle();
        assert!((580.0..600.0).contains(&bpc), "bytes/cycle {bpc}");
    }

    #[test]
    fn a100_differs_meaningfully_from_v100() {
        let v = DeviceModel::v100();
        let a = DeviceModel::a100();
        assert!(a.dram_bandwidth > 1.5 * v.dram_bandwidth);
        assert!(a.l2_bytes > 6 * v.l2_bytes);
        assert!(a.atomic_penalty < v.atomic_penalty);
    }

    #[test]
    fn slots_respect_occupancy_bounds() {
        let d = DeviceModel::v100();
        assert_eq!(d.slots_per_sm(256), 8);
        assert_eq!(d.slots_per_sm(1024), 2);
        // Tiny blocks are capped by max_blocks_per_sm.
        assert_eq!(d.slots_per_sm(32), 32);
        // Degenerate.
        assert_eq!(d.slots_per_sm(0), 1);
        assert_eq!(d.slots_per_sm(100_000), 1);
    }

    #[test]
    fn l2_hit_fraction_model() {
        let d = DeviceModel::v100();
        assert_eq!(d.l2_hit_fraction(0), 1.0);
        assert_eq!(d.l2_hit_fraction(d.l2_bytes / 2), 1.0);
        assert!((d.l2_hit_fraction(d.l2_bytes * 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_ms_conversion() {
        let d = DeviceModel::tiny(); // 1 GHz
        assert!((d.cycles_to_ms(1e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let d = DeviceModel::v100();
        // serde is a dependency; check Serialize/Deserialize derive works
        // by writing through the serde_json-free `serde::__private`... no:
        // just ensure Clone/PartialEq path compiles and equality holds.
        let d2 = d.clone();
        assert_eq!(d, d2);
    }
}
