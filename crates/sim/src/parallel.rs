//! Minimal data-parallel helpers on std scoped threads.
//!
//! The kernels' numeric path uses these instead of pulling in a full
//! work-stealing runtime: an atomic-counter dynamic scheduler is enough
//! for the flat, independent loops SpMM produces, and it keeps the
//! dependency set to the crates allowed for this reproduction.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: one per available core, at least 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `body(i)` for every `i in 0..n` using `workers` threads with
/// dynamic (atomic-counter) chunked self-scheduling. `body` must be safe
/// to call concurrently for distinct `i`.
pub fn parallel_for<F>(n: usize, workers: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if n == 0 {
        return;
    }
    if workers == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    // Chunk size balances scheduling overhead against balance: aim for
    // ~16 chunks per worker.
    let chunk = (n / (workers * 16)).max(1);
    let counter = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let start = counter.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    body(i);
                }
            });
        }
    });
}

/// Parallel map over `0..n` collecting results in index order.
pub fn parallel_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let slots: Vec<std::sync::Mutex<&mut T>> =
            out.iter_mut().map(std::sync::Mutex::new).collect();
        // Each index is touched by exactly one task, so the mutexes are
        // uncontended; they exist only to satisfy the borrow checker for
        // disjoint writes through a shared reference.
        parallel_for(n, workers, |i| {
            let mut guard = slots[i].lock().expect("uncontended slot");
            **guard = f(i);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_iterations() {
        parallel_for(0, 8, |_| panic!("must not run"));
    }

    #[test]
    fn single_worker_sequential() {
        let sum = AtomicU64::new(0);
        parallel_for(100, 1, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = parallel_map(1000, 8, |i| i * i);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn workers_clamped_to_n() {
        // More workers than items must not deadlock or double-run.
        let hits: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        parallel_for(3, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }
}
