//! Data-parallel primitives for the kernels' numeric path.
//!
//! All entry points dispatch onto the persistent [`crate::pool`] worker
//! pool (spawned once per process) with atomic-counter dynamic chunked
//! self-scheduling; the original scoped-thread path survives as an
//! explicit fallback ([`parallel_for_scoped`], or `LF_POOL=off`) and as
//! the baseline the execution-engine benchmarks compare against.
//!
//! The primitives:
//!
//! * [`parallel_for`] — run `body(i)` for `i in 0..n`;
//! * [`parallel_for_init`] — like `parallel_for`, but each participating
//!   worker first builds a private mutable state (scratch buffers,
//!   accumulators) that is reused across all chunks it processes, which
//!   is how kernels keep their inner loops allocation-free;
//! * [`parallel_map`] / [`parallel_map_init`] — collect `f(i)` in index
//!   order through disjoint in-place writes (no per-slot locks);
//! * [`DisjointSlice`] — a shared view of a `&mut [T]` that hands out
//!   non-overlapping `&mut` subslices to concurrent writers, the safe
//!   alternative to per-element atomics for single-writer outputs.
//!
//! All `parallel_for*` regions are **cooperatively cancellable**: if the
//! submitting thread has a [`crate::cancel::CancelToken`] installed (via
//! [`crate::cancel::with_token`]), the region checks it between chunks
//! and returns early once it fires — the caller must then discard the
//! partial output. `parallel_map*` regions shield themselves from
//! cancellation (their `set_len` requires every slot initialized), and
//! the scoped fallback path is likewise uncancellable.

use crate::cancel;
use crate::pool;
use crate::shadow::ShadowRegion;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default worker count: one per available core, at least 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether dispatch uses the persistent pool (default) or falls back to
/// scoped threads (`LF_POOL=off|0|scoped`).
fn pool_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("LF_POOL").as_deref(),
            Ok("off") | Ok("0") | Ok("scoped")
        )
    })
}

/// Chunk size for dynamic self-scheduling: ~16 chunks per worker keeps
/// scheduling overhead low while preserving balance.
fn chunk_size(n: usize, workers: usize) -> usize {
    (n / (workers * 16)).max(1)
}

/// Run `body(i)` for every `i in 0..n` using up to `workers` concurrent
/// executors. `body` must be safe to call concurrently for distinct `i`.
pub fn parallel_for<F>(n: usize, workers: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_init(n, workers, || (), |(), i| body(i));
}

/// Run `body(&mut state, i)` for every `i in 0..n`, where each
/// participating executor builds one private `state = init()` lazily on
/// its first chunk and reuses it for all subsequent chunks.
///
/// This is the engine's allocation-amortization primitive: a kernel pays
/// for its scratch buffers once per worker per region instead of once
/// per row.
///
/// If the submitting thread has a [`cancel::CancelToken`] installed, the
/// region checks it before each chunk claim and returns early once it
/// fires; some indices are then never visited and the caller must treat
/// the output as garbage.
pub fn parallel_for_init<S, I, F>(n: usize, workers: usize, init: I, body: F)
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    if n == 0 {
        return;
    }
    // Captured once at region entry on the submitting thread; pool
    // workers see it through the executor closure, never a thread-local.
    let token = cancel::current();
    let is_cancelled = || token.as_ref().is_some_and(|t| t.is_cancelled());
    let workers = workers.max(1).min(n);
    if workers == 1 {
        let check_every = chunk_size(n, 1);
        let mut state = init();
        for i in 0..n {
            if i % check_every == 0 && is_cancelled() {
                return;
            }
            body(&mut state, i);
        }
        return;
    }
    let chunk = chunk_size(n, workers);
    let counter = AtomicUsize::new(0);
    let executor = || {
        // Lazy init: an executor that never wins a chunk never pays.
        let mut state: Option<S> = None;
        loop {
            if is_cancelled() {
                break;
            }
            let start = counter.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let state = state.get_or_insert_with(&init);
            let end = (start + chunk).min(n);
            for i in start..end {
                body(state, i);
            }
        }
    };
    if pool_enabled() {
        pool::global().broadcast(workers - 1, &executor);
    } else {
        scoped_broadcast(workers, &executor);
    }
}

/// The pre-pool execution path: run `f` on the calling thread plus
/// `workers - 1` freshly spawned scoped threads. Kept as a fallback and
/// as the baseline engine for benchmark comparisons.
pub fn parallel_for_scoped<F>(n: usize, workers: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let chunk = chunk_size(n, workers);
    let counter = AtomicUsize::new(0);
    scoped_broadcast(workers, &|| loop {
        let start = counter.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        for i in start..end {
            body(i);
        }
    });
}

fn scoped_broadcast(workers: usize, f: &(dyn Fn() + Sync)) {
    std::thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(f);
        }
        f();
    });
}

/// Parallel map over `0..n` collecting results in index order.
///
/// Results are written straight into the output buffer through disjoint
/// raw-pointer writes — each index is produced by exactly one executor —
/// replacing the earlier `Mutex`-per-slot workaround (uncontended, but a
/// lock plus a cache-line bounce per element).
pub fn parallel_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_init(n, workers, || (), |(), i| f(i))
}

/// [`parallel_map`] with per-worker reusable state (see
/// [`parallel_for_init`]).
///
/// Map regions run [`cancel::shielded`]: the `set_len` below requires
/// every slot initialized, so a cancellation-skipped chunk would expose
/// uninitialized memory. Deadline-bound callers cancel *between* maps,
/// never inside one.
pub fn parallel_map_init<S, T, I, F>(n: usize, workers: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(n);
    let base = SendPtr(out.as_mut_ptr());
    // Debug builds verify the exactly-once claim per slot through the
    // shadow interval map (release: no-op ZST).
    let shadow = ShadowRegion::new(n);
    cancel::shielded(|| {
        parallel_for_init(n, workers, init, |state, i| {
            shadow.claim_exclusive(i, 1);
            // SAFETY: `i` is produced exactly once by the parallel_for
            // contract (checked by the shadow claim above in debug
            // builds), and `i < n <= capacity`, so writes are in-bounds
            // and disjoint. Written slots are only exposed via `set_len`
            // below, after all writers joined. A panic mid-region leaks
            // (never drops) partially written elements — safe, just not
            // tidy.
            unsafe { base.write_at(i, f(state, i)) };
        });
    });
    // SAFETY: all n slots were initialized above (the region is shielded
    // from cancellation, so no chunk was skipped).
    unsafe { out.set_len(n) };
    out
}

/// Raw-pointer wrapper so disjoint writers can share one output buffer.
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only used through `write_at`, whose contract
// requires in-bounds, exactly-once-per-slot writes; with `T: Send` such
// disjoint cross-thread writes are sound, and the buffer owner outlives
// the region (the pool's broadcast joins before `set_len`).
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: `&SendPtr` exposes no aliasing reads — shared access only
// forwards to the disjoint `write_at` writes justified above.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// `i` must be in-bounds and written by exactly one thread.
    unsafe fn write_at(&self, i: usize, value: T) {
        self.0.add(i).write(value);
    }
}

/// A shared view over a `&mut [T]` that concurrent workers carve
/// **non-overlapping** mutable subslices out of.
///
/// This is the plain-store fast path for kernels whose output rows have
/// a single writer (CSR/ELL/SELL rows, non-atomic CELL buckets): instead
/// of routing every scalar through an atomic CAS, a worker takes its
/// row's subslice once and uses ordinary loads/stores.
///
/// Debug builds register every `slice_mut` range in a [`ShadowRegion`]:
/// two overlapping carves — the race `unsafe` callers promise away —
/// panic at the second claim instead of corrupting the output.
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    shadow: ShadowRegion,
    _borrow: PhantomData<&'a mut [T]>,
}

// SAFETY: access is only through `slice_mut`, whose contract requires
// callers to hand out disjoint ranges; T: Send makes cross-thread
// mutation of disjoint elements sound.
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}
// SAFETY: `&DisjointSlice` only hands out writers via `slice_mut` under
// the same disjointness contract, so shared references add no aliasing
// beyond what the `Send` argument above already covers.
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wrap an exclusively borrowed slice.
    pub fn new(data: &'a mut [T]) -> Self {
        DisjointSlice {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            shadow: ShadowRegion::new(data.len()),
            _borrow: PhantomData,
        }
    }

    /// Total length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow `[start, start + len)` mutably.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no two calls for overlapping
    /// ranges are made over this view's lifetime (debug builds enforce
    /// this through the shadow map, treating every carve as live until
    /// the view drops). The range itself is bounds-checked.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start <= self.len && len <= self.len - start,
            "disjoint slice range {start}+{len} out of bounds (len {})",
            self.len
        );
        // Register the carve before creating the aliasing-sensitive
        // reference: an overlapping claim panics here (debug builds),
        // before any store can race.
        self.shadow.claim_exclusive(start, len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scoped_fallback_covers_every_index() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_scoped(n, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_iterations() {
        parallel_for(0, 8, |_| panic!("must not run"));
        parallel_for_scoped(0, 8, |_| panic!("must not run"));
    }

    #[test]
    fn single_worker_sequential() {
        let sum = AtomicU64::new(0);
        parallel_for(100, 1, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = parallel_map(1000, 8, |i| i * i);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn parallel_map_non_default_types() {
        // The old implementation required Default + Clone; the disjoint
        // write path must not.
        struct NoDefault(String);
        let v = parallel_map(100, 4, |i| NoDefault(format!("x{i}")));
        assert_eq!(v[42].0, "x42");
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn parallel_map_init_reuses_state() {
        // Each worker's scratch grows monotonically: states are reused,
        // never rebuilt per item.
        let v = parallel_map_init(500, 4, Vec::<usize>::new, |scratch, i| {
            scratch.push(i);
            (i, scratch.len())
        });
        assert_eq!(v.len(), 500);
        for (i, &(idx, uses)) in v.iter().enumerate() {
            assert_eq!(idx, i);
            assert!(uses >= 1);
        }
        // Total scratch uses across items equals n, and at least one
        // state must have served many items (chunks are reused).
        let max_uses = v.iter().map(|&(_, u)| u).max().unwrap();
        assert!(max_uses > 1, "scratch must be reused across items");
    }

    #[test]
    fn parallel_for_init_builds_at_most_one_state_per_worker() {
        let inits = AtomicU64::new(0);
        parallel_for_init(
            10_000,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), _| {},
        );
        let built = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&built), "states built: {built}");
    }

    #[test]
    fn workers_clamped_to_n() {
        // More workers than items must not deadlock or double-run.
        let hits: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        parallel_for(3, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn disjoint_slice_concurrent_row_writes() {
        let rows = 64;
        let width = 33;
        let mut data = vec![0u64; rows * width];
        {
            let view = DisjointSlice::new(&mut data);
            parallel_for(rows, 8, |r| {
                // SAFETY: each r is visited once; rows are disjoint.
                let row = unsafe { view.slice_mut(r * width, width) };
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot = (r * width + c) as u64;
                }
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn disjoint_slice_bounds_checked() {
        let mut data = vec![0u8; 8];
        let view = DisjointSlice::new(&mut data);
        // SAFETY: deliberately out of bounds — the call must panic at
        // the shadow-region check before any write happens.
        let _ = unsafe { view.slice_mut(6, 4) };
    }

    /// Seeded bug: a split whose halves overlap by two elements. The
    /// shadow race detector must reject the second carve before any
    /// aliasing write happens.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "single-writer")]
    fn disjoint_slice_overlapping_split_detected() {
        let mut data = vec![0u32; 16];
        let view = DisjointSlice::new(&mut data);
        // SAFETY: in-bounds first claim; held only to provoke the
        // overlap below.
        let _lo = unsafe { view.slice_mut(0, 10) };
        // SAFETY: deliberately overlaps [8,10) — the shadow detector
        // must panic before the aliased writer is returned.
        let _hi = unsafe { view.slice_mut(8, 8) }; // [8,10) double-claimed
    }

    /// Seeded bug: an out-of-bounds claim against the shadow region
    /// directly (the `SendPtr`-style raw-write path has no slice bounds
    /// check of its own — the shadow map is the safety net).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn shadow_claim_out_of_bounds_detected() {
        let region = crate::shadow::ShadowRegion::new(8);
        region.claim_exclusive(6, 4);
    }

    #[test]
    fn body_panic_propagates_instead_of_hanging() {
        // An assert/index panic inside a region body must become a test
        // failure on the submitting thread — not a pool hang or UB — and
        // the engine must stay usable afterwards.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for(1000, 4, |i| {
                if i == 567 {
                    panic!("boom at {i}");
                }
            });
        }));
        assert!(caught.is_err(), "body panic must propagate");
        let hits = AtomicU64::new(0);
        parallel_for(100, 4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn pre_cancelled_region_runs_no_bodies() {
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        for workers in [1, 8] {
            let hits = AtomicU64::new(0);
            crate::cancel::with_token(&token, || {
                parallel_for(10_000, workers, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(
                hits.load(Ordering::Relaxed),
                0,
                "workers={workers}: a fired token must stop the region before any chunk"
            );
        }
    }

    #[test]
    fn cancel_mid_region_stops_early() {
        for workers in [1, 8] {
            let n = 200_000;
            let token = crate::cancel::CancelToken::new();
            let hits = AtomicU64::new(0);
            crate::cancel::with_token(&token, || {
                parallel_for(n, workers, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    token.cancel();
                });
            });
            let h = hits.load(Ordering::Relaxed);
            // In-flight chunks finish; everything else is skipped.
            assert!(
                (1..n as u64).contains(&h),
                "workers={workers}: cancelled region ran {h} of {n} bodies"
            );
        }
    }

    #[test]
    fn uninstalled_token_region_completes() {
        // A cancelled token that is NOT installed has no effect.
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let hits = AtomicU64::new(0);
        parallel_for(1000, 4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn parallel_map_is_shielded_from_cancellation() {
        // A fired token must NOT make a map skip slots: set_len demands
        // every element initialized, so maps mask the token entirely.
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let v = crate::cancel::with_token(&token, || parallel_map(5_000, 8, |i| i * 3));
        assert_eq!(v.len(), 5_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    /// Seeded chaos for the cancel/reuse window: cancel a region from a
    /// racing thread at a pseudo-random point, and the moment `broadcast`
    /// returns, (a) no late-waking worker may run the dead region's body,
    /// and (b) an immediately following region must get full coverage.
    /// This is the execution-level counterpart of the model-checked
    /// `broadcast_cancelled_no_drain` seeded bug: the pool must drain
    /// cancelled regions exactly like completed ones before the job slot
    /// is reused.
    #[test]
    fn cancelled_region_drains_before_slot_reuse() {
        let spawned_before = pool::workers_spawned_total();
        for seed in [0x5eed_0001u64, 0xdead_beef, 0xc0ff_ee11] {
            let mut s = seed;
            let mut next = move || {
                // splitmix64 step — deterministic per seed.
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            for _ in 0..40 {
                let n = 50_000;
                let token = crate::cancel::CancelToken::new();
                let returned = std::sync::atomic::AtomicBool::new(false);
                let late = AtomicU64::new(0);
                let spins = next() % 3_000;
                std::thread::scope(|sc| {
                    let t = token.clone();
                    sc.spawn(move || {
                        for _ in 0..spins {
                            std::hint::spin_loop();
                        }
                        t.cancel();
                    });
                    crate::cancel::with_token(&token, || {
                        parallel_for(n, 8, |_| {
                            if returned.load(Ordering::Relaxed) {
                                late.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    });
                    // `parallel_for` returned: the region must be fully
                    // drained, cancelled or not.
                    returned.store(true, Ordering::Relaxed);
                });
                assert_eq!(
                    late.load(Ordering::Relaxed),
                    0,
                    "seed {seed:#x}: a body ran after the cancelled region returned"
                );
                // Immediate slot reuse: the next (uncancelled) region
                // must cover every index exactly once.
                let hits: Vec<AtomicU64> = (0..512).map(|_| AtomicU64::new(0)).collect();
                parallel_for(hits.len(), 8, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "seed {seed:#x}: region after a cancelled one lost coverage"
                );
            }
        }
        assert_eq!(
            pool::workers_spawned_total(),
            spawned_before,
            "cancellation churn must not respawn pool workers"
        );
    }

    #[test]
    fn nested_parallel_for_completes() {
        // A body that itself opens a parallel region must not deadlock
        // the pool.
        let total = AtomicU64::new(0);
        parallel_for(8, 4, |_| {
            parallel_for(8, 4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }
}
