#![warn(missing_docs)]

//! # lf-sim
//!
//! A deterministic GPU *execution-model* simulator standing in for the
//! paper's NVIDIA V100 testbed.
//!
//! The paper's central performance argument (§5.3) is that SpMM time on a
//! GPU is dominated by (1) the volume and coalescing of global-memory
//! traffic, (2) atomic-update overhead, and (3) load balance across thread
//! blocks. This crate models exactly those three effects:
//!
//! * a kernel is described as a grid of [`BlockCost`] records derived from
//!   the kernel's **actual index streams** (each SpMM kernel in
//!   `lf-kernels` walks its real data structures and counts coalesced
//!   transactions with [`coalesce`]);
//! * [`DeviceModel`] converts a block's traffic and flops into cycles via a
//!   per-block roofline (`max(memory, compute)` with a divergence factor);
//! * [`schedule`] assigns blocks to SM slots in launch order — exactly the
//!   greedy policy real GPUs approximate — so load imbalance lengthens the
//!   critical path mechanically;
//! * atomics pay a serialization multiplier, matching the paper's
//!   `Atomic = P(2)/P(1)` weight.
//!
//! Nothing in the model is tuned per baseline system: every kernel is
//! costed by the same device, so relative results emerge from the format
//! and mapping each system chooses.
//!
//! The crate also hosts the kernels' CPU **execution engine**: a
//! persistent worker [`pool`] (spawned once per process, reused by every
//! parallel region) underneath the [`parallel`] primitives
//! ([`parallel::parallel_for`], [`parallel::parallel_for_init`],
//! [`parallel::DisjointSlice`]) and the atomic accumulation buffers
//! ([`atomicf::AtomicF64Slice`], [`atomicf::AtomicF32Slice`]). The
//! numeric path built on these computes bit-for-bit checkable results
//! independent of the cost model. Parallel regions are cooperatively
//! cancellable through [`cancel`] tokens, which is how the serving layer
//! enforces per-request deadlines without killing threads.

pub mod alloc;
pub mod atomicf;
pub mod calibrate;
pub mod cancel;
pub mod coalesce;
pub mod cost;
pub mod device;
pub mod parallel;
pub mod pool;
pub mod profile;
pub mod sync;

/// The shadow-memory race detector backing [`parallel::DisjointSlice`]
/// and the kernels' single-writer fast paths (re-exported from
/// `lf-check`; a no-op in release builds).
pub use lf_check::shadow;

pub use atomicf::AtomicScalar;
pub use calibrate::{calibration, Calibration};
pub use coalesce::{segment_transactions, warp_transactions};
pub use cost::{schedule, BlockCost};
pub use device::DeviceModel;
pub use profile::{KernelProfile, LaunchSpec};
