//! Memory-coalescing model: map the addresses a warp touches to the number
//! of memory transactions (32-byte sectors) the hardware would issue.

/// Number of distinct `transaction_bytes`-aligned segments covered by one
/// warp's element accesses, where lane `l` accesses element `indices[l]`
/// of an array of `elem_bytes`-sized elements.
///
/// This is the hardware coalescing rule: consecutive indices share sectors
/// (fully coalesced: 32 lanes × 4 B = 4 sectors of 32 B), scattered indices
/// cost up to one sector each.
pub fn warp_transactions(indices: &[u32], elem_bytes: usize, transaction_bytes: usize) -> u64 {
    debug_assert!(elem_bytes > 0 && transaction_bytes > 0);
    if indices.is_empty() {
        return 0;
    }
    let per_seg = (transaction_bytes / elem_bytes).max(1) as u64;
    // Collect distinct segment ids. Warps are ≤ 32 lanes: a tiny sort
    // beats hashing.
    let mut segs: Vec<u64> = indices.iter().map(|&i| i as u64 / per_seg).collect();
    segs.sort_unstable();
    segs.dedup();
    segs.len() as u64
}

/// Transactions needed to stream `count` consecutive elements of
/// `elem_bytes` each (perfectly coalesced sequential access).
pub fn segment_transactions(count: usize, elem_bytes: usize, transaction_bytes: usize) -> u64 {
    debug_assert!(elem_bytes > 0 && transaction_bytes > 0);
    let bytes = count * elem_bytes;
    (bytes.div_ceil(transaction_bytes)) as u64
}

/// Transactions for a warp reading a contiguous span of `span_elems`
/// elements starting anywhere (one row of the dense operand, say): the
/// span is sequential, so it coalesces perfectly modulo alignment slack.
pub fn row_span_transactions(
    span_elems: usize,
    elem_bytes: usize,
    transaction_bytes: usize,
) -> u64 {
    segment_transactions(span_elems, elem_bytes, transaction_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp() {
        // 32 consecutive f32 indices → 32*4/32 = 4 sectors.
        let idx: Vec<u32> = (0..32).collect();
        assert_eq!(warp_transactions(&idx, 4, 32), 4);
    }

    #[test]
    fn fully_scattered_warp() {
        // Strided by 64 elements → every lane its own sector.
        let idx: Vec<u32> = (0..32).map(|i| i * 64).collect();
        assert_eq!(warp_transactions(&idx, 4, 32), 32);
    }

    #[test]
    fn duplicate_indices_share_sector() {
        let idx = vec![5u32; 32];
        assert_eq!(warp_transactions(&idx, 4, 32), 1);
    }

    #[test]
    fn partial_warp() {
        let idx: Vec<u32> = (0..7).collect();
        assert_eq!(warp_transactions(&idx, 4, 32), 1);
        assert_eq!(warp_transactions(&[], 4, 32), 0);
    }

    #[test]
    fn wide_elements_cost_more() {
        // f64: 4 elements per 32B sector; 32 consecutive → 8 sectors.
        let idx: Vec<u32> = (0..32).collect();
        assert_eq!(warp_transactions(&idx, 8, 32), 8);
    }

    #[test]
    fn elements_larger_than_sector() {
        // A 64-byte element spans 2 sectors... the model floors per_seg at
        // 1 so each distinct index is 1 "transaction id"; acceptable since
        // no kernel uses >32B elements.
        let idx: Vec<u32> = (0..4).collect();
        assert_eq!(warp_transactions(&idx, 64, 32), 4);
    }

    #[test]
    fn segment_transactions_round_up() {
        assert_eq!(segment_transactions(0, 4, 32), 0);
        assert_eq!(segment_transactions(1, 4, 32), 1);
        assert_eq!(segment_transactions(8, 4, 32), 1);
        assert_eq!(segment_transactions(9, 4, 32), 2);
        assert_eq!(segment_transactions(128, 4, 32), 16);
    }

    #[test]
    fn row_span_matches_segment() {
        assert_eq!(
            row_span_transactions(33, 4, 32),
            segment_transactions(33, 4, 32)
        );
    }

    #[test]
    fn monotone_in_scatter() {
        // Increasing stride can only increase transactions.
        let mut prev = 0;
        for stride in [1u32, 2, 4, 8, 16, 32, 64] {
            let idx: Vec<u32> = (0..32).map(|i| i * stride).collect();
            let t = warp_transactions(&idx, 4, 32);
            assert!(t >= prev, "stride {stride}: {t} < {prev}");
            prev = t;
        }
    }
}
