//! Kernel launch description and the simulated-performance report.

use crate::cost::{schedule, BlockCost};
use crate::device::DeviceModel;
use serde::{Deserialize, Serialize};

/// A kernel launch: block costs plus the launch geometry.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Human-readable kernel name (for reports).
    pub name: String,
    /// Threads per block (drives occupancy / slot count).
    pub threads_per_block: usize,
    /// Hardware blocks each listed [`BlockCost`] stands for. SpMM kernels
    /// tile the dense-column dimension across the grid as well (J/32
    /// j-tiles per row block); traffic is recorded aggregated per row
    /// block, so this multiplier informs occupancy and splits the
    /// critical path without duplicating block records.
    pub grid_multiplier: usize,
    /// Per-block cost records, in launch order.
    pub blocks: Vec<BlockCost>,
}

impl LaunchSpec {
    /// Create a launch with the given geometry.
    pub fn new(name: impl Into<String>, threads_per_block: usize) -> Self {
        LaunchSpec {
            name: name.into(),
            threads_per_block: threads_per_block.max(1),
            grid_multiplier: 1,
            blocks: Vec::new(),
        }
    }

    /// Set the j-tile grid multiplier (see [`LaunchSpec::grid_multiplier`]).
    pub fn with_grid_multiplier(mut self, m: usize) -> Self {
        self.grid_multiplier = m.max(1);
        self
    }

    /// Append one block.
    pub fn push(&mut self, cost: BlockCost) {
        self.blocks.push(cost);
    }

    /// Simulate on a device.
    pub fn run(&self, device: &DeviceModel) -> KernelProfile {
        KernelProfile::from_launches(std::slice::from_ref(self), device)
    }
}

/// Simulated performance of one or more (horizontally fused) launches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Total simulated time in milliseconds, including launch overhead.
    pub time_ms: f64,
    /// DRAM transactions summed over all blocks.
    pub dram_transactions: u64,
    /// L2-hit transactions summed over all blocks.
    pub l2_transactions: u64,
    /// Atomic transactions summed over all blocks.
    pub atomic_transactions: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Schedule utilization in `[0, 1]`: busy-slot fraction, the model's
    /// analogue of nsight's "GPU compute throughput" axis in Fig. 11.
    pub utilization: f64,
    /// Max-block / mean-block cycle ratio.
    pub imbalance: f64,
    /// Number of thread blocks launched.
    pub num_blocks: usize,
    /// Number of separate kernel launches (after any fusion).
    pub num_launches: usize,
}

impl KernelProfile {
    /// Simulate a sequence of launches executed back to back.
    ///
    /// Each launch's time is the maximum of four bounds:
    ///
    /// 1. **DRAM roofline** — total DRAM (+ penalty-weighted atomic)
    ///    bytes over the device's aggregate bandwidth;
    /// 2. **L2 roofline** — total L2-hit bytes over L2 bandwidth;
    /// 3. **Issue/compute roofline** — total flops, inflated by each
    ///    block's lane inefficiency, over the device's aggregate FMA
    ///    throughput;
    /// 4. **Critical path / occupancy** — the greedy block schedule over
    ///    the device's resident-block slots, with each block costed at a
    ///    single SM's *peak* rates ([`BlockCost::cycles`]); this term
    ///    captures hot-block serialization and under-filled launches
    ///    without letting concurrent blocks oversubscribe DRAM (bounds 1–2
    ///    cap the aggregate).
    ///
    /// SparseTIR's horizontal-fusion pass (§6) exists precisely to collapse
    /// per-bucket launches into one; callers model fusion by concatenating
    /// blocks into a single `LaunchSpec` instead of passing many.
    pub fn from_launches(launches: &[LaunchSpec], device: &DeviceModel) -> Self {
        let mut time_ms = 0.0;
        let mut dram = 0u64;
        let mut l2 = 0u64;
        let mut atomics = 0u64;
        let mut flops = 0u64;
        let mut num_blocks = 0usize;
        let mut util_weighted = 0.0;
        let mut imb_weighted = 0.0;
        let mut busy_ms = 0.0;
        let tb = device.transaction_bytes as f64;
        for launch in launches {
            let mut l_dram = 0u64;
            let mut l_l2 = 0u64;
            let mut l_atomic = 0u64;
            let mut issue_flops = 0.0f64;
            let cycles: Vec<f64> = launch
                .blocks
                .iter()
                .map(|b| {
                    l_dram += b.dram_transactions;
                    l_l2 += b.l2_transactions;
                    l_atomic += b.atomic_transactions;
                    let eff = if b.lane_efficiency > 0.0 {
                        b.lane_efficiency.min(1.0)
                    } else {
                        1.0
                    };
                    issue_flops += b.flops as f64 / eff;
                    b.cycles(device)
                })
                .collect();
            let slots = device.total_slots(launch.threads_per_block);
            let mult = launch.grid_multiplier.max(1);
            let sched = schedule(&cycles, slots);
            // With a grid multiplier, each listed block is really `mult`
            // hardware blocks of 1/mult the work: the greedy schedule's
            // makespan is replaced by its two lower bounds (work/slots and
            // the split hottest block).
            let sched_makespan = if mult > 1 {
                let hottest = cycles.iter().copied().fold(0.0f64, f64::max);
                (sched.total_cycles / slots as f64).max(hottest / mult as f64)
            } else {
                sched.makespan_cycles
            };
            // Memory-level parallelism: HBM only saturates when enough
            // blocks are resident to keep requests in flight (Little's
            // law). A launch with fewer blocks than slots achieves a
            // proportionally lower effective bandwidth (shortfall capped —
            // even one warp streams at a useful fraction of peak).
            const MLP_SHORTFALL_CAP: f64 = 8.0;
            let hw_blocks = launch.blocks.len() * mult;
            let mlp_shortfall = if hw_blocks == 0 {
                1.0
            } else {
                (slots as f64 / hw_blocks as f64).clamp(1.0, MLP_SHORTFALL_CAP)
            };
            let dram_cycles = (l_dram as f64 * tb + l_atomic as f64 * tb * device.atomic_penalty)
                / device.dram_bytes_per_cycle()
                * mlp_shortfall;
            let l2_cycles = l_l2 as f64 * tb / (device.dram_bytes_per_cycle() * device.l2_speedup)
                * mlp_shortfall;
            let issue_cycles =
                issue_flops / (device.flops_per_sm_per_cycle * device.num_sms as f64);
            let makespan = (dram_cycles + l2_cycles)
                .max(issue_cycles)
                .max(sched_makespan);
            let ms = device.cycles_to_ms(makespan) + device.launch_overhead_us / 1e3;
            time_ms += ms;
            busy_ms += ms;
            // Utilization: fraction of the makespan the device is
            // throughput-bound (the Fig. 11 "compute throughput" axis).
            // Useful-throughput cycles exclude the MLP shortfall: a
            // launch starved of resident blocks reads as low throughput,
            // exactly like nsight's "GPU compute throughput" counter.
            let useful = ((dram_cycles + l2_cycles) / mlp_shortfall).max(issue_cycles);
            let util = if makespan > 0.0 {
                (useful / makespan).min(1.0)
            } else {
                1.0
            };
            util_weighted += util * ms;
            imb_weighted += sched.imbalance * ms;
            dram += l_dram;
            l2 += l_l2;
            atomics += l_atomic;
            for b in &launch.blocks {
                flops += b.flops;
            }
            num_blocks += launch.blocks.len();
        }
        KernelProfile {
            time_ms,
            dram_transactions: dram,
            l2_transactions: l2,
            atomic_transactions: atomics,
            flops,
            utilization: if busy_ms > 0.0 {
                util_weighted / busy_ms
            } else {
                1.0
            },
            imbalance: if busy_ms > 0.0 {
                imb_weighted / busy_ms
            } else {
                1.0
            },
            num_blocks,
            num_launches: launches.len(),
        }
    }

    /// Effective DRAM bandwidth achieved, bytes/second.
    pub fn achieved_bandwidth(&self, device: &DeviceModel) -> f64 {
        if self.time_ms <= 0.0 {
            return 0.0;
        }
        (self.dram_transactions + self.l2_transactions + self.atomic_transactions) as f64
            * device.transaction_bytes as f64
            / (self.time_ms / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(dram: u64) -> BlockCost {
        BlockCost {
            dram_transactions: dram,
            lane_efficiency: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let d = DeviceModel::tiny();
        let l = LaunchSpec::new("noop", 128);
        let p = l.run(&d);
        assert!((p.time_ms - d.launch_overhead_us / 1e3).abs() < 1e-12);
        assert_eq!(p.num_blocks, 0);
    }

    #[test]
    fn more_traffic_takes_longer() {
        let d = DeviceModel::tiny();
        let mut small = LaunchSpec::new("s", 128);
        let mut big = LaunchSpec::new("b", 128);
        for _ in 0..160 {
            small.push(block(100));
            big.push(block(1000));
        }
        assert!(big.run(&d).time_ms > small.run(&d).time_ms * 5.0);
    }

    #[test]
    fn fusion_saves_launch_overhead() {
        let d = DeviceModel::tiny();
        let mut separate = Vec::new();
        let mut fused = LaunchSpec::new("fused", 128);
        for i in 0..10 {
            let mut l = LaunchSpec::new(format!("k{i}"), 128);
            for _ in 0..4 {
                l.push(block(50));
                fused.push(block(50));
            }
            separate.push(l);
        }
        let p_sep = KernelProfile::from_launches(&separate, &d);
        let p_fused = fused.run(&d);
        assert!(p_fused.time_ms < p_sep.time_ms);
        assert_eq!(p_sep.num_launches, 10);
        assert_eq!(p_fused.num_launches, 1);
        // Same traffic either way.
        assert_eq!(p_sep.dram_transactions, p_fused.dram_transactions);
    }

    #[test]
    fn imbalance_reported() {
        let d = DeviceModel::tiny();
        let mut l = LaunchSpec::new("skew", 128);
        for _ in 0..15 {
            l.push(block(10));
        }
        l.push(block(10_000));
        let p = l.run(&d);
        assert!(p.imbalance > 5.0);
        assert!(p.utilization < 0.9);
    }

    #[test]
    fn achieved_bandwidth_bounded_by_device() {
        let d = DeviceModel::tiny();
        let mut l = LaunchSpec::new("bw", 256);
        for _ in 0..1024 {
            l.push(block(1000));
        }
        let p = l.run(&d);
        let bw = p.achieved_bandwidth(&d);
        assert!(bw > 0.0);
        assert!(bw <= d.dram_bandwidth * 1.01, "bw {bw} exceeds device");
    }
}

#[cfg(test)]
mod grid_multiplier_tests {
    use super::*;

    fn launch_with(blocks: usize, dram_per_block: u64, mult: usize) -> LaunchSpec {
        let mut l = LaunchSpec::new("t", 256).with_grid_multiplier(mult);
        for _ in 0..blocks {
            l.push(BlockCost {
                dram_transactions: dram_per_block,
                lane_efficiency: 1.0,
                ..Default::default()
            });
        }
        l
    }

    #[test]
    fn few_blocks_pay_mlp_shortfall() {
        let d = DeviceModel::v100();
        // 4 giant blocks starve the memory system ...
        let starved = launch_with(4, 1_000_000, 1).run(&d);
        // ... while the same traffic across 4096 blocks saturates it.
        let saturated = launch_with(4096, 4_000_000 / 4096, 1).run(&d);
        assert!(
            starved.time_ms > 3.0 * saturated.time_ms,
            "{} vs {}",
            starved.time_ms,
            saturated.time_ms
        );
    }

    #[test]
    fn grid_multiplier_restores_parallelism() {
        let d = DeviceModel::v100();
        let narrow = launch_with(4, 1_000_000, 1).run(&d);
        // The same 4 row-blocks tiled 256x along j behave like 1024 blocks.
        let tiled = launch_with(4, 1_000_000, 256).run(&d);
        assert!(
            tiled.time_ms < narrow.time_ms,
            "j-tiling must relieve the shortfall: {} vs {}",
            tiled.time_ms,
            narrow.time_ms
        );
    }

    #[test]
    fn multiplier_splits_critical_path() {
        let d = DeviceModel::v100();
        // One hot block among many light ones.
        let mut l = LaunchSpec::new("hot", 256);
        for _ in 0..2000 {
            l.push(BlockCost {
                dram_transactions: 10,
                lane_efficiency: 1.0,
                ..Default::default()
            });
        }
        l.push(BlockCost {
            dram_transactions: 2_000_000,
            lane_efficiency: 1.0,
            ..Default::default()
        });
        let serial = l.clone().run(&d);
        let split = {
            let mut l2 = l.clone();
            l2.grid_multiplier = 16;
            l2.run(&d)
        };
        assert!(
            split.time_ms < serial.time_ms,
            "splitting the hot block shortens the critical path: {} vs {}",
            split.time_ms,
            serial.time_ms
        );
    }

    #[test]
    fn shortfall_capped() {
        let d = DeviceModel::v100();
        // A single block must not be charged more than the cap (8x).
        let one = launch_with(1, 100_000, 1).run(&d);
        let many = launch_with(640, 100_000 / 640, 1).run(&d);
        assert!(one.time_ms / many.time_ms < 16.0);
    }
}
