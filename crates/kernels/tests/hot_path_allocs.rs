//! Allocation discipline for the numeric hot paths.
//!
//! The execution engine's contract (PR 2) is that a kernel's inner loops
//! are allocation-free: per `run` call a kernel may allocate its output
//! buffer, its per-worker scratch, and bounded bookkeeping (work-item
//! lists), but never O(rows) or O(nnz) allocations. This test pins that
//! down with the real counting global allocator (`lf_sim::alloc`): the
//! per-run allocation *call* count must stay under a small constant
//! bound, and must not grow with the operand (a ~40× larger matrix gets
//! only a logarithmic work-item-list slack).
//!
//! Release builds only: in debug builds the shadow race detector
//! legitimately allocates per claimed range, which is exactly the
//! debug/release split the detector is designed around.

#![cfg(not(debug_assertions))]

use lf_cell::{build_cell, CellConfig};
use lf_kernels::cell::CellKernel;
use lf_kernels::{
    BcsrKernel, CsrScalarKernel, CsrVectorKernel, DgSparseKernel, EllKernel, SellKernel,
    SpmmKernel, SputnikKernel, TacoKernel, TacoSchedule,
};
use lf_sim::alloc::{since, snapshot};
use lf_sim::parallel::default_workers;
use lf_sparse::gen::uniform_random;
use lf_sparse::{BcsrMatrix, CsrMatrix, DenseMatrix, EllMatrix, Pcg32, SellMatrix};

fn all_kernels(csr: &CsrMatrix<f64>) -> Vec<Box<dyn SpmmKernel<f64>>> {
    vec![
        Box::new(CsrScalarKernel::new(csr.clone())),
        Box::new(CsrVectorKernel::new(csr.clone())),
        Box::new(DgSparseKernel::new(csr.clone())),
        Box::new(SputnikKernel::new(csr.clone())),
        Box::new(TacoKernel::new(csr.clone(), TacoSchedule::default())),
        Box::new(EllKernel::new(EllMatrix::from_csr(csr))),
        Box::new(SellKernel::new(SellMatrix::from_csr(csr, 16).unwrap())),
        Box::new(BcsrKernel::new(BcsrMatrix::from_csr(csr, 4, 4).unwrap())),
        Box::new(CellKernel::new(
            build_cell(csr, &CellConfig::with_partitions(3)).unwrap(),
        )),
        Box::new(CellKernel::new(
            build_cell(csr, &CellConfig::default().with_max_widths(vec![8])).unwrap(),
        )),
    ]
}

/// Allocation calls for one warmed `run`.
fn measured_run(k: &dyn SpmmKernel<f64>, b: &DenseMatrix<f64>) -> u64 {
    // Warm runs: spawn the global pool, fault in lazy statics.
    for _ in 0..2 {
        k.run(b).unwrap();
    }
    let before = snapshot();
    let c = k.run(b).unwrap();
    let delta = since(before);
    std::hint::black_box(&c);
    delta.calls
}

/// The serve hot path resolves an execution tile per request via
/// `lf_cost::plan_tile`. The first lookup per (matrix-family, J) key
/// pays the candidate-grid search; every subsequent lookup is a cache
/// hit and must allocate **nothing** — the whole point of memoizing the
/// winners is that a warmed serving loop stays alloc-free.
#[test]
fn tile_plan_cache_hit_is_alloc_free() {
    use lf_cost::tile::TileFeatures;
    let f = TileFeatures::new(512, 60_000, 8);
    // Warm: the miss runs the search and inserts (also faults in the
    // one-time calibration measurement).
    let first = lf_cost::plan_tile(f, 32);
    let before = snapshot();
    let again = lf_cost::plan_tile(f, 32);
    // A different matrix in the same quantized family hits the same key.
    let sibling = lf_cost::plan_tile(TileFeatures::new(530, 62_000, 8), 32);
    let delta = since(before);
    std::hint::black_box((again, sibling));
    assert_eq!(first, again);
    assert_eq!(first, sibling);
    assert_eq!(
        delta.calls, 0,
        "warmed tile-plan lookups must not allocate ({} calls)",
        delta.calls
    );
}

#[test]
fn kernel_runs_allocate_a_bounded_constant() {
    let mut rng = Pcg32::seed_from_u64(7);
    let small = CsrMatrix::from_coo(&uniform_random::<f64>(64, 64, 1500, &mut rng));
    let big = CsrMatrix::from_coo(&uniform_random::<f64>(512, 512, 60_000, &mut rng));
    let j = 32;
    let b_small = DenseMatrix::random(small.cols(), j, &mut rng);
    let b_big = DenseMatrix::random(big.cols(), j, &mut rng);

    // Output buffer + per-worker scratch + job bookkeeping + work-item
    // list growth. Deliberately generous in absolute terms — the bug
    // being guarded against is per-row/per-nnz allocation, which shows
    // up in the thousands.
    let budget = 192 + 16 * default_workers() as u64;

    for (ks, kb) in all_kernels(&small).iter().zip(all_kernels(&big).iter()) {
        let calls_small = measured_run(ks.as_ref(), &b_small);
        let calls_big = measured_run(kb.as_ref(), &b_big);
        assert!(
            calls_small <= budget,
            "{}: {calls_small} allocation calls on the small operand (budget {budget})",
            ks.name()
        );
        assert!(
            calls_big <= budget,
            "{}: {calls_big} allocation calls on the big operand (budget {budget})",
            kb.name()
        );
        // Scale independence: 40× the nnz must not buy more than
        // work-item-list growth (logarithmic) worth of extra calls.
        assert!(
            calls_big <= calls_small + 48,
            "{}: allocation calls grew with the operand ({calls_small} -> {calls_big})",
            kb.name()
        );
    }
}
