//! Differential fuzzing: every kernel vs. the sequential CSR reference.
//!
//! Each iteration draws one structure-aware [`fuzz_case`] — the
//! [`PatternFamily`] corpus shapes plus degenerate geometry (zero rows,
//! zero columns, empty matrices, mostly-empty rows, one dense row,
//! duplicate-heavy streams, extreme aspect ratios, folded-row-heavy
//! profiles) — builds **all ten** kernel configurations on it, and
//! requires every result to match `CsrMatrix::spmm_reference` within the
//! engine suite's 1e-9 bound.
//!
//! The corpus also rotates through a **malformed** class (broken
//! row-pointer monotonicity, out-of-range column indices, length
//! mismatches, non-finite values). Those cases exercise the *rejection*
//! contract instead: strict validation must return a typed
//! `SparseError` — never panic, never a wrong answer — and the kernel
//! comparison is skipped, since kernel constructors are only defined
//! over valid CSR.
//!
//! In debug builds the shadow race detector is live underneath every
//! kernel: each run also proves the disjoint-write claims (plain-store
//! rows single-writer, atomic rows shared) hold for the generated
//! structure.
//!
//! Run with `cargo test -p lf-kernels fuzz_differential`. The default
//! iteration count is CI-sized but covers every structural class
//! (classes rotate with the seed); `LF_FUZZ_ITERS=2000` (see
//! `scripts/verify.sh --stress`) widens the sweep. Every failure message
//! carries the seed, which reproduces the case exactly.

use lf_cell::{build_cell, CellConfig};
use lf_kernels::cell::CellKernel;
use lf_kernels::{
    BcsrKernel, CsrScalarKernel, CsrVectorKernel, DgSparseKernel, EllKernel, Lanes, SellKernel,
    SpmmKernel, SputnikKernel, TacoKernel, TacoSchedule, TileParams,
};
use lf_sparse::gen::{fuzz_case, FUZZ_CLASSES};
use lf_sparse::{BcsrMatrix, CsrMatrix, DenseMatrix, EllMatrix, Pcg32, SellMatrix};

/// Every kernel in the repo, bound to the same operand and execution
/// tile, paired with whether its mapping may use atomic accumulation
/// (which makes run-to-run float ordering scheduling-dependent).
fn all_kernels(csr: &CsrMatrix<f64>, tile: TileParams) -> Vec<(Box<dyn SpmmKernel<f64>>, bool)> {
    vec![
        (
            Box::new(CsrScalarKernel::new(csr.clone()).with_tile(tile)) as Box<_>,
            false,
        ),
        (
            Box::new(CsrVectorKernel::new(csr.clone()).with_tile(tile)),
            false,
        ),
        (
            Box::new(DgSparseKernel::new(csr.clone()).with_tile(tile)),
            false,
        ),
        (
            Box::new(SputnikKernel::new(csr.clone()).with_tile(tile)),
            false,
        ),
        (
            Box::new(TacoKernel::new(csr.clone(), TacoSchedule::default()).with_tile(tile)),
            true,
        ),
        (
            Box::new(EllKernel::new(EllMatrix::from_csr(csr)).with_tile(tile)),
            false,
        ),
        (
            Box::new(SellKernel::new(SellMatrix::from_csr(csr, 16).unwrap()).with_tile(tile)),
            false,
        ),
        (
            Box::new(BcsrKernel::new(BcsrMatrix::from_csr(csr, 4, 4).unwrap()).with_tile(tile)),
            false,
        ),
        (
            Box::new(
                CellKernel::new(build_cell(csr, &CellConfig::with_partitions(3)).unwrap())
                    .with_tile(tile),
            ),
            true,
        ),
        // Width-capped build: long rows fold into fragments of the
        // maximum bucket, exercising the atomic flush path (and its
        // shared shadow claims) on every structural class.
        (
            Box::new(
                CellKernel::new(
                    build_cell(csr, &CellConfig::default().with_max_widths(vec![8])).unwrap(),
                )
                .with_tile(tile),
            ),
            true,
        ),
    ]
}

fn iters() -> u64 {
    std::env::var("LF_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        // 4 full rotations through the structural classes by default.
        .unwrap_or(4 * FUZZ_CLASSES)
}

#[test]
fn fuzz_differential_all_kernels_match_reference() {
    for seed in 0..iters() {
        let case = fuzz_case::<f64>(seed);
        let (csr, j) = (&case.csr, case.j);
        if case.malformed {
            // Malformed payloads must be caught by strict validation
            // (the serving layer's ingress gate) with a typed error.
            // Kernels are only defined over valid CSR, so the
            // differential comparison does not apply.
            assert!(
                csr.validate_finite().is_err(),
                "seed {seed} [{}]: malformed case passed strict validation",
                case.label
            );
            continue;
        }
        assert!(
            csr.validate().is_ok(),
            "seed {seed} [{}]: well-formed case failed validation",
            case.label
        );
        let mut rng = Pcg32::new(seed, 0xB0B);
        let b = DenseMatrix::random(csr.cols(), j, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        // Differential on two axes at once: every kernel vs. the
        // sequential reference, AND the forced-scalar engine vs. the
        // SIMD gather engine. Atomic-free kernels must agree with their
        // scalar run *bitwise*; atomic mappings get the 1e-9 bound.
        let scalar_tile = TileParams::default().with_lanes(Lanes::Scalar);
        let wide_tile = TileParams {
            j_tile: 64,
            k_block: 8,
            lanes: Lanes::Auto,
            chunk_slots: 4096,
        };
        let wide = all_kernels(csr, wide_tile);
        for ((k, atomics), (kw, _)) in all_kernels(csr, scalar_tile).into_iter().zip(wide) {
            let got = k.run(&b).unwrap_or_else(|e| {
                panic!(
                    "seed {seed} [{}] {}x{} nnz={} J={j}: {} failed: {e}",
                    case.label,
                    csr.rows(),
                    csr.cols(),
                    csr.nnz(),
                    k.name()
                )
            });
            assert_eq!(
                got.shape(),
                (csr.rows(), j),
                "seed {seed} [{}]: {} shape",
                case.label,
                k.name()
            );
            assert!(
                got.approx_eq(&want, 1e-9),
                "seed {seed} [{}] {}x{} nnz={} J={j}: {} diverges from reference",
                case.label,
                csr.rows(),
                csr.cols(),
                csr.nnz(),
                k.name()
            );
            let got_wide = kw.run(&b).unwrap_or_else(|e| {
                panic!(
                    "seed {seed} [{}]: {} (SIMD tile) failed: {e}",
                    case.label,
                    kw.name()
                )
            });
            if atomics {
                assert!(
                    got_wide.approx_eq(&want, 1e-9),
                    "seed {seed} [{}]: {} (SIMD tile) diverges from reference",
                    case.label,
                    kw.name()
                );
            } else {
                let a: Vec<u64> = got.as_slice().iter().map(|v| v.to_bits()).collect();
                let w: Vec<u64> = got_wide.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    a,
                    w,
                    "seed {seed} [{}] {}x{} nnz={} J={j}: {} SIMD engine is not \
                     bitwise-equal to the scalar engine",
                    case.label,
                    csr.rows(),
                    csr.cols(),
                    csr.nnz(),
                    k.name()
                );
            }
        }
    }
}
