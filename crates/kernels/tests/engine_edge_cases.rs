//! Edge-case and equivalence suite for the shared SpMM execution engine.
//!
//! Every kernel now runs on the persistent-pool engine with direct
//! (non-atomic) output writes wherever rows have a single writer, so this
//! suite pins down the behaviors that rewrite could have silently broken:
//!
//! * numeric agreement with the sequential CSR reference for every kernel
//!   across degenerate and tiling-boundary dense widths
//!   (`J ∈ {0, 1, 7, 33, 256}` — 256 crosses the engine's accumulator
//!   tile);
//! * empty buckets / empty partitions / empty matrices;
//! * bitwise run-to-run determinism of the atomic-free paths;
//! * the CELL single-writer fast path being bit-identical (modulo the
//!   sign of zero) to the forced-atomic path (the Algorithm 2
//!   `needs_atomic` contract).

use lf_cell::{build_cell, CellConfig};
use lf_kernels::cell::{CellKernel, FusionMode};
use lf_kernels::{
    BcsrKernel, CsrScalarKernel, CsrVectorKernel, DgSparseKernel, EllKernel, Lanes, SellKernel,
    SpmmKernel, SputnikKernel, TacoKernel, TacoSchedule, TileParams,
};
use lf_sparse::gen::{mixed_regions, uniform_random, uniform_with_long_rows};
use lf_sparse::{BcsrMatrix, CsrMatrix, DenseMatrix, EllMatrix, Pcg32, SellMatrix};
use proptest::prelude::*;

/// Every kernel in the repo, bound to the same operand.
fn all_kernels(csr: &CsrMatrix<f64>) -> Vec<Box<dyn SpmmKernel<f64>>> {
    vec![
        Box::new(CsrScalarKernel::new(csr.clone())),
        Box::new(CsrVectorKernel::new(csr.clone())),
        Box::new(DgSparseKernel::new(csr.clone())),
        Box::new(SputnikKernel::new(csr.clone())),
        Box::new(TacoKernel::new(csr.clone(), TacoSchedule::default())),
        Box::new(EllKernel::new(EllMatrix::from_csr(csr))),
        Box::new(SellKernel::new(SellMatrix::from_csr(csr, 16).unwrap())),
        Box::new(BcsrKernel::new(BcsrMatrix::from_csr(csr, 4, 4).unwrap())),
        Box::new(CellKernel::new(
            build_cell(csr, &CellConfig::with_partitions(3)).unwrap(),
        )),
    ]
}

#[test]
fn every_kernel_matches_reference_at_edge_widths() {
    let mut rng = Pcg32::seed_from_u64(0xE1);
    let csr = CsrMatrix::from_coo(&uniform_with_long_rows::<f64>(
        160, 140, 2200, 3, 120, &mut rng,
    ));
    for j in [0usize, 1, 7, 33, 256] {
        let b = DenseMatrix::random(csr.cols(), j, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        for k in all_kernels(&csr) {
            let got = k.run(&b).unwrap();
            assert_eq!(got.shape(), (csr.rows(), j), "{} J={j}", k.name());
            assert!(got.approx_eq(&want, 1e-9), "{} J={j}", k.name());
        }
    }
}

#[test]
fn empty_matrix_all_kernels() {
    let csr = CsrMatrix::<f64>::empty(12, 8);
    for j in [0usize, 1, 5] {
        let b = DenseMatrix::zeros(8, j);
        for k in all_kernels(&csr) {
            let c = k.run(&b).unwrap();
            assert_eq!(c.shape(), (12, j), "{} J={j}", k.name());
            assert!(c.as_slice().iter().all(|&v| v == 0.0), "{}", k.name());
        }
    }
}

#[test]
fn cell_handles_empty_partitions_and_buckets() {
    // All non-zeros live in the first few columns, so with 8 column
    // partitions most partitions hold no blocks at all.
    let trips: Vec<(usize, usize, f64)> =
        (0..64).map(|r| (r, r % 4, 1.0 + r as f64 * 0.25)).collect();
    let csr = CsrMatrix::from_coo(&lf_sparse::CooMatrix::from_triplets(64, 512, trips).unwrap());
    for fusion in [FusionMode::Full, FusionMode::PerPartition] {
        let cell = build_cell(&csr, &CellConfig::with_partitions(8)).unwrap();
        let k = CellKernel::with_fusion(cell, fusion);
        let mut rng = Pcg32::seed_from_u64(0xE2);
        let b = DenseMatrix::random(512, 9, &mut rng);
        let got = k.run(&b).unwrap();
        let want = csr.spmm_reference(&b).unwrap();
        assert!(got.approx_eq(&want, 1e-9), "{fusion:?}");
        // The analytic path also tolerates the empty partitions.
        let launches = k.launches(9, &lf_sim::DeviceModel::v100());
        assert!(!launches.is_empty());
    }
}

#[test]
fn atomic_free_paths_are_bitwise_deterministic() {
    // Kernels whose engine path uses no atomics (single-writer rows, or
    // single-partition unfolded CELL) must produce bit-identical results
    // on every run, no matter how the pool interleaves workers.
    let mut rng = Pcg32::seed_from_u64(0xE3);
    let csr = CsrMatrix::from_coo(&uniform_random::<f64>(300, 280, 6000, &mut rng));
    let b = DenseMatrix::random(csr.cols(), 33, &mut rng);
    let kernels: Vec<Box<dyn SpmmKernel<f64>>> = vec![
        Box::new(CsrScalarKernel::new(csr.clone())),
        Box::new(CsrVectorKernel::new(csr.clone())),
        Box::new(DgSparseKernel::new(csr.clone())),
        Box::new(SputnikKernel::new(csr.clone())),
        Box::new(EllKernel::new(EllMatrix::from_csr(&csr))),
        Box::new(SellKernel::new(SellMatrix::from_csr(&csr, 32).unwrap())),
        Box::new(BcsrKernel::new(BcsrMatrix::from_csr(&csr, 8, 8).unwrap())),
        Box::new(CellKernel::new(
            build_cell(&csr, &CellConfig::default()).unwrap(),
        )),
    ];
    for k in kernels {
        let first = k.run(&b).unwrap();
        for rep in 0..3 {
            let again = k.run(&b).unwrap();
            assert_eq!(first.as_slice(), again.as_slice(), "{} rep={rep}", k.name());
        }
    }
}

/// The SIMD engine contract: for every kernel, every lane mode and tile
/// shape accumulates each output element in the same ascending-k order
/// as the original scalar loop, so on atomic-free paths the results are
/// **bitwise** identical — the `LF_SIMD=off` escape hatch can never
/// change an answer. Kernels whose mapping uses atomics (TACO segment
/// boundaries, folded/multi-partition CELL) are scheduling-order
/// nondeterministic already and are held to the suite's 1e-9 bound.
#[test]
fn scalar_and_wide_tiles_agree_for_every_kernel() {
    let mut rng = Pcg32::seed_from_u64(0xE5);
    let csr = CsrMatrix::from_coo(&uniform_with_long_rows::<f64>(
        180, 160, 3000, 3, 90, &mut rng,
    ));
    let b = DenseMatrix::random(csr.cols(), 41, &mut rng);
    let scalar = TileParams::default().with_lanes(Lanes::Scalar);
    let wide_tiles = [
        TileParams::default(),
        TileParams {
            j_tile: 32,
            k_block: 5,
            lanes: Lanes::X4,
            chunk_slots: 1024,
        },
        TileParams {
            j_tile: 512,
            k_block: 32,
            lanes: Lanes::X8,
            chunk_slots: 16384,
        },
    ];
    type Run<'a> = Box<dyn Fn(TileParams) -> DenseMatrix<f64> + 'a>;
    // (name, run-under-tile, kernel may use atomics?)
    let cases: Vec<(&str, Run, bool)> = vec![
        (
            "csr_scalar",
            Box::new(|t| CsrScalarKernel::new(csr.clone()).run_tiled(&b, t).unwrap()),
            false,
        ),
        (
            "csr_vector",
            Box::new(|t| CsrVectorKernel::new(csr.clone()).run_tiled(&b, t).unwrap()),
            false,
        ),
        (
            "dgsparse",
            Box::new(|t| DgSparseKernel::new(csr.clone()).run_tiled(&b, t).unwrap()),
            false,
        ),
        (
            "sputnik",
            Box::new(|t| SputnikKernel::new(csr.clone()).run_tiled(&b, t).unwrap()),
            false,
        ),
        (
            "taco",
            Box::new(|t| {
                TacoKernel::new(csr.clone(), TacoSchedule::default())
                    .run_tiled(&b, t)
                    .unwrap()
            }),
            true,
        ),
        (
            "ell",
            Box::new(|t| {
                EllKernel::new(EllMatrix::from_csr(&csr))
                    .run_tiled(&b, t)
                    .unwrap()
            }),
            false,
        ),
        (
            "sell",
            Box::new(|t| {
                SellKernel::new(SellMatrix::from_csr(&csr, 16).unwrap())
                    .run_tiled(&b, t)
                    .unwrap()
            }),
            false,
        ),
        (
            "bcsr",
            Box::new(|t| {
                BcsrKernel::new(BcsrMatrix::from_csr(&csr, 4, 4).unwrap())
                    .run_tiled(&b, t)
                    .unwrap()
            }),
            false,
        ),
        (
            "cell",
            Box::new(|t| {
                CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap())
                    .run_tiled(&b, t)
                    .unwrap()
            }),
            false,
        ),
        (
            "cell_folded",
            Box::new(|t| {
                CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(3)).unwrap())
                    .run_tiled(&b, t)
                    .unwrap()
            }),
            true,
        ),
    ];
    let want = csr.spmm_reference(&b).unwrap();
    for (name, run, atomics) in &cases {
        let base = run(scalar);
        assert!(base.approx_eq(&want, 1e-9), "{name} scalar tile");
        for (ti, &tile) in wide_tiles.iter().enumerate() {
            let got = run(tile);
            assert!(got.approx_eq(&want, 1e-9), "{name} tile #{ti}");
            if !atomics {
                let base_bits: Vec<u64> = base.as_slice().iter().map(|v| v.to_bits()).collect();
                let got_bits: Vec<u64> = got.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    base_bits, got_bits,
                    "{name} tile #{ti}: wide lanes must be bitwise-equal to the scalar engine"
                );
            }
        }
    }
}

/// Bitwise equality, except that `-0.0` and `+0.0` compare equal.
///
/// The plain-store fast path writes the accumulator verbatim (which can
/// be `-0.0`, e.g. from a `-x * 0.0` product), while the atomic path
/// computes `0.0 + acc`, which IEEE 754 normalizes to `+0.0`. The two
/// flush modes are identical on every other bit pattern.
fn bitwise_eq_mod_zero_sign(a: &[f64], b: &[f64]) -> bool {
    fn norm(x: f64) -> u64 {
        if x == 0.0 {
            0.0f64.to_bits()
        } else {
            x.to_bits()
        }
    }
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| norm(x) == norm(y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Algorithm 2's `needs_atomic` contract: routing every flush through
    /// `atomic_add` instead of honoring the single-writer fast path never
    /// changes the output beyond the sign of zero (see
    /// [`bitwise_eq_mod_zero_sign`]), and both agree with the reference.
    #[test]
    fn cell_plain_store_equals_forced_atomic(
        seed in 0u64..1_000_000u64,
        dims in (20usize..150, 20usize..150),
        nnz in 30usize..2500,
        p in 1usize..5,
        j in 1usize..40,
    ) {
        let (rows, cols) = dims;
        let mut rng = Pcg32::seed_from_u64(seed);
        let csr = CsrMatrix::from_coo(&mixed_regions::<f64>(rows, cols, nnz, 3, &mut rng));
        let cell = build_cell(&csr, &CellConfig::with_partitions(p)).unwrap();
        let k = CellKernel::new(cell);
        let b = DenseMatrix::random(cols, j, &mut rng);
        let fast = k.run(&b).unwrap();
        let forced = k.run_forced_atomic(&b).unwrap();
        let single_writer = k
            .cell()
            .partitions()
            .iter()
            .flat_map(|part| &part.buckets)
            .all(|bk| !bk.needs_atomic);
        if single_writer {
            // No contention anywhere: the two flush modes must agree
            // bitwise (modulo the sign of zero), run to run.
            prop_assert!(bitwise_eq_mod_zero_sign(fast.as_slice(), forced.as_slice()));
        }
        let want = csr.spmm_reference(&b).unwrap();
        prop_assert!(fast.approx_eq(&want, 1e-9));
        prop_assert!(forced.approx_eq(&want, 1e-9));
        // The legacy engine is a third independent oracle.
        let legacy = k.run_legacy(&b).unwrap();
        prop_assert!(legacy.approx_eq(&want, 1e-9));
    }
}
