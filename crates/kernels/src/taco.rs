//! TACO-style scheduled CSR SpMM: the non-zero stream is split evenly into
//! warp-sized segments (`nnz_per_warp`), giving perfect load balance at
//! the price of atomics wherever a row straddles a segment boundary. The
//! paper sweeps 6 × 6 schedules and keeps the fastest (§7.1).

use crate::common::{b_row_tx, split_b_traffic, spmm_flops, BlockScratch};
use crate::simd::{Gather, Lanes, TileParams};
use crate::SpmmKernel;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::coalesce::segment_transactions;
use lf_sim::parallel::{default_workers, parallel_for_init};
use lf_sim::{BlockCost, DeviceModel, LaunchSpec};
use lf_sparse::{CsrMatrix, DenseMatrix, Result, SparseError};

/// One TACO schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TacoSchedule {
    /// Non-zeros assigned to each warp.
    pub nnz_per_warp: usize,
    /// Warps per thread block.
    pub warps_per_block: usize,
}

impl TacoSchedule {
    /// The 36-point sweep used in the paper: 6 nnz-per-warp × 6
    /// warps-per-block values.
    pub fn sweep() -> Vec<TacoSchedule> {
        let nnzs = [8, 16, 32, 64, 128, 256];
        let warps = [1, 2, 4, 8, 16, 32];
        let mut out = Vec::with_capacity(36);
        for &n in &nnzs {
            for &w in &warps {
                out.push(TacoSchedule {
                    nnz_per_warp: n,
                    warps_per_block: w,
                });
            }
        }
        out
    }

    /// Non-zeros per thread block.
    pub fn nnz_per_block(&self) -> usize {
        self.nnz_per_warp * self.warps_per_block
    }
}

impl Default for TacoSchedule {
    fn default() -> Self {
        TacoSchedule {
            nnz_per_warp: 32,
            warps_per_block: 8,
        }
    }
}

/// Issue efficiency of TACO's generated scalar inner loops relative to
/// the hand-tuned kernels (see the calibration note in DESIGN.md).
pub const CODEGEN_EFFICIENCY: f64 = 0.5;

/// Sector-utilization penalty on dense-operand loads: TACO's generated
/// lane-per-nonzero loop reads `B` element-wise with neither shared-memory
/// staging nor vectorized loads, so adjacent lanes touch different `B`
/// rows and each 32-byte sector is mostly wasted. Hand-tuned kernels
/// (cuSPARSE/GE-SpMM/Sputnik) coalesce these reads; TACO pays ~4x the
/// sectors (calibration note in DESIGN.md; drives the paper's 0.49x
/// geomean vs cuSPARSE).
pub const B_UNCOALESCED_FACTOR: u64 = 4;

/// TACO-style kernel with an explicit schedule.
pub struct TacoKernel<T> {
    csr: CsrMatrix<T>,
    schedule: TacoSchedule,
    /// Row id owning each non-zero position (precomputed expansion).
    row_of_nnz: Vec<u32>,
    tile: TileParams,
}

impl<T: AtomicScalar> TacoKernel<T> {
    /// Wrap a CSR operand under a schedule.
    pub fn new(csr: CsrMatrix<T>, schedule: TacoSchedule) -> Self {
        let mut row_of_nnz = vec![0u32; csr.nnz()];
        for r in 0..csr.rows() {
            for p in csr.row_ptr()[r]..csr.row_ptr()[r + 1] {
                row_of_nnz[p] = r as u32;
            }
        }
        TacoKernel {
            csr,
            schedule,
            row_of_nnz,
            tile: TileParams::default(),
        }
    }

    /// Replace the tile/lane parameters used by [`SpmmKernel::run`].
    pub fn with_tile(mut self, tile: TileParams) -> Self {
        self.tile = tile;
        self
    }

    /// The tile/lane parameters this kernel runs with.
    pub fn tile_params(&self) -> TileParams {
        self.tile
    }

    /// Run once with explicit tile/lane parameters (overriding the stored
    /// ones), e.g. from a [`TileParams`] search.
    pub fn run_tiled(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        self.execute(b, tile)
    }

    /// The active schedule.
    pub fn schedule(&self) -> TacoSchedule {
        self.schedule
    }

    /// Access the underlying matrix.
    pub fn csr(&self) -> &CsrMatrix<T> {
        &self.csr
    }

    fn execute(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        if self.csr.cols() != b.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "spmm",
                lhs: self.csr.shape(),
                rhs: b.shape(),
            });
        }
        let j = b.cols();
        let nnz = self.csr.nnz();
        let seg = self.schedule.nnz_per_warp.max(1);
        let num_segs = nnz.div_ceil(seg).max(1);
        let lanes = tile.lanes.resolve::<T>();
        let k_block = tile.k_block_clamped();
        let mut c = DenseMatrix::zeros(self.csr.rows(), j);
        {
            let cells = T::as_cells(c.as_mut_slice());
            let cols = self.csr.col_ind();
            let vals = self.csr.values();
            let row_ptr = self.csr.row_ptr();
            // A row fully contained in the segment has this segment as its
            // only writer — flush with a plain store. Rows straddling a
            // boundary are shared between segments and keep the atomic
            // accumulation, exactly the GPU mapping's write pattern.
            let flush = |cells: &[T::Cell], r: u32, acc: &[T], lo: usize, hi: usize| {
                let r = r as usize;
                let interior = row_ptr[r] >= lo && row_ptr[r + 1] <= hi;
                let base = r * j;
                if interior {
                    for (jj, &v) in acc.iter().enumerate() {
                        T::store_cell(&cells[base + jj], v);
                    }
                } else {
                    for (jj, &v) in acc.iter().enumerate() {
                        T::atomic_add(&cells[base + jj], v);
                    }
                }
            };
            // Each task owns one nnz segment; the per-worker accumulator
            // is reused across every segment the worker processes.
            parallel_for_init(
                num_segs,
                default_workers(),
                || vec![T::ZERO; j],
                |acc, s| {
                    let lo = s * seg;
                    let hi = ((s + 1) * seg).min(nnz);
                    let mut cur_row = u32::MAX;
                    if lanes == Lanes::Scalar {
                        for p in lo..hi {
                            let r = self.row_of_nnz[p];
                            if r != cur_row {
                                if cur_row != u32::MAX {
                                    flush(cells, cur_row, acc, lo, hi);
                                }
                                acc.fill(T::ZERO);
                                cur_row = r;
                            }
                            let brow = b.row(cols[p] as usize);
                            let a = vals[p];
                            for (jj, &bv) in brow.iter().enumerate() {
                                acc[jj] += a * bv;
                            }
                        }
                        if cur_row != u32::MAX {
                            flush(cells, cur_row, acc, lo, hi);
                            acc.fill(T::ZERO);
                        }
                    } else {
                        // Runs of same-row non-zeros are gathered into
                        // k-blocks and drained through the strip
                        // microkernel; the accumulation order over a
                        // row's non-zeros stays ascending in `p`, so the
                        // per-element sum matches the scalar loop
                        // bitwise.
                        let mut gather = Gather::new();
                        for p in lo..hi {
                            let r = self.row_of_nnz[p];
                            if r != cur_row {
                                if cur_row != u32::MAX {
                                    gather.flush_into(lanes, acc, 0);
                                    flush(cells, cur_row, acc, lo, hi);
                                }
                                acc.fill(T::ZERO);
                                cur_row = r;
                            }
                            gather.push(vals[p], b.row(cols[p] as usize));
                            if gather.full(k_block) {
                                gather.flush_into(lanes, acc, 0);
                            }
                        }
                        if cur_row != u32::MAX {
                            gather.flush_into(lanes, acc, 0);
                            flush(cells, cur_row, acc, lo, hi);
                            acc.fill(T::ZERO);
                        }
                    }
                },
            );
        }
        Ok(c)
    }
}

impl<T: AtomicScalar> SpmmKernel<T> for TacoKernel<T> {
    fn name(&self) -> &'static str {
        "taco"
    }

    fn shape(&self) -> (usize, usize) {
        self.csr.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        self.execute(b, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let nnz = self.csr.nnz();
        let per_row = b_row_tx(j, elem, device);
        let ws = self.csr.cols() * j * elem;
        let block_nnz = self.schedule.nnz_per_block().max(1);
        let threads = (self.schedule.warps_per_block * device.warp_size).clamp(32, 1024);
        let mut launch = LaunchSpec::new(self.name(), threads);
        let mut scratch = BlockScratch::new();
        let mut lo = 0usize;
        while lo < nnz {
            let hi = (lo + block_nnz).min(nnz);
            let block_cols = &self.csr.col_ind()[lo..hi];
            let unique = scratch.count_unique(block_cols) as u64 * per_row * B_UNCOALESCED_FACTOR;
            let total = (hi - lo) as u64 * per_row * B_UNCOALESCED_FACTOR;
            let (b_dram, b_l2) = split_b_traffic(unique, total - unique, ws, device);
            // col/val coalesced, but TACO's generated loop re-reads them
            // for every j-tile like the cuSPARSE mapping.
            let passes = j.div_ceil(device.warp_size) as u64;
            let colval = 2 * segment_transactions(hi - lo, 4, device.transaction_bytes) * passes;
            // Output rows in this block; boundary rows straddling warp
            // segments are written atomically.
            let rows_here = scratch.count_unique(&self.row_of_nnz[lo..hi]) as u64;
            let seg = self.schedule.nnz_per_warp.max(1);
            let mut boundary = 0u64;
            let mut p = lo;
            while p < hi {
                let pe = (p + seg).min(hi);
                if pe < nnz && pe > 0 && self.row_of_nnz[pe - 1] == self.row_of_nnz[pe.min(nnz - 1)]
                {
                    boundary += 1;
                }
                p = pe;
            }
            let atomic_tx = boundary * per_row;
            let c_tx = rows_here * per_row;
            launch.push(BlockCost {
                dram_transactions: b_dram + colval + c_tx + 1,
                l2_transactions: b_l2,
                flops: spmm_flops(hi - lo, j),
                atomic_transactions: atomic_tx,
                // TACO's generated scalar code issues roughly half the
                // useful work per cycle of the hand-tuned libraries (no
                // vectorized loads, no shared-memory staging, no register
                // blocking); calibrated against the paper's 0.49x geomean
                // vs cuSPARSE.
                lane_efficiency: CODEGEN_EFFICIENCY,
            });
            lo = hi;
        }
        vec![launch]
    }

    fn format_bytes(&self) -> usize {
        self.csr.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{power_law, uniform_random, PowerLawConfig};
    use lf_sparse::Pcg32;

    fn random_csr(seed: u64) -> CsrMatrix<f64> {
        let mut rng = Pcg32::seed_from_u64(seed);
        CsrMatrix::from_coo(&uniform_random(150, 130, 2000, &mut rng))
    }

    #[test]
    fn numeric_matches_reference_across_schedules() {
        let csr = random_csr(1);
        let mut rng = Pcg32::seed_from_u64(70);
        let b = DenseMatrix::random(csr.cols(), 40, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        for sched in [
            TacoSchedule::default(),
            TacoSchedule {
                nnz_per_warp: 8,
                warps_per_block: 1,
            },
            TacoSchedule {
                nnz_per_warp: 256,
                warps_per_block: 32,
            },
        ] {
            let k = TacoKernel::new(csr.clone(), sched);
            let got = k.run(&b).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "{sched:?}");
        }
    }

    #[test]
    fn sweep_has_36_distinct_points() {
        let sweep = TacoSchedule::sweep();
        assert_eq!(sweep.len(), 36);
        let set: std::collections::HashSet<_> = sweep.iter().collect();
        assert_eq!(set.len(), 36);
    }

    #[test]
    fn schedules_produce_different_profiles() {
        let d = DeviceModel::v100();
        let csr = random_csr(2);
        let times: Vec<f64> = TacoSchedule::sweep()
            .into_iter()
            .map(|s| TacoKernel::new(csr.clone(), s).profile(128, &d).time_ms)
            .collect();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 1.2 * min, "sweep should matter: {min}..{max}");
    }

    #[test]
    fn balanced_even_on_power_law() {
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(3);
        let coo = power_law::<f64>(
            &PowerLawConfig {
                rows: 3000,
                cols: 3000,
                target_nnz: 50_000,
                exponent: 2.0,
                max_degree: None,
            },
            &mut rng,
        );
        let csr = CsrMatrix::from_coo(&coo);
        let k = TacoKernel::new(csr, TacoSchedule::default());
        let p = k.profile(128, &d);
        assert!(
            p.imbalance < 2.0,
            "even-nnz split should balance: {}",
            p.imbalance
        );
    }

    #[test]
    fn atomics_present_with_small_segments() {
        let d = DeviceModel::v100();
        // A single dense-ish row spanning many segments forces boundary
        // atomics.
        let trips: Vec<(usize, usize, f64)> = (0..500).map(|c| (0, c, 1.0)).collect();
        let csr = CsrMatrix::from_coo(&lf_sparse::CooMatrix::from_triplets(4, 500, trips).unwrap());
        let k = TacoKernel::new(
            csr,
            TacoSchedule {
                nnz_per_warp: 16,
                warps_per_block: 4,
            },
        );
        let p = k.profile(64, &d);
        assert!(p.atomic_transactions > 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let k = TacoKernel::new(random_csr(4), TacoSchedule::default());
        assert!(k.run(&DenseMatrix::<f64>::zeros(7, 3)).is_err());
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::<f64>::empty(5, 5);
        let k = TacoKernel::new(csr, TacoSchedule::default());
        let c = k.run(&DenseMatrix::zeros(5, 3)).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
