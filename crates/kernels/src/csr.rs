//! CSR-based SpMM kernels: the four fixed-format baseline mappings
//! (naive scalar, cuSPARSE-like vector, dgSPARSE/GE-SpMM, Sputnik).

use crate::common::{b_row_tx, split_b_traffic, spmm_flops, BlockScratch};
use crate::simd::{Gather, Lanes, TileParams};
use crate::SpmmKernel;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::coalesce::segment_transactions;
use lf_sim::parallel::{default_workers, parallel_for, DisjointSlice};
use lf_sim::{BlockCost, DeviceModel, LaunchSpec};
use lf_sparse::{CsrMatrix, DenseMatrix, Result, SparseError};

/// Row-parallel CSR SpMM with an explicit execution tile. Each output
/// row has exactly one writer, so workers accumulate straight into their
/// disjoint `C` rows — no atomics, no per-row scratch allocation. With
/// `Lanes::Scalar` the loop shape is the original element-wise engine;
/// any wider lane mode gathers each row's `(coeff, B-row)` pairs in
/// `k_block` chunks and applies them as register-blocked strip sweeps.
/// Per-element accumulation order is ascending-k either way, so all
/// modes are bitwise identical.
pub(crate) fn parallel_csr_spmm_tiled<T: AtomicScalar>(
    csr: &CsrMatrix<T>,
    b: &DenseMatrix<T>,
    tile: TileParams,
) -> Result<DenseMatrix<T>> {
    if csr.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            op: "spmm",
            lhs: csr.shape(),
            rhs: b.shape(),
        });
    }
    let j = b.cols();
    let mut c = DenseMatrix::zeros(csr.rows(), j);
    let lanes = tile.lanes.resolve::<T>();
    let k_block = tile.k_block_clamped();
    {
        let out = DisjointSlice::new(c.as_mut_slice());
        parallel_for(csr.rows(), default_workers(), |i| {
            // SAFETY: `parallel_for` hands each row index to exactly one
            // worker, so the `i * j .. (i + 1) * j` windows never overlap.
            let crow = unsafe { out.slice_mut(i * j, j) };
            if lanes == Lanes::Scalar {
                // The pre-SIMD engine, loop shape unchanged.
                for (&k, &a) in csr.row_cols(i).iter().zip(csr.row_values(i)) {
                    let brow = b.row(k as usize);
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += a * bv;
                    }
                }
            } else {
                let mut gather: Gather<'_, T> = Gather::new();
                for (&k, &a) in csr.row_cols(i).iter().zip(csr.row_values(i)) {
                    gather.push(a, b.row(k as usize));
                    if gather.full(k_block) {
                        gather.flush_into(lanes, crow, 0);
                    }
                }
                gather.flush_into(lanes, crow, 0);
            }
        });
    }
    Ok(c)
}

/// Per-block B-traffic accounting shared by the CSR kernels: given the
/// column indices a block touches, split into (dram, l2) transactions.
/// `scratch` is reused across blocks — no per-block allocation.
fn block_b_traffic(
    scratch: &mut BlockScratch,
    block_cols: &[u32],
    j: usize,
    elem: usize,
    working_set: usize,
    device: &DeviceModel,
) -> (u64, u64) {
    let per_row = b_row_tx(j, elem, device);
    let unique = scratch.count_unique(block_cols) as u64 * per_row;
    let total = block_cols.len() as u64 * per_row;
    split_b_traffic(unique, total - unique, working_set, device)
}

/// Whole-B working set in bytes for un-partitioned kernels.
fn full_b_working_set<T>(k_rows: usize, j: usize) -> usize {
    k_rows * j * std::mem::size_of::<T>()
}

macro_rules! csr_kernel_boilerplate {
    ($ty:ident) => {
        impl<T: AtomicScalar> $ty<T> {
            /// Wrap a CSR operand (default execution tile).
            pub fn new(csr: CsrMatrix<T>) -> Self {
                Self {
                    csr,
                    tile: TileParams::default(),
                }
            }

            /// Set the execution tile `run` uses (builder style).
            pub fn with_tile(mut self, tile: TileParams) -> Self {
                self.tile = tile;
                self
            }

            /// The execution tile `run` uses.
            pub fn tile_params(&self) -> TileParams {
                self.tile
            }

            /// Numeric path with an explicit execution tile.
            pub fn run_tiled(
                &self,
                b: &DenseMatrix<T>,
                tile: TileParams,
            ) -> Result<DenseMatrix<T>> {
                parallel_csr_spmm_tiled(&self.csr, b, tile)
            }

            /// Access the underlying matrix.
            pub fn csr(&self) -> &CsrMatrix<T> {
                &self.csr
            }
        }
    };
}

// ---------------------------------------------------------------------
// Scalar (thread-per-row) kernel.
// ---------------------------------------------------------------------

/// Naive thread-per-row CSR SpMM: 256 rows per 256-thread block. Column
/// index and value loads are scattered (each lane walks a different row),
/// and warps diverge when row lengths differ — the classic weaknesses the
/// paper's §2 describes.
pub struct CsrScalarKernel<T> {
    csr: CsrMatrix<T>,
    tile: TileParams,
}

csr_kernel_boilerplate!(CsrScalarKernel);

impl<T: AtomicScalar> SpmmKernel<T> for CsrScalarKernel<T> {
    fn name(&self) -> &'static str {
        "csr-scalar"
    }

    fn shape(&self) -> (usize, usize) {
        self.csr.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        parallel_csr_spmm_tiled(&self.csr, b, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let rows_per_block = 256;
        let ws = full_b_working_set::<T>(self.csr.cols(), j);
        let mut launch =
            LaunchSpec::new(self.name(), 256).with_grid_multiplier(j.div_ceil(device.warp_size));
        let mut scratch = BlockScratch::new();
        let mut r = 0;
        while r < self.csr.rows() {
            let hi = (r + rows_per_block).min(self.csr.rows());
            let lo_ptr = self.csr.row_ptr()[r];
            let hi_ptr = self.csr.row_ptr()[hi];
            let nnz = hi_ptr - lo_ptr;
            let block_cols = &self.csr.col_ind()[lo_ptr..hi_ptr];
            let (b_dram, b_l2) = block_b_traffic(&mut scratch, block_cols, j, elem, ws, device);
            // Scattered col/val: one sector per element per array.
            let colval = 2 * nnz as u64;
            let row_ptr_tx = segment_transactions(hi - r + 1, 4, device.transaction_bytes);
            // C writes: one row per thread, streaming over j.
            let c_tx = (hi - r) as u64 * b_row_tx(j, elem, device);
            // Divergence: per 32-row warp, active fraction = mean/max len.
            let mut eff_sum = 0.0;
            let mut warps = 0.0;
            let mut w = r;
            while w < hi {
                let we = (w + device.warp_size).min(hi);
                let lens: Vec<usize> = (w..we).map(|i| self.csr.row_len(i)).collect();
                let max = *lens.iter().max().unwrap_or(&0);
                if max > 0 {
                    let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
                    eff_sum += mean / max as f64;
                    warps += 1.0;
                }
                w = we;
            }
            launch.push(BlockCost {
                dram_transactions: b_dram + colval + row_ptr_tx + c_tx,
                l2_transactions: b_l2,
                flops: spmm_flops(nnz, j),
                atomic_transactions: 0,
                lane_efficiency: if warps > 0.0 { eff_sum / warps } else { 1.0 },
            });
            r = hi;
        }
        vec![launch]
    }

    fn format_bytes(&self) -> usize {
        self.csr.memory_bytes()
    }
}

// ---------------------------------------------------------------------
// Vector (warp-per-row) kernel — the cuSPARSE-like mapping.
// ---------------------------------------------------------------------

/// Warp-per-row CSR SpMM, the cuSPARSE-style mapping: lanes cover a
/// 32-wide tile of `j`; the row's column indices and values are re-read
/// for every j-tile (`ceil(J/32)` passes), which is this kernel's
/// signature cost at large `J`.
pub struct CsrVectorKernel<T> {
    csr: CsrMatrix<T>,
    tile: TileParams,
}

csr_kernel_boilerplate!(CsrVectorKernel);

impl<T: AtomicScalar> SpmmKernel<T> for CsrVectorKernel<T> {
    fn name(&self) -> &'static str {
        "csr-vector(cusparse)"
    }

    fn shape(&self) -> (usize, usize) {
        self.csr.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        parallel_csr_spmm_tiled(&self.csr, b, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        vector_style_launches(
            &self.csr,
            j,
            device,
            self.name(),
            VectorStyle {
                colval_passes: j.div_ceil(device.warp_size) as u64,
                balanced: false,
            },
        )
    }

    fn format_bytes(&self) -> usize {
        self.csr.memory_bytes()
    }
}

// ---------------------------------------------------------------------
// dgSPARSE (GE-SpMM) kernel.
// ---------------------------------------------------------------------

/// GE-SpMM-style warp-per-row kernel (the dgSPARSE library): column
/// indices and values are staged through shared memory once and reused
/// across all j-tiles, removing the vector kernel's re-read factor.
pub struct DgSparseKernel<T> {
    csr: CsrMatrix<T>,
    tile: TileParams,
}

csr_kernel_boilerplate!(DgSparseKernel);

impl<T: AtomicScalar> SpmmKernel<T> for DgSparseKernel<T> {
    fn name(&self) -> &'static str {
        "dgsparse(ge-spmm)"
    }

    fn shape(&self) -> (usize, usize) {
        self.csr.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        parallel_csr_spmm_tiled(&self.csr, b, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        vector_style_launches(
            &self.csr,
            j,
            device,
            self.name(),
            VectorStyle {
                colval_passes: 1,
                balanced: false,
            },
        )
    }

    fn format_bytes(&self) -> usize {
        self.csr.memory_bytes()
    }
}

// ---------------------------------------------------------------------
// Sputnik kernel.
// ---------------------------------------------------------------------

/// Sputnik-style kernel: 1-D tiling with a row-swizzle — rows are sorted
/// by length and dealt round-robin to blocks, so every block carries a
/// similar non-zero load (Gale et al., SC'20). Shares the single-pass
/// col/val staging of GE-SpMM; adds a small metadata cost for the row
/// index indirection.
pub struct SputnikKernel<T> {
    csr: CsrMatrix<T>,
    tile: TileParams,
}

csr_kernel_boilerplate!(SputnikKernel);

impl<T: AtomicScalar> SpmmKernel<T> for SputnikKernel<T> {
    fn name(&self) -> &'static str {
        "sputnik"
    }

    fn shape(&self) -> (usize, usize) {
        self.csr.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        parallel_csr_spmm_tiled(&self.csr, b, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let ws = full_b_working_set::<T>(self.csr.cols(), j);
        let rows_per_block = 8;
        // Row swizzle: order rows by descending length, deal round-robin.
        let mut order: Vec<usize> = (0..self.csr.rows()).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(self.csr.row_len(r)));
        let num_blocks = self.csr.rows().div_ceil(rows_per_block).max(1);
        let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); num_blocks];
        for (i, &r) in order.iter().enumerate() {
            blocks[i % num_blocks].push(r);
        }
        let mut launch =
            LaunchSpec::new(self.name(), 256).with_grid_multiplier(j.div_ceil(device.warp_size));
        let mut scratch = BlockScratch::new();
        let mut block_cols: Vec<u32> = Vec::new();
        for rows in blocks.iter().filter(|b| !b.is_empty()) {
            block_cols.clear();
            let mut nnz = 0usize;
            let mut colval = 0u64;
            for &r in rows {
                let len = self.csr.row_len(r);
                nnz += len;
                colval += 2 * segment_transactions(len, 4, device.transaction_bytes);
                block_cols.extend_from_slice(self.csr.row_cols(r));
            }
            let (b_dram, b_l2) = block_b_traffic(&mut scratch, &block_cols, j, elem, ws, device);
            // Swizzle metadata: one extra index load per row.
            let meta = segment_transactions(rows.len(), 4, device.transaction_bytes) + 1;
            let c_tx = rows.len() as u64 * b_row_tx(j, elem, device);
            launch.push(BlockCost {
                dram_transactions: b_dram + colval + meta + c_tx,
                l2_transactions: b_l2,
                flops: spmm_flops(nnz, j),
                atomic_transactions: 0,
                lane_efficiency: j_tail_efficiency(j, device),
            });
        }
        vec![launch]
    }

    fn format_bytes(&self) -> usize {
        // CSR plus the swizzled row-index array.
        self.csr.memory_bytes() + self.csr.rows() * 4
    }
}

// ---------------------------------------------------------------------
// Shared vector-style traffic model.
// ---------------------------------------------------------------------

struct VectorStyle {
    /// How many times col/val are streamed (1 = staged in shared memory).
    colval_passes: u64,
    /// Whether rows were rebalanced across blocks (unused here; Sputnik
    /// has its own path).
    #[allow(dead_code)]
    balanced: bool,
}

/// Lane efficiency of j-tiling: the last tile is partial when
/// `j % warp_size != 0`.
fn j_tail_efficiency(j: usize, device: &DeviceModel) -> f64 {
    if j == 0 {
        return 1.0;
    }
    let tiles = j.div_ceil(device.warp_size);
    j as f64 / (tiles * device.warp_size) as f64
}

fn vector_style_launches<T: AtomicScalar>(
    csr: &CsrMatrix<T>,
    j: usize,
    device: &DeviceModel,
    name: &str,
    style: VectorStyle,
) -> Vec<LaunchSpec> {
    let elem = std::mem::size_of::<T>();
    let ws = full_b_working_set::<T>(csr.cols(), j);
    let rows_per_block = 8; // 8 warps × 1 row each, 256 threads
    let mut launch = LaunchSpec::new(name, 256).with_grid_multiplier(j.div_ceil(device.warp_size));
    let mut scratch = BlockScratch::new();
    let mut r = 0;
    while r < csr.rows() {
        let hi = (r + rows_per_block).min(csr.rows());
        let lo_ptr = csr.row_ptr()[r];
        let hi_ptr = csr.row_ptr()[hi];
        let nnz = hi_ptr - lo_ptr;
        let block_cols = &csr.col_ind()[lo_ptr..hi_ptr];
        let (b_dram, b_l2) = block_b_traffic(&mut scratch, block_cols, j, elem, ws, device);
        // Coalesced col/val streams, possibly re-read per j-tile.
        let mut colval = 0u64;
        for i in r..hi {
            colval += 2 * segment_transactions(csr.row_len(i), 4, device.transaction_bytes);
        }
        colval *= style.colval_passes;
        let c_tx = (hi - r) as u64 * b_row_tx(j, elem, device);
        launch.push(BlockCost {
            dram_transactions: b_dram + colval + c_tx + 1,
            l2_transactions: b_l2,
            flops: spmm_flops(nnz, j),
            atomic_transactions: 0,
            lane_efficiency: j_tail_efficiency(j, device),
        });
        r = hi;
    }
    vec![launch]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{power_law, uniform_random, PowerLawConfig};
    use lf_sparse::{CooMatrix, Pcg32};

    fn toy_csr() -> CsrMatrix<f64> {
        let coo = CooMatrix::from_triplets(
            4,
            5,
            vec![
                (0, 0, 1.0),
                (0, 4, 2.0),
                (1, 2, 3.0),
                (2, 1, -1.0),
                (2, 2, 0.5),
                (2, 3, 1.5),
                (3, 0, 2.5),
            ],
        )
        .unwrap();
        CsrMatrix::from_coo(&coo)
    }

    fn random_csr(seed: u64, rows: usize, cols: usize, nnz: usize) -> CsrMatrix<f64> {
        let mut rng = Pcg32::seed_from_u64(seed);
        CsrMatrix::from_coo(&uniform_random(rows, cols, nnz, &mut rng))
    }

    fn check_numeric<K: SpmmKernel<f64>>(k: &K, csr: &CsrMatrix<f64>) {
        let mut rng = Pcg32::seed_from_u64(99);
        for j in [1, 3, 32, 70] {
            let b = DenseMatrix::random(csr.cols(), j, &mut rng);
            let got = k.run(&b).unwrap();
            let want = csr.spmm_reference(&b).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "{} J={j}", k.name());
        }
    }

    #[test]
    fn all_csr_kernels_numerically_correct() {
        for csr in [toy_csr(), random_csr(1, 200, 150, 3000)] {
            check_numeric(&CsrScalarKernel::new(csr.clone()), &csr);
            check_numeric(&CsrVectorKernel::new(csr.clone()), &csr);
            check_numeric(&DgSparseKernel::new(csr.clone()), &csr);
            check_numeric(&SputnikKernel::new(csr.clone()), &csr);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let k = CsrVectorKernel::new(toy_csr());
        let b = DenseMatrix::<f64>::zeros(3, 4);
        assert!(k.run(&b).is_err());
    }

    #[test]
    fn vector_rereads_cost_more_at_large_j() {
        let d = DeviceModel::v100();
        let csr = random_csr(2, 2000, 2000, 40_000);
        let cusparse = CsrVectorKernel::new(csr.clone());
        let dg = DgSparseKernel::new(csr);
        // At J=32 one pass: identical traffic modulo constants.
        let t32 = cusparse.profile(32, &d).time_ms / dg.profile(32, &d).time_ms;
        // At J=512 the vector kernel re-reads col/val 16×.
        let t512 = cusparse.profile(512, &d).time_ms / dg.profile(512, &d).time_ms;
        assert!(
            t512 > t32,
            "re-read penalty should grow with J: {t32} vs {t512}"
        );
        assert!(t512 > 1.0);
    }

    #[test]
    fn sputnik_balances_skewed_rows() {
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(5);
        let coo = power_law::<f64>(
            &PowerLawConfig {
                rows: 4000,
                cols: 4000,
                target_nnz: 60_000,
                exponent: 2.2,
                max_degree: None,
            },
            &mut rng,
        );
        let csr = CsrMatrix::from_coo(&coo);
        let dg = DgSparseKernel::new(csr.clone());
        let sp = SputnikKernel::new(csr);
        let p_dg = dg.profile(128, &d);
        let p_sp = sp.profile(128, &d);
        assert!(
            p_sp.imbalance < p_dg.imbalance,
            "swizzle should cut imbalance: {} vs {}",
            p_sp.imbalance,
            p_dg.imbalance
        );
    }

    #[test]
    fn scalar_kernel_slowest_on_scattered_matrix() {
        let d = DeviceModel::v100();
        let csr = random_csr(3, 3000, 3000, 30_000);
        let scalar = CsrScalarKernel::new(csr.clone()).profile(128, &d).time_ms;
        let vector = CsrVectorKernel::new(csr).profile(128, &d).time_ms;
        assert!(
            scalar > vector,
            "scattered col/val loads should hurt scalar: {scalar} vs {vector}"
        );
    }

    #[test]
    fn traffic_scales_with_j() {
        let d = DeviceModel::v100();
        let k = DgSparseKernel::new(random_csr(4, 500, 500, 5000));
        let p32 = k.profile(32, &d);
        let p256 = k.profile(256, &d);
        assert!(
            p256.dram_transactions + p256.l2_transactions
                > 4 * (p32.dram_transactions + p32.l2_transactions)
        );
        assert_eq!(p256.flops, 8 * p32.flops);
    }

    #[test]
    fn fits_in_memory_logic() {
        let d = DeviceModel::tiny(); // 256 MB
        let k = DgSparseKernel::new(random_csr(6, 1000, 1000, 10_000));
        assert!(k.fits_in_memory(32, &d));
        // A dense operand far larger than the device cannot fit.
        let huge = DeviceModel {
            memory_capacity: 1024,
            ..DeviceModel::tiny()
        };
        assert!(!k.fits_in_memory(32, &huge));
    }

    #[test]
    fn empty_matrix_profiles() {
        let d = DeviceModel::v100();
        let csr = CsrMatrix::<f64>::empty(0, 10);
        let k = CsrVectorKernel::new(csr);
        let p = k.profile(64, &d);
        assert_eq!(p.num_blocks, 0);
        assert!(p.time_ms > 0.0); // launch overhead only
    }

    #[test]
    fn j_tail_efficiency_bounds() {
        let d = DeviceModel::v100();
        assert_eq!(j_tail_efficiency(32, &d), 1.0);
        assert_eq!(j_tail_efficiency(64, &d), 1.0);
        assert!((j_tail_efficiency(48, &d) - 0.75).abs() < 1e-12);
        assert_eq!(j_tail_efficiency(0, &d), 1.0);
    }
}
