//! Shared traffic-model helpers used by every kernel's analytic path.

use lf_sim::coalesce::segment_transactions;
use lf_sim::DeviceModel;

/// Transactions for one warp-coalesced access to a `j`-column row of the
/// dense operand (`B` or `C`), elements of `elem_bytes`.
pub fn b_row_tx(j: usize, elem_bytes: usize, device: &DeviceModel) -> u64 {
    segment_transactions(j, elem_bytes, device.transaction_bytes)
}

/// Split a block's dense-operand (`B`) read traffic into DRAM and L2
/// transactions.
///
/// * `unique_accesses` — transactions for the block's *first* touch of
///   each distinct B row (intra-block reuse already removed);
/// * `repeat_accesses` — transactions for repeated touches within the
///   block (guaranteed cache hits: they were just fetched);
/// * `working_set_bytes` — the B working set this kernel's blocks share
///   (for a column-partitioned format, only the partition's span), which
///   sets the probability that a "first touch" is actually resident in L2
///   because another block fetched it.
pub fn split_b_traffic(
    unique_accesses: u64,
    repeat_accesses: u64,
    working_set_bytes: usize,
    device: &DeviceModel,
) -> (u64, u64) {
    let hit = device.l2_hit_fraction(working_set_bytes);
    let dram = (unique_accesses as f64 * (1.0 - hit)).round() as u64;
    let l2 = unique_accesses - dram + repeat_accesses;
    (dram, l2)
}

/// Count distinct values in a short slice (sorts a scratch copy).
///
/// Allocates per call; hot analytic paths should prefer a reusable
/// [`BlockScratch`].
pub fn count_unique(ids: &[u32]) -> usize {
    BlockScratch::new().count_unique_iter(ids.iter().copied()).1
}

/// Reusable scratch for per-block analytic accounting.
///
/// `launches()` implementations walk thousands of blocks, and each block
/// needs a "how many ids, how many distinct" answer over its column (and
/// sometimes row) index stream. A `BlockScratch` keeps one buffer alive
/// across all blocks a worker processes — zero allocations in steady
/// state — and pairs with [`lf_sim::parallel::parallel_map_init`] when
/// launch construction is parallelized.
#[derive(Debug, Default)]
pub struct BlockScratch {
    buf: Vec<u32>,
}

impl BlockScratch {
    /// Fresh scratch (first use grows the buffer, later uses reuse it).
    pub fn new() -> Self {
        BlockScratch::default()
    }

    /// Count `(total, distinct)` ids produced by `ids` (e.g. a padded
    /// index stream with pad slots already filtered out).
    pub fn count_unique_iter(&mut self, ids: impl IntoIterator<Item = u32>) -> (usize, usize) {
        self.buf.clear();
        self.buf.extend(ids);
        let total = self.buf.len();
        self.buf.sort_unstable();
        self.buf.dedup();
        (total, self.buf.len())
    }

    /// Distinct values in `ids`.
    pub fn count_unique(&mut self, ids: &[u32]) -> usize {
        self.count_unique_iter(ids.iter().copied()).1
    }
}

/// Flops for multiplying `nnz` non-zeros against `j` dense columns
/// (one FMA = 2 flops per element per column).
pub fn spmm_flops(nnz: usize, j: usize) -> u64 {
    2 * nnz as u64 * j as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_row_tx_scales_with_j() {
        let d = DeviceModel::v100();
        assert_eq!(b_row_tx(8, 4, &d), 1);
        assert_eq!(b_row_tx(32, 4, &d), 4);
        assert_eq!(b_row_tx(512, 4, &d), 64);
        assert_eq!(b_row_tx(32, 8, &d), 8);
    }

    #[test]
    fn split_all_dram_when_working_set_huge() {
        let d = DeviceModel::v100();
        let (dram, l2) = split_b_traffic(1000, 500, usize::MAX, &d);
        assert!(dram >= 995, "dram {dram}");
        assert_eq!(dram + l2, 1500);
    }

    #[test]
    fn split_all_l2_when_working_set_fits() {
        let d = DeviceModel::v100();
        let (dram, l2) = split_b_traffic(1000, 500, 1024, &d);
        assert_eq!(dram, 0);
        assert_eq!(l2, 1500);
    }

    #[test]
    fn split_partial() {
        let d = DeviceModel::v100();
        // Working set 2× L2 → 50% hit.
        let (dram, l2) = split_b_traffic(1000, 0, d.l2_bytes * 2, &d);
        assert_eq!(dram, 500);
        assert_eq!(l2, 500);
    }

    #[test]
    fn unique_counting() {
        assert_eq!(count_unique(&[3, 1, 3, 2, 1]), 3);
        assert_eq!(count_unique(&[]), 0);
        assert_eq!(count_unique(&[7]), 1);
    }

    #[test]
    fn block_scratch_reusable_and_consistent() {
        let mut s = BlockScratch::new();
        assert_eq!(s.count_unique_iter([3, 1, 3, 2, 1]), (5, 3));
        // Reuse after a larger stream must not leak previous contents.
        assert_eq!(s.count_unique_iter([9, 9]), (2, 1));
        assert_eq!(s.count_unique_iter(std::iter::empty()), (0, 0));
        assert_eq!(s.count_unique(&[5, 5, 6]), 2);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(spmm_flops(10, 32), 640);
        assert_eq!(spmm_flops(0, 512), 0);
    }
}
