#![warn(missing_docs)]

//! # lf-kernels
//!
//! SpMM kernels (`C[I×J] = A · B`) for every sparse format in the
//! reproduction, each with two independent paths:
//!
//! * **numeric** — [`SpmmKernel::run`] computes the product on the CPU in
//!   parallel, traversing the kernel's own data structure exactly as its
//!   GPU mapping would (including atomic accumulation where the GPU would
//!   use `atomicAdd`); results are checked against the sequential CSR
//!   reference in every test;
//! * **analytic** — [`SpmmKernel::launches`] walks the same data structure
//!   and emits per-thread-block [`lf_sim::BlockCost`] records (coalesced
//!   transactions, L2/DRAM split, atomics, flops, lane efficiency), which
//!   [`lf_sim::DeviceModel`] turns into simulated time.
//!
//! The kernel mappings mirror the systems in the paper's evaluation:
//!
//! | kernel | paper system | mapping |
//! |---|---|---|
//! | [`CsrScalarKernel`] | naive / TACO default | thread-per-row CSR |
//! | [`CsrVectorKernel`] | cuSPARSE | warp-per-row CSR, col/val re-read per j-tile |
//! | [`DgSparseKernel`] | dgSPARSE (GE-SpMM) | warp-per-row CSR + shared-memory staging |
//! | [`SputnikKernel`] | Sputnik | 1-D tiled CSR + row-swizzle load balancing |
//! | [`TacoKernel`] | TACO (scheduled) | even-nnz merge split, atomics at segment bounds |
//! | [`EllKernel`] | ELL baseline | warp-per-row over the padded grid |
//! | [`SellKernel`] | sliced-ELL baseline | slice-per-block, per-slice widths |
//! | [`BcsrKernel`] | Triton block-sparse | dense tile × dense tile per block |
//! | [`CellKernel`] | **LiteForm CELL** | Algorithm 2: block-per-2^k-nnz, folding + atomics |

pub mod batch;
pub mod bcsr;
pub mod cell;
pub mod common;
pub mod csr;
pub mod ellpack;
pub mod sell;
pub mod simd;
pub mod spmv;
pub mod taco;

pub use batch::{concat_columns, scatter_columns, scatter_crossover};
pub use bcsr::BcsrKernel;
pub use cell::CellKernel;
pub use csr::{CsrScalarKernel, CsrVectorKernel, DgSparseKernel, SputnikKernel};
pub use ellpack::EllKernel;
pub use sell::SellKernel;
pub use simd::{
    accumulate_block, dispatched_lanes, simd_enabled, Gather, Lanes, TileParams, MAX_K_BLOCK,
};
pub use spmv::{spmv, spmv_profile};
pub use taco::{TacoKernel, TacoSchedule};

use lf_sim::atomicf::AtomicScalar;
use lf_sim::{DeviceModel, KernelProfile, LaunchSpec};
use lf_sparse::{DenseMatrix, Result};

/// A sparse-times-dense kernel bound to a concrete sparse operand.
pub trait SpmmKernel<T: AtomicScalar>: Send + Sync {
    /// Kernel name for reports.
    fn name(&self) -> &'static str;

    /// Shape of the sparse operand `(rows, cols)`.
    fn shape(&self) -> (usize, usize);

    /// Compute `C = A · B` numerically (parallel CPU execution mirroring
    /// the GPU mapping, atomics included).
    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>>;

    /// Emit the launch(es) this kernel issues for a dense operand with `j`
    /// columns, with per-block costs derived from the actual index
    /// streams.
    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec>;

    /// Device memory footprint of the sparse operand in this kernel's
    /// format (drives OOM verdicts).
    fn format_bytes(&self) -> usize;

    /// Simulate the kernel on `device` for a dense operand of `j` columns.
    fn profile(&self, j: usize, device: &DeviceModel) -> KernelProfile {
        KernelProfile::from_launches(&self.launches(j, device), device)
    }

    /// Whether the operand (sparse format + dense in/out) fits in device
    /// memory for `j` dense columns.
    fn fits_in_memory(&self, j: usize, device: &DeviceModel) -> bool {
        let (rows, cols) = self.shape();
        let elem = std::mem::size_of::<T>();
        let dense = (rows + cols) * j * elem;
        self.format_bytes() + dense <= device.memory_capacity
    }
}
