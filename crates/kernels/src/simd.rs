//! Portable SIMD microkernel layer for the numeric hot paths.
//!
//! Every SpMM kernel's inner loop is some flavor of
//! `acc[s] += a_i · B[col_i][s]` over a handful of gathered non-zeros.
//! This module factors that loop into one register-blocked microkernel,
//! [`accumulate_block`]: callers gather up to [`MAX_K_BLOCK`]
//! `(coefficient, B-row)` pairs into fixed stack arrays and the
//! microkernel sweeps the output strip once, keeping a wide strip of
//! accumulators in registers across the whole block — the k-blocking
//! that lets a block of `B` rows stream through L1 exactly once per
//! `j_tile` instead of once per accumulator load/store.
//!
//! # Lane modes and dispatch
//!
//! Three shapes share the same arithmetic:
//!
//! * [`Lanes::Scalar`] — the kernels keep their original element-wise
//!   loops (the pre-SIMD engine, byte-for-byte the same code shape);
//! * [`Lanes::X4`] / [`Lanes::X8`] — explicit 4/8-lane unrolled strips
//!   the autovectorizer lowers to full-width vector code; on x86_64
//!   with AVX2 detected at runtime the same generic body is entered
//!   through a `#[target_feature(enable = "avx2")]` clone so 8-lane
//!   `f32` strips use 256-bit registers even though the crate's
//!   baseline codegen is SSE2.
//!
//! [`Lanes::Auto`] resolves to the widest shape the machine supports.
//! Setting `LF_SIMD=off` (or `0` / `scalar`) forces **every** resolution
//! to `Scalar` — the escape hatch back to the pre-SIMD engine.
//!
//! # Bitwise determinism
//!
//! For any fixed output element `C[r][s]`, every lane mode accumulates
//! the same partial products in the same ascending-`k` order (lane
//! grouping only changes which *elements* share a register, never one
//! element's own reduction order), and no mode uses fused
//! multiply-add. All lane modes therefore produce **bitwise identical**
//! results on single-writer paths — the property
//! `engine_edge_cases::simd_and_scalar_paths_agree_bitwise` and the
//! differential fuzzer pin down.

use lf_sparse::Scalar;
use std::sync::OnceLock;

/// Maximum gathered non-zeros per [`accumulate_block`] call. Gather
/// buffers are fixed stack arrays of this size; the tile search only
/// ever picks `k_block <= MAX_K_BLOCK`.
pub const MAX_K_BLOCK: usize = 32;

/// Vector lane shape of the microkernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lanes {
    /// Resolve to the widest available shape at kernel entry
    /// (respecting `LF_SIMD=off`).
    Auto,
    /// Original element-wise loops (the pre-SIMD engine).
    Scalar,
    /// 4-lane unrolled strips.
    X4,
    /// 8-lane unrolled strips (requires AVX2 on x86_64 for full-width
    /// codegen; still correct — just narrower — anywhere else).
    X8,
}

impl Lanes {
    /// Elements per lane group (1 for `Scalar`; `Auto` resolves first).
    pub fn width(self) -> usize {
        match self {
            Lanes::Auto | Lanes::Scalar => 1,
            Lanes::X4 => 4,
            Lanes::X8 => 8,
        }
    }

    /// Resolve `Auto` to a concrete shape for element type `T` and
    /// apply the `LF_SIMD=off` escape hatch to every variant.
    pub fn resolve<T: Scalar>(self) -> Lanes {
        if !simd_enabled() {
            return Lanes::Scalar;
        }
        match self {
            Lanes::Auto => dispatched_lanes::<T>(),
            other => other,
        }
    }
}

/// Whether the SIMD paths are enabled (`LF_SIMD` unset or anything but
/// `off` / `0` / `scalar`). Read once per process.
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("LF_SIMD").as_deref(),
            Ok("off") | Ok("0") | Ok("scalar")
        )
    })
}

/// Whether the AVX2 `#[target_feature]` clones are usable on this CPU.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The widest lane shape worth dispatching for element type `T` on this
/// machine: 8 `f32` lanes fill a 256-bit register, 8 `f64` lanes would
/// spill accumulator strips, so doubles cap at 4 lanes.
pub fn dispatched_lanes<T: Scalar>() -> Lanes {
    if !simd_enabled() {
        return Lanes::Scalar;
    }
    if std::mem::size_of::<T>() <= 4 && avx2_available() {
        Lanes::X8
    } else {
        Lanes::X4
    }
}

/// Execution tile parameters for one kernel run, resolved by the
/// `lf-cost` tile search (or [`TileParams::default`], which reproduces
/// the pre-search engine: 128-element j-tiles, full k-blocks, widest
/// available lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileParams {
    /// Accumulator tile width: elements of a `C` row a worker carries at
    /// once. The resident tile is `j_tile.min(j)` elements of `T`, so
    /// its byte size is type- and `J`-dependent (`128 × f64` = 1 KiB,
    /// `128 × f32` = 512 B).
    pub j_tile: usize,
    /// Gathered non-zeros per microkernel call (clamped to
    /// [`MAX_K_BLOCK`]); `k_block × j_tile × size_of::<T>()` is the `B`
    /// working set the tile search keeps L1-resident.
    pub k_block: usize,
    /// Lane shape (default [`Lanes::Auto`]).
    pub lanes: Lanes,
    /// Target slots (width × rows) per CELL numeric work item.
    pub chunk_slots: usize,
}

impl Default for TileParams {
    fn default() -> Self {
        TileParams {
            j_tile: 128,
            k_block: MAX_K_BLOCK,
            lanes: Lanes::Auto,
            chunk_slots: 8192,
        }
    }
}

impl TileParams {
    /// The params with an explicit lane shape (builder style).
    pub fn with_lanes(mut self, lanes: Lanes) -> Self {
        self.lanes = lanes;
        self
    }

    /// `k_block` clamped to the gather-buffer capacity.
    pub fn k_block_clamped(&self) -> usize {
        self.k_block.clamp(1, MAX_K_BLOCK)
    }
}

/// The register-blocked strip sweep shared by every lane mode:
/// `acc[s] += Σ_i coeffs[i] · rows[i][offset + s]`.
///
/// Strips of `GROUPS × LANES` accumulator elements are loaded into
/// local arrays (registers after vectorization), all `coeffs.len()`
/// gathered rows are applied, and the strip is stored back — one
/// acc load/store per strip per *block* instead of per non-zero.
/// Remainders fall through a single-group loop and a scalar tail.
///
/// # Safety
///
/// Every `rows[i]` must be at least `offset + acc.len()` elements long
/// (debug-asserted). `coeffs.len()` must equal `rows.len()`.
#[inline(always)]
unsafe fn block_body<T: Scalar, const LANES: usize, const GROUPS: usize>(
    acc: &mut [T],
    coeffs: &[T],
    rows: &[&[T]],
    offset: usize,
) {
    debug_assert_eq!(coeffs.len(), rows.len());
    debug_assert!(rows.iter().all(|r| r.len() >= offset + acc.len()));
    let n = acc.len();
    let kb = coeffs.len();
    let strip = LANES * GROUPS;
    let mut s = 0;
    while s + strip <= n {
        let mut r = [[T::ZERO; LANES]; GROUPS];
        for (g, rg) in r.iter_mut().enumerate() {
            for (l, rv) in rg.iter_mut().enumerate() {
                // SAFETY: s + strip <= n == acc.len().
                *rv = unsafe { *acc.get_unchecked(s + g * LANES + l) };
            }
        }
        for i in 0..kb {
            // SAFETY: i < kb == coeffs.len() == rows.len().
            let a = unsafe { *coeffs.get_unchecked(i) };
            let row = unsafe { *rows.get_unchecked(i) };
            for (g, rg) in r.iter_mut().enumerate() {
                for (l, rv) in rg.iter_mut().enumerate() {
                    // SAFETY: offset + s + strip <= offset + acc.len()
                    // <= row.len() (caller contract, debug-asserted).
                    *rv += a * unsafe { *row.get_unchecked(offset + s + g * LANES + l) };
                }
            }
        }
        for (g, rg) in r.iter().enumerate() {
            for (l, rv) in rg.iter().enumerate() {
                // SAFETY: s + strip <= n == acc.len().
                unsafe { *acc.get_unchecked_mut(s + g * LANES + l) = *rv };
            }
        }
        s += strip;
    }
    while s + LANES <= n {
        let mut r = [T::ZERO; LANES];
        for (l, rv) in r.iter_mut().enumerate() {
            // SAFETY: s + LANES <= n == acc.len().
            *rv = unsafe { *acc.get_unchecked(s + l) };
        }
        for i in 0..kb {
            // SAFETY: i < kb; offset + s + LANES <= row.len() as above.
            let a = unsafe { *coeffs.get_unchecked(i) };
            let row = unsafe { *rows.get_unchecked(i) };
            for (l, rv) in r.iter_mut().enumerate() {
                *rv += a * unsafe { *row.get_unchecked(offset + s + l) };
            }
        }
        for (l, rv) in r.iter().enumerate() {
            // SAFETY: s + LANES <= n == acc.len().
            unsafe { *acc.get_unchecked_mut(s + l) = *rv };
        }
        s += LANES;
    }
    while s < n {
        // SAFETY: s < n == acc.len().
        let mut r = unsafe { *acc.get_unchecked(s) };
        for i in 0..kb {
            // SAFETY: i < kb; offset + s < row.len() as above.
            let a = unsafe { *coeffs.get_unchecked(i) };
            let row = unsafe { *rows.get_unchecked(i) };
            r += a * unsafe { *row.get_unchecked(offset + s) };
        }
        // SAFETY: s < n == acc.len().
        unsafe { *acc.get_unchecked_mut(s) = r };
        s += 1;
    }
}

/// The rejected FMA variant of the scalar tail, kept (unused) as the
/// determinism rule's seeded bug: `mul_add` keeps the infinitely
/// precise product, so its result differs from the plain
/// mul-then-add path in the last ulp and the batched-vs-solo bitwise
/// property breaks. `crates/check/tests/lint_rules.rs` runs the lint
/// with suppressions ignored and asserts the `determinism` rule
/// rediscovers this line.
#[allow(dead_code)]
fn scalar_tail_fma_reverted(acc: &mut [f64], coeffs: &[f64], rows: &[&[f64]], offset: usize) {
    for (s, slot) in acc.iter_mut().enumerate() {
        let mut r = *slot;
        for (a, row) in coeffs.iter().zip(rows) {
            // lf-lint: allow(determinism): seeded FMA, never called; regression-tested via --no-suppress
            r = a.mul_add(row[offset + s], r);
        }
        *slot = r;
    }
}

/// The same generic body entered with AVX2 codegen: LLVM re-lowers the
/// lane arrays onto 256-bit registers. No FMA is enabled — fused
/// multiply-adds would change result bits vs. the scalar path.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime (the
/// `is_x86_feature_detected!` gate in the dispatcher) before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block_body_avx2<T: Scalar, const LANES: usize, const GROUPS: usize>(
    acc: &mut [T],
    coeffs: &[T],
    rows: &[&[T]],
    offset: usize,
) {
    // SAFETY: forwarded caller contract (row lengths / coeff count).
    unsafe { block_body::<T, LANES, GROUPS>(acc, coeffs, rows, offset) }
}

/// Accumulate one gathered k-block into an output strip:
/// `acc[s] += Σ_i coeffs[i] · rows[i][offset + s]` for `s in
/// 0..acc.len()`, using the lane shape `lanes` (which must be concrete —
/// resolve [`Lanes::Auto`] first).
///
/// Per-element accumulation order is ascending `i` in every lane mode,
/// and no mode fuses multiply-adds, so all modes produce bitwise
/// identical `acc` contents.
///
/// # Safety
///
/// Every `rows[i]` must be at least `offset + acc.len()` elements long,
/// and `coeffs.len()` must equal `rows.len()`.
pub unsafe fn accumulate_block<T: Scalar>(
    lanes: Lanes,
    acc: &mut [T],
    coeffs: &[T],
    rows: &[&[T]],
    offset: usize,
) {
    match lanes {
        Lanes::Scalar | Lanes::Auto => {
            // The scalar fallback still block-gathers (callers share one
            // code path) but sweeps element-wise.
            // SAFETY: forwarded caller contract.
            unsafe { block_body::<T, 1, 1>(acc, coeffs, rows, offset) }
        }
        Lanes::X4 => {
            #[cfg(target_arch = "x86_64")]
            if avx2_available() {
                // SAFETY: AVX2 verified at runtime; row-length contract
                // forwarded from the caller.
                return unsafe { block_body_avx2::<T, 4, 8>(acc, coeffs, rows, offset) };
            }
            // SAFETY: forwarded caller contract.
            unsafe { block_body::<T, 4, 8>(acc, coeffs, rows, offset) }
        }
        Lanes::X8 => {
            #[cfg(target_arch = "x86_64")]
            if avx2_available() {
                // SAFETY: AVX2 verified at runtime; row-length contract
                // forwarded from the caller.
                return unsafe { block_body_avx2::<T, 8, 8>(acc, coeffs, rows, offset) };
            }
            // SAFETY: forwarded caller contract.
            unsafe { block_body::<T, 8, 8>(acc, coeffs, rows, offset) }
        }
    }
}

/// Fixed-capacity gather buffer for one k-block: the `(coefficient,
/// B-row)` pairs of up to [`MAX_K_BLOCK`] non-zeros. Lives on the
/// stack / in per-worker scratch — gathering never allocates.
pub struct Gather<'b, T> {
    coeffs: [T; MAX_K_BLOCK],
    rows: [&'b [T]; MAX_K_BLOCK],
    len: usize,
}

impl<'b, T: Scalar> Gather<'b, T> {
    /// An empty gather buffer.
    #[inline]
    pub fn new() -> Self {
        Gather {
            coeffs: [T::ZERO; MAX_K_BLOCK],
            rows: [&[]; MAX_K_BLOCK],
            len: 0,
        }
    }

    /// Number of gathered pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is gathered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one `(coefficient, B-row)` pair. Caller keeps
    /// `len() < MAX_K_BLOCK` (checked in debug builds).
    #[inline]
    pub fn push(&mut self, coeff: T, row: &'b [T]) {
        debug_assert!(self.len < MAX_K_BLOCK);
        self.coeffs[self.len] = coeff;
        self.rows[self.len] = row;
        self.len += 1;
    }

    /// `true` once the buffer holds `k_block` pairs.
    #[inline]
    pub fn full(&self, k_block: usize) -> bool {
        self.len >= k_block.min(MAX_K_BLOCK)
    }

    /// Flush the gathered block into `acc` (then reset):
    /// `acc[s] += Σ_i coeff_i · row_i[offset + s]`.
    ///
    /// `lanes` must be concrete (resolve [`Lanes::Auto`] first).
    #[inline]
    pub fn flush_into(&mut self, lanes: Lanes, acc: &mut [T], offset: usize) {
        if self.len == 0 {
            return;
        }
        // SAFETY: callers only push rows with `len >= offset +
        // acc.len()` (each gathered row is a full `B` row of `j >=
        // offset + acc.len()` elements); coeffs/rows lengths match by
        // construction of this buffer.
        unsafe {
            accumulate_block(
                lanes,
                acc,
                &self.coeffs[..self.len],
                &self.rows[..self.len],
                offset,
            );
        }
        self.len = 0;
    }
}

impl<T: Scalar> Default for Gather<'_, T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(acc: &mut [f64], coeffs: &[f64], rows: &[&[f64]], offset: usize) {
        for s in 0..acc.len() {
            for (a, r) in coeffs.iter().zip(rows) {
                acc[s] += a * r[offset + s];
            }
        }
    }

    fn mk_rows(k: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as i64 % 1000) as f64 / 997.0 - 0.5
        };
        (0..k).map(|_| (0..len).map(|_| rand()).collect()).collect()
    }

    #[test]
    fn all_lane_modes_match_reference_order_bitwise() {
        for (n, offset, kb) in [(1, 0, 1), (7, 0, 3), (64, 0, 32), (65, 16, 5), (130, 3, 32)] {
            let rows_owned = mk_rows(kb, offset + n, 42 + n as u64);
            let rows: Vec<&[f64]> = rows_owned.iter().map(|r| r.as_slice()).collect();
            let coeffs: Vec<f64> = (0..kb).map(|i| (i as f64 - 1.5) * 0.75).collect();
            let mut want = vec![0.25f64; n];
            // The reference applies ascending i per element — the exact
            // contract order.
            reference(&mut want, &coeffs, &rows, offset);
            for lanes in [Lanes::Scalar, Lanes::X4, Lanes::X8] {
                let mut acc = vec![0.25f64; n];
                // SAFETY: rows are offset + n long by construction.
                unsafe { accumulate_block(lanes, &mut acc, &coeffs, &rows, offset) };
                let got: Vec<u64> = acc.iter().map(|v| v.to_bits()).collect();
                let exp: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, exp, "lanes={lanes:?} n={n} offset={offset} kb={kb}");
            }
        }
    }

    #[test]
    fn f32_lane_modes_agree_bitwise() {
        let rows_owned: Vec<Vec<f32>> = (0..8)
            .map(|i| {
                (0..100)
                    .map(|s| ((i * 31 + s * 7) % 23) as f32 * 0.125 - 1.0)
                    .collect()
            })
            .collect();
        let rows: Vec<&[f32]> = rows_owned.iter().map(|r| r.as_slice()).collect();
        let coeffs: Vec<f32> = (0..8).map(|i| i as f32 * 0.5 - 2.0).collect();
        let mut scalar = vec![0.0f32; 100];
        // SAFETY: rows are 100 elements, acc is 100, offset 0.
        unsafe { accumulate_block(Lanes::Scalar, &mut scalar, &coeffs, &rows, 0) };
        for lanes in [Lanes::X4, Lanes::X8] {
            let mut wide = vec![0.0f32; 100];
            // SAFETY: as above.
            unsafe { accumulate_block(lanes, &mut wide, &coeffs, &rows, 0) };
            let a: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = wide.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "{lanes:?}");
        }
    }

    #[test]
    fn gather_buffer_accumulates_in_push_order() {
        let rows_owned = mk_rows(5, 16, 9);
        let rows: Vec<&[f64]> = rows_owned.iter().map(|r| r.as_slice()).collect();
        let mut g: Gather<'_, f64> = Gather::new();
        let mut want = [0.0f64; 16];
        for (i, r) in rows.iter().enumerate() {
            let c = 1.0 + i as f64;
            g.push(c, r);
            for (s, w) in want.iter_mut().enumerate() {
                *w += c * r[s];
            }
        }
        assert_eq!(g.len(), 5);
        assert!(g.full(5) && !g.full(6));
        let mut acc = vec![0.0f64; 16];
        g.flush_into(Lanes::X8, &mut acc, 0);
        assert!(g.is_empty());
        // Wait-free double flush is a no-op.
        g.flush_into(Lanes::X8, &mut acc, 0);
        let got: Vec<u64> = acc.iter().map(|v| v.to_bits()).collect();
        let exp: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, exp);
    }

    #[test]
    fn default_tile_params_mirror_the_pre_search_engine() {
        let t = TileParams::default();
        assert_eq!(t.j_tile, 128);
        assert_eq!(t.k_block_clamped(), MAX_K_BLOCK);
        assert_eq!(t.lanes, Lanes::Auto);
        assert_eq!(t.chunk_slots, 8192);
        assert_eq!(
            TileParams { k_block: 900, ..t }.k_block_clamped(),
            MAX_K_BLOCK
        );
        assert_eq!(TileParams { k_block: 0, ..t }.k_block_clamped(), 1);
    }

    #[test]
    fn resolve_never_returns_auto() {
        for lanes in [Lanes::Auto, Lanes::Scalar, Lanes::X4, Lanes::X8] {
            let rf = lanes.resolve::<f32>();
            let rd = lanes.resolve::<f64>();
            assert_ne!(rf, Lanes::Auto);
            assert_ne!(rd, Lanes::Auto);
            if !simd_enabled() {
                assert_eq!(rf, Lanes::Scalar);
                assert_eq!(rd, Lanes::Scalar);
            }
        }
    }
}
