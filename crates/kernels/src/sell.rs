//! Sliced-Ellpack SpMM kernel: one block per slice, each slice streaming
//! its own compact Ellpack grid (Monakov et al., ref. 35). The historical
//! midpoint between plain ELL and CELL: per-slice widths kill most
//! padding, but slices follow the row order — they cannot group rows of
//! similar length from across the matrix the way CELL buckets do.

use crate::common::{b_row_tx, split_b_traffic, spmm_flops, BlockScratch};
use crate::simd::{Gather, Lanes, TileParams};
use crate::SpmmKernel;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::coalesce::segment_transactions;
use lf_sim::parallel::{default_workers, parallel_for, DisjointSlice};
use lf_sim::{BlockCost, DeviceModel, LaunchSpec};
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{DenseMatrix, Result, SellMatrix, SparseError};

/// Slice-per-block SELL SpMM.
pub struct SellKernel<T> {
    sell: SellMatrix<T>,
    tile: TileParams,
}

impl<T: AtomicScalar> SellKernel<T> {
    /// Wrap a SELL operand (default execution tile).
    pub fn new(sell: SellMatrix<T>) -> Self {
        SellKernel {
            sell,
            tile: TileParams::default(),
        }
    }

    /// Set the execution tile `run` uses (builder style).
    pub fn with_tile(mut self, tile: TileParams) -> Self {
        self.tile = tile;
        self
    }

    /// Numeric path with an explicit execution tile.
    pub fn run_tiled(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        self.execute(b, tile)
    }

    /// Access the underlying matrix.
    pub fn sell(&self) -> &SellMatrix<T> {
        &self.sell
    }

    fn execute(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        let (rows, cols) = self.sell.shape();
        if cols != b.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "spmm",
                lhs: (rows, cols),
                rhs: b.shape(),
            });
        }
        let j = b.cols();
        let lanes = tile.lanes.resolve::<T>();
        let k_block = tile.k_block_clamped();
        let mut c = DenseMatrix::zeros(rows, j);
        {
            // Slices cover disjoint row ranges: accumulate straight into
            // the slice's output rows.
            let out = DisjointSlice::new(c.as_mut_slice());
            let slices = self.sell.slices();
            parallel_for(slices.len(), default_workers(), |si| {
                let slice = &slices[si];
                let mut gather: Gather<'_, T> = Gather::new();
                for local in 0..slice.height {
                    let row = slice.row_start + local;
                    // SAFETY: each slice (hence each row) goes to exactly
                    // one worker.
                    let crow = unsafe { out.slice_mut(row * j, j) };
                    if lanes == Lanes::Scalar {
                        // The pre-SIMD engine, loop shape unchanged.
                        for k in 0..slice.width {
                            let col = slice.col_ind[local * slice.width + k];
                            if col == ELL_PAD {
                                break;
                            }
                            let a = slice.values[local * slice.width + k];
                            let brow = b.row(col as usize);
                            for (cv, &bv) in crow.iter_mut().zip(brow) {
                                *cv += a * bv;
                            }
                        }
                    } else {
                        // Gather-outer: PAD break and slot walk leave the
                        // inner loop; strips sweep per k-block.
                        for k in 0..slice.width {
                            let col = slice.col_ind[local * slice.width + k];
                            if col == ELL_PAD {
                                break;
                            }
                            gather.push(slice.values[local * slice.width + k], b.row(col as usize));
                            if gather.full(k_block) {
                                gather.flush_into(lanes, crow, 0);
                            }
                        }
                        gather.flush_into(lanes, crow, 0);
                    }
                }
            });
        }
        Ok(c)
    }
}

impl<T: AtomicScalar> SpmmKernel<T> for SellKernel<T> {
    fn name(&self) -> &'static str {
        "sliced-ell"
    }

    fn shape(&self) -> (usize, usize) {
        self.sell.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        self.execute(b, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let (_, k_dim) = self.sell.shape();
        let ws = k_dim * j * elem;
        let per_row = b_row_tx(j, elem, device);
        let mut launch =
            LaunchSpec::new(self.name(), 256).with_grid_multiplier(j.div_ceil(device.warp_size));
        let mut scratch = BlockScratch::new();
        for slice in self.sell.slices() {
            let slots = slice.height * slice.width;
            let (nnz, unique_cols) =
                scratch.count_unique_iter(slice.col_ind.iter().copied().filter(|&c| c != ELL_PAD));
            let unique = unique_cols as u64 * per_row;
            let total = nnz as u64 * per_row;
            let (b_dram, b_l2) = split_b_traffic(unique, total - unique, ws, device);
            let colval = 2 * segment_transactions(slots, 4, device.transaction_bytes);
            let c_tx = slice.height as u64 * per_row;
            launch.push(BlockCost {
                dram_transactions: b_dram + colval + c_tx + 1,
                l2_transactions: b_l2,
                flops: spmm_flops(slots, j),
                atomic_transactions: 0,
                lane_efficiency: if slots > 0 {
                    (nnz as f64 / slots as f64).max(1e-3)
                } else {
                    1.0
                },
            });
        }
        vec![launch]
    }

    fn format_bytes(&self) -> usize {
        self.sell.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EllKernel;
    use lf_sparse::gen::{uniform_random, uniform_with_long_rows};
    use lf_sparse::{CsrMatrix, EllMatrix, Pcg32};

    #[test]
    fn numeric_matches_reference() {
        let mut rng = Pcg32::seed_from_u64(1);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&uniform_random(130, 110, 1700, &mut rng));
        let k = SellKernel::new(SellMatrix::from_csr(&csr, 32).unwrap());
        for j in [1, 16, 50] {
            let b = DenseMatrix::random(csr.cols(), j, &mut rng);
            let got = k.run(&b).unwrap();
            let want = csr.spmm_reference(&b).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "J={j}");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut rng = Pcg32::seed_from_u64(2);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&uniform_random(20, 20, 60, &mut rng));
        let k = SellKernel::new(SellMatrix::from_csr(&csr, 8).unwrap());
        assert!(k.run(&DenseMatrix::<f64>::zeros(7, 3)).is_err());
    }

    #[test]
    fn beats_plain_ell_on_skewed_rows() {
        // A single long row pads every row in plain ELL but only its own
        // slice in SELL.
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(3);
        let csr: CsrMatrix<f64> = CsrMatrix::from_coo(&uniform_with_long_rows(
            4000, 4000, 20_000, 2, 3000, &mut rng,
        ));
        let sell_ms = SellKernel::new(SellMatrix::from_csr(&csr, 32).unwrap())
            .profile(128, &d)
            .time_ms;
        let ell_ms = EllKernel::new(EllMatrix::from_csr(&csr))
            .profile(128, &d)
            .time_ms;
        assert!(
            sell_ms < ell_ms / 2.0,
            "per-slice widths should slash padding: sell {sell_ms} vs ell {ell_ms}"
        );
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::<f64>::empty(6, 6);
        let k = SellKernel::new(SellMatrix::from_csr(&csr, 4).unwrap());
        let c = k.run(&DenseMatrix::zeros(6, 2)).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
