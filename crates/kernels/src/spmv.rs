//! SpMV (`y = A·x`) on top of the SpMM kernels — the paper's conclusion
//! sketches extending LiteForm "to various sparse computational kernels";
//! SpMV is the J=1 corner of SpMM, so every format, kernel mapping and
//! the whole composition pipeline apply unchanged. These wrappers give
//! SpMV a first-class vector API and encode the J=1 performance caveat:
//! with a single dense column there are no j-tiles to parallelize over,
//! so grids are smaller and the composition trade-offs shift (the
//! partition predictor sees `j_product = 1`).

use crate::SpmmKernel;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::{DeviceModel, KernelProfile};
use lf_sparse::{DenseMatrix, Result, SparseError};

/// Multiply a kernel's sparse operand by a dense vector: `y = A · x`.
pub fn spmv<T: AtomicScalar>(kernel: &dyn SpmmKernel<T>, x: &[T]) -> Result<Vec<T>> {
    let (_, cols) = kernel.shape();
    if x.len() != cols {
        return Err(SparseError::DimensionMismatch {
            op: "spmv",
            lhs: kernel.shape(),
            rhs: (x.len(), 1),
        });
    }
    let b = DenseMatrix::from_vec(cols, 1, x.to_vec())?;
    let c = kernel.run(&b)?;
    Ok(c.as_slice().to_vec())
}

/// Simulated performance of the kernel run as SpMV (J = 1).
pub fn spmv_profile<T: AtomicScalar>(
    kernel: &dyn SpmmKernel<T>,
    device: &DeviceModel,
) -> KernelProfile {
    kernel.profile(1, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKernel, CsrVectorKernel};
    use lf_cell::{build_cell, CellConfig};
    use lf_sparse::gen::uniform_random;
    use lf_sparse::{CsrMatrix, Pcg32};

    fn workload() -> CsrMatrix<f64> {
        let mut rng = Pcg32::seed_from_u64(0x5b);
        CsrMatrix::from_coo(&uniform_random(300, 250, 4000, &mut rng))
    }

    fn reference(csr: &CsrMatrix<f64>, x: &[f64]) -> Vec<f64> {
        (0..csr.rows())
            .map(|i| {
                csr.row_cols(i)
                    .iter()
                    .zip(csr.row_values(i))
                    .map(|(&k, &a)| a * x[k as usize])
                    .sum()
            })
            .collect()
    }

    #[test]
    fn csr_spmv_matches_reference() {
        let csr = workload();
        let mut rng = Pcg32::seed_from_u64(1);
        let x: Vec<f64> = (0..csr.cols()).map(|_| rng.f64_in(-1.0, 1.0)).collect();
        let want = reference(&csr, &x);
        let y = spmv(&CsrVectorKernel::new(csr.clone()), &x).unwrap();
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn composed_cell_spmv_matches_reference() {
        let csr = workload();
        let mut rng = Pcg32::seed_from_u64(2);
        let x: Vec<f64> = (0..csr.cols()).map(|_| rng.f64_in(-1.0, 1.0)).collect();
        let want = reference(&csr, &x);
        let cfg = CellConfig::with_partitions(3).with_max_widths(vec![8]);
        let kernel = CellKernel::new(build_cell(&csr, &cfg).unwrap());
        let y = spmv(&kernel, &x).unwrap();
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let csr = workload();
        let kernel = CsrVectorKernel::new(csr);
        assert!(spmv(&kernel, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spmv_profile_is_cheaper_than_wide_spmm() {
        let d = DeviceModel::v100();
        let kernel = CsrVectorKernel::new(workload());
        let v = spmv_profile(&kernel, &d);
        let wide = kernel.profile(256, &d);
        assert!(v.time_ms < wide.time_ms);
        assert!(v.flops < wide.flops);
    }
}
