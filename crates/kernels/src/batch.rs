//! Column-wise gather/scatter for fused (batched) SpMM.
//!
//! Request coalescing in the serving layer fuses N same-matrix requests
//! into one wide execute: the members' dense operands are concatenated
//! column-wise into a single `B_wide` ([`concat_columns`]), the kernel
//! runs once at the fused width (its j-tiled accumulators already handle
//! arbitrary widths), and the wide result is split back into one output
//! per member ([`scatter_columns`]).
//!
//! Layout: operand `k` with width `w_k` owns the contiguous column range
//! `[o_k, o_k + w_k)` of the wide matrix, where `o_k = Σ_{i<k} w_i`. Row
//! `r` of the wide matrix is the concatenation of row `r` of every
//! member in order, so both directions are straight `memcpy`s of row
//! segments. Zero-width members are legal and occupy an empty range.
//!
//! Because the wide product computes each output column independently
//! (every kernel accumulates per `(row, col)` with the same reduction
//! order regardless of how many columns ride along), the scattered
//! outputs of a fused run match solo runs of each member — bitwise, on
//! single-writer paths.

use lf_sim::calibration;
use lf_sim::parallel::{default_workers, parallel_for, DisjointSlice};
use lf_sparse::{DenseMatrix, Result, Scalar, SparseError};
use std::sync::OnceLock;

/// Element count above which the gather/scatter copies are farmed out to
/// the worker pool; below it they run on the calling thread.
///
/// Derived once per process from the measured [`calibration`]: a
/// parallel region pays `pool_dispatch_ns` up front and saves
/// `copy_ns × (1 − 1/workers)` per element copied, so the break-even
/// element count is their ratio, clamped to `[2^12, 2^24]`. With a
/// single worker parallel dispatch can never win, so the copies always
/// run inline (`usize::MAX`).
pub fn scatter_crossover() -> usize {
    static CROSSOVER: OnceLock<usize> = OnceLock::new();
    *CROSSOVER.get_or_init(|| {
        let workers = default_workers();
        if workers <= 1 {
            return usize::MAX;
        }
        let cal = calibration();
        let saved_per_elem = cal.copy_ns * (1.0 - 1.0 / workers as f64);
        let raw = cal.pool_dispatch_ns / saved_per_elem.max(1e-6);
        (raw as usize).clamp(1 << 12, 1 << 24)
    })
}

fn workers_for(elems: usize) -> usize {
    if elems < scatter_crossover() {
        1
    } else {
        default_workers()
    }
}

/// Concatenate the columns of several dense matrices (all with the same
/// row count) into one wide matrix: `out[r] = b₀[r] ++ b₁[r] ++ …`.
///
/// Errors with a `DimensionMismatch` if the row counts disagree. An
/// empty slice yields a 0×0 matrix.
pub fn concat_columns<T: Scalar>(bs: &[&DenseMatrix<T>]) -> Result<DenseMatrix<T>> {
    let rows = bs.first().map_or(0, |b| b.rows());
    let total: usize = bs.iter().map(|b| b.cols()).sum();
    if let Some(bad) = bs.iter().find(|b| b.rows() != rows) {
        return Err(SparseError::DimensionMismatch {
            op: "concat_columns",
            lhs: (rows, total),
            rhs: bad.shape(),
        });
    }
    let mut out = DenseMatrix::zeros(rows, total);
    if rows * total == 0 {
        return Ok(out);
    }
    let offsets: Vec<usize> = bs
        .iter()
        .scan(0usize, |acc, b| {
            let o = *acc;
            *acc += b.cols();
            Some(o)
        })
        .collect();
    let view = DisjointSlice::new(out.as_mut_slice());
    parallel_for(rows, workers_for(rows * total), |r| {
        // SAFETY: each row index `r` is produced exactly once by the
        // parallel_for contract, so the carved per-row spans are
        // disjoint (debug builds verify via the shadow map).
        let row = unsafe { view.slice_mut(r * total, total) };
        for (b, &o) in bs.iter().zip(&offsets) {
            let w = b.cols();
            row[o..o + w].copy_from_slice(b.row(r));
        }
    });
    drop(view);
    Ok(out)
}

/// Split a wide matrix back into per-member outputs of the given column
/// `widths`, in order — the inverse of [`concat_columns`].
///
/// Errors with a `DimensionMismatch` unless the widths sum exactly to
/// `wide.cols()`.
pub fn scatter_columns<T: Scalar>(
    wide: &DenseMatrix<T>,
    widths: &[usize],
) -> Result<Vec<DenseMatrix<T>>> {
    let total: usize = widths.iter().sum();
    if total != wide.cols() {
        return Err(SparseError::DimensionMismatch {
            op: "scatter_columns",
            lhs: wide.shape(),
            rhs: (wide.rows(), total),
        });
    }
    let rows = wide.rows();
    let mut outs = Vec::with_capacity(widths.len());
    let mut offset = 0usize;
    for &w in widths {
        let mut out = DenseMatrix::zeros(rows, w);
        if rows * w > 0 {
            let o = offset;
            let view = DisjointSlice::new(out.as_mut_slice());
            parallel_for(rows, workers_for(rows * w), |r| {
                // SAFETY: each row index `r` is produced exactly once by
                // the parallel_for contract, so the carved per-row spans
                // are disjoint (debug builds verify via the shadow map).
                let row = unsafe { view.slice_mut(r * w, w) };
                row.copy_from_slice(&wide.row(r)[o..o + w]);
            });
        }
        offset += w;
        outs.push(out);
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::Pcg32;

    fn mats(rows: usize, widths: &[usize], seed: u64) -> Vec<DenseMatrix<f64>> {
        let mut rng = Pcg32::seed_from_u64(seed);
        widths
            .iter()
            .map(|&w| DenseMatrix::random(rows, w, &mut rng))
            .collect()
    }

    #[test]
    fn concat_then_scatter_roundtrips_bitwise() {
        for (rows, widths) in [
            (1usize, vec![1usize]),
            (17, vec![3, 0, 1, 8]),
            (64, vec![8, 8, 8, 8, 8, 8, 8, 8]),
            // Wide enough to cross the kernels' default j-tile boundary
            // (TileParams::default().j_tile) and the parallel-copy
            // crossover's lower clamp.
            (300, vec![40, 50, 45, 33]),
        ] {
            let bs = mats(rows, &widths, 7 + rows as u64);
            let refs: Vec<&DenseMatrix<f64>> = bs.iter().collect();
            let wide = concat_columns(&refs).unwrap();
            assert_eq!(wide.shape(), (rows, widths.iter().sum()));
            let back = scatter_columns(&wide, &widths).unwrap();
            assert_eq!(back.len(), bs.len());
            for (orig, got) in bs.iter().zip(&back) {
                assert_eq!(orig.shape(), got.shape());
                let orig_bits: Vec<u64> = orig.as_slice().iter().map(|v| v.to_bits()).collect();
                let got_bits: Vec<u64> = got.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(orig_bits, got_bits, "roundtrip must be bitwise");
            }
        }
    }

    #[test]
    fn concat_layout_is_column_offset_per_member() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 1, vec![9.0, 8.0]).unwrap();
        let wide = concat_columns(&[&a, &b]).unwrap();
        assert_eq!(wide.as_slice(), &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn empty_inputs_are_legal() {
        let wide = concat_columns::<f64>(&[]).unwrap();
        assert_eq!(wide.shape(), (0, 0));
        let zero = DenseMatrix::<f64>::zeros(5, 0);
        let wide = concat_columns(&[&zero, &zero]).unwrap();
        assert_eq!(wide.shape(), (5, 0));
        let outs = scatter_columns(&wide, &[0, 0]).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].shape(), (5, 0));
    }

    #[test]
    fn scatter_crossover_is_calibrated_and_bounded() {
        let co = scatter_crossover();
        if default_workers() <= 1 {
            assert_eq!(co, usize::MAX, "one worker: copies always run inline");
            assert_eq!(workers_for(1 << 30), 1);
        } else {
            assert!(
                ((1 << 12)..=(1 << 24)).contains(&co),
                "crossover {co} outside clamp range"
            );
            assert_eq!(workers_for(co - 1), 1, "below crossover stays serial");
            assert_eq!(
                workers_for(co),
                default_workers(),
                "at crossover the pool takes over"
            );
        }
    }

    #[test]
    fn dimension_mismatches_are_typed_errors() {
        let a = DenseMatrix::<f64>::zeros(3, 2);
        let b = DenseMatrix::<f64>::zeros(4, 2);
        assert!(concat_columns(&[&a, &b]).is_err(), "row mismatch");
        let wide = DenseMatrix::<f64>::zeros(3, 5);
        assert!(
            scatter_columns(&wide, &[2, 2]).is_err(),
            "widths must sum to the wide width"
        );
    }
}
