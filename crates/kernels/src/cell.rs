//! The CELL SpMM kernel — Algorithm 2 of the paper.
//!
//! Every bucket is a regular Ellpack grid whose rows all fit the bucket
//! width, and every `2^k` non-zero slots form one GPU block. The kernel:
//!
//! * streams `row_ind`, `col_ind`, `val` coalesced (the grids are
//!   row-major and fully regular);
//! * reads the dense operand `B` only inside the block's column partition,
//!   shrinking the L2 working set by the partition factor;
//! * writes `C` normally, or with `atomicAdd` when the bucket is flagged
//!   (`needs_atomic`: multi-partition matrices and the maximum bucket,
//!   which may hold folded rows — Algorithm 2 line 9);
//! * launches all buckets of all partitions as **one fused launch**,
//!   mirroring the horizontal-fusion pass SparseTIR inserts (§6).

use crate::common::{b_row_tx, count_unique, split_b_traffic, spmm_flops};
use crate::SpmmKernel;
use lf_cell::CellMatrix;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::coalesce::segment_transactions;
use lf_sim::parallel::{default_workers, parallel_for};
use lf_sim::{BlockCost, DeviceModel, LaunchSpec};
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{DenseMatrix, Result, SparseError};

/// How bucket kernels are combined into launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionMode {
    /// One fused launch across all partitions and buckets — the
    /// horizontal-fusion pass this paper adds to the TVM backend (§6).
    Full,
    /// One launch per column partition (buckets within a partition are
    /// fused, partitions are not) — how the SparseTIR hyb baseline runs.
    PerPartition,
}

/// LiteForm's CELL SpMM kernel.
pub struct CellKernel<T> {
    cell: CellMatrix<T>,
    fusion: FusionMode,
}

impl<T: AtomicScalar> CellKernel<T> {
    /// Wrap a CELL operand (fully fused launches).
    pub fn new(cell: CellMatrix<T>) -> Self {
        CellKernel {
            cell,
            fusion: FusionMode::Full,
        }
    }

    /// Wrap with an explicit fusion mode.
    pub fn with_fusion(cell: CellMatrix<T>, fusion: FusionMode) -> Self {
        CellKernel { cell, fusion }
    }

    /// Access the underlying matrix.
    pub fn cell(&self) -> &CellMatrix<T> {
        &self.cell
    }
}

impl<T: AtomicScalar> SpmmKernel<T> for CellKernel<T> {
    fn name(&self) -> &'static str {
        "cell(liteform)"
    }

    fn shape(&self) -> (usize, usize) {
        self.cell.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        let (rows, cols) = self.cell.shape();
        if cols != b.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "spmm",
                lhs: (rows, cols),
                rhs: b.shape(),
            });
        }
        let j = b.cols();
        let mut c = DenseMatrix::zeros(rows, j);
        {
            let cells = T::as_cells(c.as_mut_slice());
            // Flatten (partition, bucket) pairs and parallelize over the
            // bucket rows of each, mirroring block-level parallelism.
            // Atomic adds are always safe; buckets that the GPU would
            // write non-atomically have single-writer rows by
            // construction.
            for part in self.cell.partitions() {
                for bucket in &part.buckets {
                    let w = bucket.width;
                    parallel_for(bucket.num_rows(), default_workers(), |bi| {
                        let out_row = bucket.row_ind[bi] as usize;
                        let mut acc = vec![T::ZERO; j];
                        for k in 0..w {
                            let col = bucket.col_ind[bi * w + k];
                            if col == ELL_PAD {
                                continue;
                            }
                            let a = bucket.values[bi * w + k];
                            let brow = b.row(col as usize);
                            for (jj, &bv) in brow.iter().enumerate() {
                                acc[jj] += a * bv;
                            }
                        }
                        for (jj, &v) in acc.iter().enumerate() {
                            T::atomic_add(&cells[out_row * j + jj], v);
                        }
                    });
                }
            }
        }
        Ok(c)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let per_row = b_row_tx(j, elem, device);
        let j_tiles = j.div_ceil(device.warp_size);
        let mut out = Vec::new();
        let mut launch = LaunchSpec::new(self.name(), 256).with_grid_multiplier(j_tiles);
        for part in self.cell.partitions() {
            // The partition's B working set: only its column span.
            let span = part.col_range.1 - part.col_range.0;
            let ws = span * j * elem;
            for bucket in &part.buckets {
                let w = bucket.width;
                let rpb = bucket.rows_per_block.max(1);
                let mut r = 0;
                while r < bucket.num_rows() {
                    let hi = (r + rpb).min(bucket.num_rows());
                    let rows_here = hi - r;
                    let slot_lo = r * w;
                    let slot_hi = hi * w;
                    let slots = slot_hi - slot_lo;
                    let block_cols: Vec<u32> = bucket.col_ind[slot_lo..slot_hi]
                        .iter()
                        .copied()
                        .filter(|&c| c != ELL_PAD)
                        .collect();
                    let nnz = block_cols.len();
                    let unique = count_unique(&block_cols) as u64 * per_row;
                    let total = nnz as u64 * per_row;
                    let (b_dram, b_l2) = split_b_traffic(unique, total - unique, ws, device);
                    // row_ind + col_ind + values, all coalesced streams.
                    let row_ind_tx = segment_transactions(rows_here, 4, device.transaction_bytes);
                    let colval = 2 * segment_transactions(slots, 4, device.transaction_bytes);
                    let out_rows = count_unique(&bucket.row_ind[r..hi]) as u64;
                    let (c_store, c_atomic) = if bucket.needs_atomic {
                        (0, out_rows * per_row)
                    } else {
                        (out_rows * per_row, 0)
                    };
                    launch.push(BlockCost {
                        dram_transactions: b_dram + row_ind_tx + colval + c_store,
                        l2_transactions: b_l2,
                        flops: spmm_flops(slots, j),
                        atomic_transactions: c_atomic,
                        lane_efficiency: if slots > 0 {
                            (nnz as f64 / slots as f64).max(1e-3)
                        } else {
                            1.0
                        },
                    });
                    r = hi;
                }
            }
            if self.fusion == FusionMode::PerPartition {
                out.push(std::mem::replace(
                    &mut launch,
                    LaunchSpec::new(self.name(), 256).with_grid_multiplier(j_tiles),
                ));
            }
        }
        match self.fusion {
            FusionMode::Full => vec![launch],
            FusionMode::PerPartition => {
                out.retain(|l| !l.blocks.is_empty());
                if out.is_empty() {
                    out.push(launch);
                }
                out
            }
        }
    }

    fn format_bytes(&self) -> usize {
        self.cell.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_cell::{build_cell, CellConfig};
    use lf_sparse::gen::{mixed_regions, uniform_random, uniform_with_long_rows};
    use lf_sparse::{CsrMatrix, Pcg32};

    fn check(csr: &CsrMatrix<f64>, cfg: &CellConfig) {
        let cell = build_cell(csr, cfg).unwrap();
        let k = CellKernel::new(cell);
        let mut rng = Pcg32::seed_from_u64(80);
        for j in [1, 17, 64] {
            let b = DenseMatrix::random(csr.cols(), j, &mut rng);
            let got = k.run(&b).unwrap();
            let want = csr.spmm_reference(&b).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "cfg={cfg:?} J={j}");
        }
    }

    #[test]
    fn numeric_correct_across_configs() {
        let mut rng = Pcg32::seed_from_u64(1);
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(150, 180, 2500, &mut rng));
        check(&csr, &CellConfig::default());
        check(&csr, &CellConfig::with_partitions(3));
        check(
            &csr,
            &CellConfig::with_partitions(2).with_max_widths(vec![4, 8]),
        );
    }

    #[test]
    fn numeric_correct_with_folding() {
        let mut rng = Pcg32::seed_from_u64(2);
        let csr = CsrMatrix::from_coo(&uniform_with_long_rows::<f64>(
            200, 300, 2000, 4, 250, &mut rng,
        ));
        check(&csr, &CellConfig::default().with_max_widths(vec![8]));
        check(
            &csr,
            &CellConfig::with_partitions(4).with_max_widths(vec![16]),
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut rng = Pcg32::seed_from_u64(3);
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(10, 10, 30, &mut rng));
        let k = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap());
        assert!(k.run(&DenseMatrix::<f64>::zeros(7, 3)).is_err());
    }

    #[test]
    fn single_fused_launch() {
        let mut rng = Pcg32::seed_from_u64(4);
        let csr = CsrMatrix::from_coo(&mixed_regions::<f64>(256, 256, 6000, 4, &mut rng));
        let k = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(4)).unwrap());
        let launches = k.launches(64, &DeviceModel::v100());
        assert_eq!(launches.len(), 1, "buckets must be horizontally fused");
        assert!(launches[0].blocks.len() > 4);
    }

    #[test]
    fn partitioning_shrinks_working_set_on_mixed_matrix() {
        // On a matrix with strongly varying column-region density, more
        // partitions should not be slower by much and often help; at the
        // very least the profile must remain correct and bounded.
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(5);
        let csr = CsrMatrix::from_coo(&mixed_regions::<f64>(4096, 4096, 200_000, 4, &mut rng));
        let t1 = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(1)).unwrap())
            .profile(256, &d);
        let t4 = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(4)).unwrap())
            .profile(256, &d);
        // The 4-partition build must show fewer DRAM transactions per B
        // access thanks to the smaller working set.
        assert!(
            t4.dram_transactions < t1.dram_transactions,
            "partitioning should increase L2 hits: {} vs {}",
            t4.dram_transactions,
            t1.dram_transactions
        );
    }

    #[test]
    fn blocks_are_balanced() {
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(6);
        let csr = CsrMatrix::from_coo(&uniform_with_long_rows::<f64>(
            3000, 3000, 40_000, 3, 2500, &mut rng,
        ));
        let cfg = CellConfig::default().with_max_widths(vec![32]);
        let k = CellKernel::new(build_cell(&csr, &cfg).unwrap());
        let p = k.profile(128, &d);
        assert!(
            p.imbalance < 8.0,
            "equal-nnz blocks should stay balanced: {}",
            p.imbalance
        );
    }

    #[test]
    fn atomic_traffic_only_when_flagged() {
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(7);
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(128, 128, 1500, &mut rng));
        // Single partition, no fold: no atomics.
        let k1 = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap());
        assert_eq!(k1.profile(64, &d).atomic_transactions, 0);
        // Multi-partition: atomics appear.
        let k2 = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(2)).unwrap());
        assert!(k2.profile(64, &d).atomic_transactions > 0);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::<f64>::empty(8, 8);
        let k = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap());
        let c = k.run(&DenseMatrix::zeros(8, 2)).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(k.profile(2, &DeviceModel::v100()).num_blocks, 0);
    }
}
