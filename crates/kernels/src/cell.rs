//! The CELL SpMM kernel — Algorithm 2 of the paper.
//!
//! Every bucket is a regular Ellpack grid whose rows all fit the bucket
//! width, and every `2^k` non-zero slots form one GPU block. The kernel:
//!
//! * streams `row_ind`, `col_ind`, `val` coalesced (the grids are
//!   row-major and fully regular);
//! * reads the dense operand `B` only inside the block's column partition,
//!   shrinking the L2 working set by the partition factor;
//! * writes `C` normally, or with `atomicAdd` when the bucket is flagged
//!   (`needs_atomic`: multi-partition matrices and the maximum bucket,
//!   which may hold folded rows — Algorithm 2 line 9);
//! * launches all buckets of all partitions as **one fused launch**,
//!   mirroring the horizontal-fusion pass SparseTIR inserts (§6).
//!
//! The numeric path runs on the shared execution engine: all
//! `(partition, bucket, row-chunk)` work items are flattened into **one**
//! parallel region over the persistent worker pool (no per-bucket
//! spawn/join barriers), each worker reuses one accumulator scratch for
//! every row it processes (j-tiled to stay cache-resident), and buckets
//! with single-writer rows (`needs_atomic == false`) flush with plain
//! stores instead of CAS loops.

use crate::common::{b_row_tx, split_b_traffic, spmm_flops, BlockScratch};
use crate::simd::{Gather, Lanes, TileParams};
use crate::SpmmKernel;
use lf_cell::{Bucket, CellMatrix};
use lf_sim::atomicf::AtomicScalar;
use lf_sim::coalesce::segment_transactions;
use lf_sim::parallel::{
    default_workers, parallel_for_init, parallel_for_scoped, parallel_map_init,
};
use lf_sim::shadow::ShadowRegion;
use lf_sim::{BlockCost, DeviceModel, LaunchSpec};
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{DenseMatrix, Result, SparseError};

/// How bucket kernels are combined into launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionMode {
    /// One fused launch across all partitions and buckets — the
    /// horizontal-fusion pass this paper adds to the TVM backend (§6).
    Full,
    /// One launch per column partition (buckets within a partition are
    /// fused, partitions are not) — how the SparseTIR hyb baseline runs.
    PerPartition,
}

/// One flattened numeric work item: a row range of one bucket.
struct WorkItem<'m, T> {
    bucket: &'m Bucket<T>,
    lo: usize,
    hi: usize,
}

/// One flattened analytic work item: a GPU block of one bucket.
struct AnalyticItem<'m, T> {
    bucket: &'m Bucket<T>,
    part_idx: usize,
    /// The partition's `B` working-set bytes (its column span only).
    working_set: usize,
    lo: usize,
    hi: usize,
}

/// Parallelize construction only when there is enough work to amortize a
/// pool dispatch.
fn construction_workers(items: usize) -> usize {
    if items >= 256 {
        default_workers()
    } else {
        1
    }
}

/// LiteForm's CELL SpMM kernel.
pub struct CellKernel<T> {
    cell: CellMatrix<T>,
    fusion: FusionMode,
    tile: TileParams,
}

impl<T: AtomicScalar> CellKernel<T> {
    /// Wrap a CELL operand (fully fused launches, default tile).
    pub fn new(cell: CellMatrix<T>) -> Self {
        CellKernel {
            cell,
            fusion: FusionMode::Full,
            tile: TileParams::default(),
        }
    }

    /// Wrap with an explicit fusion mode.
    pub fn with_fusion(cell: CellMatrix<T>, fusion: FusionMode) -> Self {
        CellKernel {
            cell,
            fusion,
            tile: TileParams::default(),
        }
    }

    /// Set the execution tile this kernel runs with by default (builder
    /// style; the `lf-cost` tile search picks it per matrix family + J).
    pub fn with_tile(mut self, tile: TileParams) -> Self {
        self.tile = tile;
        self
    }

    /// The execution tile `run` uses.
    pub fn tile_params(&self) -> TileParams {
        self.tile
    }

    /// Access the underlying matrix.
    pub fn cell(&self) -> &CellMatrix<T> {
        &self.cell
    }

    fn check_shape(&self, b: &DenseMatrix<T>) -> Result<()> {
        let (rows, cols) = self.cell.shape();
        if cols != b.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "spmm",
                lhs: (rows, cols),
                rhs: b.shape(),
            });
        }
        Ok(())
    }

    /// Flatten all `(partition, bucket)` pairs into row-chunk work items
    /// — the CPU mirror of the paper's §6 horizontal fusion: one launch,
    /// one parallel region, no barrier between buckets.
    fn numeric_work_items(&self, chunk_slots: usize) -> Vec<WorkItem<'_, T>> {
        let mut items = Vec::new();
        for part in self.cell.partitions() {
            for bucket in &part.buckets {
                let rows = bucket.num_rows();
                if rows == 0 {
                    continue;
                }
                let rows_per_item = (chunk_slots.max(1) / bucket.width.max(1)).max(1);
                let mut lo = 0;
                while lo < rows {
                    let hi = (lo + rows_per_item).min(rows);
                    items.push(WorkItem { bucket, lo, hi });
                    lo = hi;
                }
            }
        }
        items
    }

    /// Shared numeric path. `force_atomic` routes every flush through
    /// `atomic_add` regardless of `needs_atomic` — the verification knob
    /// the equivalence property tests exercise. `tile` selects the
    /// accumulator width, k-block depth and lane shape; every setting
    /// produces bitwise identical results on single-writer paths
    /// (per-element accumulation order is ascending `k` throughout).
    fn execute(
        &self,
        b: &DenseMatrix<T>,
        force_atomic: bool,
        tile: TileParams,
    ) -> Result<DenseMatrix<T>> {
        self.check_shape(b)?;
        let (rows, _) = self.cell.shape();
        let j = b.cols();
        let mut c = DenseMatrix::zeros(rows, j);
        if j == 0 {
            return Ok(c);
        }
        let items = self.numeric_work_items(tile.chunk_slots);
        if items.is_empty() {
            return Ok(c);
        }
        let lanes = tile.lanes.resolve::<T>();
        let k_block = tile.k_block_clamped();
        // Debug builds check the bucket labeling through the shadow race
        // detector: rows of `needs_atomic == false` buckets must be
        // claimed exactly once (exclusive), rows flushed through atomics
        // register shared claims. A mislabeled bucket — a plain-store
        // row that another bucket also writes — panics at the claim.
        let shadow = ShadowRegion::new(rows * j);
        let workers = default_workers().min(items.len());
        if workers == 1 && !force_atomic {
            // Single-worker region: there is no concurrency, so even
            // multi-writer (needs_atomic) buckets can accumulate straight
            // into `C` — no CAS loops, no scratch, no flush pass. The
            // claim discipline still applies: the single-writer invariant
            // is about *ownership* (a plain-store row with two writers is
            // a correctness bug even sequentially, since the parallel
            // path would overwrite rather than accumulate it).
            let out = c.as_mut_slice();
            if lanes == Lanes::Scalar {
                // The pre-SIMD engine, loop shape unchanged: fragment-
                // major over the flattened work items.
                for &WorkItem { bucket, lo, hi } in &items {
                    let w = bucket.width;
                    for bi in lo..hi {
                        let base = bucket.row_ind[bi] as usize * j;
                        if bucket.needs_atomic {
                            shadow.claim_shared(base, j);
                        } else {
                            shadow.claim_exclusive(base, j);
                        }
                        let crow = &mut out[base..base + j];
                        let cols = &bucket.col_ind[bi * w..(bi + 1) * w];
                        let vals = &bucket.values[bi * w..(bi + 1) * w];
                        for (&col, &a) in cols.iter().zip(vals) {
                            if col == ELL_PAD {
                                continue;
                            }
                            let brow = b.row(col as usize);
                            for (cv, &bv) in crow.iter_mut().zip(brow) {
                                *cv += a * bv;
                            }
                        }
                    }
                }
                return Ok(c);
            }
            // SIMD direct path: the same fragment-major walk as the
            // scalar engine (bucket `row_ind` is ascending, so `C` rows
            // stream sequentially within a bucket and `B` stays
            // partition-local), but each fragment's non-pad (coeff,
            // B-row) pairs are gathered first and applied as one
            // register-blocked strip sweep — PAD filtering and the
            // per-nonzero accumulator reloads leave the inner loop.
            // Per-element accumulation order stays ascending-k, so the
            // bits match the scalar path exactly.
            let mut gather: Gather<'_, T> = Gather::new();
            for &WorkItem { bucket, lo, hi } in &items {
                let w = bucket.width;
                for bi in lo..hi {
                    let base = bucket.row_ind[bi] as usize * j;
                    if bucket.needs_atomic {
                        shadow.claim_shared(base, j);
                    } else {
                        shadow.claim_exclusive(base, j);
                    }
                    let crow = &mut out[base..base + j];
                    let cols = &bucket.col_ind[bi * w..(bi + 1) * w];
                    let vals = &bucket.values[bi * w..(bi + 1) * w];
                    for (&col, &a) in cols.iter().zip(vals) {
                        if col == ELL_PAD {
                            continue;
                        }
                        gather.push(a, b.row(col as usize));
                        if gather.full(k_block) {
                            gather.flush_into(lanes, crow, 0);
                        }
                    }
                    gather.flush_into(lanes, crow, 0);
                }
            }
            return Ok(c);
        }
        {
            let j_tile = tile.j_tile.max(1);
            let cells = T::as_cells(c.as_mut_slice());
            parallel_for_init(
                items.len(),
                workers,
                || vec![T::ZERO; j_tile.min(j)],
                |acc_buf, wi| {
                    let WorkItem { bucket, lo, hi } = items[wi];
                    let w = bucket.width;
                    let atomic = force_atomic || bucket.needs_atomic;
                    let mut gather: Gather<'_, T> = Gather::new();
                    let mut tile_lo = 0;
                    while tile_lo < j {
                        let tile_hi = (tile_lo + j_tile).min(j);
                        let acc = &mut acc_buf[..tile_hi - tile_lo];
                        for bi in lo..hi {
                            acc.fill(T::ZERO);
                            if lanes == Lanes::Scalar {
                                // The pre-SIMD engine, loop shape
                                // unchanged.
                                for k in 0..w {
                                    let col = bucket.col_ind[bi * w + k];
                                    if col == ELL_PAD {
                                        continue;
                                    }
                                    let a = bucket.values[bi * w + k];
                                    let brow = &b.row(col as usize)[tile_lo..tile_hi];
                                    for (s, &bv) in brow.iter().enumerate() {
                                        acc[s] += a * bv;
                                    }
                                }
                            } else {
                                for k in 0..w {
                                    let col = bucket.col_ind[bi * w + k];
                                    if col == ELL_PAD {
                                        continue;
                                    }
                                    gather.push(bucket.values[bi * w + k], b.row(col as usize));
                                    if gather.full(k_block) {
                                        gather.flush_into(lanes, acc, tile_lo);
                                    }
                                }
                                gather.flush_into(lanes, acc, tile_lo);
                            }
                            let out = bucket.row_ind[bi] as usize * j + tile_lo;
                            if atomic {
                                // Folded fragments / sibling partitions may
                                // write the same row (Algorithm 2 line 9).
                                shadow.claim_shared(out, tile_hi - tile_lo);
                                for (s, &v) in acc.iter().enumerate() {
                                    T::atomic_add(&cells[out + s], v);
                                }
                            } else {
                                // Single-writer row by construction: a
                                // plain store, no CAS — and the claim
                                // proves no other bucket writes it.
                                shadow.claim_exclusive(out, tile_hi - tile_lo);
                                for (s, &v) in acc.iter().enumerate() {
                                    T::store_cell(&cells[out + s], v);
                                }
                            }
                        }
                        tile_lo = tile_hi;
                    }
                },
            );
        }
        Ok(c)
    }

    /// Numeric path with every flush forced through atomics, bypassing
    /// the single-writer fast path. Exists so tests can prove the two
    /// flush modes produce identical results; `run` is always at least
    /// as fast.
    pub fn run_forced_atomic(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        self.execute(b, true, self.tile)
    }

    /// Numeric path with an explicit execution tile (serving threads the
    /// memoized per-(matrix-family, J) winner through here; `run` uses
    /// the kernel's own default tile).
    pub fn run_tiled(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        self.execute(b, false, tile)
    }

    /// The pre-engine numeric path: one scoped spawn/join parallel region
    /// **per bucket**, a fresh `vec![T::ZERO; j]` accumulator per row,
    /// and atomic accumulation for every output element. Kept as the
    /// baseline the execution-engine benchmarks and equivalence tests
    /// compare against (`results/bench_spmm.json`).
    pub fn run_legacy(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        self.check_shape(b)?;
        let (rows, _) = self.cell.shape();
        let j = b.cols();
        let mut c = DenseMatrix::zeros(rows, j);
        {
            let cells = T::as_cells(c.as_mut_slice());
            for part in self.cell.partitions() {
                for bucket in &part.buckets {
                    let w = bucket.width;
                    parallel_for_scoped(bucket.num_rows(), default_workers(), |bi| {
                        let out_row = bucket.row_ind[bi] as usize;
                        let mut acc = vec![T::ZERO; j];
                        for k in 0..w {
                            let col = bucket.col_ind[bi * w + k];
                            if col == ELL_PAD {
                                continue;
                            }
                            let a = bucket.values[bi * w + k];
                            let brow = b.row(col as usize);
                            for (jj, &bv) in brow.iter().enumerate() {
                                acc[jj] += a * bv;
                            }
                        }
                        for (jj, &v) in acc.iter().enumerate() {
                            T::atomic_add(&cells[out_row * j + jj], v);
                        }
                    });
                }
            }
        }
        Ok(c)
    }

    /// Flatten all `(partition, bucket, GPU-block)` triples for the
    /// analytic path.
    fn analytic_items(&self, j: usize) -> Vec<AnalyticItem<'_, T>> {
        let elem = std::mem::size_of::<T>();
        let mut items = Vec::new();
        for (part_idx, part) in self.cell.partitions().iter().enumerate() {
            let span = part.col_range.1 - part.col_range.0;
            let working_set = span * j * elem;
            for bucket in &part.buckets {
                let rpb = bucket.rows_per_block.max(1);
                let mut lo = 0;
                while lo < bucket.num_rows() {
                    let hi = (lo + rpb).min(bucket.num_rows());
                    items.push(AnalyticItem {
                        bucket,
                        part_idx,
                        working_set,
                        lo,
                        hi,
                    });
                    lo = hi;
                }
            }
        }
        items
    }
}

impl<T: AtomicScalar> SpmmKernel<T> for CellKernel<T> {
    fn name(&self) -> &'static str {
        "cell(liteform)"
    }

    fn shape(&self) -> (usize, usize) {
        self.cell.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        self.execute(b, false, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let per_row = b_row_tx(j, elem, device);
        let j_tiles = j.div_ceil(device.warp_size);
        let items = self.analytic_items(j);
        // Per-block costs are independent: build them in one parallel
        // region with per-worker scratch (no per-block allocation, no
        // sort-dedup garbage), then stitch launches together in order.
        let costs: Vec<BlockCost> = parallel_map_init(
            items.len(),
            construction_workers(items.len()),
            BlockScratch::new,
            |scratch, ii| {
                let it = &items[ii];
                let bucket = it.bucket;
                let w = bucket.width;
                let rows_here = it.hi - it.lo;
                let slots = rows_here * w;
                let (nnz, unique_cols) = scratch.count_unique_iter(
                    bucket.col_ind[it.lo * w..it.hi * w]
                        .iter()
                        .copied()
                        .filter(|&c| c != ELL_PAD),
                );
                let unique = unique_cols as u64 * per_row;
                let total = nnz as u64 * per_row;
                let (b_dram, b_l2) =
                    split_b_traffic(unique, total - unique, it.working_set, device);
                // row_ind + col_ind + values, all coalesced streams.
                let row_ind_tx = segment_transactions(rows_here, 4, device.transaction_bytes);
                let colval = 2 * segment_transactions(slots, 4, device.transaction_bytes);
                let out_rows = scratch.count_unique(&bucket.row_ind[it.lo..it.hi]) as u64;
                let (c_store, c_atomic) = if bucket.needs_atomic {
                    (0, out_rows * per_row)
                } else {
                    (out_rows * per_row, 0)
                };
                BlockCost {
                    dram_transactions: b_dram + row_ind_tx + colval + c_store,
                    l2_transactions: b_l2,
                    flops: spmm_flops(slots, j),
                    atomic_transactions: c_atomic,
                    lane_efficiency: if slots > 0 {
                        (nnz as f64 / slots as f64).max(1e-3)
                    } else {
                        1.0
                    },
                }
            },
        );
        let new_launch = || LaunchSpec::new(self.name(), 256).with_grid_multiplier(j_tiles);
        match self.fusion {
            FusionMode::Full => {
                let mut launch = new_launch();
                for cost in costs {
                    launch.push(cost);
                }
                vec![launch]
            }
            FusionMode::PerPartition => {
                let num_parts = self.cell.partitions().len().max(1);
                let mut out: Vec<LaunchSpec> = (0..num_parts).map(|_| new_launch()).collect();
                for (item, cost) in items.iter().zip(costs) {
                    out[item.part_idx].push(cost);
                }
                out.retain(|l| !l.blocks.is_empty());
                if out.is_empty() {
                    out.push(new_launch());
                }
                out
            }
        }
    }

    fn format_bytes(&self) -> usize {
        self.cell.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_cell::{build_cell, CellConfig};
    use lf_sparse::gen::{mixed_regions, uniform_random, uniform_with_long_rows};
    use lf_sparse::{CsrMatrix, Pcg32};

    fn check(csr: &CsrMatrix<f64>, cfg: &CellConfig) {
        let cell = build_cell(csr, cfg).unwrap();
        let k = CellKernel::new(cell);
        let mut rng = Pcg32::seed_from_u64(80);
        for j in [1, 17, 64] {
            let b = DenseMatrix::random(csr.cols(), j, &mut rng);
            let got = k.run(&b).unwrap();
            let want = csr.spmm_reference(&b).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "cfg={cfg:?} J={j}");
            // The pre-engine path stays equivalent.
            let legacy = k.run_legacy(&b).unwrap();
            assert!(legacy.approx_eq(&want, 1e-9), "legacy cfg={cfg:?} J={j}");
        }
    }

    #[test]
    fn numeric_correct_across_configs() {
        let mut rng = Pcg32::seed_from_u64(1);
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(150, 180, 2500, &mut rng));
        check(&csr, &CellConfig::default());
        check(&csr, &CellConfig::with_partitions(3));
        check(
            &csr,
            &CellConfig::with_partitions(2).with_max_widths(vec![4, 8]),
        );
    }

    #[test]
    fn numeric_correct_with_folding() {
        let mut rng = Pcg32::seed_from_u64(2);
        let csr = CsrMatrix::from_coo(&uniform_with_long_rows::<f64>(
            200, 300, 2000, 4, 250, &mut rng,
        ));
        check(&csr, &CellConfig::default().with_max_widths(vec![8]));
        check(
            &csr,
            &CellConfig::with_partitions(4).with_max_widths(vec![16]),
        );
    }

    #[test]
    fn numeric_correct_beyond_one_j_tile() {
        // J > j_tile exercises the accumulator tiling loop.
        let mut rng = Pcg32::seed_from_u64(21);
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(80, 90, 1200, &mut rng));
        let k = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(2)).unwrap());
        let j = TileParams::default().j_tile + 37;
        let b = DenseMatrix::random(csr.cols(), j, &mut rng);
        let got = k.run(&b).unwrap();
        let want = csr.spmm_reference(&b).unwrap();
        assert!(got.approx_eq(&want, 1e-9));
    }

    #[test]
    fn every_tile_shape_is_bitwise_identical() {
        // Any (j_tile, k_block, lanes, chunk) combination must produce
        // the same bits as the default tile: per output element the
        // accumulation order over k never changes, and no shape fuses
        // multiply-adds.
        let tiles = [
            TileParams {
                lanes: Lanes::Scalar,
                ..TileParams::default()
            },
            TileParams {
                j_tile: 32,
                k_block: 3,
                lanes: Lanes::X4,
                chunk_slots: 64,
            },
            TileParams {
                j_tile: 512,
                k_block: 32,
                lanes: Lanes::X8,
                chunk_slots: 16384,
            },
            TileParams {
                j_tile: 1,
                k_block: 1,
                lanes: Lanes::X8,
                chunk_slots: 1,
            },
        ];
        let mut rng = Pcg32::seed_from_u64(23);
        // Single partition, no folding: every bucket single-writer, so
        // results are bitwise stable regardless of worker count.
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(150, 160, 2400, &mut rng));
        let k = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap());
        for j in [5, 64, 133] {
            let b = DenseMatrix::random(csr.cols(), j, &mut rng);
            let want = k.run(&b).unwrap();
            assert!(want.approx_eq(&csr.spmm_reference(&b).unwrap(), 1e-9));
            for tile in tiles {
                let got = k.run_tiled(&b, tile).unwrap();
                assert_eq!(got.as_slice(), want.as_slice(), "J={j} tile={tile:?}");
            }
        }
        // Folded / multi-partition (atomic) buckets: order across
        // fragments is scheduling-dependent, so assert 1e-9 agreement.
        let csr = CsrMatrix::from_coo(&uniform_with_long_rows::<f64>(
            150, 160, 2200, 4, 120, &mut rng,
        ));
        let ka = CellKernel::new(
            build_cell(
                &csr,
                &CellConfig::with_partitions(2).with_max_widths(vec![8]),
            )
            .unwrap(),
        );
        let b = DenseMatrix::random(csr.cols(), 70, &mut rng);
        let want = csr.spmm_reference(&b).unwrap();
        for tile in tiles {
            let got = ka.run_tiled(&b, tile).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "atomic tile={tile:?}");
        }
    }

    #[test]
    fn plain_store_path_matches_forced_atomics_bitwise() {
        // Single partition, no folding: every bucket is single-writer, so
        // `run` takes plain stores while `run_forced_atomic` CAS-loops.
        // Both add the same partial sums in the same order, so the
        // results must be bit-identical.
        let mut rng = Pcg32::seed_from_u64(22);
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(120, 100, 1800, &mut rng));
        let k = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap());
        assert!(k
            .cell()
            .partitions()
            .iter()
            .flat_map(|p| &p.buckets)
            .all(|b| !b.needs_atomic));
        for j in [1, 7, 33] {
            let b = DenseMatrix::random(csr.cols(), j, &mut rng);
            let fast = k.run(&b).unwrap();
            let atomic = k.run_forced_atomic(&b).unwrap();
            assert_eq!(fast.as_slice(), atomic.as_slice(), "J={j}");
        }
    }

    /// Seeded bug: two buckets both flagged atomic-free (`needs_atomic ==
    /// false`) writing the same output row. The shadow race detector must
    /// reject the second exclusive claim — in debug builds a mislabeled
    /// bucket panics at the write site instead of silently clobbering the
    /// other bucket's row.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "single-writer")]
    fn mislabeled_atomic_free_bucket_detected() {
        use lf_cell::Partition;
        let mk_bucket = |col: lf_sparse::Index| Bucket {
            width: 1,
            row_ind: vec![0],
            col_ind: vec![col],
            values: vec![1.0f64],
            rows_per_block: 1,
            needs_atomic: false,
            has_folded: false,
        };
        let part = Partition {
            col_range: (0, 4),
            buckets: vec![mk_bucket(0), mk_bucket(1)],
        };
        let cell = CellMatrix::from_parts(2, 4, 2, vec![part], CellConfig::default());
        let k = CellKernel::new(cell);
        let _ = k.run(&DenseMatrix::<f64>::zeros(4, 2));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut rng = Pcg32::seed_from_u64(3);
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(10, 10, 30, &mut rng));
        let k = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap());
        assert!(k.run(&DenseMatrix::<f64>::zeros(7, 3)).is_err());
        assert!(k.run_legacy(&DenseMatrix::<f64>::zeros(7, 3)).is_err());
    }

    #[test]
    fn single_fused_launch() {
        let mut rng = Pcg32::seed_from_u64(4);
        let csr = CsrMatrix::from_coo(&mixed_regions::<f64>(256, 256, 6000, 4, &mut rng));
        let k = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(4)).unwrap());
        let launches = k.launches(64, &DeviceModel::v100());
        assert_eq!(launches.len(), 1, "buckets must be horizontally fused");
        assert!(launches[0].blocks.len() > 4);
    }

    #[test]
    fn partitioning_shrinks_working_set_on_mixed_matrix() {
        // On a matrix with strongly varying column-region density, more
        // partitions should not be slower by much and often help; at the
        // very least the profile must remain correct and bounded.
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(5);
        let csr = CsrMatrix::from_coo(&mixed_regions::<f64>(4096, 4096, 200_000, 4, &mut rng));
        let t1 = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(1)).unwrap())
            .profile(256, &d);
        let t4 = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(4)).unwrap())
            .profile(256, &d);
        // The 4-partition build must show fewer DRAM transactions per B
        // access thanks to the smaller working set.
        assert!(
            t4.dram_transactions < t1.dram_transactions,
            "partitioning should increase L2 hits: {} vs {}",
            t4.dram_transactions,
            t1.dram_transactions
        );
    }

    #[test]
    fn blocks_are_balanced() {
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(6);
        let csr = CsrMatrix::from_coo(&uniform_with_long_rows::<f64>(
            3000, 3000, 40_000, 3, 2500, &mut rng,
        ));
        let cfg = CellConfig::default().with_max_widths(vec![32]);
        let k = CellKernel::new(build_cell(&csr, &cfg).unwrap());
        let p = k.profile(128, &d);
        assert!(
            p.imbalance < 8.0,
            "equal-nnz blocks should stay balanced: {}",
            p.imbalance
        );
    }

    #[test]
    fn atomic_traffic_only_when_flagged() {
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(7);
        let csr = CsrMatrix::from_coo(&uniform_random::<f64>(128, 128, 1500, &mut rng));
        // Single partition, no fold: no atomics.
        let k1 = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap());
        assert_eq!(k1.profile(64, &d).atomic_transactions, 0);
        // Multi-partition: atomics appear.
        let k2 = CellKernel::new(build_cell(&csr, &CellConfig::with_partitions(2)).unwrap());
        assert!(k2.profile(64, &d).atomic_transactions > 0);
    }

    #[test]
    fn parallel_launch_construction_matches_sequential() {
        // The same matrix profiled through the parallel construction path
        // (many blocks) and block-by-block must agree exactly: launch
        // assembly preserves block order.
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(8);
        let csr = CsrMatrix::from_coo(&mixed_regions::<f64>(2048, 2048, 120_000, 4, &mut rng));
        let cell = build_cell(&csr, &CellConfig::with_partitions(4)).unwrap();
        let k = CellKernel::new(cell);
        let a = k.launches(64, &d);
        let b = k.launches(64, &d);
        assert_eq!(a.len(), b.len());
        for (la, lb) in a.iter().zip(&b) {
            assert_eq!(la.blocks, lb.blocks);
        }
        assert!(a[0].blocks.len() >= 256, "expect parallel construction");
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::<f64>::empty(8, 8);
        let k = CellKernel::new(build_cell(&csr, &CellConfig::default()).unwrap());
        let c = k.run(&DenseMatrix::zeros(8, 2)).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(k.profile(2, &DeviceModel::v100()).num_blocks, 0);
    }
}
