//! BCSR (block-sparse) SpMM kernel, the Triton-style mapping: one thread
//! block multiplies a row of dense tiles against the dense operand. Dense
//! tiles make the arithmetic perfectly regular — but every padded zero is
//! both stored and multiplied, which on scattered matrices inflates the
//! footprint enough to reproduce the paper's Triton OOM entries.

use crate::common::{b_row_tx, split_b_traffic, spmm_flops};
use crate::simd::{Gather, Lanes, TileParams};
use crate::SpmmKernel;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::coalesce::segment_transactions;
use lf_sim::parallel::{default_workers, parallel_for, DisjointSlice};
use lf_sim::{BlockCost, DeviceModel, LaunchSpec};
use lf_sparse::{BcsrMatrix, DenseMatrix, Result, SparseError};

/// Triton-style BCSR SpMM (one thread block per block-row).
pub struct BcsrKernel<T> {
    bcsr: BcsrMatrix<T>,
    tile: TileParams,
}

impl<T: AtomicScalar> BcsrKernel<T> {
    /// Wrap a BCSR operand (default execution tile).
    pub fn new(bcsr: BcsrMatrix<T>) -> Self {
        BcsrKernel {
            bcsr,
            tile: TileParams::default(),
        }
    }

    /// Set the execution tile `run` uses (builder style).
    pub fn with_tile(mut self, tile: TileParams) -> Self {
        self.tile = tile;
        self
    }

    /// Numeric path with an explicit execution tile.
    pub fn run_tiled(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        self.execute(b, tile)
    }

    /// Access the underlying matrix.
    pub fn bcsr(&self) -> &BcsrMatrix<T> {
        &self.bcsr
    }

    fn execute(&self, b: &DenseMatrix<T>, tile_params: TileParams) -> Result<DenseMatrix<T>> {
        let (rows, cols) = self.bcsr.shape();
        if cols != b.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "spmm",
                lhs: (rows, cols),
                rhs: b.shape(),
            });
        }
        let j = b.cols();
        let (br, bc) = self.bcsr.block_shape();
        let slots = br * bc;
        let lanes = tile_params.lanes.resolve::<T>();
        let k_block = tile_params.k_block_clamped();
        let mut c = DenseMatrix::zeros(rows, j);
        {
            // Block rows cover disjoint row ranges: accumulate straight
            // into the output rows.
            let out = DisjointSlice::new(c.as_mut_slice());
            let nbr = self.bcsr.num_block_rows();
            parallel_for(nbr, default_workers(), |blk_row| {
                let ptr = self.bcsr.block_row_ptr();
                let mut gather: Gather<'_, T> = Gather::new();
                for lr in 0..br {
                    let r = blk_row * br + lr;
                    if r >= rows {
                        break;
                    }
                    // SAFETY: each block row (hence each row) goes to
                    // exactly one worker, and each row is carved exactly
                    // once (the shadow race detector enforces this in
                    // debug builds).
                    let crow = unsafe { out.slice_mut(r * j, j) };
                    for k in ptr[blk_row]..ptr[blk_row + 1] {
                        let bcol = self.bcsr.block_col_ind()[k] as usize;
                        let tile = &self.bcsr.block_values()[k * slots..(k + 1) * slots];
                        if lanes == Lanes::Scalar {
                            // The pre-SIMD engine, loop shape unchanged.
                            for lc in 0..bc {
                                let col = bcol * bc + lc;
                                if col >= cols {
                                    break;
                                }
                                let v = tile[lr * bc + lc];
                                if v == T::ZERO {
                                    continue;
                                }
                                let brow = b.row(col);
                                for (cv, &bv) in crow.iter_mut().zip(brow) {
                                    *cv += v * bv;
                                }
                            }
                        } else {
                            // Gather-outer: explicit-zero skipping and
                            // the tile-edge test leave the inner loop.
                            for lc in 0..bc {
                                let col = bcol * bc + lc;
                                if col >= cols {
                                    break;
                                }
                                let v = tile[lr * bc + lc];
                                if v == T::ZERO {
                                    continue;
                                }
                                gather.push(v, b.row(col));
                                if gather.full(k_block) {
                                    gather.flush_into(lanes, crow, 0);
                                }
                            }
                        }
                    }
                    gather.flush_into(lanes, crow, 0);
                }
            });
        }
        Ok(c)
    }
}

impl<T: AtomicScalar> SpmmKernel<T> for BcsrKernel<T> {
    fn name(&self) -> &'static str {
        "bcsr(triton)"
    }

    fn shape(&self) -> (usize, usize) {
        self.bcsr.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        self.execute(b, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let (rows, k_dim) = self.bcsr.shape();
        let (br, bc) = self.bcsr.block_shape();
        let slots = br * bc;
        let ws = k_dim * j * elem;
        let per_row = b_row_tx(j, elem, device);
        let mut launch =
            LaunchSpec::new(self.name(), 256).with_grid_multiplier(j.div_ceil(device.warp_size));
        let ptr = self.bcsr.block_row_ptr();
        for blk_row in 0..self.bcsr.num_block_rows() {
            let ntiles = ptr[blk_row + 1] - ptr[blk_row];
            if ntiles == 0 {
                continue;
            }
            // Tile payload: dense values, coalesced, padding included.
            let tile_tx = segment_transactions(ntiles * slots, elem, device.transaction_bytes);
            let meta = segment_transactions(ntiles, 4, device.transaction_bytes) + 1;
            // Each tile consumes `bc` rows of B in full; distinct tiles in
            // a block row have distinct block columns, so these are unique.
            let unique_b = (ntiles * bc) as u64 * per_row;
            let (b_dram, b_l2) = split_b_traffic(unique_b, 0, ws, device);
            let out_rows = br.min(rows - blk_row * br);
            let c_tx = out_rows as u64 * per_row;
            launch.push(BlockCost {
                dram_transactions: tile_tx + meta + b_dram + c_tx,
                l2_transactions: b_l2,
                // Dense tile math multiplies padding too.
                flops: spmm_flops(ntiles * slots, j),
                atomic_transactions: 0,
                lane_efficiency: 1.0,
            });
        }
        vec![launch]
    }

    fn format_bytes(&self) -> usize {
        self.bcsr.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{block_sparse, uniform_random};
    use lf_sparse::{CsrMatrix, Pcg32};

    fn kernels(seed: u64, blocky: bool) -> (CsrMatrix<f64>, BcsrKernel<f64>) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let coo = if blocky {
            block_sparse(128, 128, 8, 40, 1.0, &mut rng)
        } else {
            uniform_random(128, 128, 500, &mut rng)
        };
        let csr = CsrMatrix::from_coo(&coo);
        let k = BcsrKernel::new(BcsrMatrix::from_csr(&csr, 8, 8).unwrap());
        (csr, k)
    }

    #[test]
    fn numeric_matches_reference() {
        for blocky in [true, false] {
            let (csr, k) = kernels(1, blocky);
            let mut rng = Pcg32::seed_from_u64(60);
            for j in [1, 16, 50] {
                let b = DenseMatrix::random(csr.cols(), j, &mut rng);
                let got = k.run(&b).unwrap();
                let want = csr.spmm_reference(&b).unwrap();
                assert!(got.approx_eq(&want, 1e-9), "blocky={blocky} J={j}");
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (_, k) = kernels(2, true);
        assert!(k.run(&DenseMatrix::<f64>::zeros(5, 3)).is_err());
    }

    #[test]
    fn scattered_matrix_pays_padding() {
        let d = DeviceModel::v100();
        let (_, blocky) = kernels(3, true);
        let (_, scattered) = kernels(3, false);
        // Padding ratios differ wildly...
        assert!(scattered.bcsr().padding_ratio() > 0.9);
        assert!(blocky.bcsr().padding_ratio() < 0.1);
        // ...and the scattered case burns flops on zeros.
        let pb = blocky.profile(128, &d);
        let ps = scattered.profile(128, &d);
        let nnz_b = blocky.bcsr().nnz() as f64;
        let nnz_s = scattered.bcsr().nnz() as f64;
        assert!(
            (ps.flops as f64 / nnz_s) > 10.0 * (pb.flops as f64 / nnz_b),
            "per-nnz flops should explode with padding"
        );
    }

    #[test]
    fn oom_on_pathological_padding() {
        // One nnz per 8x8 tile over a large matrix: footprint blows up
        // (the §2.1 anecdote) and the kernel reports it cannot fit on a
        // small device.
        let mut trips = Vec::new();
        for bi in 0..400usize {
            for bj in 0..400usize {
                if (bi + bj) % 3 == 0 {
                    trips.push((bi * 8, bj * 8, 1.0f64));
                }
            }
        }
        let csr =
            CsrMatrix::from_coo(&lf_sparse::CooMatrix::from_triplets(3200, 3200, trips).unwrap());
        let k = BcsrKernel::new(BcsrMatrix::from_csr(&csr, 8, 8).unwrap());
        assert!(k.bcsr().padding_ratio() > 0.98);
        assert!(k.format_bytes() > 30 * csr.memory_bytes());
        let small = DeviceModel {
            memory_capacity: 16 * 1024 * 1024,
            ..DeviceModel::tiny()
        };
        assert!(!k.fits_in_memory(256, &small));
        assert!(k.fits_in_memory(256, &DeviceModel::v100()));
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::<f64>::empty(16, 16);
        let k = BcsrKernel::new(BcsrMatrix::from_csr(&csr, 8, 8).unwrap());
        let b = DenseMatrix::zeros(16, 4);
        let c = k.run(&b).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        let p = k.profile(4, &DeviceModel::v100());
        assert_eq!(p.num_blocks, 0);
    }
}
