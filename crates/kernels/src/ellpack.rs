//! Ellpack SpMM kernel: warp-per-row over the padded grid. Padding costs
//! both wasted lanes (divergence on the `ELL_PAD` check) and wasted
//! compute/traffic — the inefficiency CELL's buckets remove.

use crate::common::{b_row_tx, split_b_traffic, spmm_flops, BlockScratch};
use crate::simd::{Gather, Lanes, TileParams};
use crate::SpmmKernel;
use lf_sim::atomicf::AtomicScalar;
use lf_sim::coalesce::segment_transactions;
use lf_sim::parallel::{default_workers, parallel_for, DisjointSlice};
use lf_sim::{BlockCost, DeviceModel, LaunchSpec};
use lf_sparse::ell::ELL_PAD;
use lf_sparse::{DenseMatrix, EllMatrix, Result, SparseError};

/// Warp-per-row Ellpack SpMM.
pub struct EllKernel<T> {
    ell: EllMatrix<T>,
    tile: TileParams,
}

impl<T: AtomicScalar> EllKernel<T> {
    /// Wrap an ELL operand (default execution tile).
    pub fn new(ell: EllMatrix<T>) -> Self {
        EllKernel {
            ell,
            tile: TileParams::default(),
        }
    }

    /// Set the execution tile `run` uses (builder style).
    pub fn with_tile(mut self, tile: TileParams) -> Self {
        self.tile = tile;
        self
    }

    /// Numeric path with an explicit execution tile.
    pub fn run_tiled(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        self.execute(b, tile)
    }

    /// Access the underlying matrix.
    pub fn ell(&self) -> &EllMatrix<T> {
        &self.ell
    }

    fn execute(&self, b: &DenseMatrix<T>, tile: TileParams) -> Result<DenseMatrix<T>> {
        if self.ell.shape().1 != b.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "spmm",
                lhs: self.ell.shape(),
                rhs: b.shape(),
            });
        }
        let (rows, _) = self.ell.shape();
        let j = b.cols();
        let width = self.ell.width();
        let lanes = tile.lanes.resolve::<T>();
        let k_block = tile.k_block_clamped();
        let mut c = DenseMatrix::zeros(rows, j);
        {
            // Rows are disjoint: accumulate straight into the output row.
            let out = DisjointSlice::new(c.as_mut_slice());
            parallel_for(rows, default_workers(), |i| {
                // SAFETY: each row index goes to exactly one worker.
                let crow = unsafe { out.slice_mut(i * j, j) };
                if lanes == Lanes::Scalar {
                    // The pre-SIMD engine, loop shape unchanged.
                    for w in 0..width {
                        let (col, val) = self.ell.slot(i, w);
                        if col == ELL_PAD {
                            break;
                        }
                        let brow = b.row(col as usize);
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += val * bv;
                        }
                    }
                } else {
                    // Gather-outer: the PAD break and slot walk leave
                    // the inner loop; strips sweep per k-block.
                    let mut gather: Gather<'_, T> = Gather::new();
                    for w in 0..width {
                        let (col, val) = self.ell.slot(i, w);
                        if col == ELL_PAD {
                            break;
                        }
                        gather.push(val, b.row(col as usize));
                        if gather.full(k_block) {
                            gather.flush_into(lanes, crow, 0);
                        }
                    }
                    gather.flush_into(lanes, crow, 0);
                }
            });
        }
        Ok(c)
    }
}

impl<T: AtomicScalar> SpmmKernel<T> for EllKernel<T> {
    fn name(&self) -> &'static str {
        "ellpack"
    }

    fn shape(&self) -> (usize, usize) {
        self.ell.shape()
    }

    fn run(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>> {
        self.execute(b, self.tile)
    }

    fn launches(&self, j: usize, device: &DeviceModel) -> Vec<LaunchSpec> {
        let elem = std::mem::size_of::<T>();
        let (rows, k) = self.ell.shape();
        let width = self.ell.width();
        let ws = k * j * elem;
        let rows_per_block = 8;
        let mut launch =
            LaunchSpec::new(self.name(), 256).with_grid_multiplier(j.div_ceil(device.warp_size));
        let mut scratch = BlockScratch::new();
        let mut r = 0;
        while r < rows {
            let hi = (r + rows_per_block).min(rows);
            let slot_lo = r * width;
            let slot_hi = hi * width;
            let slots = slot_hi - slot_lo;
            let (nnz, unique_cols) = scratch.count_unique_iter(
                self.ell.col_ind()[slot_lo..slot_hi]
                    .iter()
                    .copied()
                    .filter(|&c| c != ELL_PAD),
            );
            let per_row = b_row_tx(j, elem, device);
            let unique = unique_cols as u64 * per_row;
            let total = nnz as u64 * per_row;
            let (b_dram, b_l2) = split_b_traffic(unique, total - unique, ws, device);
            // The padded grid is streamed in full (col + val arrays).
            let colval = 2 * segment_transactions(slots, 4, device.transaction_bytes);
            let c_tx = (hi - r) as u64 * per_row;
            launch.push(BlockCost {
                dram_transactions: b_dram + colval + c_tx + 1,
                l2_transactions: b_l2,
                // Padded slots are multiplied through (branchless inner
                // loop): compute scales with slots, not nnz.
                flops: spmm_flops(slots, j),
                atomic_transactions: 0,
                lane_efficiency: if slots > 0 {
                    (nnz as f64 / slots as f64).max(1e-3)
                } else {
                    1.0
                },
            });
            r = hi;
        }
        vec![launch]
    }

    fn format_bytes(&self) -> usize {
        self.ell.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{uniform_random, uniform_with_long_rows};
    use lf_sparse::{CooMatrix, CsrMatrix, Pcg32};

    fn random_ell(seed: u64) -> (CsrMatrix<f64>, EllKernel<f64>) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let csr = CsrMatrix::from_coo(&uniform_random(120, 90, 1200, &mut rng));
        let k = EllKernel::new(EllMatrix::from_csr(&csr));
        (csr, k)
    }

    #[test]
    fn numeric_matches_reference() {
        let (csr, k) = random_ell(1);
        let mut rng = Pcg32::seed_from_u64(50);
        for j in [1, 16, 33] {
            let b = DenseMatrix::random(csr.cols(), j, &mut rng);
            let got = k.run(&b).unwrap();
            let want = csr.spmm_reference(&b).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "J={j}");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (_, k) = random_ell(2);
        assert!(k.run(&DenseMatrix::<f64>::zeros(7, 3)).is_err());
    }

    #[test]
    fn skewed_matrix_wastes_time_vs_csr() {
        // One long row forces width = long_len: ELL must stream the padded
        // grid, so it should be clearly slower than a CSR vector kernel.
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(3);
        let coo = uniform_with_long_rows::<f64>(2000, 2000, 8000, 2, 1500, &mut rng);
        let csr = CsrMatrix::from_coo(&coo);
        let ell_time = EllKernel::new(EllMatrix::from_csr(&csr))
            .profile(128, &d)
            .time_ms;
        let csr_time = crate::csr::CsrVectorKernel::new(csr)
            .profile(128, &d)
            .time_ms;
        assert!(
            ell_time > 3.0 * csr_time,
            "padding should dominate: ell {ell_time} csr {csr_time}"
        );
    }

    #[test]
    fn uniform_matrix_is_fine_in_ell() {
        // Constant row lengths (8 nnz/row): no padding, ELL competitive
        // with the CSR vector kernel.
        let d = DeviceModel::v100();
        let mut trips = Vec::new();
        for r in 0..512usize {
            for t in 0..8usize {
                trips.push((r, (r * 13 + t * 61) % 512, 1.0));
            }
        }
        let csr = CsrMatrix::from_coo(&CooMatrix::from_triplets(512, 512, trips).unwrap());
        let ell = EllKernel::new(EllMatrix::from_csr(&csr));
        assert_eq!(ell.ell().padding_ratio(), 0.0);
        let ell_time = ell.profile(128, &d).time_ms;
        let csr_time = crate::csr::CsrVectorKernel::new(csr)
            .profile(128, &d)
            .time_ms;
        assert!(
            ell_time < 1.5 * csr_time,
            "no-padding ELL should be close: {ell_time} vs {csr_time}"
        );
    }

    #[test]
    fn lane_efficiency_reflects_padding() {
        let d = DeviceModel::v100();
        let mut rng = Pcg32::seed_from_u64(4);
        let coo = uniform_with_long_rows::<f64>(100, 200, 300, 1, 150, &mut rng);
        let csr = CsrMatrix::from_coo(&coo);
        let k = EllKernel::new(EllMatrix::from_csr(&csr));
        let launches = k.launches(64, &d);
        let min_eff = launches[0]
            .blocks
            .iter()
            .map(|b| b.lane_efficiency)
            .fold(1.0f64, f64::min);
        assert!(min_eff < 0.3, "heavy padding should show: {min_eff}");
    }
}
