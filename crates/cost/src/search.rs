//! Algorithm 3: the bucket-width search.
//!
//! `TuneWidth` re-buckets a partition under a maximum-width cap (folding
//! longer rows); `build_buckets` binary-searches the cap exponent using
//! the Eq. 7 cost trend (if `cost(m) > cost(2m)` the optimum lies right
//! of `m`, else left). Widths are powers of two throughout, so the search
//! walks exponents — the geometric version of the paper's
//! `mW = (lW + rW) / 2` midpoint. Cost probes are memoized per exponent
//! ([`CostProbe`]), so overlapping `cost(m)`/`cost(2m)` evaluations
//! across iterations never re-sketch the same cap twice.

use crate::model::{partition_cost, BucketSketch, PartitionSketch};

/// The paper's `TuneWidth`: bucket the partition's rows under a maximum
/// width of `cap` (a power of two), folding longer rows into the maximum
/// bucket, and return the per-bucket sketches.
///
/// Runs on the partition's precomputed length histogram —
/// O(classes + folded rows), no column data touched.
pub fn tune_width(partition: &PartitionSketch, cap: usize) -> Vec<BucketSketch> {
    partition.sketches_under_cap(cap)
}

/// Memoized Eq. 7 cost probes over power-of-two caps for one partition.
///
/// Both the doubling binary search and the exhaustive reference evaluate
/// caps repeatedly (`cost(m)` of one iteration is `cost(2m)` of another);
/// the cache guarantees each exponent is sketched at most once.
pub struct CostProbe<'a> {
    partition: &'a PartitionSketch,
    j: usize,
    cache: Vec<Option<f64>>,
    probes: usize,
    evaluations: usize,
}

impl<'a> CostProbe<'a> {
    /// A probe for `partition` at dense width `j`, covering caps up to
    /// `2^max_exp` inclusive.
    pub fn new(partition: &'a PartitionSketch, j: usize, max_exp: u32) -> Self {
        CostProbe {
            partition,
            j,
            cache: vec![None; max_exp as usize + 1],
            probes: 0,
            evaluations: 0,
        }
    }

    /// Total Eq. 7 cost under cap `2^exp`, computing it at most once.
    pub fn cost(&mut self, exp: u32) -> f64 {
        self.probes += 1;
        if let Some(c) = self.cache[exp as usize] {
            return c;
        }
        self.evaluations += 1;
        let c = partition_cost(&self.partition.sketches_under_cap(1 << exp), self.j);
        self.cache[exp as usize] = Some(c);
        c
    }

    /// `(cost probes answered, sketches actually built)` — the gap is
    /// the memoization saving.
    pub fn stats(&self) -> (usize, usize) {
        (self.probes, self.evaluations)
    }
}

/// Algorithm 3 (`BuildBuckets`): find the maximum bucket width minimizing
/// total Eq. 7 cost for this partition at dense width `j`. Returns
/// `(width, sketches, cost)`.
pub fn build_buckets(partition: &PartitionSketch, j: usize) -> (usize, Vec<BucketSketch>, f64) {
    let natural = partition.max_row_len().max(1).next_power_of_two();
    // Exponent-space binary search bounds: lW = 1 (2^0), rW = natural max.
    let mut lo_exp = 0u32;
    let mut hi_exp = natural.trailing_zeros();
    let mut probe = CostProbe::new(partition, j, hi_exp + 1);
    while lo_exp < hi_exp {
        let mid_exp = (lo_exp + hi_exp) / 2;
        let cost_m = probe.cost(mid_exp);
        let cost_2m = probe.cost(mid_exp + 1);
        if cost_m > cost_2m {
            // The optimum is to the right of mW.
            lo_exp = mid_exp + 1;
        } else {
            hi_exp = mid_exp;
        }
    }
    let width = 1usize << lo_exp;
    let sketches = partition.sketches_under_cap(width);
    let cost = probe.cost(lo_exp);
    (width, sketches, cost)
}

/// Exhaustive reference: evaluate every power-of-two cap up to the
/// natural maximum and return the argmin. Used by tests to check
/// Algorithm 3 lands on (or within noise of) the global optimum.
pub fn exhaustive_best_width(partition: &PartitionSketch, j: usize) -> (usize, f64) {
    let natural = partition.max_row_len().max(1).next_power_of_two();
    let max_exp = natural.trailing_zeros();
    let mut probe = CostProbe::new(partition, j, max_exp);
    let mut best = (1usize, f64::INFINITY);
    for exp in 0..=max_exp {
        let cost = probe.cost(exp);
        if cost < best.1 {
            best = (1usize << exp, cost);
        }
    }
    best
}

/// Convenience: Algorithm-3 widths for every partition of a `p`-way split
/// (one shared O(nnz) sweep extracts all sketches at once).
pub fn optimal_widths_for_matrix<T: lf_sparse::Scalar>(
    csr: &lf_sparse::CsrMatrix<T>,
    p: usize,
    j: usize,
) -> Vec<usize> {
    PartitionSketch::all_from_csr(csr, p)
        .iter()
        .map(|part| build_buckets(part, j).0)
        .collect()
}

/// Total Eq. 7 cost of a whole CELL composition (all partitions) under
/// per-partition caps — the scalar the search minimizes, exposed for the
/// Figure 11 harness.
pub fn total_cost_for_caps<T: lf_sparse::Scalar>(
    csr: &lf_sparse::CsrMatrix<T>,
    caps: &[usize],
    j: usize,
) -> f64 {
    PartitionSketch::all_from_csr(csr, caps.len())
        .iter()
        .zip(caps)
        .map(|(part, &cap)| partition_cost(&part.sketches_under_cap(cap), j))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::gen::{mixed_regions, power_law, uniform_with_long_rows, PowerLawConfig};
    use lf_sparse::{CooMatrix, CsrMatrix, Pcg32};

    fn sketch_of(csr: &CsrMatrix<f64>) -> PartitionSketch {
        PartitionSketch::from_csr(csr, 0, csr.cols())
    }

    #[test]
    fn tune_width_counts_folding() {
        // One row of 9 nnz under cap 4: 3 fragments in the width-4 bucket.
        let trips: Vec<(usize, usize, f64)> = (0..9).map(|c| (0, c, 1.0)).collect();
        let csr = CsrMatrix::from_coo(&CooMatrix::from_triplets(2, 16, trips).unwrap());
        let part = sketch_of(&csr);
        let sk = tune_width(&part, 4);
        assert_eq!(sk.len(), 1);
        assert_eq!(sk[0].width, 4);
        assert_eq!(sk[0].i1, 3);
        assert_eq!(sk[0].i2, 1);
        assert_eq!(sk[0].nnz, 9);
        assert_eq!(sk[0].unique_cols, 9);
    }

    #[test]
    fn tune_width_natural_bucketing() {
        // Lengths 1, 3, 8 with a huge cap: buckets 1, 4, 8.
        let mut trips = vec![(0, 0, 1.0)];
        trips.extend((0..3).map(|c| (1, c, 1.0)));
        trips.extend((0..8).map(|c| (2, c, 1.0)));
        let csr = CsrMatrix::from_coo(&CooMatrix::from_triplets(3, 16, trips).unwrap());
        let sk = tune_width(&sketch_of(&csr), 1024);
        let widths: Vec<usize> = sk.iter().map(|s| s.width).collect();
        assert_eq!(widths, vec![1, 4, 8]);
        assert!(sk.iter().all(|s| s.i1 == 1 && s.i2 == 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_cap_panics() {
        let csr = CsrMatrix::<f64>::empty(1, 4);
        tune_width(&sketch_of(&csr), 3);
    }

    #[test]
    fn algorithm3_matches_exhaustive_on_random_matrices() {
        let mut rng = Pcg32::seed_from_u64(1);
        for (i, gen) in [
            uniform_with_long_rows::<f64>(400, 800, 4000, 6, 700, &mut rng),
            mixed_regions::<f64>(500, 500, 12_000, 4, &mut rng),
            power_law(
                &PowerLawConfig {
                    rows: 600,
                    cols: 600,
                    target_nnz: 9_000,
                    exponent: 2.0,
                    max_degree: None,
                },
                &mut rng,
            ),
        ]
        .into_iter()
        .enumerate()
        {
            let csr = CsrMatrix::from_coo(&gen);
            let part = sketch_of(&csr);
            for j in [32, 128, 512] {
                let (w3, _, c3) = build_buckets(&part, j);
                let (we, ce) = exhaustive_best_width(&part, j);
                // The cost curve need not be strictly unimodal; accept
                // anything within 10% of the global optimum (the paper's
                // own Figure 11 shows a plateau around the optimum).
                assert!(
                    c3 <= ce * 1.10,
                    "case {i} J={j}: alg3 width {w3} cost {c3} vs exhaustive {we}/{ce}"
                );
            }
        }
    }

    #[test]
    fn long_rows_get_folded_by_the_search() {
        // A partition with a few 700-long rows and many short rows: the
        // optimal cap should be far below the natural 1024.
        let mut rng = Pcg32::seed_from_u64(2);
        let coo = uniform_with_long_rows::<f64>(2000, 1024, 8000, 5, 700, &mut rng);
        let csr = CsrMatrix::from_coo(&coo);
        let (w, sketches, _) = build_buckets(&sketch_of(&csr), 128);
        assert!(w < 1024, "expected folding, got natural width {w}");
        // Folded: some bucket has i1 > i2.
        assert!(sketches.iter().any(|s| s.i1 > s.i2));
    }

    #[test]
    fn empty_partition() {
        let csr = CsrMatrix::<f64>::empty(4, 4);
        let (w, sk, c) = build_buckets(&sketch_of(&csr), 64);
        assert_eq!(w, 1);
        assert!(sk.is_empty());
        assert_eq!(c, 0.0);
    }

    #[test]
    fn cost_probe_never_reevaluates() {
        let mut rng = Pcg32::seed_from_u64(9);
        let coo = uniform_with_long_rows::<f64>(500, 512, 6000, 4, 400, &mut rng);
        let csr = CsrMatrix::from_coo(&coo);
        let part = sketch_of(&csr);
        let max_exp = part.max_row_len().next_power_of_two().trailing_zeros();
        let mut probe = CostProbe::new(&part, 128, max_exp + 1);
        // Hammer overlapping probes, exhaustive-style and search-style.
        for exp in 0..=max_exp {
            probe.cost(exp);
            probe.cost(exp.min(max_exp));
            if exp > 0 {
                probe.cost(exp - 1);
            }
        }
        let (probes, evals) = probe.stats();
        assert!(probes > evals, "cache must absorb repeated probes");
        assert!(
            evals as u32 <= max_exp + 1,
            "each exponent sketched at most once: {evals} evals for {} exps",
            max_exp + 1
        );
    }

    #[test]
    fn per_matrix_widths_cover_partitions() {
        let mut rng = Pcg32::seed_from_u64(3);
        let coo = mixed_regions::<f64>(300, 600, 9000, 4, &mut rng);
        let csr = CsrMatrix::from_coo(&coo);
        let widths = optimal_widths_for_matrix(&csr, 4, 128);
        assert_eq!(widths.len(), 4);
        assert!(widths.iter().all(|w| w.is_power_of_two()));
        // Mixed-density regions should not all pick the same width.
        let distinct: std::collections::HashSet<_> = widths.iter().collect();
        assert!(
            distinct.len() >= 2,
            "per-partition widths should differ on a mixed matrix: {widths:?}"
        );
    }

    #[test]
    fn total_cost_for_caps_sums_partitions() {
        let mut rng = Pcg32::seed_from_u64(4);
        let coo = mixed_regions::<f64>(200, 400, 5000, 4, &mut rng);
        let csr = CsrMatrix::from_coo(&coo);
        let c2 = total_cost_for_caps(&csr, &[8, 8], 64);
        assert!(c2 > 0.0);
        // Equivalent to manual per-partition sum.
        let spans = PartitionSketch::spans(csr.cols(), 2);
        let manual: f64 = spans
            .iter()
            .map(|&(lo, hi)| {
                let p = PartitionSketch::from_csr(&csr, lo, hi);
                partition_cost(&tune_width(&p, 8), 64)
            })
            .sum();
        assert!((c2 - manual).abs() < 1e-9);
    }
}
