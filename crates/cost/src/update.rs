//! Churn crossover: incremental CELL maintenance vs. full rebuild.
//!
//! `lf_cell::update_cell` re-buckets only the touched rows, but every
//! bucket holding a touched row is rewritten wholesale — so as churn
//! grows, the incremental path degenerates into a serial copy of most
//! of the matrix while [`build_cell`](lf_cell::build_cell) amortizes
//! its sweep across the worker pool. Somewhere in between sits a
//! crossover; this module predicts it from the machine's measured
//! [`calibration`] constants and memoizes the resulting *churn
//! threshold* (touched-row count above which rebuilding is predicted
//! cheaper) per matrix family — the same probe-once-then-cache
//! discipline as [`plan_tile`](crate::tile::plan_tile).
//!
//! Like every `lf-cost` prediction, the numbers only *rank* the two
//! strategies; correctness never depends on them (both paths produce
//! bitwise-identical CELLs).

use crate::tile::TileFeatures;
use lf_sim::calibration;
use lf_sim::parallel::default_workers;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static CACHE: Mutex<Option<HashMap<TileFeatures, usize>>> = Mutex::new(None);
static HITS: AtomicUsize = AtomicUsize::new(0);
static MISSES: AtomicUsize = AtomicUsize::new(0);

/// `(hits, misses)` of the process-wide churn-threshold cache.
pub fn churn_cache_stats() -> (usize, usize) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Representative row count for a quantized family.
fn rows_of(f: TileFeatures) -> usize {
    1usize << f.rows_log2
}

/// Representative non-zero count for a quantized family.
fn nnz_of(f: TileFeatures) -> f64 {
    (rows_of(f) << f.avg_nnz_log2) as f64
}

/// Estimated distinct bucket count across the matrix: one bucket per
/// populated power-of-two width, which tracks `log2` of the typical
/// row length plus the tail widths around it.
fn buckets_of(f: TileFeatures) -> f64 {
    (f.avg_nnz_log2 + 2) as f64
}

/// Predicted nanoseconds for a from-scratch `build_cell`: a parallel
/// binning sweep plus materialization touches every non-zero about
/// four times (segment split, fragment bookkeeping, column and value
/// copy), amortized over the pool, plus one region dispatch.
pub fn predict_rebuild_ns(f: TileFeatures) -> f64 {
    let cal = calibration();
    let work = nnz_of(f) * 4.0 * cal.copy_ns;
    cal.pool_dispatch_ns + work / default_workers() as f64
}

/// Predicted nanoseconds for `update_cell` with `touched` distinct
/// touched rows: each touched row re-materializes its fragments, and
/// every affected bucket (at most two per touched row — the width it
/// left and the width it joined — capped by the bucket count) is
/// rewritten serially, slot by slot.
pub fn predict_update_ns(f: TileFeatures, touched: usize) -> f64 {
    let cal = calibration();
    let avg_len = (1usize << f.avg_nnz_log2) as f64;
    let rematerialize = touched as f64 * avg_len * 2.0 * cal.copy_ns;
    let buckets = buckets_of(f);
    let affected = (2.0 * touched as f64).min(buckets) / buckets;
    let splice = affected * nnz_of(f) * 2.0 * cal.copy_ns;
    rematerialize + splice
}

/// The predicted crossover (uncached): the smallest touched-row count
/// at which a rebuild is no slower than incremental maintenance,
/// clamped to `[1, rows]`. A threshold equal to the row count means
/// the family always favors the incremental path.
pub fn search_churn_threshold(f: TileFeatures) -> usize {
    let rows = rows_of(f).max(1);
    let rebuild = predict_rebuild_ns(f);
    // `predict_update_ns` is non-decreasing in `touched`, so binary
    // search for the first count the rebuild beats.
    let (mut lo, mut hi) = (1usize, rows);
    if predict_update_ns(f, rows) < rebuild {
        return rows;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if predict_update_ns(f, mid) >= rebuild {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// The memoized churn threshold for a matrix family: touched-row
/// counts **at or above** this favor a full rebuild. Cache hits take a
/// mutex and a hash lookup — safe on the serving mutation path.
pub fn churn_threshold(f: TileFeatures) -> usize {
    let mut guard = CACHE.lock().unwrap_or_else(|e| e.into_inner());
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(&t) = cache.get(&f) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return t;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let t = search_churn_threshold(f);
    cache.insert(f, t);
    t
}

/// `true` when a batch touching `touched` distinct rows of a `f`-family
/// matrix should fall back to a full rebuild.
pub fn should_rebuild(f: TileFeatures, touched: usize) -> bool {
    touched >= churn_threshold(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_cost_is_monotone_in_touched_rows() {
        let f = TileFeatures::new(1 << 14, 1 << 18, 8);
        let mut last = 0.0;
        for t in [1, 4, 16, 64, 256, 1024] {
            let ns = predict_update_ns(f, t);
            assert!(ns >= last, "touched {t}: {ns} < {last}");
            last = ns;
        }
    }

    #[test]
    fn threshold_splits_the_strategies() {
        let f = TileFeatures::new(1 << 14, 1 << 18, 8);
        let t = search_churn_threshold(f);
        assert!((1..=1 << 14).contains(&t));
        let rebuild = predict_rebuild_ns(f);
        if t > 1 {
            assert!(predict_update_ns(f, t - 1) < rebuild);
        }
        if t < 1 << 14 {
            assert!(predict_update_ns(f, t) >= rebuild);
        }
    }

    #[test]
    fn tiny_matrices_never_rebuild() {
        // A rebuild pays the pool dispatch; for a matrix whose whole
        // storage costs less to copy than one dispatch, the threshold
        // must land at the row count (incremental always wins).
        let f = TileFeatures::new(256, 4096, 8);
        assert_eq!(search_churn_threshold(f), 256);
        assert!(!should_rebuild(f, 255));
    }

    #[test]
    fn heavy_churn_on_large_matrices_rebuilds() {
        let f = TileFeatures::new(1 << 20, 1 << 24, 8);
        assert!(should_rebuild(f, 1 << 20), "full-matrix churn must rebuild");
    }

    #[test]
    fn cache_hits_after_first_search() {
        let f = TileFeatures::new(1 << 13, 1 << 16, 4);
        let first = churn_threshold(f);
        let (_, m0) = churn_cache_stats();
        let second = churn_threshold(f);
        let (h1, m1) = churn_cache_stats();
        assert_eq!(first, second);
        assert_eq!(m1, m0, "second lookup must not re-search");
        assert!(h1 >= 1);
    }
}
